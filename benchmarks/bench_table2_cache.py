"""Table 2: decoding time with and without the LRU decode cache.

The paper's Table 2 shows the cache slashing decode time, most
dramatically when vessels are involved (one vessel is the candidate of
hundreds of nuclei and would otherwise be decoded hundreds of times).
"""

import pytest

from repro.bench.runner import make_engine, run_test

CASES = ["INT-NN", "WN-NN", "WN-NV", "NN-NV"]


@pytest.mark.parametrize("cache_enabled", [True, False], ids=["cache", "no-cache"])
@pytest.mark.parametrize("test_id", CASES)
def test_table2_decode_cache(benchmark, workload, test_id, cache_enabled):
    result = {}

    def run():
        engine = make_engine(
            "fpr", "B", workload=workload, cache_enabled=cache_enabled
        )
        result["value"] = run_test(test_id, workload, "fpr", engine=engine)

    benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result["value"].stats
    benchmark.extra_info.update(
        {
            "test": test_id,
            "cache": cache_enabled,
            "decode_seconds": stats.decode_seconds,
            "decoded_vertices": stats.decoded_vertices,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
        }
    )
    print(
        f"\n[table2] {test_id:7s} cache={'on ' if cache_enabled else 'off'} "
        f"decode={stats.decode_seconds:7.3f}s decoded_vertices={stats.decoded_vertices:>9d} "
        f"hits={stats.cache_hits:>7d} misses={stats.cache_misses:>6d}"
    )
