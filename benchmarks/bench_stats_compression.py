"""Section 6.2 statistics: protruding portions, compression ratio, cost.

The paper reports ~99% protruding vertices for nuclei, ~75% for vessels
(~92% overall), a compressed size that fits comfortably in memory
(1.15TB -> 18.4GB on their data), and per-object compression costs of
0.4ms (nucleus) / 36.3ms (vessel) in C++. We reproduce the portions and
the ratio's direction at our scale and record the Python codec costs.
"""

import time

from repro.bench.reporting import format_table
from repro.compression import PPVPEncoder, protruding_fraction, serialize_object


def test_protruding_portions(benchmark, workload):
    fractions = {}

    def classify():
        for name, sample in (("nuclei", workload.raw["nuclei_a"][:12]),
                             ("vessels", workload.raw["vessels"][:2])):
            values = [protruding_fraction(mesh) for mesh in sample]
            fractions[name] = sum(values) / len(values)

    benchmark.pedantic(classify, rounds=1, iterations=1)
    rows = [[name, 100.0 * frac] for name, frac in fractions.items()]
    print("\n" + format_table(["dataset", "protruding %"], rows, title="[stats] protruding vertices (paper: nuclei ~99%, vessels ~75%)"))
    benchmark.extra_info.update(fractions)
    # Shape: nuclei overwhelmingly protruding, vessels clearly lower.
    assert fractions["nuclei"] > 0.9
    assert fractions["vessels"] < fractions["nuclei"]
    assert fractions["vessels"] > 0.3


def test_compression_ratio_and_cost(benchmark, workload):
    report = {}

    def compress_and_measure():
        flat_bytes = 0
        compressed_bytes = 0
        for name in ("nuclei_a", "vessels"):
            for obj, mesh in zip(
                workload.datasets[name].objects, workload.raw[name]
            ):
                full = mesh.compacted()
                flat_bytes += full.num_vertices * 24 + full.num_faces * 12
                compressed_bytes += len(serialize_object(obj, quant_bits=14))
        report["ratio"] = flat_bytes / compressed_bytes
        report["flat"] = flat_bytes
        report["compressed"] = compressed_bytes

    benchmark.pedantic(compress_and_measure, rounds=1, iterations=1)
    print(
        f"\n[stats] flat={report['flat']:,}B compressed={report['compressed']:,}B "
        f"ratio={report['ratio']:.2f}x (paper: ~62x with aggressive quantization)"
    )
    benchmark.extra_info.update(report)
    assert report["ratio"] > 1.5  # multi-LOD storage still beats flat storage


def test_compression_cost_per_object(benchmark, workload):
    encoder = PPVPEncoder(max_lods=6)
    nucleus = workload.raw["nuclei_a"][0]
    vessel = workload.raw["vessels"][0]
    costs = {}

    def encode_both():
        start = time.perf_counter()
        encoder.encode(nucleus)
        costs["nucleus_ms"] = 1000 * (time.perf_counter() - start)
        start = time.perf_counter()
        encoder.encode(vessel)
        costs["vessel_ms"] = 1000 * (time.perf_counter() - start)

    benchmark.pedantic(encode_both, rounds=1, iterations=1)
    print(
        f"\n[stats] encode nucleus={costs['nucleus_ms']:.1f}ms "
        f"vessel={costs['vessel_ms']:.1f}ms "
        f"(paper C++: 0.4ms / 36.3ms; same nucleus<<vessel shape)"
    )
    benchmark.extra_info.update(costs)
    assert costs["vessel_ms"] > costs["nucleus_ms"]
