#!/usr/bin/env python3
"""Refine-stage pipeline benchmark: batched LOD rounds vs per-pair dispatch.

Runs the intersection and within joins twice per backend — with the
batched gather/segment refinement (``core/batch.py``, the default) and
with ``EngineConfig(batched_refine=False)``, the old one-kernel-call-
per-candidate-pair path — and records, in ``results/pipeline.json``:

* refine-stage wall time (``stats.compute_seconds``: the compute phase
  net of decode time) for both modes, plus the speedup;
* a parity verdict per backend (serial / thread / process): result
  pairs, funnel counters, and the per-LOD pairs ledger must be
  identical between the two modes, or the whole run fails.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py            # full run
    PYTHONPATH=src python benchmarks/bench_pipeline.py --check    # gate mode
    PYTHONPATH=src python benchmarks/bench_pipeline.py --quick    # 1 repeat

``--check`` exits 2 on any parity mismatch (hard failure: the batched
path changed an answer or a count) and 1 when the median speedup falls
under ``--floor`` (default 5x — machine-relative, so CI treats exit 1
as a warning, like ``scripts/bench_regress.py``). The workload scale
follows ``REPRO_BENCH_SCALE`` (default ``tiny``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.runner import make_engine  # noqa: E402
from repro.bench.workloads import get_workload  # noqa: E402

RESULTS = Path(__file__).resolve().parent.parent / "results" / "pipeline.json"

BACKENDS = {
    "serial": {"query_workers": 1},
    "thread": {"query_workers": 4, "query_backend": "thread"},
    "process": {"query_workers": 4, "query_backend": "process"},
}


def _run_join(workload, test_id: str, batched: bool, **overrides):
    engine = make_engine(
        "fpr", "B", workload=workload, batched_refine=batched, **overrides
    )
    if test_id == "INT-NN":
        return engine.intersection_join("nuclei_a", "nuclei_b")
    return engine.within_join("nuclei_a", "nuclei_b", distance=workload.within_nn)


def _comparable(result, with_cache: bool) -> dict:
    """Everything the two modes must agree on, byte for byte.

    Decode-cache counters are deterministic only on the serial backend:
    under thread/process fan-out, chunk-to-worker assignment (and with
    it cross-chunk cache reuse) is scheduling-dependent in the per-pair
    path too, so those fields are compared serially only — the same
    exclusion ``tests/test_parallel_query._comparable_counters`` makes.
    """
    funnel = result.stats.funnel.as_dict()
    if not with_cache:
        for stage in funnel.get("stages", {}).values():
            for key in ("cache_hits", "cache_misses", "decoded_objects",
                        "decoded_bytes"):
                stage.pop(key, None)
    return {
        "pairs": [(tid, list(matches)) for tid, matches in result.pairs.items()],
        "degraded_targets": sorted(result.degraded_targets),
        "results": result.stats.results,
        "funnel": funnel,
        "pairs_evaluated_by_lod": sorted(result.stats.pairs_evaluated_by_lod.items()),
        "pairs_pruned_by_lod": sorted(result.stats.pairs_pruned_by_lod.items()),
        "degraded_objects": result.stats.degraded_objects,
    }


def _parity(workload, test_id: str, backends) -> dict:
    verdicts = {}
    for backend, overrides in backends.items():
        per_pair = _run_join(workload, test_id, batched=False, **overrides)
        batched = _run_join(workload, test_id, batched=True, **overrides)
        with_cache = backend == "serial"
        a = _comparable(per_pair, with_cache)
        b = _comparable(batched, with_cache)
        mismatched = [key for key in a if a[key] != b[key]]
        verdicts[backend] = {"identical": not mismatched, "mismatched": mismatched}
    return verdicts


def _time_refine(workload, test_id: str, batched: bool, repeats: int) -> dict:
    compute, total = [], []
    for _ in range(repeats):
        started = time.perf_counter()
        result = _run_join(workload, test_id, batched=batched, query_workers=1)
        total.append(time.perf_counter() - started)
        compute.append(result.stats.compute_seconds)
    return {
        "refine_seconds": statistics.median(compute),
        "total_seconds": statistics.median(total),
        "refine_samples": compute,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="gate mode: exit 2 on parity mismatch, 1 on speedup under --floor",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="single timing repeat and the intersection join only",
    )
    parser.add_argument(
        "--floor", type=float, default=5.0,
        help="minimum acceptable batched-vs-per-pair refine speedup (default 5.0)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (median wins)"
    )
    parser.add_argument(
        "--output", type=Path, default=RESULTS,
        help=f"result JSON path (default {RESULTS})",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip writing the result JSON"
    )
    args = parser.parse_args(argv)

    repeats = 1 if args.quick else args.repeats
    test_ids = ["INT-NN"] if args.quick else ["INT-NN", "WN-NN"]
    workload = get_workload()
    print(f"[pipeline] workload: {workload.summary}")

    report = {
        "scale": workload.scale.name,
        "repeats": repeats,
        "floor": args.floor,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "workloads": {},
    }
    parity_ok = True
    worst_speedup = float("inf")
    for test_id in test_ids:
        per_pair = _time_refine(workload, test_id, batched=False, repeats=repeats)
        batched = _time_refine(workload, test_id, batched=True, repeats=repeats)
        speedup = (
            per_pair["refine_seconds"] / batched["refine_seconds"]
            if batched["refine_seconds"] > 0
            else float("inf")
        )
        worst_speedup = min(worst_speedup, speedup)
        parity = _parity(workload, test_id, BACKENDS)
        parity_ok &= all(v["identical"] for v in parity.values())
        report["workloads"][test_id] = {
            "per_pair": per_pair,
            "batched": batched,
            "refine_speedup": speedup,
            "parity": parity,
        }
        verdicts = " ".join(
            f"{backend}={'ok' if v['identical'] else 'MISMATCH:' + ','.join(v['mismatched'])}"
            for backend, v in parity.items()
        )
        print(
            f"[pipeline] {test_id}: per-pair={per_pair['refine_seconds']:.3f}s "
            f"batched={batched['refine_seconds']:.3f}s speedup={speedup:.1f}x "
            f"parity: {verdicts}"
        )

    if not args.no_write:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[pipeline] wrote {args.output}")

    if not parity_ok:
        print("[pipeline] FAIL: batched and per-pair runs disagree", file=sys.stderr)
        return 2
    if args.check and worst_speedup < args.floor:
        print(
            f"[pipeline] WARN: refine speedup {worst_speedup:.1f}x is under the "
            f"{args.floor:.1f}x floor (machine-relative)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
