"""Ablation: PPVP vs the PPMC-style baseline codec (paper Section 3).

The paper's argument for PPVP is that PPMC's unconstrained pruning makes
lower LODs neither progressive nor conservative approximations, so the
early-return properties do not hold. This benchmark quantifies both
sides at once:

* compression — PPMC, free to remove recessing vertices, reaches a
  smaller (or equal) base on non-convex objects;
* correctness — feeding PPMC LODs to the FPR engine produces wrong
  join answers (early accepts fire on geometry that grew), while PPVP
  answers match the FR ground truth exactly.
"""

from repro.compression import PPMCEncoder, PPVPEncoder
from repro.core import EngineConfig, ThreeDPro
from repro.storage import Dataset


def _engine(targets, sources, paradigm):
    engine = ThreeDPro(EngineConfig(paradigm=paradigm))
    engine.load_dataset(targets)
    engine.load_dataset(sources)
    return engine


def test_ablation_codec_guarantees(benchmark, workload):
    nuclei_a = workload.raw["nuclei_a"]
    nuclei_b = workload.raw["nuclei_b"]
    report = {}

    def run():
        for codec_name, encoder in (
            ("ppvp", PPVPEncoder(max_lods=5)),
            ("ppmc", PPMCEncoder(max_lods=5)),
        ):
            targets = Dataset("t", [encoder.encode(m) for m in nuclei_a])
            sources = Dataset("s", [encoder.encode(m) for m in nuclei_b])
            base_faces = sum(len(obj.base_faces) for obj in sources.objects)

            truth = _engine(targets, sources, "fr").within_join("t", "s", 1.0).pairs
            progressive = _engine(targets, sources, "fpr").within_join("t", "s", 1.0).pairs

            wrong = 0
            keys = set(truth) | set(progressive)
            for tid in keys:
                if truth.get(tid, []) != progressive.get(tid, []):
                    wrong += 1
            report[codec_name] = {"base_faces": base_faces, "wrong_targets": wrong}

    benchmark.pedantic(run, rounds=1, iterations=1)
    for name, rec in report.items():
        print(
            f"\n[ablation-codec] {name}: base_faces={rec['base_faces']} "
            f"fpr_vs_fr wrong targets={rec['wrong_targets']}"
        )
    benchmark.extra_info.update(report)

    # PPVP's subset guarantee makes FPR exact; no such promise for PPMC.
    assert report["ppvp"]["wrong_targets"] == 0
    # PPMC prunes at least as aggressively (it may also remove pits).
    assert report["ppmc"]["base_faces"] <= report["ppvp"]["base_faces"] * 1.2
