#!/usr/bin/env python
"""Decode microbenchmark: columnar LOD-table slicing vs reference replay.

Measures the three decode access patterns the query engine exercises,
on the Table 1 workload (``REPRO_BENCH_SCALE``, default ``tiny``):

* **cold** — decode-to-max-LOD on a fresh object: the table path pays
  its one-time compile plus a slice; the replay path replays every
  removal record through an ``EditableMesh``.
* **warm advance** — a progressive sweep LOD 0..max with one decoder,
  materializing the face array at every LOD (the FPR refinement loop).
* **post-eviction re-decode** — decode-to-max again after the decoder
  state is dropped (what a cache eviction used to cost): the compiled
  table persists on the object, so the table path re-slices while the
  replay path restarts from the base mesh.

Every timed pair is verified byte-identical before timing. Results go
to ``results/decode.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_decode.py [--out results/decode.json]
        [--repeats 5] [--quick]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time
from pathlib import Path

import numpy as np

from repro.bench.workloads import get_workload
from repro.compression import ReplayDecoder


def _fresh(obj):
    """A copy of ``obj`` with no compiled table or cached properties."""
    return dataclasses.replace(obj)


def _decode_to_max(decoder_factory, objects):
    for obj in objects:
        decoder = decoder_factory(obj)
        decoder.advance_to(obj.max_lod)
        decoder.face_array()


def _progressive_sweep(decoder_factory, objects):
    for obj in objects:
        decoder = decoder_factory(obj)
        for lod in obj.lods:
            decoder.advance_to(lod)
            decoder.face_array()


def _timeit(fn, repeats):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {"min_seconds": min(samples), "mean_seconds": sum(samples) / len(samples)}


def _scenario(name, table_fn, replay_fn, repeats):
    table = _timeit(table_fn, repeats)
    replay = _timeit(replay_fn, repeats)
    speedup = replay["min_seconds"] / table["min_seconds"] if table["min_seconds"] else float("inf")
    print(f"  {name:28s} replay {replay['min_seconds']:.4f}s  "
          f"table {table['min_seconds']:.4f}s  speedup {speedup:.1f}x")
    return {"name": name, "table": table, "replay": replay, "speedup": speedup}


def verify_equivalence(objects) -> int:
    """Assert table decode == replay decode at every LOD; returns LODs checked."""
    checked = 0
    for obj in objects:
        ref, cur = ReplayDecoder(obj), obj.decoder()
        for lod in obj.lods:
            ref.advance_to(lod)
            cur.advance_to(lod)
            if not np.array_equal(ref.face_array(), cur.face_array()):
                raise AssertionError(f"decode mismatch at LOD {lod}")
            checked += 1
    return checked


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="results/decode.json", help="output JSON path")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--quick", action="store_true",
                        help="single repetition (CI smoke run)")
    args = parser.parse_args()
    repeats = 1 if args.quick else args.repeats

    workload = get_workload()
    objects = [obj for ds in workload.datasets.values() for obj in ds.objects]
    print(f"workload {workload.scale.name}: {len(objects)} objects, "
          f"{sum(len(o.rounds) for o in objects)} rounds total")

    checked = verify_equivalence(objects)
    print(f"verified table == replay on {checked} (object, LOD) pairs")

    scenarios = []
    # Cold: fresh objects every repetition so the table path pays its
    # compile; `repeats` fresh copies are pre-built so timing excludes
    # the copying itself.
    cold_pools = [[_fresh(obj) for obj in objects] for _ in range(repeats)]
    cold_iter = iter(cold_pools)
    scenarios.append(_scenario(
        "cold_decode_to_max_lod",
        lambda: _decode_to_max(lambda o: o.decoder(), next(cold_iter)),
        lambda: _decode_to_max(ReplayDecoder, objects),
        repeats,
    ))

    # Warm advance: tables compiled, decoders sweep the LOD ladder.
    for obj in objects:
        obj.lod_table  # noqa: B018 - compile outside the timed region
    scenarios.append(_scenario(
        "warm_progressive_sweep",
        lambda: _progressive_sweep(lambda o: o.decoder(), objects),
        lambda: _progressive_sweep(ReplayDecoder, objects),
        repeats,
    ))

    # Post-eviction: decoder state dropped, object-level state kept.
    # The replay path restarts from the base mesh; the table persists.
    scenarios.append(_scenario(
        "post_eviction_redecode",
        lambda: _decode_to_max(lambda o: o.decoder(), objects),
        lambda: _decode_to_max(ReplayDecoder, objects),
        repeats,
    ))

    doc = {
        "bench": "decode",
        "workload": workload.summary,
        "repeats": repeats,
        "lod_pairs_verified_identical": checked,
        "scenarios": {s.pop("name"): s for s in scenarios},
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")

    cold = doc["scenarios"]["cold_decode_to_max_lod"]["speedup"]
    if cold < 5.0:
        print(f"WARNING: cold speedup {cold:.1f}x below the 5x target")
        # single-rep smoke runs are too noisy to gate on timing
        return 0 if args.quick else 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
