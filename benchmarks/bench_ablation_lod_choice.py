"""Ablation: LOD schedule choice (Section 4.4 rule vs naive schedules).

Compares three FPR schedules on the nearest-neighbor nuclei-vessel test:

* all LODs (refine at every level),
* the profiled schedule from the Section 4.4 break-even rule,
* top-only (degenerates to FR).

The profiled schedule should never be slower than the worse of the two
extremes — that is the entire point of the profiling step.
"""

import pytest

from repro.bench.runner import make_engine, run_test
from repro.core import choose_lod_list, profile_pruning

SCHEDULES = ["all-lods", "profiled", "top-only"]


@pytest.fixture(scope="module")
def profiled_lods(workload):
    engine = make_engine("fpr", "B", workload=workload)
    profile = profile_pruning(engine, "nuclei_a", "vessels", "nn", sample_size=16)
    return choose_lod_list(profile)


@pytest.mark.parametrize("schedule", SCHEDULES)
def test_ablation_lod_schedule(benchmark, workload, schedule, profiled_lods):
    result = {}

    def run():
        if schedule == "all-lods":
            engine = make_engine("fpr", "B", workload=workload)
        elif schedule == "profiled":
            engine = make_engine("fpr", "B", workload=workload, lod_list=tuple(profiled_lods))
        else:
            engine = make_engine("fr", "B", workload=workload)
        result["value"] = run_test("NN-NV", workload, engine.config.paradigm, engine=engine)

    benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result["value"].stats
    benchmark.extra_info.update(
        {
            "schedule": schedule,
            "lods": list(profiled_lods) if schedule == "profiled" else schedule,
            "seconds": stats.total_seconds,
            "face_pairs": stats.face_pairs_total,
        }
    )
    print(
        f"\n[ablation-lod] NN-NV schedule={schedule:9s} "
        f"lods={list(profiled_lods) if schedule == 'profiled' else schedule} "
        f"time={stats.total_seconds:7.3f}s face_pairs={stats.face_pairs_total}"
    )
