"""Shared benchmark fixtures.

The workload (scene generation + PPVP encoding) is built once per
session at the scale selected by ``REPRO_BENCH_SCALE`` (default
``tiny``). Every benchmark prints the rows/series of the paper artifact
it reproduces, so running ``pytest benchmarks/ --benchmark-only -s``
regenerates the evaluation section.
"""

import pytest

from repro.bench.workloads import get_workload


@pytest.fixture(scope="session")
def workload():
    wl = get_workload()
    print(f"\n[workload] {wl.summary}")
    return wl
