"""Shared benchmark fixtures.

The workload (scene generation + PPVP encoding) is built once per
session at the scale selected by ``REPRO_BENCH_SCALE`` (default
``tiny``). Every benchmark prints the rows/series of the paper artifact
it reproduces, so running ``pytest benchmarks/ --benchmark-only -s``
regenerates the evaluation section.
"""

import pytest

from repro.bench.workloads import get_workload


def pytest_addoption(parser):
    parser.addoption(
        "--query-backend",
        choices=["thread", "process", "both"],
        default="both",
        help="query parallelism backend(s) to benchmark (bench_parallel_query)",
    )


@pytest.fixture(scope="session")
def query_backend_choice(request):
    return request.config.getoption("--query-backend")


@pytest.fixture(scope="session")
def workload():
    wl = get_workload()
    print(f"\n[workload] {wl.summary}")
    return wl


@pytest.hookimpl(trylast=True)
def pytest_sessionfinish(session, exitstatus):
    """Embed the metrics snapshot into --benchmark-json output, if any.

    Runs after pytest-benchmark has written its file (trylast), so every
    benchmark JSON carries the cache/decode/retry counters that explain
    its timings. Best-effort: a missing or unwritable file is ignored.
    """
    target = getattr(session.config.option, "benchmark_json", None)
    if not target:
        return
    # argparse FileType hands us the open file object; pytest-benchmark
    # has already written and closed it by the time trylast hooks run.
    path = getattr(target, "name", target)
    try:
        from repro.bench.export import embed_metrics

        embed_metrics(path)
    except (OSError, TypeError, ValueError, KeyError):
        pass
