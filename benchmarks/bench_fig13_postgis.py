"""Fig. 13: PostGIS-like versus 3DPro (FR and FPR), single-threaded.

As in the paper's Section 6.6 methodology: one cuboid worth of data,
brute-force geometry (no AABB-tree / partition / GPU), the nearest
neighbor query given a precomputed buffer distance for the PostGIS-like
engine. Expected shape: PostGIS-like slowest by a wide margin, 3DPro-FR
in the middle, 3DPro-FPR fastest.
"""

import pytest

from repro.baselines import PostGISLikeEngine
from repro.bench.runner import make_engine, run_test

CASES = ["INT-NN", "WN-NN", "NN-NN"]


def _subset(workload, n=16):
    """One-cuboid-sized slice of the raw meshes."""
    return {
        "nuclei_a": workload.raw["nuclei_a"][:n],
        "nuclei_b": workload.raw["nuclei_b"][:n],
    }


@pytest.mark.parametrize("test_id", CASES)
def test_fig13_postgis_like(benchmark, workload, test_id):
    raw = _subset(workload)
    engine = PostGISLikeEngine(raw["nuclei_a"], raw["nuclei_b"])
    distance = workload.within_nn
    result = {}

    def run():
        if test_id == "INT-NN":
            result["value"] = engine.intersection_join()
        elif test_id == "WN-NN":
            result["value"] = engine.within_join(distance)
        else:
            # Buffer = the largest nucleus pair spacing; generous bound.
            result["value"] = engine.nn_join(buffer_distance=4.0)

    benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result["value"].stats
    benchmark.extra_info.update({"engine": "postgis-like", "seconds": stats.total_seconds})
    print(f"\n[fig13] {test_id:7s} postgis-like  time={stats.total_seconds:8.3f}s")


@pytest.mark.parametrize("paradigm", ["fr", "fpr"])
@pytest.mark.parametrize("test_id", CASES)
def test_fig13_3dpro(benchmark, workload, test_id, paradigm):
    from repro.storage import Dataset
    from repro.compression import PPVPEncoder

    raw = _subset(workload)
    encoder = PPVPEncoder(max_lods=6)
    datasets = {
        name: Dataset.from_polyhedra(name, meshes, encoder)
        for name, meshes in raw.items()
    }
    result = {}

    def run():
        engine = make_engine(paradigm, "B", datasets=datasets)
        result["value"] = run_test(test_id, workload, paradigm, engine=engine)

    benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result["value"].stats
    benchmark.extra_info.update(
        {"engine": f"3dpro-{paradigm}", "seconds": stats.total_seconds}
    )
    print(
        f"\n[fig13] {test_id:7s} 3dpro-{paradigm:3s}  time={stats.total_seconds:8.3f}s"
    )
