"""Ablation: kNN join cost versus k (the paper's kNN remark, Section 4.3).

The FPR kNN keeps at least k entries in the candidate list; pruning
weakens as k grows, so face-pair work should grow with k — but stay far
below the FR cost at the same k.
"""

import pytest

from repro.bench.runner import make_engine

KS = [1, 2, 4]


@pytest.mark.parametrize("k", KS)
def test_ablation_knn(benchmark, workload, k):
    result = {}

    def run():
        engine = make_engine("fpr", "B", workload=workload)
        result["fpr"] = engine.knn_join("nuclei_a", "nuclei_b", k=k)
        fr_engine = make_engine("fr", "B", workload=workload)
        result["fr"] = fr_engine.knn_join("nuclei_a", "nuclei_b", k=k)

    benchmark.pedantic(run, rounds=1, iterations=1)
    fpr_stats = result["fpr"].stats
    fr_stats = result["fr"].stats
    benchmark.extra_info.update(
        {
            "k": k,
            "fpr_seconds": fpr_stats.total_seconds,
            "fr_seconds": fr_stats.total_seconds,
            "fpr_face_pairs": fpr_stats.face_pairs_total,
            "fr_face_pairs": fr_stats.face_pairs_total,
        }
    )
    print(
        f"\n[ablation-knn] k={k} fpr={fpr_stats.total_seconds:6.3f}s "
        f"({fpr_stats.face_pairs_total} pairs)  "
        f"fr={fr_stats.total_seconds:6.3f}s ({fr_stats.face_pairs_total} pairs)"
    )
    # The k-nearest sets must agree between paradigms.
    for tid, fr_matches in result["fr"].pairs.items():
        fr_ids = {sid for sid, _d, _e in fr_matches}
        fpr_ids = {sid for sid, _d, _e in result["fpr"].pairs[tid]}
        assert fr_ids == fpr_ids
    assert fpr_stats.face_pairs_total <= fr_stats.face_pairs_total
