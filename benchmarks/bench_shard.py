#!/usr/bin/env python
"""Shard store vs spill transport: per-worker memory ceiling and cold open.

The v3 shard layout exists so process workers stop paying for private
dataset copies: workers ``mmap`` the same read-only shard files and the
kernel page cache is shared, so a worker's unique memory (USS) grows
only with the objects *it* materializes.  This benchmark measures that
claim directly and records it in ``results/shard.json``:

* **per-worker USS growth** across a process-backend within join, for
  the shard store (manifest-handle transport, lazy mmap loads) vs the
  legacy pickle-spill transport (every worker unpickles the full
  dataset).  USS is read from ``/proc/<pid>/smaps_rollup``
  (``Private_Clean + Private_Dirty``) — pages shared with the parent or
  siblings are excluded, which is exactly the per-copy cost we care
  about;
* **cold-open latency**: ``load_dataset`` + engine registration from a
  cold store, where the shard path builds lazy proxies from the index
  instead of deserializing every blob;
* **parity**: pairs, per-LOD pairs ledger, and funnel stages must be
  identical across serial/thread/process backends over the shard store
  and equal to the legacy-store serial reference.

Exit codes (mirroring ``scripts/bench_regress.py``):

* ``0`` — measurements recorded; thresholds honoured (or ``--check``
  not requested);
* ``1`` — ``--check`` and the shard arm's worker USS growth is not
  under ``--uss-ceiling`` (default 15%) of the *measured* per-copy
  dataset cost — the spill arm's own growth, which is what one private
  dataset copy actually costs resident (pickled bytes undercount the
  unpickled footprint several-fold; both are recorded).  A soft signal
  on shared CI runners.  For datasets too small for the ratio to mean
  anything (``--quick``), the check degrades to "shard workers grow no
  more than spill workers";
* ``2`` — parity mismatch or harness failure: the shard store returned
  different answers, which is never acceptable.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard.py --scale large
    PYTHONPATH=src python benchmarks/bench_shard.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import statistics
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

SCHEMA = "repro.bench.shard/1"
DEFAULT_USS_CEILING = 0.15
# Below this transport size, per-worker fixed overheads (allocator
# arenas, engine state) dwarf the dataset and the absolute ratio is
# noise; --check falls back to "shard grows no more than spill".
MIN_BYTES_FOR_RATIO = 5_000_000


def _warm_worker(seconds: float) -> int:
    """Imported by spawned pool workers to pre-pay import costs.

    Importing the engine stack here keeps module bytes out of the
    measured "growth" delta; the sleep holds the worker busy so one
    warm task lands on every worker of the pool.
    """
    import repro.core.engine  # noqa: F401
    import repro.parallel.procpool  # noqa: F401
    import repro.storage.store  # noqa: F401

    time.sleep(seconds)
    return os.getpid()


def _uss_bytes(pid: int) -> int | None:
    """Unique set size of ``pid``: private clean+dirty pages, in bytes."""
    try:
        text = Path(f"/proc/{pid}/smaps_rollup").read_text()
    except OSError:
        return None
    total_kb = 0
    for line in text.splitlines():
        if line.startswith(("Private_Clean:", "Private_Dirty:")):
            total_kb += int(line.split()[1])
    return total_kb * 1024


def _pool_pids() -> list[int]:
    from repro.parallel import procpool

    pool = procpool._POOL
    if pool is None:
        return []
    return sorted((pool._processes or {}).keys())


def _worker_uss() -> dict[int, int]:
    return {
        pid: uss for pid in _pool_pids() if (uss := _uss_bytes(pid)) is not None
    }


def _result_fingerprint(result) -> dict:
    return {
        "pairs": list(result.pairs.items()),
        "evaluated_by_lod": dict(result.stats.pairs_evaluated_by_lod),
        "pruned_by_lod": dict(result.stats.pairs_pruned_by_lod),
        "funnel": {
            lod: (s.evaluated, s.settled, s.confirmed, s.rejected, s.degraded)
            for lod, s in result.funnel.stages.items()
        },
        "candidates": result.funnel.candidates,
    }


def _make_engine(datasets, *, backend: str, workers: int, storage: str):
    from repro.core import EngineConfig, ThreeDPro
    from repro.obs.metrics import MetricsRegistry

    engine = ThreeDPro(
        EngineConfig(
            metrics=MetricsRegistry(),
            # workers=1 resolves to the serial path regardless of backend.
            query_backend=None if backend == "serial" else backend,
            query_workers=workers,
            storage_backend=storage,
        )
    )
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    return engine


def _save_stores(workload, root: Path) -> dict[str, dict[str, Path]]:
    """Write every workload dataset under both layouts; return the dirs."""
    from repro.storage.store import save_dataset

    dirs: dict[str, dict[str, Path]] = {"shard": {}, "legacy": {}}
    for layout in ("shard", "legacy"):
        for name, dataset in workload.datasets.items():
            directory = root / layout / name
            save_dataset(dataset, directory, layout=layout)
            dirs[layout][name] = directory
    return dirs


def _load_stores(dirs: dict[str, Path]):
    from repro.storage.store import load_dataset

    return {name: load_dataset(path) for name, path in dirs.items()}


def _cold_open(dirs: dict[str, Path], repeats: int) -> float:
    """Median seconds to open + register every dataset from its store."""
    from repro.storage.store import load_dataset

    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        datasets = {name: load_dataset(path) for name, path in dirs.items()}
        engine = _make_engine(
            datasets, backend="serial", workers=1, storage="legacy"
        )
        times.append(time.perf_counter() - start)
        del engine, datasets
    return statistics.median(times)


def _measure_arm(engine, spec, workers: int, warm_seconds: float = 0.4) -> dict:
    """Per-worker USS growth across one process-backend query.

    The pool is recreated for each arm so no pages from the previous
    arm linger; baseline is read after a warm round that imports the
    engine stack in every worker.
    """
    from repro.parallel import procpool

    procpool.shutdown()
    pool = procpool._ensure_pool(workers)
    warm = [pool.submit(_warm_worker, warm_seconds) for _ in range(workers)]
    warmed = {f.result() for f in warm}
    baseline = _worker_uss()

    result = engine.execute(spec)

    after = _worker_uss()
    growths = [
        after[pid] - baseline[pid] for pid in after if pid in baseline
    ]
    return {
        "result": result,
        "workers_measured": len(growths),
        "workers_warmed": len(warmed),
        "uss_baseline_bytes": {str(p): b for p, b in baseline.items()},
        "uss_after_bytes": {str(p): b for p, b in after.items()},
        "uss_growth_max_bytes": max(growths, default=0),
        "uss_growth_mean_bytes": (
            int(statistics.mean(growths)) if growths else 0
        ),
    }


def run(args) -> int:
    os.environ["REPRO_BENCH_SCALE"] = args.scale
    from repro.bench.workloads import get_workload
    from repro.core.plan import QuerySpec
    from repro.parallel import procpool

    print(f"building workload (scale={args.scale})...", flush=True)
    t0 = time.perf_counter()
    workload = get_workload()
    build_seconds = time.perf_counter() - t0
    print(f"  built in {build_seconds:.1f}s: {workload.summary}", flush=True)

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="bench-shard-") as tmp:
        root = Path(tmp)
        dirs = _save_stores(workload, root)

        store_bytes = {
            layout: sum(
                p.stat().st_size
                for name in dirs[layout]
                for p in dirs[layout][name].iterdir()
            )
            for layout in dirs
        }
        # A *regional* join — the access pattern cuboid sharding exists
        # for: restrict the query to the first ~10% of targets (a
        # cuboid-contiguous prefix, i.e. one spatial corner of the
        # grid), so a worker touches only the shards its chunk owns
        # while the spill transport still pays for the whole dataset.
        # nuclei_b objects sit paired next to nuclei_a ones, so every
        # queried target still refines real candidate pairs.
        n_targets = max(8, len(workload.datasets["nuclei_a"]) // 10)
        spec = QuerySpec(
            kind="within",
            source="nuclei_b",
            target="nuclei_a",
            distance=0.3 * workload.within_nn,
            target_ids=tuple(range(n_targets)),
        )
        joined = ("nuclei_a", "nuclei_b")
        # Bytes a pickle-spill worker must materialize privately for the
        # joined datasets — the denominator of the memory-ceiling claim.
        transport_bytes = sum(
            len(pickle.dumps(workload.datasets[name], pickle.HIGHEST_PROTOCOL))
            for name in joined
        )

        # -- parity: shard store across backends vs legacy serial ------
        print("parity: shard serial/thread/process vs legacy serial", flush=True)

        def joined_stores(layout):
            loaded = _load_stores(dirs[layout])
            return {name: loaded[name] for name in joined}

        legacy_engine = _make_engine(
            joined_stores("legacy"), backend="serial", workers=1,
            storage="legacy",
        )
        reference = _result_fingerprint(legacy_engine.execute(spec))
        n_result_pairs = sum(len(v) for _, v in reference["pairs"])
        print(f"  reference: {n_result_pairs} matched pairs", flush=True)
        del legacy_engine
        parity = {}
        for backend, workers in (
            ("serial", 1), ("thread", args.workers), ("process", args.workers)
        ):
            engine = _make_engine(
                joined_stores("shard"), backend=backend,
                workers=workers, storage="shard",
            )
            got = _result_fingerprint(engine.execute(spec))
            ok = got == reference
            parity[backend] = ok
            print(f"  {backend}: {'ok' if ok else 'MISMATCH'}", flush=True)
            if not ok:
                failures.append(
                    f"shard/{backend} result differs from legacy serial"
                )
            del engine

        # -- cold open --------------------------------------------------
        print("cold-open latency...", flush=True)
        cold_open = {
            layout: _cold_open(dirs[layout], args.repeats)
            for layout in ("shard", "legacy")
        }
        print(
            f"  shard {cold_open['shard'] * 1e3:.1f}ms  "
            f"legacy {cold_open['legacy'] * 1e3:.1f}ms",
            flush=True,
        )

        # -- per-worker USS: shard manifest handles vs pickle spill -----
        # The spill arm queries the in-memory datasets (no source_dir),
        # which is exactly the path that pickles the full dataset per
        # worker; the shard arm queries the store-backed datasets whose
        # manifest handle workers mmap lazily.
        print(f"memory ceiling ({args.workers} process workers)...", flush=True)
        arms = {}
        for arm, datasets, storage in (
            ("shard", joined_stores("shard"), "shard"),
            ("spill", {name: workload.datasets[name] for name in joined}, "legacy"),
        ):
            engine = _make_engine(
                datasets, backend="process", workers=args.workers,
                storage=storage,
            )
            measured = _measure_arm(engine, spec, args.workers)
            measured.pop("result")
            arms[arm] = measured
            print(
                f"  {arm}: max growth "
                f"{measured['uss_growth_max_bytes'] / 1e6:.1f}MB over "
                f"{measured['workers_measured']} workers",
                flush=True,
            )
            del engine
        procpool.shutdown()

        # The measured cost of one private dataset copy is the spill
        # arm's own growth; "growth as a fraction of dataset size" uses
        # it as the denominator (pickled bytes undercount the unpickled
        # resident footprint several-fold — recorded for reference).
        dataset_cost = arms["spill"]["uss_growth_max_bytes"]
        shard_ratio = (
            arms["shard"]["uss_growth_max_bytes"] / dataset_cost
            if dataset_cost > 0
            else 1.0
        )
        print(
            f"  shard growth is {shard_ratio:.2%} of the spill arm's "
            f"full-copy cost",
            flush=True,
        )

    report = {
        "schema": SCHEMA,
        "scale": args.scale,
        "workers": args.workers,
        "workload": workload.summary,
        "query": {
            "kind": spec.kind, "source": spec.source, "target": spec.target,
            "distance": spec.distance, "targets_queried": n_targets,
            "result_pairs": n_result_pairs,
        },
        "build_seconds": round(build_seconds, 3),
        "store_bytes": store_bytes,
        "transport_bytes": transport_bytes,
        "cold_open_seconds": {k: round(v, 6) for k, v in cold_open.items()},
        "parity": parity,
        "uss": {
            arm: {
                "growth_max_bytes": arms[arm]["uss_growth_max_bytes"],
                "growth_mean_bytes": arms[arm]["uss_growth_mean_bytes"],
                "workers_measured": arms[arm]["workers_measured"],
            }
            for arm in arms
        },
        "uss_growth_vs_spill_copy": round(shard_ratio, 4),
        "uss_growth_vs_pickled_bytes": {
            arm: (
                round(arms[arm]["uss_growth_max_bytes"] / transport_bytes, 4)
                if transport_bytes
                else None
            )
            for arm in arms
        },
        "uss_ceiling": args.uss_ceiling,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}", flush=True)

    if failures:
        print(f"\n{len(failures)} hard failure(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 2
    if args.check:
        if report["transport_bytes"] >= MIN_BYTES_FOR_RATIO:
            if shard_ratio >= args.uss_ceiling:
                print(
                    f"\nceiling breached: shard worker USS growth is "
                    f"{shard_ratio:.2%} of the full-copy cost "
                    f"(ceiling {args.uss_ceiling:.0%})"
                )
                return 1
        elif shard_ratio > 1.0:
            print(
                f"\nsmall-dataset check breached: shard workers grew "
                f"{shard_ratio:.2%} of what spill workers did"
            )
            return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default=os.environ.get("REPRO_BENCH_SCALE", "large"),
        help="workload scale (default: REPRO_BENCH_SCALE or 'large')",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="force the tiny scale (CI smoke; numbers are not meaningful)",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--repeats", type=int, default=3, help="cold-open timing repeats"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when the shard USS ceiling is breached (parity "
        "mismatches always exit 2)",
    )
    parser.add_argument(
        "--uss-ceiling", type=float, default=DEFAULT_USS_CEILING,
        help="max shard worker USS growth as a fraction of the measured "
        "full-copy (spill) cost",
    )
    parser.add_argument(
        "--out", default=str(ROOT / "results" / "shard.json"),
        help="report path (default results/shard.json)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.scale = "tiny"
    try:
        return run(args)
    except Exception as exc:  # noqa: BLE001 - CI wants a clean exit code
        print(f"bench_shard failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        import traceback

        traceback.print_exc()
        return 2


if __name__ == "__main__":
    sys.exit(main())
