"""Ablation: quantization bit width versus size and geometric error.

The serialization format quantizes coordinates over each object's MBB.
Sweeping the bit width shows the size/error trade-off behind the
paper's "adaptive quantization" remark in Section 6.2.
"""

import numpy as np
import pytest

from repro.bench.reporting import format_table
from repro.compression import deserialize_object, serialize_object

BITS = [8, 12, 16, 20]


def test_ablation_quantization(benchmark, workload):
    objects = workload.datasets["nuclei_a"].objects[:10]
    rows = []
    report = {}

    def sweep():
        for bits in BITS:
            total = 0
            worst_err = 0.0
            for obj in objects:
                blob = serialize_object(obj, quant_bits=bits)
                total += len(blob)
                restored = deserialize_object(blob)
                err = float(np.abs(restored.positions - obj.positions).max())
                worst_err = max(worst_err, err)
            rows.append([bits, total, worst_err])
            report[bits] = (total, worst_err)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_table(["bits", "bytes (10 objects)", "max abs error"], rows, title="[ablation-quant] quantization sweep"))
    benchmark.extra_info["rows"] = rows

    sizes = [report[b][0] for b in BITS]
    errors = [report[b][1] for b in BITS]
    assert sizes == sorted(sizes)  # more bits, more bytes
    assert errors == sorted(errors, reverse=True)  # more bits, less error
