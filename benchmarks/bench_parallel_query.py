"""Inter-target parallel query execution: serial vs ``query_workers=4``.

Fans target objects across TaskScheduler threads at the query level
(above the face-pair workers). Results are asserted byte-identical to
the serial run; ``extra_info`` records honest wall times — on a
single-core box the speedup hovers around 1.0 and the point of the
benchmark is confirming parallelism costs nothing, not that it wins.
"""

import os

import pytest

from repro.bench.runner import make_engine

WORKERS = 4


def _run_join(workload, query_workers):
    engine = make_engine(
        "fpr", "G", workload=workload, query_workers=query_workers
    )
    return engine.intersection_join("nuclei_a", "nuclei_b")


def test_parallel_query_speedup(benchmark, workload):
    serial_result = _run_join(workload, query_workers=1)
    result = {}

    def run():
        result["value"] = _run_join(workload, query_workers=WORKERS)

    benchmark.pedantic(run, rounds=1, iterations=1)
    parallel_result = result["value"]

    # Parallelism must be invisible in the answer.
    assert list(parallel_result.pairs.items()) == list(serial_result.pairs.items())

    serial_s = serial_result.stats.total_seconds
    parallel_s = parallel_result.stats.total_seconds
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    benchmark.extra_info.update(
        {
            "engine": "3dpro-fpr",
            "query_workers": WORKERS,
            "cpu_count": os.cpu_count(),
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "speedup": speedup,
        }
    )
    print(
        f"\n[parallel-query] INT-NN serial={serial_s:.3f}s "
        f"workers={WORKERS} parallel={parallel_s:.3f}s "
        f"speedup={speedup:.2f}x (cpus={os.cpu_count()})"
    )


@pytest.mark.parametrize("query_workers", [1, 2, 4])
def test_parallel_query_scaling(benchmark, workload, query_workers):
    result = {}

    def run():
        result["value"] = _run_join(workload, query_workers=query_workers)

    benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result["value"].stats
    benchmark.extra_info.update(
        {
            "engine": "3dpro-fpr",
            "query_workers": query_workers,
            "cpu_count": os.cpu_count(),
            "seconds": stats.total_seconds,
        }
    )
    print(
        f"\n[parallel-query] INT-NN workers={query_workers} "
        f"time={stats.total_seconds:8.3f}s"
    )
