"""Inter-target parallel query execution: serial vs 4 workers, by backend.

Fans target objects across the query-level worker pool with both
backends:

* ``thread`` — TaskScheduler threads above the face-pair workers. The
  refinement pipeline is pure-Python-bound, so the GIL keeps the honest
  speedup near 1.0x regardless of core count.
* ``process`` — worker processes, each with its own engine and decode
  cache (:mod:`repro.parallel.procpool`). Real multi-core speedups on
  multi-core hosts; on a single-core box the numbers stay ~1.0x and the
  point is confirming the fan-out costs little.

Results are asserted byte-identical to the serial run in the same
invocation; ``extra_info`` records honest wall times and the host's CPU
count. Select backends with ``--query-backend {thread,process,both}``.
"""

import os

import pytest

from repro.bench.runner import make_engine

WORKERS = 4
BACKENDS = ["thread", "process"]


def _skip_unselected(backend, query_backend_choice):
    if query_backend_choice != "both" and backend != query_backend_choice:
        pytest.skip(f"--query-backend={query_backend_choice} deselects {backend}")


def _run_join(workload, query_workers, backend="thread"):
    engine = make_engine(
        "fpr", "G", workload=workload,
        query_workers=query_workers, query_backend=backend,
    )
    return engine.intersection_join("nuclei_a", "nuclei_b")


@pytest.mark.parametrize("backend", BACKENDS)
def test_parallel_query_speedup(benchmark, workload, backend, query_backend_choice):
    _skip_unselected(backend, query_backend_choice)
    serial_result = _run_join(workload, query_workers=1)
    if backend == "process":
        # Warm the pool: spawn + per-worker engine bootstrap is a
        # one-time cost the steady state never pays again.
        _run_join(workload, query_workers=WORKERS, backend=backend)
    result = {}

    def run():
        result["value"] = _run_join(workload, query_workers=WORKERS, backend=backend)

    benchmark.pedantic(run, rounds=1, iterations=1)
    parallel_result = result["value"]

    # Parallelism must be invisible in the answer, whichever backend ran.
    assert list(parallel_result.pairs.items()) == list(serial_result.pairs.items())
    assert parallel_result.degraded_targets == serial_result.degraded_targets

    serial_s = serial_result.stats.total_seconds
    parallel_s = parallel_result.stats.total_seconds
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    benchmark.extra_info.update(
        {
            "engine": "3dpro-fpr",
            "backend": backend,
            "query_workers": WORKERS,
            "cpu_count": os.cpu_count(),
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "speedup": speedup,
        }
    )
    print(
        f"\n[parallel-query] INT-NN backend={backend} serial={serial_s:.3f}s "
        f"workers={WORKERS} parallel={parallel_s:.3f}s "
        f"speedup={speedup:.2f}x (cpus={os.cpu_count()})"
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("query_workers", [1, 2, 4])
def test_parallel_query_scaling(
    benchmark, workload, query_workers, backend, query_backend_choice
):
    _skip_unselected(backend, query_backend_choice)
    if backend == "process" and query_workers > 1:
        _run_join(workload, query_workers=query_workers, backend=backend)
    result = {}

    def run():
        result["value"] = _run_join(
            workload, query_workers=query_workers, backend=backend
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result["value"].stats
    benchmark.extra_info.update(
        {
            "engine": "3dpro-fpr",
            "backend": backend,
            "query_workers": query_workers,
            "cpu_count": os.cpu_count(),
            "seconds": stats.total_seconds,
        }
    )
    print(
        f"\n[parallel-query] INT-NN backend={backend} workers={query_workers} "
        f"time={stats.total_seconds:8.3f}s"
    )
