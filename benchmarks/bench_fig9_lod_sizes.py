"""Fig. 9: portion of compressed bytes taken by each LOD increment.

Serializes every workload object, groups segment sizes by LOD (one LOD
= two removal rounds), and prints the share of the total each level
contributes — the paper shows the base (LOD0) taking a small share with
increments growing toward the top LOD.
"""

from repro.bench.reporting import format_table
from repro.compression import serialize_object, serialized_segment_sizes


def test_fig9_lod_size_portions(benchmark, workload):
    blobs = {}

    def serialize_all():
        blobs["all"] = [
            serialize_object(obj)
            for name in ("nuclei_a", "vessels")
            for obj in workload.datasets[name].objects
        ]

    benchmark.pedantic(serialize_all, rounds=1, iterations=1)

    # Aggregate segment bytes into LOD buckets (2 rounds per LOD).
    base_total = 0
    header_total = 0
    lod_totals: dict[int, int] = {}
    for blob in blobs["all"]:
        sizes = serialized_segment_sizes(blob)
        header_total += sizes["header"]
        base_total += sizes["base"]
        rounds = sizes["rounds"]
        # rounds[i] was encode round i; decode applies them from the back,
        # so the LAST two rounds belong to LOD1, the first two to the top.
        for i, nbytes in enumerate(rounds):
            lod = (len(rounds) - i + 1) // 2  # 1-based LOD increments
            lod_totals[lod] = lod_totals.get(lod, 0) + nbytes

    total = header_total + base_total + sum(lod_totals.values())
    rows = [["header", header_total, 100.0 * header_total / total]]
    rows.append(["LOD0 (base)", base_total, 100.0 * base_total / total])
    for lod in sorted(lod_totals):
        rows.append(
            [f"LOD{lod} increment", lod_totals[lod], 100.0 * lod_totals[lod] / total]
        )
    print("\n" + format_table(["segment", "bytes", "share %"], rows, title="[fig9] compressed space by LOD"))

    benchmark.extra_info.update(
        {
            "total_bytes": total,
            "base_share": base_total / total,
        }
    )
    # The base must be a modest fraction: most bytes sit in increments.
    assert base_total / total < 0.6
