"""Fig. 10: execution-time breakdown (filter / decode / compute).

The paper's stacked bars show filtering is a tiny sliver everywhere,
decode dominating the intersection tests, and geometric computation
dominating the distance-based tests — with the FPR paradigm shrinking
both of the heavy phases.
"""

import pytest

from repro.bench.reporting import format_breakdown
from repro.bench.runner import TESTS, run_test


@pytest.mark.parametrize("paradigm", ["fr", "fpr"])
@pytest.mark.parametrize("test_id", list(TESTS))
def test_fig10_breakdown(benchmark, workload, test_id, paradigm):
    result = {}

    def run():
        result["value"] = run_test(test_id, workload, paradigm, "B")

    benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result["value"].stats
    benchmark.extra_info.update(
        {
            "test": test_id,
            "paradigm": paradigm,
            "filter": stats.filter_seconds,
            "decode": stats.decode_seconds,
            "compute": stats.compute_seconds,
            "total": stats.total_seconds,
        }
    )
    print(f"\n[fig10] {test_id:7s} {paradigm.upper():3s}  {format_breakdown(stats)}")
    # The paper's headline observation: filtering is a tiny share of the
    # execution for every test (refinement dominates 3D query cost).
    assert stats.filter_seconds < 0.5 * stats.total_seconds
