"""Table 1: join latency across paradigm x acceleration cells.

Reproduces the paper's headline table: the five tests (INT-NN, WN-NN,
WN-NV, NN-NN, NN-NV) under the FR and FPR paradigms with brute-force,
partition, AABB-tree, GPU, and partition+GPU acceleration. Absolute
numbers are incomparable to the paper's C++/CUDA testbed; the *shape* —
FPR beating FR in every cell, partition rescuing the vessel tests,
GPU-style batching beating blocked CPU evaluation — is the result.

Each cell runs once (fresh engine, cold decode cache), matching the
paper's one-shot join measurement.
"""

import pytest

from repro.bench.reporting import PAPER_TABLE1
from repro.bench.runner import TESTS, run_test

# (test, accel) combinations as in Table 1; P+G only for vessel tests.
CELLS = [
    (test_id, accel)
    for test_id in TESTS
    for accel in ("B", "P", "A", "G", "P+G")
    if accel != "P+G" or test_id.endswith("NV")
]

PARADIGMS = ("fr", "fpr")


@pytest.mark.parametrize("paradigm", PARADIGMS)
@pytest.mark.parametrize("test_id,accel", CELLS, ids=[f"{t}-{a}" for t, a in CELLS])
def test_table1_cell(benchmark, workload, test_id, accel, paradigm):
    result = {}

    def run():
        result["value"] = run_test(test_id, workload, paradigm, accel)

    benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result["value"].stats
    benchmark.extra_info.update(
        {
            "test": test_id,
            "paradigm": paradigm,
            "accel": accel,
            "seconds": stats.total_seconds,
            "matches": result["value"].total_matches,
            "face_pairs": stats.face_pairs_total,
            "paper_seconds": PAPER_TABLE1.get((test_id, paradigm, accel)),
        }
    )
    print(
        f"\n[table1] {test_id:7s} {paradigm.upper():3s}/{accel:3s} "
        f"time={stats.total_seconds:8.3f}s face_pairs={stats.face_pairs_total:>10d} "
        f"matches={result['value'].total_matches:>5d} "
        f"paper={PAPER_TABLE1.get((test_id, paradigm, accel), 'n/a')}"
    )
