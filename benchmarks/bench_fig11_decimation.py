"""Fig. 11: remaining faces versus decimation rounds.

The paper observes the face count roughly halving every two rounds
(hence r = 2 with one LOD per two rounds) and nuclei bottoming out near
10-40 faces after ~10 rounds.
"""

from repro.bench.reporting import format_table
from repro.compression import PPVPEncoder


def test_fig11_faces_vs_rounds(benchmark, workload):
    nucleus = workload.raw["nuclei_a"][0]
    vessel = workload.raw["vessels"][0]
    encoder = PPVPEncoder(max_lods=6, rounds_per_lod=2)
    encoded = {}

    def encode_both():
        encoded["nucleus"] = encoder.encode(nucleus)
        encoded["vessel"] = encoder.encode(vessel)

    benchmark.pedantic(encode_both, rounds=1, iterations=1)

    rows = []
    for name, obj in encoded.items():
        # Reconstruct faces-after-round-k from the removal counts.
        faces = obj.face_count_at_lod(obj.max_lod)
        series = [faces]
        for round_records in obj.rounds:
            faces -= 2 * len(round_records)
            series.append(faces)
        for round_index, count in enumerate(series):
            rows.append([name, round_index, count])
        # Shape assertions: monotone decreasing, roughly halving per 2 rounds.
        assert series == sorted(series, reverse=True)
        if len(series) >= 3:
            early_ratio = series[0] / max(series[2], 1)
            assert early_ratio > 1.5  # close to the paper's r = 2

    print("\n" + format_table(["object", "rounds", "faces"], rows, title="[fig11] faces vs decimation rounds"))
    benchmark.extra_info["series"] = rows
