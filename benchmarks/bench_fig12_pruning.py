"""Fig. 12 + Section 6.5: object pairs evaluated/pruned per LOD.

Profiles each query type with refinement at every LOD, prints the
evaluated/pruned counts and the pruned fraction per level, and applies
the Section 4.4 break-even rule (prune fraction > 1/r^2) to choose the
LOD list — the paper's profiling-driven configuration step.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import make_engine
from repro.core import choose_lod_list, profile_pruning

QUERIES = [
    ("intersection", "nuclei_a", "nuclei_b", None),
    ("within", "nuclei_a", "nuclei_b", "within_nn"),
    ("within", "nuclei_a", "vessels", "within_nv"),
    ("nn", "nuclei_a", "nuclei_b", None),
    ("nn", "nuclei_a", "vessels", None),
]

IDS = ["INT-NN", "WN-NN", "WN-NV", "NN-NN", "NN-NV"]


@pytest.mark.parametrize("query,target,source,dist_attr", QUERIES, ids=IDS)
def test_fig12_pruning_profile(benchmark, workload, query, target, source, dist_attr):
    engine = make_engine("fpr", "B", workload=workload)
    distance = getattr(workload, dist_attr) if dist_attr else None
    profile = {}

    def run():
        profile["value"] = profile_pruning(
            engine, target, source, query, sample_size=24, distance=distance
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    prof = profile["value"]
    chosen = choose_lod_list(prof)

    rows = []
    for lod in prof.lods:
        rows.append(
            [
                lod,
                prof.evaluated.get(lod, 0),
                prof.pruned.get(lod, 0),
                100.0 * prof.pruned_fraction(lod),
                "yes" if lod in chosen else "no",
            ]
        )
    title = (
        f"[fig12] {query} {target}->{source}  "
        f"r={prof.face_growth:.2f} break-even={100 * prof.break_even:.1f}%"
    )
    print("\n" + format_table(["lod", "evaluated", "pruned", "pruned %", "refine?"], rows, title=title))
    print(f"[fig12] chosen lod_list = {chosen}")

    benchmark.extra_info.update(
        {"chosen_lods": list(chosen), "face_growth": prof.face_growth}
    )
    assert chosen[-1] == prof.lods[-1]  # top LOD always kept
