"""Ablation: decode-cache byte budget sweep.

Between the paper's Table 2 extremes (no cache / effectively infinite
cache) lies a budget curve: decode work should fall monotonically-ish as
the budget grows, then flatten once the working set fits.
"""

import pytest

from repro.bench.runner import make_engine, run_test

BUDGETS = [64 * 1024, 1024 * 1024, 16 * 1024 * 1024, 256 * 1024 * 1024]


@pytest.mark.parametrize("budget", BUDGETS, ids=lambda b: f"{b // 1024}KiB")
def test_ablation_cache_budget(benchmark, workload, budget):
    result = {}

    def run():
        engine = make_engine("fpr", "B", workload=workload, cache_bytes=budget)
        result["value"] = run_test("NN-NV", workload, "fpr", engine=engine)

    benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result["value"].stats
    benchmark.extra_info.update(
        {
            "budget": budget,
            "decode_seconds": stats.decode_seconds,
            "decoded_vertices": stats.decoded_vertices,
            "hits": stats.cache_hits,
            "misses": stats.cache_misses,
        }
    )
    print(
        f"\n[ablation-cache] NN-NV budget={budget // 1024:>7d}KiB "
        f"decode={stats.decode_seconds:6.3f}s decoded_vertices={stats.decoded_vertices:>9d} "
        f"hits={stats.cache_hits} misses={stats.cache_misses}"
    )
