"""Ablation: rate-distortion of the PPVP chain (compression trade-off).

For one nucleus and one vessel: per LOD, the serialized bytes needed to
reach that LOD versus the sampled surface deviation from the original.
The classic codec trade-off curve — more bytes, less distortion — and
for a prune-only codec the deviation must be one-sided and monotone.
"""

from repro.analysis import lod_distortion_profile
from repro.bench.reporting import format_table
from repro.compression import PPVPEncoder, serialize_object, serialized_segment_sizes


def test_ablation_rate_distortion(benchmark, workload):
    objects = {
        "nucleus": workload.raw["nuclei_a"][0],
        "vessel": workload.raw["vessels"][0],
    }
    rows = []

    def run():
        encoder = PPVPEncoder(max_lods=6)
        for name, mesh in objects.items():
            compressed = encoder.encode(mesh)
            profile = lod_distortion_profile(compressed, samples_per_face=2)
            sizes = serialized_segment_sizes(serialize_object(compressed))
            # Bytes needed to decode LOD k: header + base + the last
            # k * rounds_per_lod round segments.
            round_sizes = sizes["rounds"]
            for record in profile:
                reinserted = compressed.rounds_reinserted_at(record["lod"])
                needed = (
                    sizes["header"]
                    + sizes["base"]
                    + sum(round_sizes[len(round_sizes) - reinserted :])
                )
                rows.append(
                    [
                        name,
                        record["lod"],
                        record["faces"],
                        needed,
                        record["volume_ratio"],
                        record["deviation"]["mean"],
                    ]
                )

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["object", "lod", "faces", "bytes needed", "volume ratio", "mean deviation"],
            rows,
            title="[ablation-distortion] rate-distortion per LOD",
        )
    )
    benchmark.extra_info["rows"] = rows

    # Shape: within each object, bytes grow and deviation shrinks with LOD.
    for name in objects:
        series = [r for r in rows if r[0] == name]
        byte_counts = [r[3] for r in series]
        deviations = [r[5] for r in series]
        assert byte_counts == sorted(byte_counts)
        assert deviations[-1] <= deviations[0] + 1e-12
