"""3DPro: querying complex 3D data with progressive compression and refinement.

A from-scratch Python reproduction of the EDBT 2022 paper. The package
is organized bottom-up:

* :mod:`repro.geometry` — AABB/triangle kernels (batched numpy);
* :mod:`repro.mesh` — closed triangle meshes, editing, primitives;
* :mod:`repro.compression` — PPVP progressive codec and serialization;
* :mod:`repro.index` — global R-tree and per-object AABB-trees;
* :mod:`repro.partition` — skeleton-based object decomposition;
* :mod:`repro.parallel` — batched face-pair execution (CPU / sim-GPU);
* :mod:`repro.storage` — cuboid store and the LRU decode cache;
* :mod:`repro.core` — the 3DPro engine (FR and FPR spatial joins);
* :mod:`repro.obs` — span tracing, metrics registry, structured logs;
* :mod:`repro.datagen` — synthetic nuclei/vessel datasets;
* :mod:`repro.baselines` — naive ground truth and a PostGIS-like engine;
* :mod:`repro.bench` — the experiment harness behind ``benchmarks/``.

Quickstart::

    from repro import ThreeDPro, EngineConfig, Dataset
    from repro.datagen import make_tissue_scene

    scene = make_tissue_scene(n_nuclei=100, n_vessels=2, seed=0)
    engine = ThreeDPro(EngineConfig(paradigm="fpr"))
    engine.load_polyhedra("nuclei", scene.nuclei_a)
    engine.load_polyhedra("vessels", scene.vessels)
    result = engine.nn_join("nuclei", "vessels")
"""

from repro.compression import PPVPEncoder
from repro.core import (
    Accel,
    EngineConfig,
    JoinResult,
    QueryResult,
    QuerySpec,
    QueryStats,
    ThreeDPro,
)
from repro.faults import FaultInjector, InjectedFault
from repro.mesh import Polyhedron
from repro.obs import MetricsRegistry, Tracer
from repro.storage import Dataset, LoadReport

__version__ = "1.0.0"

__all__ = [
    "PPVPEncoder",
    "Accel",
    "EngineConfig",
    "JoinResult",
    "QueryResult",
    "QuerySpec",
    "QueryStats",
    "ThreeDPro",
    "Polyhedron",
    "Dataset",
    "LoadReport",
    "FaultInjector",
    "InjectedFault",
    "Tracer",
    "MetricsRegistry",
    "__version__",
]
