"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``generate`` — synthesize a tissue scene and persist its datasets;
* ``compress`` — ingest OFF/STL mesh files into a compressed dataset;
* ``store``    — dataset directory maintenance; ``store migrate``
  converts between the legacy v2 container layout and the v3
  memory-mapped shard layout in place (blobs, ids, and grid preserved
  byte-for-byte);
* ``inspect``  — summarize a dataset directory (objects, LODs, bytes);
* ``decode``   — export one object at one LOD to OFF or STL;
* ``query``    — run a join between two dataset directories, or — with
  ``--remote URL`` — against a running query service (``--stream`` for
  progressive NDJSON results);
* ``serve``    — run the long-lived HTTP query service over one or more
  dataset directories (see :mod:`repro.serve`);
* ``profile``  — print the Section 6.5 LOD-schedule profile for a join;
* ``obs``      — run a traced join and export telemetry (span-tree JSON,
  Chrome ``trace_event`` JSON, Prometheus/OpenMetrics text, metrics
  JSON, refinement-funnel summary, span self-time table, and — with
  ``--profile`` — a sampling profile with collapsed-stack flamegraph
  export).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.compression.ppvp import PPVPEncoder
from repro.compression.serialize import serialized_segment_sizes, serialize_object
from repro.core.config import Accel, EngineConfig
from repro.core.engine import ThreeDPro
from repro.core.errors import StorageError
from repro.core.lod_select import choose_lod_list, profile_pruning
from repro.core.plan import QuerySpec
from repro.storage.store import Dataset, load_dataset, migrate_dataset, save_dataset

__all__ = ["main", "build_parser"]

_ACCEL = {
    "none": Accel(),
    "partition": Accel(partition=True),
    "aabb": Accel(aabbtree=True),
    "gpu": Accel(gpu=True),
    "partition+gpu": Accel(partition=True, gpu=True),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="3DPro: progressive 3D spatial queries (EDBT 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a tissue scene into datasets")
    gen.add_argument("output", type=Path, help="output directory")
    gen.add_argument("--nuclei", type=int, default=100)
    gen.add_argument("--vessels", type=int, default=2)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--region", type=float, default=120.0)
    gen.add_argument("--subdivisions", type=int, default=1)

    backend_help = (
        "on-disk layout for saved datasets: 'shard' (v3 memory-mapped "
        "shard files, page-cache shared across worker processes) or "
        "'legacy' (v2 cuboid containers) (default: REPRO_STORAGE_BACKEND "
        "env or legacy)"
    )
    gen.add_argument("--storage-backend", choices=["shard", "legacy"],
                     default=None, help=backend_help)

    comp = sub.add_parser("compress", help="ingest OFF/STL meshes into a dataset")
    comp.add_argument("meshes", type=Path, nargs="+", help="input .off/.stl files")
    comp.add_argument("--output", "-o", type=Path, required=True)
    comp.add_argument("--name", default="dataset")
    comp.add_argument("--max-lods", type=int, default=6)
    comp.add_argument("--quant-bits", type=int, default=16)
    comp.add_argument("--storage-backend", choices=["shard", "legacy"],
                      default=None, help=backend_help)

    store = sub.add_parser("store", help="dataset directory maintenance")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    mig = store_sub.add_parser(
        "migrate",
        help="convert a dataset directory between storage layouts in place",
    )
    mig.add_argument("dataset", type=Path, nargs="+",
                     help="dataset directories to migrate")
    mig.add_argument("--to", choices=["shard", "legacy"], default="shard",
                     help="target layout (default: shard)")

    salvage_help = (
        "load damaged dataset directories best-effort instead of failing "
        "(quarantines unreadable files, keeps salvageable objects)"
    )

    ins = sub.add_parser("inspect", help="summarize a dataset directory")
    ins.add_argument("dataset", type=Path)
    ins.add_argument("--salvage", action="store_true", help=salvage_help)

    dec = sub.add_parser("decode", help="export one object at one LOD")
    dec.add_argument("dataset", type=Path)
    dec.add_argument("--object", type=int, default=0)
    dec.add_argument("--lod", type=int, default=None, help="default: highest")
    dec.add_argument("--output", "-o", type=Path, required=True, help=".off or .stl")
    dec.add_argument("--salvage", action="store_true", help=salvage_help)

    qry = sub.add_parser("query", help="run a spatial join between two datasets")
    qry.add_argument("target", type=Path)
    qry.add_argument("source", type=Path)
    qry.add_argument("--query", choices=["intersection", "within", "nn", "knn"], default="nn")
    qry.add_argument("--distance", type=float, default=None, help="within threshold")
    qry.add_argument("-k", type=int, default=2, help="neighbors for knn")
    qry.add_argument("--paradigm", choices=["fr", "fpr"], default="fpr")
    qry.add_argument("--accel", choices=sorted(_ACCEL), default="none")
    qry.add_argument("--query-workers", type=int, default=None,
                     help="threads fanning query targets (default: "
                          "REPRO_QUERY_WORKERS env or serial)")
    qry.add_argument("--query-backend", choices=["thread", "process"], default=None,
                     help="parallel backend for --query-workers > 1 (default: "
                          "REPRO_QUERY_BACKEND env or thread)")
    qry.add_argument("--deadline-ms", type=int, default=None,
                     help="wall-clock budget; on expiry the query returns the "
                          "pairs confirmed so far as a sound partial result "
                          "(default: REPRO_DEADLINE_MS env or unbounded)")
    qry.add_argument("--limit", type=int, default=10, help="result rows to print")
    qry.add_argument("--salvage", action="store_true", help=salvage_help)
    qry.add_argument("--remote", metavar="URL", default=None,
                     help="query a running `repro serve` instance instead of "
                          "loading datasets locally; TARGET and SOURCE are "
                          "then dataset *names* loaded on the server")
    qry.add_argument("--stream", action="store_true",
                     help="with --remote: stream confirmed pairs per LOD "
                          "round (NDJSON) instead of one buffered response")

    srv = sub.add_parser("serve", help="run the HTTP query service")
    srv.add_argument("datasets", type=Path, nargs="+",
                     help="dataset directories to load and serve")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=None,
                     help="listen port (default: REPRO_SERVE_PORT env or 8030; "
                          "0 picks a free port)")
    srv.add_argument("--max-inflight", type=int, default=None,
                     help="concurrent executing queries (default: "
                          "REPRO_SERVE_MAX_INFLIGHT env or 4)")
    srv.add_argument("--max-queue", type=int, default=None,
                     help="requests allowed to wait for a slot before 429 "
                          "(default: REPRO_SERVE_MAX_QUEUE env or 16)")
    srv.add_argument("--paradigm", choices=["fr", "fpr"], default="fpr")
    srv.add_argument("--accel", choices=sorted(_ACCEL), default="none")
    srv.add_argument("--query-workers", type=int, default=None,
                     help="threads fanning query targets (default: "
                          "REPRO_QUERY_WORKERS env or serial)")
    srv.add_argument("--query-backend", choices=["thread", "process"], default=None)
    srv.add_argument("--deadline-ms", type=int, default=None,
                     help="server-wide default wall-clock budget per query "
                          "(a spec-level deadline_ms overrides it)")
    srv.add_argument("--salvage", action="store_true", help=salvage_help)

    prof = sub.add_parser("profile", help="profile the LOD schedule for a join")
    prof.add_argument("target", type=Path)
    prof.add_argument("source", type=Path)
    prof.add_argument("--query", choices=["intersection", "within", "nn"], default="nn")
    prof.add_argument("--distance", type=float, default=None)
    prof.add_argument("--sample", type=int, default=16)
    prof.add_argument("--salvage", action="store_true", help=salvage_help)

    obs = sub.add_parser(
        "obs", help="run a traced join and export its telemetry"
    )
    obs.add_argument("target", type=Path)
    obs.add_argument("source", type=Path)
    obs.add_argument("--query", choices=["intersection", "within", "nn", "knn"], default="nn")
    obs.add_argument("--distance", type=float, default=None, help="within threshold")
    obs.add_argument("-k", type=int, default=2, help="neighbors for knn")
    obs.add_argument("--paradigm", choices=["fr", "fpr"], default="fpr")
    obs.add_argument("--accel", choices=sorted(_ACCEL), default="none")
    obs.add_argument("--query-workers", type=int, default=None,
                     help="threads fanning query targets (default: "
                          "REPRO_QUERY_WORKERS env or serial)")
    obs.add_argument("--query-backend", choices=["thread", "process"], default=None,
                     help="parallel backend for --query-workers > 1 (default: "
                          "REPRO_QUERY_BACKEND env or thread)")
    obs.add_argument("--deadline-ms", type=int, default=None,
                     help="wall-clock budget; on expiry the query returns the "
                          "pairs confirmed so far as a sound partial result "
                          "(default: REPRO_DEADLINE_MS env or unbounded)")
    obs.add_argument("--salvage", action="store_true", help=salvage_help)
    obs.add_argument("--trace-json", type=Path, default=None,
                     help="write the span tree as JSON")
    obs.add_argument("--chrome-trace", type=Path, default=None,
                     help="write Chrome trace_event JSON (chrome://tracing)")
    obs.add_argument("--metrics-prom", type=Path, default=None,
                     help="write the metrics registry as Prometheus text")
    obs.add_argument("--metrics-json", type=Path, default=None,
                     help="write the metrics registry as JSON")
    obs.add_argument("--log-json", action="store_true",
                     help="stream structured JSON events to stderr during the run")
    obs.add_argument("--format", choices=["prometheus", "openmetrics"],
                     default="prometheus", dest="metrics_format",
                     help="text exposition format for --metrics-prom")
    obs.add_argument("--top", type=int, default=0, metavar="N",
                     help="print the top-N spans by self time")
    obs.add_argument("--profile", action="store_true",
                     help="run the sampling profiler during the query and "
                          "print its top self-time frames")
    obs.add_argument("--profile-interval-ms", type=float, default=2.0,
                     help="sampling interval for --profile (default 2ms)")
    obs.add_argument("--profile-collapsed", type=Path, default=None,
                     help="write collapsed-stack text for flamegraph.pl / "
                          "speedscope (implies --profile)")
    return parser


def _load_dataset_cli(path: Path, salvage: bool):
    """Load a dataset in the requested mode, reporting any data loss."""
    try:
        dataset = load_dataset(path, mode="salvage" if salvage else "strict")
    except (StorageError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        if isinstance(exc, StorageError) and not salvage:
            print(
                f"hint: retry with --salvage to load what survives of {path}",
                file=sys.stderr,
            )
        raise SystemExit(2) from exc
    report = dataset.load_report
    if report is not None and not report.ok:
        print(f"warning: {path}: {report.summary()}", file=sys.stderr)
    return dataset


def _load_mesh(path: Path):
    from repro.io.off import read_off
    from repro.io.stl import read_stl

    suffix = path.suffix.lower()
    if suffix == ".off":
        return read_off(path)
    if suffix == ".stl":
        return read_stl(path)
    raise SystemExit(f"unsupported mesh format: {path} (use .off or .stl)")


def _cmd_generate(args) -> int:
    from repro.datagen.scenes import make_tissue_scene

    scene = make_tissue_scene(
        n_nuclei=args.nuclei,
        n_vessels=args.vessels,
        seed=args.seed,
        region=args.region,
        nucleus_subdivisions=args.subdivisions,
    )
    encoder = PPVPEncoder()
    for name, meshes in (
        ("nuclei_a", scene.nuclei_a),
        ("nuclei_b", scene.nuclei_b),
        ("vessels", scene.vessels),
    ):
        if not meshes:
            continue
        dataset = Dataset.from_polyhedra(name, meshes, encoder)
        summary = save_dataset(
            dataset, args.output / name, layout=args.storage_backend
        )
        print(f"{name}: {len(dataset)} objects, {summary['total_bytes']} bytes "
              f"[{summary['layout']}] -> {args.output / name}")
    return 0


def _cmd_compress(args) -> int:
    encoder = PPVPEncoder(max_lods=args.max_lods)
    meshes = [_load_mesh(path) for path in args.meshes]
    dataset = Dataset.from_polyhedra(args.name, meshes, encoder)
    summary = save_dataset(
        dataset, args.output, quant_bits=args.quant_bits,
        layout=args.storage_backend,
    )
    flat = sum(m.num_vertices * 24 + m.num_faces * 12 for m in meshes)
    print(f"compressed {len(meshes)} meshes: {flat} flat bytes -> "
          f"{summary['total_bytes']} ({flat / max(summary['total_bytes'], 1):.2f}x)")
    return 0


def _cmd_store(args) -> int:
    status = 0
    for path in args.dataset:
        try:
            summary = migrate_dataset(path, to=args.to)
        except (StorageError, OSError, ValueError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            status = 2
            continue
        if not summary["migrated"]:
            print(f"{path}: already {summary['layout']}, nothing to do")
        else:
            print(f"{path}: migrated to {summary['layout']} "
                  f"({len(summary['files'])} files, "
                  f"{summary['total_bytes']} bytes)")
    return status


def _cmd_inspect(args) -> int:
    dataset = _load_dataset_cli(args.dataset, args.salvage)
    print(f"dataset {dataset.name!r}: {len(dataset)} objects "
          f"[{dataset.storage} storage]")
    report = dataset.load_report
    if report is not None and not report.ok:
        print(f"  load report: {report.summary()}")
    total_faces = dataset.total_faces()
    print(f"  faces at top LOD: {total_faces}")
    for obj_id, obj in enumerate(dataset.objects[:8]):
        blob = serialize_object(obj)
        sizes = serialized_segment_sizes(blob)
        faces = [obj.face_count_at_lod(lod) for lod in obj.lods]
        print(f"  object {obj_id}: lods={list(obj.lods)} faces={faces} "
              f"bytes={sizes['total']}")
    if len(dataset) > 8:
        print(f"  ... and {len(dataset) - 8} more")
    return 0


def _cmd_decode(args) -> int:
    from repro.io.off import write_off
    from repro.io.stl import write_stl

    dataset = _load_dataset_cli(args.dataset, args.salvage)
    if not 0 <= args.object < len(dataset):
        raise SystemExit(f"object must be in [0, {len(dataset) - 1}]")
    obj = dataset.objects[args.object]
    lod = obj.max_lod if args.lod is None else args.lod
    mesh = obj.decode(lod).compacted()
    suffix = args.output.suffix.lower()
    if suffix == ".off":
        write_off(args.output, mesh)
    elif suffix == ".stl":
        write_stl(args.output, mesh)
    else:
        raise SystemExit(f"unsupported output format: {args.output}")
    print(f"object {args.object} @ LOD {lod}: {mesh.num_faces} faces -> {args.output}")
    return 0


def _make_engine(args) -> tuple[ThreeDPro, str, str]:
    engine = ThreeDPro(EngineConfig(paradigm=getattr(args, "paradigm", "fpr"),
                                    accel=_ACCEL[getattr(args, "accel", "none")],
                                    query_workers=getattr(args, "query_workers", None),
                                    query_backend=getattr(args, "query_backend", None),
                                    deadline_ms=getattr(args, "deadline_ms", None)))
    salvage = getattr(args, "salvage", False)
    target = _load_dataset_cli(args.target, salvage)
    source = _load_dataset_cli(args.source, salvage)
    engine.load_dataset(target)
    engine.load_dataset(source)
    return engine, target.name, source.name


def _build_spec(args, target: str, source: str) -> QuerySpec:
    """Translate CLI arguments into one declarative QuerySpec."""
    if args.query == "within" and args.distance is None:
        raise SystemExit("--distance is required for within queries")
    if args.query == "intersection":
        return QuerySpec(kind="intersection", source=source, target=target)
    if args.query == "within":
        return QuerySpec(
            kind="within", source=source, target=target, distance=args.distance
        )
    if args.query == "nn":
        return QuerySpec(kind="nn", source=source, target=target)
    return QuerySpec(kind="knn", source=source, target=target, k=args.k)


def _print_result(result, limit: int) -> None:
    """The shared result rendering for local and remote queries."""
    print(result.stats.summary())
    comp = result.completeness
    if not comp.complete:
        print(
            f"  partial ({comp.reason}): {comp.targets_finished}/"
            f"{comp.targets_total} targets finished, "
            f"{comp.targets_inflight} in flight, "
            f"{comp.targets_unstarted} unstarted; every pair below is "
            f"confirmed (max LOD reached: {comp.max_lod_reached})"
        )
    if result.degraded_targets:
        print(
            f"  degraded: {len(result.degraded_targets)} target answers are "
            f"correct subsets (see stats.degraded_objects)"
        )
    shown = 0
    for tid in sorted(result.pairs):
        if shown >= limit:
            print(f"... and {len(result.pairs) - shown} more targets")
            break
        print(f"  target {tid}: {result.pairs[tid]}")
        shown += 1


def _cmd_query_remote(args) -> int:
    from dataclasses import replace

    from repro.serve.client import RemoteEngine, RemoteError
    from repro.serve.stream import assemble_frames

    # With --remote the positional arguments are dataset *names* already
    # loaded on the server, not local directories.
    spec = _build_spec(args, str(args.target), str(args.source))
    if args.deadline_ms is not None:
        spec = replace(spec, deadline_ms=args.deadline_ms)
    remote = RemoteEngine(args.remote)
    try:
        if args.stream:
            frames = []
            for frame in remote.stream(spec):
                frames.append(frame)
                if frame.get("frame") == "pairs":
                    print(
                        f"  target {frame['target']} @ LOD {frame['lod']}: "
                        f"+{len(frame['matches'])} confirmed"
                    )
            result = assemble_frames(frames)
        else:
            result = remote.execute(spec)
    except (RemoteError, RuntimeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_result(result, args.limit)
    return 0


def _cmd_serve(args) -> int:
    from repro.serve.app import make_server, serve_forever

    engine = ThreeDPro(EngineConfig(
        paradigm=args.paradigm,
        accel=_ACCEL[args.accel],
        query_workers=args.query_workers,
        query_backend=args.query_backend,
        deadline_ms=args.deadline_ms,
    ))
    for path in args.datasets:
        dataset = _load_dataset_cli(path, args.salvage)
        engine.load_dataset(dataset)
        print(f"loaded {dataset.name!r}: {len(dataset)} objects")
    server = make_server(
        engine, host=args.host, port=args.port,
        max_inflight=args.max_inflight, max_queue=args.max_queue,
    )
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port} "
          f"(datasets: {', '.join(engine.dataset_names)})", flush=True)
    serve_forever(server)
    return 0


def _cmd_query(args) -> int:
    if args.remote is not None:
        return _cmd_query_remote(args)
    if args.stream:
        raise SystemExit("--stream requires --remote (local queries buffer)")
    engine, target, source = _make_engine(args)
    result = engine.execute(_build_spec(args, target, source))
    _print_result(result, args.limit)
    return 0


def _cmd_profile(args) -> int:
    engine = ThreeDPro(EngineConfig(paradigm="fpr"))
    target = _load_dataset_cli(args.target, args.salvage)
    source = _load_dataset_cli(args.source, args.salvage)
    engine.load_dataset(target)
    engine.load_dataset(source)
    profile = profile_pruning(
        engine, target.name, source.name, args.query,
        sample_size=args.sample, distance=args.distance,
    )
    print(f"query={args.query} r={profile.face_growth:.2f}")
    for lod in profile.lods:
        print(f"  LOD {lod}: evaluated={profile.evaluated.get(lod, 0)} "
              f"pruned={profile.pruned.get(lod, 0)} "
              f"fraction={profile.pruned_fraction(lod):.2f} "
              f"break-even={profile.break_even_at(lod):.2f}")
    print(f"chosen lod_list: {choose_lod_list(profile)}")
    return 0


def _cmd_obs(args) -> int:
    """Run one traced join and dump its telemetry artifacts."""
    import json
    import logging

    from repro.obs.logs import configure_json_logging
    from repro.obs.metrics import REGISTRY as metrics
    from repro.obs.trace import phase_totals, self_time_table

    handler = None
    if args.log_json:
        handler = configure_json_logging(sys.stderr, level=logging.INFO)
    profiling = args.profile or args.profile_collapsed is not None
    try:
        # One query per CLI process: the process-wide registry is the
        # export, so module-level publishers (salvage loading, fault
        # injection) land in the same dump as the engine's series.
        engine = ThreeDPro(
            EngineConfig(
                paradigm=args.paradigm,
                accel=_ACCEL[args.accel],
                tracing=True,
                metrics=metrics,
                query_workers=args.query_workers,
                query_backend=args.query_backend,
                deadline_ms=args.deadline_ms,
                profiling=profiling,
                profile_interval_ms=args.profile_interval_ms,
            )
        )
        target = _load_dataset_cli(args.target, args.salvage)
        source = _load_dataset_cli(args.source, args.salvage)
        engine.load_dataset(target)
        engine.load_dataset(source)
        result = engine.execute(_build_spec(args, target.name, source.name))

        print(result.stats.summary())
        if not result.completeness.complete:
            comp = result.completeness
            print(
                f"partial ({comp.reason}): {comp.targets_finished}/"
                f"{comp.targets_total} targets finished"
            )
        print(f"funnel: {result.funnel.summary()}")
        headroom = result.completeness.deadline_headroom_ratio
        if headroom is not None:
            print(f"deadline headroom: {headroom:.1%} of budget left")
        totals = phase_totals(engine.tracer)
        print(
            "trace totals: "
            + " ".join(f"{name}={seconds:.3f}s" for name, seconds in totals.items())
        )
        spans = sum(1 for _ in engine.tracer.walk())
        print(f"trace: {spans} spans under {len(engine.tracer.roots)} root(s)")
        if args.top > 0:
            print(f"top {args.top} spans by self time:")
            for row in self_time_table(engine.tracer.roots, args.top):
                print(
                    f"  {row['self_seconds']:>8.4f}s self  "
                    f"{row['total_seconds']:>8.4f}s total  "
                    f"{row['count']:>5}x  {row['name']}"
                )
        if profiling:
            profile = engine.take_profile()
            print(f"profile: {profile.total_samples} samples "
                  f"@ {engine.config.profile_interval_ms}ms")
            print(profile.format_table(args.top or 10))
            if args.profile_collapsed is not None:
                args.profile_collapsed.write_text(profile.to_collapsed())
                print(f"collapsed stacks -> {args.profile_collapsed} "
                      f"(feed to flamegraph.pl or speedscope.app)")
        if args.trace_json is not None:
            args.trace_json.write_text(engine.tracer.to_json())
            print(f"span tree -> {args.trace_json}")
        if args.chrome_trace is not None:
            args.chrome_trace.write_text(
                json.dumps(engine.tracer.to_chrome_trace(), indent=2)
            )
            print(f"chrome trace -> {args.chrome_trace} (load in chrome://tracing)")
        if args.metrics_prom is not None:
            if args.metrics_format == "openmetrics":
                args.metrics_prom.write_text(metrics.to_openmetrics())
            else:
                args.metrics_prom.write_text(metrics.to_prometheus())
            print(f"{args.metrics_format} metrics -> {args.metrics_prom}")
        if args.metrics_json is not None:
            args.metrics_json.write_text(json.dumps(metrics.to_dict(), indent=2))
            print(f"metrics json -> {args.metrics_json}")
        return 0
    finally:
        if handler is not None:
            logging.getLogger("repro").removeHandler(handler)


_COMMANDS = {
    "generate": _cmd_generate,
    "compress": _cmd_compress,
    "store": _cmd_store,
    "inspect": _cmd_inspect,
    "decode": _cmd_decode,
    "query": _cmd_query,
    "serve": _cmd_serve,
    "profile": _cmd_profile,
    "obs": _cmd_obs,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
