"""In-memory datasets of compressed objects, with disk persistence.

A :class:`Dataset` is the unit the query engine loads: a named list of
compressed objects, their MBBs (read straight off the compressed
headers), and the cuboid grid that batches them. ``save_dataset`` /
``load_dataset`` persist a dataset in one of two layouts, selected
through the shared :func:`~repro.core.config.resolve_setting` chain
(``REPRO_STORAGE_BACKEND``):

* ``legacy`` — one v2 cuboid container file per non-empty cuboid
  (:mod:`repro.storage.fileformat`), loaded eagerly;
* ``shard`` — one v3 memory-mapped shard file per non-empty cuboid
  (:mod:`repro.storage.shardfile`) whose index carries the planning
  metadata (AABB, LOD ladder, per-LOD face counts). Loading is *lazy*:
  objects come back as :class:`ShardBackedObject` proxies that answer
  every pre-decode question from the index and materialize their blob —
  a zero-copy ``memoryview`` over the shared mapping — only when a
  query actually decodes them. All readers of one shard share physical
  pages through the OS page cache, which is what lets every process
  worker open the same dataset for ~zero private memory.

Loading auto-detects the on-disk format (v1/v2 containers and v3
shards all load); :func:`migrate_dataset` converts a directory between
layouts in place, preserving blobs, ids, and the grid byte-for-byte.

Loading runs in one of two modes:

* ``strict`` (default) — any corruption or inconsistency raises; the
  dataset you get is exactly the dataset that was saved. For shards the
  index CRC is verified at open and every blob CRC in one eager scan
  (``verify="lazy"`` defers the per-blob check to first access — the
  process-worker path that must fault in only the pages its chunk
  touches); deserialization itself stays deferred either way.
* ``salvage`` — unreadable files are quarantined, failing blobs are
  skipped or partially recovered (their intact lower LODs kept, see
  :func:`~repro.compression.serialize.salvage_object_blob`), surviving
  objects are renumbered contiguously, and the whole outcome is
  reported in a structured :class:`LoadReport` — the *same* report
  structure and per-blob CRC granularity for both layouts.
"""

from __future__ import annotations

import json
import logging
import pickle
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.compression.ppvp import CompressedObject, PPVPEncoder
from repro.compression.serialize import (
    deserialize_object,
    salvage_object_blob,
    serialize_object,
)
from repro.core.errors import (
    BlobChecksumError,
    CuboidFormatError,
    DatasetFormatError,
)
from repro.geometry.aabb import AABB
from repro.obs import metrics as obs_metrics
from repro.obs.logs import get_logger, log_event
from repro.storage.cuboid import CuboidGrid
from repro.storage.fileformat import (
    read_cuboid_file,
    salvage_cuboid_file,
    write_cuboid_file,
)
from repro.storage.shardfile import (
    ShardReader,
    salvage_shard_file,
    write_shard_file,
)

__all__ = [
    "Dataset",
    "LoadReport",
    "ShardBackedObject",
    "ShardSet",
    "save_dataset",
    "spill_dataset",
    "load_dataset",
    "migrate_dataset",
]

_MANIFEST = "manifest.json"
_MODES = ("strict", "salvage")
_LAYOUTS = ("shard", "legacy")

_LOG = get_logger("storage.store")


def _publish_load_report(report: "LoadReport") -> None:
    """Mirror a salvage outcome into metrics + the structured event log."""
    registry = obs_metrics.REGISTRY
    registry.counter(
        "repro_salvage_loads_total", "Datasets loaded in salvage mode"
    ).inc()
    if report.quarantined_files:
        registry.counter(
            "repro_salvage_quarantined_files_total", "Container files quarantined"
        ).inc(len(report.quarantined_files))
    if report.skipped_blobs:
        registry.counter(
            "repro_salvage_lost_objects_total", "Objects lost to unsalvageable blobs"
        ).inc(len(report.skipped_blobs))
    if report.degraded_objects:
        registry.counter(
            "repro_salvage_recovered_objects_total",
            "Objects partially recovered (lower LODs kept)",
        ).inc(len(report.degraded_objects))
    if not report.ok:
        log_event(
            _LOG, "salvage_load", level=logging.WARNING,
            directory=report.directory,
            objects_loaded=report.objects_loaded,
            objects_expected=report.objects_expected,
            quarantined_files=len(report.quarantined_files),
            skipped_blobs=len(report.skipped_blobs),
            degraded_objects=len(report.degraded_objects),
            container_faults=len(report.container_faults),
        )


@dataclass
class LoadReport:
    """Structured outcome of one :func:`load_dataset` call.

    ``skipped_blobs`` and ``degraded_objects`` carry
    ``(object_id, filename, reason)`` triples; skipped ids are the
    *original* (manifest) ids, degraded ids the *final* (possibly
    renumbered) ids. ``id_map`` maps original ids to final ids when
    salvage renumbering applied (``None`` in strict mode).
    """

    mode: str
    directory: str
    objects_expected: int = 0
    objects_loaded: int = 0
    files_total: int = 0
    files_loaded: int = 0
    quarantined_files: list[tuple[str, str]] = field(default_factory=list)
    skipped_blobs: list[tuple[int, str, str]] = field(default_factory=list)
    degraded_objects: list[tuple[int, str, str]] = field(default_factory=list)
    container_faults: list[str] = field(default_factory=list)
    id_map: dict[int, int] | None = None

    @property
    def ok(self) -> bool:
        """True when nothing was lost, degraded, or integrity-suspect."""
        return (
            not self.quarantined_files
            and not self.skipped_blobs
            and not self.degraded_objects
            and not self.container_faults
            and self.objects_loaded == self.objects_expected
        )

    def summary(self) -> str:
        """One-line human-readable digest."""
        parts = [
            f"loaded {self.objects_loaded}/{self.objects_expected} objects "
            f"from {self.files_loaded}/{self.files_total} files [{self.mode}]"
        ]
        if self.quarantined_files:
            parts.append(f"{len(self.quarantined_files)} files quarantined")
        if self.skipped_blobs:
            parts.append(f"{len(self.skipped_blobs)} blobs skipped")
        if self.degraded_objects:
            parts.append(f"{len(self.degraded_objects)} objects degraded")
        if self.container_faults:
            parts.append(f"{len(self.container_faults)} container checksum faults")
        return ", ".join(parts)

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "directory": self.directory,
            "objects_expected": self.objects_expected,
            "objects_loaded": self.objects_loaded,
            "files_total": self.files_total,
            "files_loaded": self.files_loaded,
            "quarantined_files": list(self.quarantined_files),
            "skipped_blobs": list(self.skipped_blobs),
            "degraded_objects": list(self.degraded_objects),
            "container_faults": list(self.container_faults),
            "id_map": dict(self.id_map) if self.id_map is not None else None,
            "ok": self.ok,
        }


# -- lazy shard access ---------------------------------------------------------


class ShardSet:
    """The open shard handles behind one lazily-loaded dataset.

    Readers are opened on demand and cached; materialization (blob →
    :class:`CompressedObject`) is serialized by one lock so concurrent
    thread-backend chunks deserialize each object at most once. The
    blob's ``memoryview`` is released as soon as the bytes are copied
    out, so no long-lived reference ever pins the mapping (readers stay
    closeable) and decoded geometry owns its own memory.

    Pickling ships only the directory path and codec — the far side
    reopens its own readers (and its own mmaps) lazily.
    """

    def __init__(self, directory, codec: str = "3dpr"):
        self.directory = str(directory)
        self.codec = codec
        self._readers: dict[str, ShardReader] = {}
        self._lock = threading.Lock()

    def reader(self, filename: str) -> ShardReader:
        with self._lock:
            reader = self._readers.get(filename)
            if reader is None or reader.closed:
                reader = ShardReader(Path(self.directory) / filename)
                self._readers[filename] = reader
            return reader

    def materialize(self, filename: str, object_id: int) -> CompressedObject:
        """Deserialize one object from its shard (CRC-verified slice)."""
        reader = self.reader(filename)
        with self._lock:
            view = reader.blob(object_id)
            try:
                blob = bytes(view)
            finally:
                view.release()
        if self.codec == "pickle":
            return pickle.loads(blob)
        return deserialize_object(blob)

    def close(self) -> None:
        """Close every open reader (raises if exported slices are alive)."""
        with self._lock:
            for reader in self._readers.values():
                if not reader.closed:
                    reader.close()
            self._readers.clear()

    def __getstate__(self) -> dict:
        return {"directory": self.directory, "codec": self.codec}

    def __setstate__(self, state) -> None:
        self.directory = state["directory"]
        self.codec = state["codec"]
        self._readers = {}
        self._lock = threading.Lock()


def _unwrap(obj):
    """Pickle helper for :class:`ShardBackedObject.__reduce__`."""
    return obj


class ShardBackedObject:
    """A compressed object that has not left its shard yet.

    Answers the planning questions (``aabb``, ``max_lod``, ``lods``,
    ``face_count_at_lod``) straight from the shard index — exactly the
    attributes engine load, R-tree build, LOD scheduling, and MBB
    filtering touch — and delegates everything else (``decode``,
    ``lod_table``, ``positions``, ...) to the real
    :class:`CompressedObject`, deserialized on first touch. Pickling
    materializes, so a proxy never outlives its mapping across a
    process boundary.
    """

    def __init__(self, shards: ShardSet, filename: str, entry):
        self.__dict__.update(
            _shards=shards,
            _filename=filename,
            _entry=entry,
            aabb=AABB(entry.aabb_low, entry.aabb_high),
            max_lod=entry.max_lod,
            lods=range(entry.max_lod + 1),
        )

    @property
    def materialized(self) -> bool:
        return "_real" in self.__dict__

    def face_count_at_lod(self, lod: int) -> int:
        entry = self._entry
        if lod < 0 or lod > entry.max_lod:
            raise ValueError(f"lod must be in [0, {entry.max_lod}], got {lod}")
        return entry.face_counts[lod]

    def _materialize(self) -> CompressedObject:
        real = self.__dict__.get("_real")
        if real is None:
            real = self._shards.materialize(self._filename, self._entry.object_id)
            self.__dict__["_real"] = real
        return real

    def __getattr__(self, name):
        d = object.__getattribute__(self, "__dict__")
        if "_entry" not in d:  # half-built instance: don't recurse
            raise AttributeError(name)
        value = getattr(self._materialize(), name)
        if name == "lod_table":
            # Mirror the compiled table into the proxy's __dict__ so the
            # decode provider's "already compiled?" check (and its
            # table-build metrics) behave exactly as on a real object.
            d["lod_table"] = value
        return value

    def __reduce__(self):
        return (_unwrap, (self._materialize(),))

    def __repr__(self) -> str:
        state = "materialized" if self.materialized else "lazy"
        return (
            f"ShardBackedObject(object_id={self._entry.object_id}, "
            f"shard={self._filename!r}, {state})"
        )


@dataclass
class Dataset:
    """A named collection of compressed 3D objects."""

    name: str
    objects: list[CompressedObject]
    grid_shape: tuple[int, int, int] = (4, 4, 4)
    _grid: CuboidGrid | None = field(default=None, repr=False)
    # Object ids whose geometry was only partially recovered (salvage
    # loading); the engine marks query answers touching them as degraded.
    degraded_ids: frozenset = field(default_factory=frozenset, repr=False)
    load_report: LoadReport | None = field(default=None, repr=False, compare=False)
    # Directory this dataset was loaded from (set by load_dataset, None
    # for in-memory datasets). Worker processes of the process query
    # backend reopen the dataset from here — legacy stores always in
    # salvage mode (deterministic either way), shard stores lazily in
    # strict mode when the parent's load was clean.
    source_dir: str | None = field(default=None, repr=False, compare=False)
    # The open shard handles when this dataset was loaded from a v3
    # store (None for legacy stores and in-memory datasets). Pickles as
    # a path handle; readers reopen on the far side.
    shard_source: ShardSet | None = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_polyhedra(
        cls,
        name: str,
        polyhedra,
        encoder: PPVPEncoder | None = None,
        grid_shape: tuple[int, int, int] = (4, 4, 4),
    ) -> "Dataset":
        """Compress raw polyhedra into a dataset (the ingest path)."""
        encoder = encoder or PPVPEncoder()
        return cls(name, [encoder.encode(p) for p in polyhedra], grid_shape)

    def __len__(self) -> int:
        return len(self.objects)

    @property
    def boxes(self) -> list[AABB]:
        return [obj.aabb for obj in self.objects]

    @property
    def storage(self) -> str:
        """Where the objects live: ``shard``, ``legacy``, or ``memory``."""
        if self.shard_source is not None:
            return "shard"
        if self.source_dir is not None:
            return "legacy"
        return "memory"

    @property
    def grid(self) -> CuboidGrid:
        if self._grid is None:
            if not self.objects:
                raise ValueError(f"dataset {self.name!r} is empty: no grid")
            self._grid = CuboidGrid.covering(self.boxes, self.grid_shape)
        return self._grid

    def cuboid_batches(self) -> list[list[int]]:
        """Object ids grouped by cuboid, in cuboid order (query batching)."""
        if not self.objects:
            return []
        return self.grid.ordered_assignment(self.boxes)

    def total_faces(self, lod: int | None = None) -> int:
        """Summed face count at ``lod`` (highest LOD when None)."""
        return sum(
            obj.face_count_at_lod(obj.max_lod if lod is None else min(lod, obj.max_lod))
            for obj in self.objects
        )

    def materialized_count(self) -> int:
        """How many objects are resident (all of them for legacy loads)."""
        return sum(
            1
            for obj in self.objects
            if not isinstance(obj, ShardBackedObject) or obj.materialized
        )

    def precompile_lod_tables(self) -> int:
        """Compile every object's columnar decode table now; returns count built.

        Decoders compile tables lazily on first touch (including objects
        deserialized in salvage mode, whose valid round prefix compiles
        to a truncated table). Bulk loaders can call this to front-load
        that cost at load time — e.g. before the process backend spills
        an in-memory dataset, so workers receive compiled tables. On a
        lazily-loaded shard dataset this materializes every object.
        """
        built = 0
        for obj in self.objects:
            if "lod_table" not in obj.__dict__:
                obj.lod_table  # noqa: B018 - cached_property build for effect
                built += 1
        return built


# -- saving --------------------------------------------------------------------


def _object_meta(obj) -> tuple:
    """The index-resident planning metadata for one object."""
    box = obj.aabb
    return (
        tuple(float(c) for c in box.low),
        tuple(float(c) for c in box.high),
        obj.max_lod,
        tuple(obj.face_count_at_lod(lod) for lod in obj.lods),
    )


def save_dataset(
    dataset: Dataset,
    directory,
    quant_bits: int = 16,
    backend: str = "huffman",
    fault_injector=None,
    layout: str | None = None,
) -> dict:
    """Persist a dataset: one cuboid/shard file per non-empty cuboid + manifest.

    ``layout`` picks the on-disk format (``"shard"`` or ``"legacy"``)
    and resolves through the shared setting chain when ``None``
    (``REPRO_STORAGE_BACKEND``, default legacy). ``fault_injector``
    (a :class:`repro.faults.FaultInjector`) may flip bits in serialized
    blobs before they hit disk — the deterministic corruption source the
    chaos tests load back in salvage mode; corruption keys are
    ``"{cuboid}:{object}"`` under either layout.

    Returns a summary dict with total bytes and per-file sizes.
    """
    from repro.core.config import resolve_setting

    layout = resolve_setting("storage_backend", override=layout)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    batches = dataset.grid.assign(dataset.boxes) if len(dataset) else {}

    files = {}
    shards = {}
    total = 0
    for cuboid_id in sorted(batches):
        object_ids = batches[cuboid_id]
        objects = [dataset.objects[i] for i in object_ids]
        blobs = [
            serialize_object(obj, quant_bits=quant_bits, backend=backend)
            for obj in objects
        ]
        if fault_injector is not None:
            blobs = [
                fault_injector.corrupt_blob(blob, key=f"{cuboid_id}:{obj_id}")
                for obj_id, blob in zip(object_ids, blobs)
            ]
        if layout == "shard":
            filename = f"shard_{cuboid_id:06d}.3dps"
            metas = [_object_meta(obj) for obj in objects]
            size = write_shard_file(directory / filename, blobs, object_ids, metas)
            shards[filename] = {"cuboid": cuboid_id, "objects": list(object_ids)}
        else:
            filename = f"cuboid_{cuboid_id:06d}.3dpc"
            size = write_cuboid_file(directory / filename, blobs, object_ids)
        files[filename] = size
        total += size

    manifest = {
        "name": dataset.name,
        "num_objects": len(dataset),
        "grid_shape": list(dataset.grid_shape),
        "grid_low": list(dataset.grid.bounds.low) if len(dataset) else [0.0, 0.0, 0.0],
        "grid_high": list(dataset.grid.bounds.high) if len(dataset) else [1.0, 1.0, 1.0],
        "files": sorted(files),
        "quant_bits": quant_bits,
        "backend": backend,
    }
    if layout == "shard":
        manifest["format_version"] = 3
        manifest["codec"] = "3dpr"
        manifest["shards"] = shards
        manifest["objects"] = {
            str(obj_id): meta["cuboid"]
            for filename, meta in sorted(shards.items())
            for obj_id in meta["objects"]
        }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return {"total_bytes": total, "files": files, "layout": layout}


def spill_dataset(dataset: Dataset, directory) -> dict:
    """Spill an in-memory dataset to a pickle-codec v3 shard store.

    The process backend's shard transport for datasets that never
    touched disk: objects are pickled *exactly* (no re-serialization,
    which would re-quantize positions and perturb results) into one
    shard per cuboid, and the manifest carries ``degraded_ids`` so
    salvage-born datasets keep their degraded marks. Workers
    strict-load the directory lazily and unpickle only the objects
    their chunk actually decodes.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    batches = dataset.grid.assign(dataset.boxes) if len(dataset) else {}

    files = {}
    shards = {}
    total = 0
    for cuboid_id in sorted(batches):
        object_ids = batches[cuboid_id]
        objects = [dataset.objects[i] for i in object_ids]
        blobs = [
            pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL) for obj in objects
        ]
        metas = [_object_meta(obj) for obj in objects]
        filename = f"shard_{cuboid_id:06d}.3dps"
        size = write_shard_file(
            directory / filename, blobs, object_ids, metas, codec="pickle"
        )
        shards[filename] = {"cuboid": cuboid_id, "objects": list(object_ids)}
        files[filename] = size
        total += size

    manifest = {
        "format_version": 3,
        "codec": "pickle",
        "name": dataset.name,
        "num_objects": len(dataset),
        "grid_shape": list(dataset.grid_shape),
        "grid_low": list(dataset.grid.bounds.low) if len(dataset) else [0.0, 0.0, 0.0],
        "grid_high": list(dataset.grid.bounds.high) if len(dataset) else [1.0, 1.0, 1.0],
        "files": sorted(files),
        "shards": shards,
        "objects": {
            str(obj_id): meta["cuboid"]
            for filename, meta in sorted(shards.items())
            for obj_id in meta["objects"]
        },
        "degraded_ids": sorted(dataset.degraded_ids),
        "quant_bits": None,
        "backend": "pickle",
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return {"total_bytes": total, "files": files, "layout": "shard"}


# -- loading -------------------------------------------------------------------


def load_dataset(directory, mode: str = "strict", verify: str = "eager") -> Dataset:
    """Load a dataset saved by :func:`save_dataset` back into memory.

    The on-disk format is auto-detected: v1/v2 cuboid containers load
    eagerly, v3 shard stores load lazily (objects materialize from the
    shared mapping on first decode). ``mode="strict"`` raises on any
    corruption or inconsistency; ``mode="salvage"`` loads whatever
    survives and reports the rest. ``verify`` applies to strict shard
    loads only: ``"eager"`` (default) CRC-scans every blob at load,
    ``"lazy"`` defers each blob's CRC check to its first access so a
    worker faults in only the shards its chunk touches. Either way the
    returned dataset carries a :class:`LoadReport` on its
    ``load_report`` attribute.
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    if verify not in ("eager", "lazy"):
        raise ValueError(f"verify must be 'eager' or 'lazy', got {verify!r}")
    directory = Path(directory)
    manifest = json.loads((directory / _MANIFEST).read_text())
    report = LoadReport(
        mode=mode,
        directory=str(directory),
        objects_expected=manifest["num_objects"],
        files_total=len(manifest["files"]),
    )
    version = int(manifest.get("format_version", 2))
    if version >= 3:
        return _load_shard_dataset(directory, manifest, mode, verify, report)

    if mode == "strict":
        slots: dict[int, CompressedObject] = {}
        for filename in manifest["files"]:
            for obj_id, blob in read_cuboid_file(directory / filename):
                slots[obj_id] = deserialize_object(blob)
            report.files_loaded += 1
        objects = _check_strict_slots(slots, manifest)
        degraded_ids: frozenset = frozenset()
    else:
        objects, degraded_ids = _load_salvage(
            directory, manifest, report, salvage_cuboid_file, deserialize_object
        )

    report.objects_loaded = len(objects)
    if mode == "salvage":
        _publish_load_report(report)
    dataset = Dataset(
        manifest["name"],
        objects,
        grid_shape=tuple(manifest["grid_shape"]),
        degraded_ids=degraded_ids,
        load_report=report,
        source_dir=str(directory),
    )
    dataset._grid = _manifest_grid(manifest)
    return dataset


def _manifest_grid(manifest) -> CuboidGrid:
    return CuboidGrid(
        AABB(tuple(manifest["grid_low"]), tuple(manifest["grid_high"])),
        tuple(manifest["grid_shape"]),
    )


def _check_strict_slots(slots, manifest) -> list:
    if len(slots) != manifest["num_objects"]:
        raise DatasetFormatError(
            f"manifest promises {manifest['num_objects']} objects, "
            f"found {len(slots)}"
        )
    missing = sorted(set(range(len(slots))) - set(slots))
    if missing:
        raise DatasetFormatError(
            f"object ids are not contiguous: ids {sorted(slots)[:8]}... "
            f"leave gaps at {missing[:8]} (of {len(missing)}); "
            f"re-save the dataset or load with mode='salvage' to renumber"
        )
    return [slots[i] for i in range(len(slots))]


def _load_shard_dataset(directory, manifest, mode, verify, report) -> Dataset:
    codec = manifest.get("codec", "3dpr")
    shards = ShardSet(directory, codec=codec)
    if mode == "strict":
        slots: dict[int, object] = {}
        for filename in manifest["files"]:
            reader = shards.reader(filename)
            if verify == "eager":
                faults = reader.verify_all()
                if faults:
                    first = faults[0]
                    raise BlobChecksumError(
                        f"{directory / filename}: {first.reason} for object "
                        f"{first.object_id}"
                    )
            for obj_id, entry in reader.entries.items():
                slots[obj_id] = ShardBackedObject(shards, filename, entry)
            report.files_loaded += 1
        objects = _check_strict_slots(slots, manifest)
        degraded_ids = frozenset(manifest.get("degraded_ids", ()))
    else:
        decode = (
            pickle.loads if codec == "pickle" else deserialize_object
        )
        objects, degraded_ids = _load_salvage(
            directory, manifest, report, salvage_shard_file, decode
        )

    report.objects_loaded = len(objects)
    if mode == "salvage":
        _publish_load_report(report)
    dataset = Dataset(
        manifest["name"],
        objects,
        grid_shape=tuple(manifest["grid_shape"]),
        degraded_ids=degraded_ids,
        load_report=report,
        source_dir=str(directory),
        shard_source=shards,
    )
    dataset._grid = _manifest_grid(manifest)
    return dataset


def _load_salvage(directory, manifest, report, salvage_file, decode) -> tuple:
    """The shared salvage loop: one code path for v2 containers and v3
    shards — ``salvage_file`` returns the same ``(pairs, faults,
    container_ok)`` triple for either, so the report structure and the
    per-blob CRC granularity are identical across layouts."""
    slots: dict[int, CompressedObject] = {}
    degraded_original: dict[int, tuple[str, str]] = {}
    for filename in manifest["files"]:
        path = directory / filename
        try:
            pairs, faults, container_ok = salvage_file(path)
        except (CuboidFormatError, OSError, EOFError, ValueError) as exc:
            report.quarantined_files.append((filename, str(exc)))
            continue
        report.files_loaded += 1
        if not container_ok:
            report.container_faults.append(filename)
        for obj_id, blob in pairs:
            try:
                slots[obj_id] = decode(blob)
            except Exception as exc:
                _salvage_blob(
                    slots, degraded_original, report, obj_id, blob, filename, exc
                )
        for fault in faults:
            if fault.object_id is None or fault.blob is None:
                report.skipped_blobs.append(
                    (fault.object_id if fault.object_id is not None else -1,
                     filename, fault.reason)
                )
                continue
            _salvage_blob(
                slots, degraded_original, report,
                fault.object_id, fault.blob, filename, fault.reason,
            )
    ordered = sorted(slots)
    report.id_map = {orig: new for new, orig in enumerate(ordered)}
    objects = [slots[orig] for orig in ordered]
    degraded_ids = frozenset(
        report.id_map[orig] for orig in degraded_original if orig in report.id_map
    )
    for orig, (filename, detail) in sorted(degraded_original.items()):
        report.degraded_objects.append((report.id_map[orig], filename, detail))
    return objects, degraded_ids


def _salvage_blob(slots, degraded_original, report, obj_id, blob, filename, cause) -> None:
    """Attempt object-level salvage of a failing blob (salvage mode only)."""
    try:
        obj, dropped = salvage_object_blob(blob)
    except Exception:
        report.skipped_blobs.append((obj_id, filename, f"unsalvageable: {cause}"))
        return
    slots[obj_id] = obj
    detail = (
        f"recovered base + {obj.num_rounds} of {obj.num_rounds + dropped} rounds "
        f"(max LOD {obj.max_lod}); cause: {cause}"
    )
    degraded_original[obj_id] = (filename, detail)


# -- migration -----------------------------------------------------------------


def migrate_dataset(directory, to: str = "shard") -> dict:
    """Convert a dataset directory between layouts, in place.

    Blobs are carried over *byte-for-byte* (shard-bound blobs are
    deserialized once to compute the index metadata, but what lands in
    the new files is the original bytes), object ids and the grid are
    copied from the old manifest, and the old data files are deleted
    only after the new files and manifest are fully written. Strict by
    design: a corrupt store refuses to migrate (salvage it into a clean
    save first). Returns a summary dict; ``migrated`` is False when the
    directory is already in the requested layout.
    """
    if to not in _LAYOUTS:
        raise ValueError(f"to must be one of {_LAYOUTS}, got {to!r}")
    directory = Path(directory)
    manifest = json.loads((directory / _MANIFEST).read_text())
    version = int(manifest.get("format_version", 2))
    current = "shard" if version >= 3 else "legacy"
    if current == to:
        return {"migrated": False, "layout": to, "files": list(manifest["files"])}

    old_files = list(manifest["files"])
    files = {}
    total = 0
    if to == "shard":
        shards = {}
        for filename in old_files:
            cuboid_id = int(Path(filename).stem.split("_")[-1])
            pairs = read_cuboid_file(directory / filename)
            object_ids = [obj_id for obj_id, _ in pairs]
            blobs = [blob for _, blob in pairs]
            metas = [_object_meta(deserialize_object(blob)) for blob in blobs]
            shard_name = f"shard_{cuboid_id:06d}.3dps"
            size = write_shard_file(directory / shard_name, blobs, object_ids, metas)
            shards[shard_name] = {"cuboid": cuboid_id, "objects": object_ids}
            files[shard_name] = size
            total += size
        manifest["format_version"] = 3
        manifest["codec"] = "3dpr"
        manifest["shards"] = shards
        manifest["objects"] = {
            str(obj_id): meta["cuboid"]
            for name, meta in sorted(shards.items())
            for obj_id in meta["objects"]
        }
    else:
        if manifest.get("codec", "3dpr") != "3dpr":
            raise DatasetFormatError(
                f"{directory}: only 3dpr-codec shard stores can migrate to "
                f"the legacy layout (this store is "
                f"{manifest.get('codec')!r}-coded)"
            )
        for filename in old_files:
            cuboid_id = manifest["shards"][filename]["cuboid"]
            reader = ShardReader(directory / filename)
            try:
                object_ids = reader.object_ids()
                blobs = []
                for obj_id in object_ids:
                    view = reader.blob(obj_id)
                    try:
                        blobs.append(bytes(view))
                    finally:
                        view.release()
            finally:
                reader.close()
            legacy_name = f"cuboid_{cuboid_id:06d}.3dpc"
            size = write_cuboid_file(directory / legacy_name, blobs, object_ids)
            files[legacy_name] = size
            total += size
        for key in ("format_version", "codec", "shards", "objects", "degraded_ids"):
            manifest.pop(key, None)

    manifest["files"] = sorted(files)
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    for filename in old_files:
        (directory / filename).unlink(missing_ok=True)
    log_event(
        _LOG, "store_migrated", directory=str(directory), to=to,
        files=len(files), total_bytes=total,
    )
    return {"migrated": True, "layout": to, "files": files, "total_bytes": total}
