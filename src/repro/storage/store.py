"""In-memory datasets of compressed objects, with disk persistence.

A :class:`Dataset` is the unit the query engine loads: a named list of
compressed objects, their MBBs (read straight off the compressed
headers), and the cuboid grid that batches them. ``save_dataset`` /
``load_dataset`` persist a dataset as one cuboid container file per
non-empty cuboid plus a tiny manifest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.compression.ppvp import CompressedObject, PPVPEncoder
from repro.compression.serialize import deserialize_object, serialize_object
from repro.geometry.aabb import AABB
from repro.storage.cuboid import CuboidGrid
from repro.storage.fileformat import read_cuboid_file, write_cuboid_file

__all__ = ["Dataset", "save_dataset", "load_dataset"]

_MANIFEST = "manifest.json"


@dataclass
class Dataset:
    """A named collection of compressed 3D objects."""

    name: str
    objects: list[CompressedObject]
    grid_shape: tuple[int, int, int] = (4, 4, 4)
    _grid: CuboidGrid | None = field(default=None, repr=False)

    @classmethod
    def from_polyhedra(
        cls,
        name: str,
        polyhedra,
        encoder: PPVPEncoder | None = None,
        grid_shape: tuple[int, int, int] = (4, 4, 4),
    ) -> "Dataset":
        """Compress raw polyhedra into a dataset (the ingest path)."""
        encoder = encoder or PPVPEncoder()
        return cls(name, [encoder.encode(p) for p in polyhedra], grid_shape)

    def __len__(self) -> int:
        return len(self.objects)

    @property
    def boxes(self) -> list[AABB]:
        return [obj.aabb for obj in self.objects]

    @property
    def grid(self) -> CuboidGrid:
        if self._grid is None:
            if not self.objects:
                raise ValueError(f"dataset {self.name!r} is empty: no grid")
            self._grid = CuboidGrid.covering(self.boxes, self.grid_shape)
        return self._grid

    def cuboid_batches(self) -> list[list[int]]:
        """Object ids grouped by cuboid, in cuboid order (query batching)."""
        if not self.objects:
            return []
        return self.grid.ordered_assignment(self.boxes)

    def total_faces(self, lod: int | None = None) -> int:
        """Summed face count at ``lod`` (highest LOD when None)."""
        return sum(
            obj.face_count_at_lod(obj.max_lod if lod is None else min(lod, obj.max_lod))
            for obj in self.objects
        )


def save_dataset(
    dataset: Dataset,
    directory,
    quant_bits: int = 16,
    backend: str = "huffman",
) -> dict:
    """Persist a dataset: one cuboid file per non-empty cuboid + manifest.

    Returns a summary dict with total bytes and per-cuboid sizes.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    batches = dataset.grid.assign(dataset.boxes) if len(dataset) else {}

    files = {}
    total = 0
    for cuboid_id in sorted(batches):
        object_ids = batches[cuboid_id]
        blobs = [
            serialize_object(dataset.objects[i], quant_bits=quant_bits, backend=backend)
            for i in object_ids
        ]
        filename = f"cuboid_{cuboid_id:06d}.3dpc"
        size = write_cuboid_file(directory / filename, blobs, object_ids)
        files[filename] = size
        total += size

    manifest = {
        "name": dataset.name,
        "num_objects": len(dataset),
        "grid_shape": list(dataset.grid_shape),
        "grid_low": list(dataset.grid.bounds.low) if len(dataset) else [0.0, 0.0, 0.0],
        "grid_high": list(dataset.grid.bounds.high) if len(dataset) else [1.0, 1.0, 1.0],
        "files": sorted(files),
        "quant_bits": quant_bits,
        "backend": backend,
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return {"total_bytes": total, "files": files}


def load_dataset(directory) -> Dataset:
    """Load a dataset saved by :func:`save_dataset` back into memory."""
    directory = Path(directory)
    manifest = json.loads((directory / _MANIFEST).read_text())
    slots: dict[int, CompressedObject] = {}
    for filename in manifest["files"]:
        for obj_id, blob in read_cuboid_file(directory / filename):
            slots[obj_id] = deserialize_object(blob)
    if len(slots) != manifest["num_objects"]:
        raise ValueError(
            f"manifest promises {manifest['num_objects']} objects, "
            f"found {len(slots)}"
        )
    objects = [slots[i] for i in range(len(slots))]
    dataset = Dataset(
        manifest["name"], objects, grid_shape=tuple(manifest["grid_shape"])
    )
    dataset._grid = CuboidGrid(
        AABB(tuple(manifest["grid_low"]), tuple(manifest["grid_high"])),
        tuple(manifest["grid_shape"]),
    )
    return dataset
