"""In-memory datasets of compressed objects, with disk persistence.

A :class:`Dataset` is the unit the query engine loads: a named list of
compressed objects, their MBBs (read straight off the compressed
headers), and the cuboid grid that batches them. ``save_dataset`` /
``load_dataset`` persist a dataset as one cuboid container file per
non-empty cuboid plus a tiny manifest.

Loading runs in one of two modes:

* ``strict`` (default) — any corruption or inconsistency raises; the
  dataset you get is exactly the dataset that was saved.
* ``salvage`` — unreadable container files are quarantined, failing
  blobs are skipped or partially recovered (their intact lower LODs
  kept, see :func:`~repro.compression.serialize.salvage_object_blob`),
  surviving objects are renumbered contiguously, and the whole outcome
  is reported in a structured :class:`LoadReport`.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from pathlib import Path

from repro.compression.ppvp import CompressedObject, PPVPEncoder
from repro.compression.serialize import (
    deserialize_object,
    salvage_object_blob,
    serialize_object,
)
from repro.core.errors import CuboidFormatError, DatasetFormatError
from repro.geometry.aabb import AABB
from repro.obs import metrics as obs_metrics
from repro.obs.logs import get_logger, log_event
from repro.storage.cuboid import CuboidGrid
from repro.storage.fileformat import (
    read_cuboid_file,
    salvage_cuboid_file,
    write_cuboid_file,
)

__all__ = ["Dataset", "LoadReport", "save_dataset", "load_dataset"]

_MANIFEST = "manifest.json"
_MODES = ("strict", "salvage")

_LOG = get_logger("storage.store")


def _publish_load_report(report: "LoadReport") -> None:
    """Mirror a salvage outcome into metrics + the structured event log."""
    registry = obs_metrics.REGISTRY
    registry.counter(
        "repro_salvage_loads_total", "Datasets loaded in salvage mode"
    ).inc()
    if report.quarantined_files:
        registry.counter(
            "repro_salvage_quarantined_files_total", "Container files quarantined"
        ).inc(len(report.quarantined_files))
    if report.skipped_blobs:
        registry.counter(
            "repro_salvage_lost_objects_total", "Objects lost to unsalvageable blobs"
        ).inc(len(report.skipped_blobs))
    if report.degraded_objects:
        registry.counter(
            "repro_salvage_recovered_objects_total",
            "Objects partially recovered (lower LODs kept)",
        ).inc(len(report.degraded_objects))
    if not report.ok:
        log_event(
            _LOG, "salvage_load", level=logging.WARNING,
            directory=report.directory,
            objects_loaded=report.objects_loaded,
            objects_expected=report.objects_expected,
            quarantined_files=len(report.quarantined_files),
            skipped_blobs=len(report.skipped_blobs),
            degraded_objects=len(report.degraded_objects),
            container_faults=len(report.container_faults),
        )


@dataclass
class LoadReport:
    """Structured outcome of one :func:`load_dataset` call.

    ``skipped_blobs`` and ``degraded_objects`` carry
    ``(object_id, filename, reason)`` triples; skipped ids are the
    *original* (manifest) ids, degraded ids the *final* (possibly
    renumbered) ids. ``id_map`` maps original ids to final ids when
    salvage renumbering applied (``None`` in strict mode).
    """

    mode: str
    directory: str
    objects_expected: int = 0
    objects_loaded: int = 0
    files_total: int = 0
    files_loaded: int = 0
    quarantined_files: list[tuple[str, str]] = field(default_factory=list)
    skipped_blobs: list[tuple[int, str, str]] = field(default_factory=list)
    degraded_objects: list[tuple[int, str, str]] = field(default_factory=list)
    container_faults: list[str] = field(default_factory=list)
    id_map: dict[int, int] | None = None

    @property
    def ok(self) -> bool:
        """True when nothing was lost, degraded, or integrity-suspect."""
        return (
            not self.quarantined_files
            and not self.skipped_blobs
            and not self.degraded_objects
            and not self.container_faults
            and self.objects_loaded == self.objects_expected
        )

    def summary(self) -> str:
        """One-line human-readable digest."""
        parts = [
            f"loaded {self.objects_loaded}/{self.objects_expected} objects "
            f"from {self.files_loaded}/{self.files_total} files [{self.mode}]"
        ]
        if self.quarantined_files:
            parts.append(f"{len(self.quarantined_files)} files quarantined")
        if self.skipped_blobs:
            parts.append(f"{len(self.skipped_blobs)} blobs skipped")
        if self.degraded_objects:
            parts.append(f"{len(self.degraded_objects)} objects degraded")
        if self.container_faults:
            parts.append(f"{len(self.container_faults)} container checksum faults")
        return ", ".join(parts)

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "directory": self.directory,
            "objects_expected": self.objects_expected,
            "objects_loaded": self.objects_loaded,
            "files_total": self.files_total,
            "files_loaded": self.files_loaded,
            "quarantined_files": list(self.quarantined_files),
            "skipped_blobs": list(self.skipped_blobs),
            "degraded_objects": list(self.degraded_objects),
            "container_faults": list(self.container_faults),
            "id_map": dict(self.id_map) if self.id_map is not None else None,
            "ok": self.ok,
        }


@dataclass
class Dataset:
    """A named collection of compressed 3D objects."""

    name: str
    objects: list[CompressedObject]
    grid_shape: tuple[int, int, int] = (4, 4, 4)
    _grid: CuboidGrid | None = field(default=None, repr=False)
    # Object ids whose geometry was only partially recovered (salvage
    # loading); the engine marks query answers touching them as degraded.
    degraded_ids: frozenset = field(default_factory=frozenset, repr=False)
    load_report: LoadReport | None = field(default=None, repr=False, compare=False)
    # Directory this dataset was loaded from (set by load_dataset, None
    # for in-memory datasets). Worker processes of the process query
    # backend reopen the dataset from here — always in salvage mode, so
    # a store the parent salvage-loaded reproduces byte-identically.
    source_dir: str | None = field(default=None, repr=False, compare=False)

    @classmethod
    def from_polyhedra(
        cls,
        name: str,
        polyhedra,
        encoder: PPVPEncoder | None = None,
        grid_shape: tuple[int, int, int] = (4, 4, 4),
    ) -> "Dataset":
        """Compress raw polyhedra into a dataset (the ingest path)."""
        encoder = encoder or PPVPEncoder()
        return cls(name, [encoder.encode(p) for p in polyhedra], grid_shape)

    def __len__(self) -> int:
        return len(self.objects)

    @property
    def boxes(self) -> list[AABB]:
        return [obj.aabb for obj in self.objects]

    @property
    def grid(self) -> CuboidGrid:
        if self._grid is None:
            if not self.objects:
                raise ValueError(f"dataset {self.name!r} is empty: no grid")
            self._grid = CuboidGrid.covering(self.boxes, self.grid_shape)
        return self._grid

    def cuboid_batches(self) -> list[list[int]]:
        """Object ids grouped by cuboid, in cuboid order (query batching)."""
        if not self.objects:
            return []
        return self.grid.ordered_assignment(self.boxes)

    def total_faces(self, lod: int | None = None) -> int:
        """Summed face count at ``lod`` (highest LOD when None)."""
        return sum(
            obj.face_count_at_lod(obj.max_lod if lod is None else min(lod, obj.max_lod))
            for obj in self.objects
        )

    def precompile_lod_tables(self) -> int:
        """Compile every object's columnar decode table now; returns count built.

        Decoders compile tables lazily on first touch (including objects
        deserialized in salvage mode, whose valid round prefix compiles
        to a truncated table). Bulk loaders can call this to front-load
        that cost at load time — e.g. before the process backend spills
        an in-memory dataset, so workers receive compiled tables.
        """
        built = 0
        for obj in self.objects:
            if "lod_table" not in obj.__dict__:
                obj.lod_table  # noqa: B018 - cached_property build for effect
                built += 1
        return built


def save_dataset(
    dataset: Dataset,
    directory,
    quant_bits: int = 16,
    backend: str = "huffman",
    fault_injector=None,
) -> dict:
    """Persist a dataset: one cuboid file per non-empty cuboid + manifest.

    ``fault_injector`` (a :class:`repro.faults.FaultInjector`) may flip
    bits in serialized blobs before they hit disk — the deterministic
    corruption source the chaos tests load back in salvage mode.

    Returns a summary dict with total bytes and per-cuboid sizes.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    batches = dataset.grid.assign(dataset.boxes) if len(dataset) else {}

    files = {}
    total = 0
    for cuboid_id in sorted(batches):
        object_ids = batches[cuboid_id]
        blobs = [
            serialize_object(dataset.objects[i], quant_bits=quant_bits, backend=backend)
            for i in object_ids
        ]
        if fault_injector is not None:
            blobs = [
                fault_injector.corrupt_blob(blob, key=f"{cuboid_id}:{obj_id}")
                for obj_id, blob in zip(object_ids, blobs)
            ]
        filename = f"cuboid_{cuboid_id:06d}.3dpc"
        size = write_cuboid_file(directory / filename, blobs, object_ids)
        files[filename] = size
        total += size

    manifest = {
        "name": dataset.name,
        "num_objects": len(dataset),
        "grid_shape": list(dataset.grid_shape),
        "grid_low": list(dataset.grid.bounds.low) if len(dataset) else [0.0, 0.0, 0.0],
        "grid_high": list(dataset.grid.bounds.high) if len(dataset) else [1.0, 1.0, 1.0],
        "files": sorted(files),
        "quant_bits": quant_bits,
        "backend": backend,
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return {"total_bytes": total, "files": files}


def load_dataset(directory, mode: str = "strict") -> Dataset:
    """Load a dataset saved by :func:`save_dataset` back into memory.

    ``mode="strict"`` raises on any corruption or inconsistency;
    ``mode="salvage"`` loads whatever survives and reports the rest.
    Either way the returned dataset carries a :class:`LoadReport` on its
    ``load_report`` attribute.
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    directory = Path(directory)
    manifest = json.loads((directory / _MANIFEST).read_text())
    report = LoadReport(
        mode=mode,
        directory=str(directory),
        objects_expected=manifest["num_objects"],
        files_total=len(manifest["files"]),
    )

    if mode == "strict":
        slots: dict[int, CompressedObject] = {}
        for filename in manifest["files"]:
            for obj_id, blob in read_cuboid_file(directory / filename):
                slots[obj_id] = deserialize_object(blob)
            report.files_loaded += 1
        if len(slots) != manifest["num_objects"]:
            raise DatasetFormatError(
                f"manifest promises {manifest['num_objects']} objects, "
                f"found {len(slots)}"
            )
        missing = sorted(set(range(len(slots))) - set(slots))
        if missing:
            raise DatasetFormatError(
                f"object ids are not contiguous: ids {sorted(slots)[:8]}... "
                f"leave gaps at {missing[:8]} (of {len(missing)}); "
                f"re-save the dataset or load with mode='salvage' to renumber"
            )
        objects = [slots[i] for i in range(len(slots))]
        degraded_ids: frozenset = frozenset()
    else:
        slots = {}
        degraded_original: dict[int, tuple[str, str]] = {}
        for filename in manifest["files"]:
            path = directory / filename
            try:
                pairs, faults, container_ok = salvage_cuboid_file(path)
            except (CuboidFormatError, OSError, EOFError, ValueError) as exc:
                report.quarantined_files.append((filename, str(exc)))
                continue
            report.files_loaded += 1
            if not container_ok:
                report.container_faults.append(filename)
            for obj_id, blob in pairs:
                try:
                    slots[obj_id] = deserialize_object(blob)
                except Exception as exc:
                    _salvage_blob(
                        slots, degraded_original, report, obj_id, blob, filename, exc
                    )
            for fault in faults:
                if fault.object_id is None or fault.blob is None:
                    report.skipped_blobs.append(
                        (fault.object_id if fault.object_id is not None else -1,
                         filename, fault.reason)
                    )
                    continue
                _salvage_blob(
                    slots, degraded_original, report,
                    fault.object_id, fault.blob, filename, fault.reason,
                )
        ordered = sorted(slots)
        report.id_map = {orig: new for new, orig in enumerate(ordered)}
        objects = [slots[orig] for orig in ordered]
        degraded_ids = frozenset(
            report.id_map[orig] for orig in degraded_original if orig in report.id_map
        )
        for orig, (filename, detail) in sorted(degraded_original.items()):
            report.degraded_objects.append((report.id_map[orig], filename, detail))

    report.objects_loaded = len(objects)
    if mode == "salvage":
        _publish_load_report(report)
    dataset = Dataset(
        manifest["name"],
        objects,
        grid_shape=tuple(manifest["grid_shape"]),
        degraded_ids=degraded_ids,
        load_report=report,
        source_dir=str(directory),
    )
    dataset._grid = CuboidGrid(
        AABB(tuple(manifest["grid_low"]), tuple(manifest["grid_high"])),
        tuple(manifest["grid_shape"]),
    )
    return dataset


def _salvage_blob(slots, degraded_original, report, obj_id, blob, filename, cause) -> None:
    """Attempt object-level salvage of a failing blob (salvage mode only)."""
    try:
        obj, dropped = salvage_object_blob(blob)
    except Exception:
        report.skipped_blobs.append((obj_id, filename, f"unsalvageable: {cause}"))
        return
    slots[obj_id] = obj
    detail = (
        f"recovered base + {obj.num_rounds} of {obj.num_rounds + dropped} rounds "
        f"(max LOD {obj.max_lod}); cause: {cause}"
    )
    degraded_original[obj_id] = (filename, detail)
