"""Cuboid container files.

One file per cuboid, holding the serialized blobs of every object that
lives in that cuboid ("the compressed data for the objects in the same
cuboid are stored in the same file", Section 5.3). The format is a
magic-tagged length-prefixed concatenation so a cuboid loads with one
sequential read into contiguous memory.
"""

from __future__ import annotations

from pathlib import Path

from repro.compression.varint import read_uvarint, write_uvarint

__all__ = ["write_cuboid_file", "read_cuboid_file", "CuboidFormatError"]

_MAGIC = b"3DPC"
_VERSION = 1


class CuboidFormatError(ValueError):
    """Raised for malformed cuboid container files."""


def write_cuboid_file(path, blobs: list[bytes], object_ids: list[int]) -> int:
    """Write object blobs with their dataset-global ids; returns bytes written."""
    if len(blobs) != len(object_ids):
        raise ValueError("blobs and object_ids must align")
    out = bytearray()
    out += _MAGIC
    out.append(_VERSION)
    write_uvarint(out, len(blobs))
    for obj_id, blob in zip(object_ids, blobs):
        write_uvarint(out, obj_id)
        write_uvarint(out, len(blob))
    for blob in blobs:
        out += blob
    data = bytes(out)
    Path(path).write_bytes(data)
    return len(data)


def read_cuboid_file(path) -> list[tuple[int, bytes]]:
    """Read back ``(object_id, blob)`` pairs from a cuboid file."""
    data = Path(path).read_bytes()
    if data[:4] != _MAGIC:
        raise CuboidFormatError(f"{path}: bad magic")
    if data[4] != _VERSION:
        raise CuboidFormatError(f"{path}: unsupported version {data[4]}")
    count, offset = read_uvarint(data, 5)
    ids: list[int] = []
    lengths: list[int] = []
    for _ in range(count):
        obj_id, offset = read_uvarint(data, offset)
        length, offset = read_uvarint(data, offset)
        ids.append(obj_id)
        lengths.append(length)
    out: list[tuple[int, bytes]] = []
    for obj_id, length in zip(ids, lengths):
        if offset + length > len(data):
            raise CuboidFormatError(f"{path}: truncated blob for object {obj_id}")
        out.append((obj_id, data[offset : offset + length]))
        offset += length
    if offset != len(data):
        raise CuboidFormatError(f"{path}: {len(data) - offset} trailing bytes")
    return out
