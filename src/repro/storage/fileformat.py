"""Cuboid container files.

One file per cuboid, holding the serialized blobs of every object that
lives in that cuboid ("the compressed data for the objects in the same
cuboid are stored in the same file", Section 5.3). The format is a
magic-tagged length-prefixed concatenation so a cuboid loads with one
sequential read into contiguous memory.

Format v2 adds integrity metadata so corruption is *detected* instead of
parsed into garbage geometry:

* each index entry carries the CRC32 of its blob, and
* the file ends with a 4-byte little-endian CRC32 of every preceding
  byte (magic, version, index, and payload).

Any single-byte corruption of a v2 file therefore fails the container
checksum (or, for a flip inside one blob, additionally the per-blob
checksum — the granularity :func:`salvage_cuboid_file` uses to recover
the undamaged blobs). v1 files (no checksums) remain readable.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.compression.varint import read_uvarint, write_uvarint
from repro.core.errors import BlobChecksumError, CuboidFormatError

__all__ = [
    "write_cuboid_file",
    "read_cuboid_file",
    "salvage_cuboid_file",
    "BlobFault",
    "CuboidFormatError",
    "BlobChecksumError",
    "CUBOID_FORMAT_VERSION",
]

_MAGIC = b"3DPC"
CUBOID_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


@dataclass(frozen=True)
class BlobFault:
    """One blob that could not be read intact from a container file."""

    object_id: int | None
    reason: str
    blob: bytes | None = None  # raw (corrupt) bytes, for object-level salvage


def write_cuboid_file(
    path, blobs: list[bytes], object_ids: list[int], version: int = CUBOID_FORMAT_VERSION
) -> int:
    """Write object blobs with their dataset-global ids; returns bytes written.

    ``version=1`` reproduces the legacy checksum-free layout (kept for
    back-compat tests and for reading datasets written before v2).
    """
    if len(blobs) != len(object_ids):
        raise ValueError("blobs and object_ids must align")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported cuboid format version {version}")
    out = bytearray()
    out += _MAGIC
    out.append(version)
    write_uvarint(out, len(blobs))
    for obj_id, blob in zip(object_ids, blobs):
        write_uvarint(out, obj_id)
        write_uvarint(out, len(blob))
        if version >= 2:
            write_uvarint(out, zlib.crc32(blob))
    for blob in blobs:
        out += blob
    if version >= 2:
        out += zlib.crc32(bytes(out)).to_bytes(4, "little")
    data = bytes(out)
    Path(path).write_bytes(data)
    return len(data)


def _parse_index(data: bytes, path, version: int) -> tuple[list[int], list[int], list[int], int]:
    """Parse the container index; returns (ids, lengths, crcs, payload_offset)."""
    count, offset = read_uvarint(data, 5)
    entry_bytes = 2 if version == 1 else 3
    if count * entry_bytes > len(data):
        raise CuboidFormatError(f"{path}: implausible object count {count}")
    ids: list[int] = []
    lengths: list[int] = []
    crcs: list[int] = []
    try:
        for _ in range(count):
            obj_id, offset = read_uvarint(data, offset)
            length, offset = read_uvarint(data, offset)
            crc = 0
            if version >= 2:
                crc, offset = read_uvarint(data, offset)
            ids.append(obj_id)
            lengths.append(length)
            crcs.append(crc)
    except (EOFError, ValueError) as exc:
        raise CuboidFormatError(f"{path}: truncated index ({exc})") from exc
    return ids, lengths, crcs, offset


def _check_preamble(data: bytes, path) -> int:
    if len(data) < 5 or data[:4] != _MAGIC:
        raise CuboidFormatError(f"{path}: bad magic")
    version = data[4]
    if version not in _SUPPORTED_VERSIONS:
        raise CuboidFormatError(f"{path}: unsupported version {version}")
    return version


def read_cuboid_file(path) -> list[tuple[int, bytes]]:
    """Read back ``(object_id, blob)`` pairs from a cuboid file (strict).

    Any detected corruption raises: :class:`CuboidFormatError` for
    framing problems or a container-checksum mismatch,
    :class:`BlobChecksumError` for a per-blob CRC32 mismatch.
    """
    data = Path(path).read_bytes()
    version = _check_preamble(data, path)
    if version >= 2:
        if len(data) < 9:
            raise CuboidFormatError(f"{path}: truncated container")
        stored = int.from_bytes(data[-4:], "little")
        if zlib.crc32(data[:-4]) != stored:
            raise CuboidFormatError(f"{path}: container checksum mismatch")
        data = data[:-4]
    ids, lengths, crcs, offset = _parse_index(data, path, version)
    out: list[tuple[int, bytes]] = []
    for obj_id, length, crc in zip(ids, lengths, crcs):
        if offset + length > len(data):
            raise CuboidFormatError(f"{path}: truncated blob for object {obj_id}")
        blob = data[offset : offset + length]
        if version >= 2 and zlib.crc32(blob) != crc:
            raise BlobChecksumError(f"{path}: checksum mismatch for object {obj_id}")
        out.append((obj_id, blob))
        offset += length
    if offset != len(data):
        raise CuboidFormatError(f"{path}: {len(data) - offset} trailing bytes")
    return out


def salvage_cuboid_file(path) -> tuple[list[tuple[int, bytes]], list[BlobFault], bool]:
    """Best-effort read of a possibly-corrupt container file.

    Returns ``(pairs, faults, container_ok)``: the blobs that read back
    intact, a :class:`BlobFault` per blob that did not (with its raw
    bytes when they were at least addressable, so the caller can attempt
    object-level salvage), and whether the container checksum held.
    Raises :class:`CuboidFormatError` only when the file is unsalvageable
    (bad magic/version or an unparseable index).
    """
    data = Path(path).read_bytes()
    version = _check_preamble(data, path)
    container_ok = True
    if version >= 2:
        if len(data) < 9:
            raise CuboidFormatError(f"{path}: truncated container")
        container_ok = zlib.crc32(data[:-4]) == int.from_bytes(data[-4:], "little")
        data = data[:-4]
    ids, lengths, crcs, offset = _parse_index(data, path, version)
    pairs: list[tuple[int, bytes]] = []
    faults: list[BlobFault] = []
    for obj_id, length, crc in zip(ids, lengths, crcs):
        if offset + length > len(data):
            faults.append(BlobFault(obj_id, "truncated blob"))
            offset += length
            continue
        blob = data[offset : offset + length]
        offset += length
        if version >= 2 and zlib.crc32(blob) != crc:
            faults.append(BlobFault(obj_id, "blob checksum mismatch", blob))
            continue
        pairs.append((obj_id, blob))
    return pairs, faults, container_ok
