"""Memory-mapped cuboid shard files (store format v3).

One shard file per cuboid, holding every member object's compressed
blob plus an *index-resident* copy of the planning metadata the engine
needs before any decode (AABB, max LOD, per-LOD face counts). The
payload region is written append-only — blobs first, index last — so a
shard streams to disk in one pass and the index is always the final
thing fsynced::

    offset  contents
    ------  -----------------------------------------------------------
    0       magic ``3DPS``
    4       format version (3)
    5       codec byte (0 = serialized ``3DPR`` blobs, 1 = pickle)
    6       payload: blobs, concatenated back to back
    I       index: uvarint entry count, then per entry
              uvarint object_id
              uvarint absolute payload offset
              uvarint blob length
              uvarint CRC32(blob)
              6 x f64  AABB (low.xyz, high.xyz)
              uvarint max_lod
              uvarint face-count count (== max_lod + 1), then that many
              uvarint per-LOD face counts
    end-12  trailer: u64 index offset ``I``, u32 CRC32(index region)

There is deliberately *no* whole-file checksum: verifying one would
force a full sequential read at open, defeating the point of ``mmap``.
Integrity is still never skipped — the index CRC is verified at open
(the index is tiny), and every blob's CRC is verified against its index
entry either eagerly (:meth:`ShardReader.verify_all`, the strict-load
scan) or lazily at first access (:meth:`ShardReader.blob` with
``verify=True``, the worker path that must fault in only the pages a
query touches).

:meth:`ShardReader.blob` returns a zero-copy :class:`memoryview` slice
of the shared file mapping; all readers of one shard — every worker
process on the machine — share the same physical pages through the OS
page cache. Closing a reader while exported slices are alive raises
:class:`~repro.core.errors.ShardLifetimeError` (a clean Python error,
never a dangling pointer: ``mmap`` refuses to unmap exported buffers).
"""

from __future__ import annotations

import mmap
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.compression.varint import read_uvarint, write_uvarint
from repro.core.errors import (
    BlobChecksumError,
    ShardFormatError,
    ShardLifetimeError,
)
from repro.storage.fileformat import BlobFault

__all__ = [
    "SHARD_FORMAT_VERSION",
    "SHARD_CODECS",
    "ShardEntry",
    "ShardReader",
    "write_shard_file",
    "salvage_shard_file",
]

_MAGIC = b"3DPS"
SHARD_FORMAT_VERSION = 3
_TRAILER = struct.Struct("<QI")
_AABB = struct.Struct("<6d")

#: codec byte -> name. "3dpr" entries hold the same serialized blobs a
#: v2 cuboid container would (deserialize_object decodes them); "pickle"
#: entries hold pickled CompressedObjects — the exact-round-trip codec
#: the process backend spills in-memory datasets with.
SHARD_CODECS = {0: "3dpr", 1: "pickle"}
_CODEC_IDS = {name: byte for byte, name in SHARD_CODECS.items()}


@dataclass(frozen=True)
class ShardEntry:
    """One object's index entry: where its blob lives, plus the planning
    metadata (MBB, LOD ladder shape) queries need before any decode."""

    object_id: int
    offset: int
    length: int
    crc: int
    aabb_low: tuple[float, float, float]
    aabb_high: tuple[float, float, float]
    max_lod: int
    face_counts: tuple[int, ...]  # face count at each LOD, ascending


def write_shard_file(path, blobs, object_ids, metas, codec: str = "3dpr") -> int:
    """Write one cuboid's blobs + index; returns bytes written.

    ``metas`` aligns with ``blobs``/``object_ids``: one
    ``(aabb_low, aabb_high, max_lod, face_counts)`` tuple per object.
    """
    if not (len(blobs) == len(object_ids) == len(metas)):
        raise ValueError("blobs, object_ids, and metas must align")
    codec_id = _CODEC_IDS.get(codec)
    if codec_id is None:
        raise ValueError(f"codec must be one of {sorted(_CODEC_IDS)}, got {codec!r}")
    out = bytearray()
    out += _MAGIC
    out.append(SHARD_FORMAT_VERSION)
    out.append(codec_id)
    offsets = []
    for blob in blobs:
        offsets.append(len(out))
        out += blob
    index_offset = len(out)
    index = bytearray()
    write_uvarint(index, len(blobs))
    for obj_id, blob, offset, meta in zip(object_ids, blobs, offsets, metas):
        low, high, max_lod, face_counts = meta
        write_uvarint(index, obj_id)
        write_uvarint(index, offset)
        write_uvarint(index, len(blob))
        write_uvarint(index, zlib.crc32(blob))
        index += _AABB.pack(*low, *high)
        write_uvarint(index, max_lod)
        write_uvarint(index, len(face_counts))
        for count in face_counts:
            write_uvarint(index, count)
    out += index
    out += _TRAILER.pack(index_offset, zlib.crc32(bytes(index)))
    data = bytes(out)
    Path(path).write_bytes(data)
    return len(data)


def _parse_index(data, path, count_limit) -> list[ShardEntry]:
    """Parse index entries from ``data`` (the index region bytes)."""
    try:
        count, offset = read_uvarint(data, 0)
        if count > count_limit:
            raise ShardFormatError(f"{path}: implausible object count {count}")
        entries = []
        for _ in range(count):
            obj_id, offset = read_uvarint(data, offset)
            blob_offset, offset = read_uvarint(data, offset)
            length, offset = read_uvarint(data, offset)
            crc, offset = read_uvarint(data, offset)
            coords = _AABB.unpack_from(data, offset)
            offset += _AABB.size
            max_lod, offset = read_uvarint(data, offset)
            n_counts, offset = read_uvarint(data, offset)
            if n_counts != max_lod + 1:
                raise ShardFormatError(
                    f"{path}: object {obj_id} carries {n_counts} face counts "
                    f"for {max_lod + 1} LODs"
                )
            counts = []
            for _ in range(n_counts):
                value, offset = read_uvarint(data, offset)
                counts.append(value)
            entries.append(
                ShardEntry(
                    object_id=obj_id,
                    offset=blob_offset,
                    length=length,
                    crc=crc,
                    aabb_low=coords[:3],
                    aabb_high=coords[3:],
                    max_lod=max_lod,
                    face_counts=tuple(counts),
                )
            )
        if offset != len(data):
            raise ShardFormatError(f"{path}: {len(data) - offset} trailing index bytes")
        return entries
    except ShardFormatError:
        raise
    except (EOFError, ValueError, struct.error) as exc:
        raise ShardFormatError(f"{path}: truncated index ({exc})") from exc


class ShardReader:
    """Zero-copy reads over one memory-mapped shard file.

    ``strict=True`` (default) raises :class:`ShardFormatError` when the
    index CRC does not match; ``strict=False`` keeps going and exposes
    the mismatch on :attr:`index_ok` — the salvage path's analog of a
    v2 container-checksum fault (the per-blob CRCs then gate each blob
    individually, exactly the v2 granularity).
    """

    def __init__(self, path, strict: bool = True):
        self.path = str(path)
        self.index_ok = True
        self._file = open(path, "rb")
        try:
            try:
                self._mm = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError as exc:  # zero-length file cannot map
                raise ShardFormatError(f"{path}: empty shard file") from exc
            size = len(self._mm)
            if size < 6 + _TRAILER.size or self._mm[:4] != _MAGIC:
                raise ShardFormatError(f"{path}: bad magic")
            version = self._mm[4]
            if version != SHARD_FORMAT_VERSION:
                raise ShardFormatError(f"{path}: unsupported shard version {version}")
            self.codec = SHARD_CODECS.get(self._mm[5])
            if self.codec is None:
                raise ShardFormatError(f"{path}: unknown codec byte {self._mm[5]}")
            index_offset, index_crc = _TRAILER.unpack(self._mm[size - _TRAILER.size:])
            if not 6 <= index_offset <= size - _TRAILER.size:
                raise ShardFormatError(
                    f"{path}: index offset {index_offset} outside file"
                )
            index_bytes = bytes(self._mm[index_offset : size - _TRAILER.size])
            if zlib.crc32(index_bytes) != index_crc:
                if strict:
                    raise ShardFormatError(f"{path}: index checksum mismatch")
                self.index_ok = False
            self._payload_end = index_offset
            self.entries: dict[int, ShardEntry] = {
                entry.object_id: entry
                for entry in _parse_index(index_bytes, path, count_limit=size)
            }
        except BaseException:
            self._release()
            raise

    # -- access ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def object_ids(self) -> list[int]:
        """Member object ids in payload (write) order."""
        return sorted(self.entries, key=lambda oid: self.entries[oid].offset)

    def blob(self, object_id: int, verify: bool = True) -> memoryview:
        """A zero-copy ``memoryview`` of one object's blob.

        The slice references the shared file mapping directly — no bytes
        are copied and the backing pages are shared with every other
        reader of this shard on the machine. With ``verify`` the blob's
        CRC32 is checked against its index entry first (this faults in
        exactly the blob's pages, nothing else).
        """
        if self.closed:
            raise ValueError(f"{self.path}: reader is closed")
        entry = self.entries.get(object_id)
        if entry is None:
            raise KeyError(f"{self.path}: no object {object_id}")
        end = entry.offset + entry.length
        if end > self._payload_end:
            raise ShardFormatError(
                f"{self.path}: truncated blob for object {object_id}"
            )
        view = memoryview(self._mm)[entry.offset : end]
        if verify and zlib.crc32(view) != entry.crc:
            view.release()
            raise BlobChecksumError(
                f"{self.path}: checksum mismatch for object {object_id}"
            )
        return view

    def verify_all(self) -> list[BlobFault]:
        """CRC-check every blob (one sequential pass); returns the faults.

        The strict loader's eager integrity scan: any on-disk corruption
        of payload bytes is caught at load time, while deserialization
        stays deferred. Returns a :class:`BlobFault` per failing blob,
        raw bytes attached when addressable (for object-level salvage).
        """
        faults = []
        for obj_id in self.object_ids():
            entry = self.entries[obj_id]
            end = entry.offset + entry.length
            if end > self._payload_end:
                faults.append(BlobFault(obj_id, "truncated blob"))
                continue
            view = memoryview(self._mm)[entry.offset : end]
            try:
                if zlib.crc32(view) != entry.crc:
                    faults.append(
                        BlobFault(obj_id, "blob checksum mismatch", bytes(view))
                    )
            finally:
                view.release()
        return faults

    # -- lifecycle -------------------------------------------------------------

    @property
    def closed(self) -> bool:
        mm = getattr(self, "_mm", None)
        return mm is None or mm.closed

    def close(self) -> None:
        """Unmap and close. Raises :class:`ShardLifetimeError` (and stays
        open) while exported blob slices are alive — the mapping cannot
        be torn down under live buffers without leaving them dangling."""
        mm = getattr(self, "_mm", None)
        if mm is not None and not mm.closed:
            try:
                mm.close()
            except BufferError as exc:
                raise ShardLifetimeError(
                    f"{self.path}: cannot close shard reader while exported "
                    f"memoryview blob slices are alive; release them first"
                ) from exc
        self._release()

    def _release(self) -> None:
        file = getattr(self, "_file", None)
        if file is not None and not file.closed:
            file.close()

    def __enter__(self) -> "ShardReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC ordering dependent
        try:
            self._release()
        except Exception:
            pass


def salvage_shard_file(path) -> tuple[list[tuple[int, bytes]], list[BlobFault], bool]:
    """Best-effort read of a possibly-corrupt shard file.

    Mirrors :func:`repro.storage.fileformat.salvage_cuboid_file`
    exactly — ``(pairs, faults, container_ok)`` with per-blob CRC
    granularity — so the salvage loader treats v2 containers and v3
    shards through one code path. ``container_ok`` is the index CRC
    here. Raises :class:`ShardFormatError` only when the file is
    unsalvageable (bad magic/version/codec or an unparseable index).
    """
    reader = ShardReader(path, strict=False)
    try:
        pairs: list[tuple[int, bytes]] = []
        faults = reader.verify_all()
        faulted = {fault.object_id for fault in faults}
        for obj_id in reader.object_ids():
            if obj_id in faulted:
                continue
            view = reader.blob(obj_id, verify=False)
            try:
                pairs.append((obj_id, bytes(view)))
            finally:
                view.release()
        return pairs, faults, reader.index_ok
    finally:
        reader.close()
