"""Fixed cuboid space partitioning (paper Section 5.3).

Objects are assigned to cuboids of a regular grid by MBB center; the
engine batches query processing cuboid by cuboid so that recently
decoded source objects stay hot in the decode cache (spatial locality),
and the store persists one file per cuboid.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


from repro.geometry.aabb import AABB

__all__ = ["CuboidGrid"]


@dataclass(frozen=True)
class CuboidGrid:
    """A regular grid over a bounding region."""

    bounds: AABB
    shape: tuple[int, int, int]

    def __post_init__(self):
        if any(n < 1 for n in self.shape):
            raise ValueError("grid shape must be >= 1 on every axis")
        if self.bounds.is_empty:
            raise ValueError("grid bounds must be non-empty")

    @staticmethod
    def covering(boxes: list[AABB], shape: tuple[int, int, int]) -> "CuboidGrid":
        """The grid over the union of ``boxes``."""
        union = AABB.empty()
        for box in boxes:
            union = union.union(box)
        return CuboidGrid(union, shape)

    @property
    def num_cuboids(self) -> int:
        nx, ny, nz = self.shape
        return nx * ny * nz

    def cell_of_point(self, point) -> tuple[int, int, int]:
        """Grid cell containing ``point`` (clamped to the grid)."""
        out = []
        for axis in range(3):
            low = self.bounds.low[axis]
            high = self.bounds.high[axis]
            n = self.shape[axis]
            span = high - low
            if span <= 0:
                out.append(0)
                continue
            index = int((point[axis] - low) / span * n)
            out.append(min(max(index, 0), n - 1))
        return tuple(out)

    def cuboid_id(self, cell: tuple[int, int, int]) -> int:
        nx, ny, nz = self.shape
        return (cell[0] * ny + cell[1]) * nz + cell[2]

    def cuboid_of_box(self, box: AABB) -> int:
        """Cuboid owning ``box`` (by center; objects are never split)."""
        return self.cuboid_id(self.cell_of_point(box.center))

    def cuboid_bounds(self, cuboid: int) -> AABB:
        nx, ny, nz = self.shape
        i, rest = divmod(cuboid, ny * nz)
        j, k = divmod(rest, nz)
        if not (0 <= i < nx):
            raise ValueError(f"cuboid id {cuboid} out of range")
        low = []
        high = []
        cell = (i, j, k)
        for axis in range(3):
            span = self.bounds.high[axis] - self.bounds.low[axis]
            step = span / self.shape[axis]
            low.append(self.bounds.low[axis] + cell[axis] * step)
            high.append(self.bounds.low[axis] + (cell[axis] + 1) * step)
        return AABB(tuple(low), tuple(high))

    def assign(self, boxes: list[AABB]) -> dict[int, list[int]]:
        """Group box indices by owning cuboid (only non-empty cuboids)."""
        groups: dict[int, list[int]] = defaultdict(list)
        for index, box in enumerate(boxes):
            groups[self.cuboid_of_box(box)].append(index)
        return dict(groups)

    def ordered_assignment(self, boxes: list[AABB]) -> list[list[int]]:
        """Cuboid batches in ascending cuboid-id order (query batching)."""
        groups = self.assign(boxes)
        return [groups[cid] for cid in sorted(groups)]
