"""Decoded-geometry cache and decode orchestration.

The cache is LRU over a byte budget, keyed by ``(dataset, object id,
LOD)``; each entry is a :class:`DecodedLOD` — the face snapshot of one
object at one LOD plus lazily-built derived structures (corner triangle
array, AABB-tree, partition grouping). The provider owns the progressive
decoders: a cache miss advances the object's decoder cursor (or restarts
it when a lower LOD is requested after eviction). Since decoders slice
the object's compiled :class:`~repro.compression.lodtable.LODTable` —
built once per object, timed by the ``decode_table_build`` span /
``repro_decode_table_build_seconds`` histogram — a restart no longer
replays removal records from the base mesh: every materialization is an
array slice (``decode_slice`` span / ``repro_decode_slice_seconds``),
so the old eviction-restart penalty is gone.

Decoding is also where corruption surfaces at query time, so the
provider implements the first rungs of the degradation ladder: a decoder
failure at the requested LOD falls back to the highest LOD that still
decodes (every lower LOD is a valid spatial subset of the object, so
queries stay *correct*, just less complete), and an object that cannot
produce even its base mesh raises
:class:`~repro.core.errors.DecodeFailureError` — the signal for MBB-only
("LOD -1") evaluation upstream.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import OrderedDict

import numpy as np

from repro.core.errors import DecodeFailureError
from repro.index.aabbtree import TriangleAABBTree
from repro.obs import metrics as obs_metrics
from repro.obs.logs import get_logger, log_event
from repro.obs.profile import pop_phase, push_phase

__all__ = ["DecodedLOD", "DecodeCache", "DecodedObjectProvider"]

_LOG = get_logger("storage.cache")


class DecodedLOD:
    """One object's geometry at one LOD, with lazy derived structures.

    ``lod`` is the LOD actually decoded; ``degraded`` marks geometry of
    reduced fidelity — a decode that fell back below the requested LOD,
    or an object only partially recovered by salvage loading.

    The derived structures are built at most once: cache entries are
    shared across query workers, and the lazy builds used to run
    unlocked, so concurrent threads could each build (and race to
    publish) the same AABB-tree. A per-entry lock now guards each build;
    reads stay lock-free once the attribute is published.
    """

    __slots__ = (
        "positions", "faces", "_triangles", "_tree", "_groups",
        "tree_leaf_size", "lod", "degraded", "_build_lock",
    )

    def __init__(
        self,
        positions: np.ndarray,
        faces: np.ndarray,
        tree_leaf_size: int = 8,
        lod: int = -1,
        degraded: bool = False,
    ):
        self.positions = positions
        self.faces = faces
        self.tree_leaf_size = tree_leaf_size
        self.lod = lod
        self.degraded = degraded
        self._triangles: np.ndarray | None = None
        self._tree: TriangleAABBTree | None = None
        self._groups: np.ndarray | None = None
        self._build_lock = threading.Lock()

    @property
    def num_faces(self) -> int:
        return len(self.faces)

    @property
    def triangles(self) -> np.ndarray:
        if self._triangles is None:
            with self._build_lock:
                if self._triangles is None:
                    self._triangles = self.positions[self.faces]
        return self._triangles

    @property
    def tree(self) -> TriangleAABBTree:
        if self._tree is None:
            triangles = self.triangles  # build outside the tree check
            with self._build_lock:
                if self._tree is None:
                    self._tree = TriangleAABBTree(triangles, leaf_size=self.tree_leaf_size)
        return self._tree

    def groups(self, partition) -> np.ndarray:
        """Sub-object index per face under ``partition`` (memoized)."""
        if self._groups is None:
            triangles = self.triangles
            with self._build_lock:
                if self._groups is None:
                    self._groups = partition.group_faces(triangles)
        return self._groups

    @property
    def nbytes(self) -> int:
        """Approximate resident size (faces + corner triangles)."""
        total = self.faces.nbytes
        if self._triangles is not None:
            total += self._triangles.nbytes
        return total + 128


class DecodeCache:
    """Byte-budgeted LRU cache for :class:`DecodedLOD` entries.

    ``enabled=False`` turns the cache into a pass-through miss machine —
    the configuration used by the paper's Table 2 "without cache" rows.

    Counter semantics: ``hits``, ``misses``, ``evictions``, and
    ``evicted_bytes`` are *lifetime* monotonic counters — neither
    :meth:`purge_dataset` nor :meth:`clear` touches them (the engine
    snapshots them around each query, so resetting mid-flight would
    corrupt per-query attribution). Use :meth:`reset_counters` between
    independent measurement runs. The same numbers are mirrored into the
    metrics registry (``repro_cache_*`` series, Table 2's raw material).
    """

    def __init__(
        self,
        capacity_bytes: int = 256 * 1024 * 1024,
        enabled: bool = True,
        metrics: obs_metrics.MetricsRegistry | None = None,
    ):
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self.capacity_bytes = capacity_bytes
        self.enabled = enabled
        self._entries: OrderedDict[tuple, DecodedLOD] = OrderedDict()
        # Guards the LRU structure and counters: parallel query workers
        # share one cache, and OrderedDict reordering is not atomic.
        self._lock = threading.RLock()
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.evicted_bytes = 0
        registry = metrics if metrics is not None else obs_metrics.REGISTRY
        # Unlabeled handles: get() fires one of these per cache access,
        # so skip the label-key build Counter.inc pays on every call.
        self._m_hits = registry.counter(
            "repro_cache_hits_total", "Decode cache hits"
        ).handle()
        self._m_misses = registry.counter(
            "repro_cache_misses_total", "Decode cache misses"
        ).handle()
        self._m_evictions = registry.counter(
            "repro_cache_evictions_total", "Entries evicted by the byte budget"
        )
        self._m_evicted_bytes = registry.counter(
            "repro_cache_evicted_bytes_total", "Bytes evicted by the byte budget"
        )
        self._m_resident = registry.gauge(
            "repro_cache_resident_bytes", "Bytes currently resident in the decode cache"
        )
        self._m_entries = registry.gauge(
            "repro_cache_entries", "Entries currently resident in the decode cache"
        )

    def __len__(self) -> int:
        return len(self._entries)

    def _sync_gauges(self) -> None:
        self._m_resident.set(self.bytes_used)
        self._m_entries.set(len(self._entries))

    def get(self, key: tuple) -> DecodedLOD | None:
        with self._lock:
            if not self.enabled:
                self.misses += 1
                self._m_misses.inc()
                return None
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._m_misses.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._m_hits.inc()
            return entry

    def put(self, key: tuple, value: DecodedLOD) -> None:
        with self._lock:
            if not self.enabled:
                return
            if key in self._entries:
                self.bytes_used -= self._entries.pop(key).nbytes
            self._entries[key] = value
            self.bytes_used += value.nbytes
            while self.bytes_used > self.capacity_bytes and len(self._entries) > 1:
                _old_key, old = self._entries.popitem(last=False)
                self.bytes_used -= old.nbytes
                self.evictions += 1
                self.evicted_bytes += old.nbytes
                self._m_evictions.inc()
                self._m_evicted_bytes.inc(old.nbytes)
            self._sync_gauges()

    def evict_dataset(self, name: str) -> int:
        """Drop every entry belonging to dataset ``name``; returns count.

        Used when a dataset is unloaded (notably ad-hoc probe datasets)
        so a later dataset reusing the name can never be served another
        dataset's decoded geometry. Evicted entries are *not* counted
        against the byte-budget eviction counters, and hit/miss counters
        are untouched (lifetime semantics, see the class docstring).
        """
        with self._lock:
            stale = [key for key in self._entries if key[0] == name]
            for key in stale:
                self.bytes_used -= self._entries.pop(key).nbytes
            if stale:
                self._sync_gauges()
            return len(stale)

    def purge_dataset(self, name: str) -> int:
        """Compatibility alias for :meth:`evict_dataset`."""
        return self.evict_dataset(name)

    def clear(self) -> None:
        """Drop every entry. Counters keep their lifetime values."""
        with self._lock:
            self._entries.clear()
            self.bytes_used = 0
            self._sync_gauges()

    def reset_counters(self) -> None:
        """Zero the lifetime hit/miss/eviction counters (cached entries stay)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.evicted_bytes = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DecodedObjectProvider:
    """Serves decoded LODs for one dataset, through the cache.

    Decode wall-time is accumulated into ``decode_seconds`` so the engine
    can attribute it separately from geometry computation (Fig. 10).

    ``fault_injector`` (see :mod:`repro.faults`) may force decode
    failures; ``salvaged_ids`` marks objects whose stored geometry was
    only partially recovered, so their decodes are flagged degraded.
    Failure bookkeeping: ``degraded_ids`` maps objects to the fallback
    LOD they last served, ``failed_ids`` holds objects that failed at
    every LOD (subsequent ``get`` calls fail fast), and
    ``decode_failures`` counts individual decode attempts that raised.
    """

    def __init__(
        self,
        name: str,
        objects,
        cache: DecodeCache,
        tree_leaf_size: int = 8,
        fault_injector=None,
        salvaged_ids=(),
        tracer=None,
        metrics: obs_metrics.MetricsRegistry | None = None,
    ):
        self.name = name
        self.objects = objects
        self.cache = cache
        self.tree_leaf_size = tree_leaf_size
        self.fault_injector = fault_injector
        self.salvaged_ids = frozenset(salvaged_ids)
        self.tracer = tracer
        self._decoders: dict[int, object] = {}
        # Serializes decodes: progressive decoders are stateful (they
        # advance round by round), so two query workers decoding the
        # same dataset must not interleave. Cache hits stay cheap — the
        # critical section for a hit is one locked dict lookup.
        self._lock = threading.RLock()
        self.decode_seconds = 0.0
        self.decoded_vertices = 0
        self.degraded_ids: dict[int, int] = {}
        self.failed_ids: dict[int, str] = {}
        # Highest requested LOD whose whole fallback ladder failed, per
        # object. Exhaustion at LOD L proves LODs 0..L all fail, so the
        # fail-fast below is sound for any request <= L — but a request
        # *above* L must still run its ladder (a higher LOD may decode).
        # Keying the fail-fast this way makes get() a pure function of
        # (object, lod) under a deterministic fault injector, so results
        # cannot depend on which target happened to decode first.
        self._failed_lod: dict[int, int] = {}
        self.decode_failures = 0
        registry = metrics if metrics is not None else obs_metrics.REGISTRY
        # Handles on the per-decode-call instruments (see DecodeCache).
        self._m_decode_seconds = registry.histogram(
            "repro_decode_seconds", "Wall time of cache-miss decode calls"
        ).handle()
        self._m_decode_failures = registry.counter(
            "repro_decode_failures_total", "Decode attempts that raised"
        )
        self._m_decode_fallbacks = registry.counter(
            "repro_decode_fallbacks_total",
            "Decodes served below the requested LOD (degradation ladder)",
        )
        self._m_decoded_vertices = registry.counter(
            "repro_decoded_vertices_total", "Vertices reinserted by progressive decoders"
        ).handle()
        self._m_table_build_seconds = registry.histogram(
            "repro_decode_table_build_seconds",
            "Wall time compiling columnar LOD tables (once per object)",
        )
        self._m_slice_seconds = registry.histogram(
            "repro_decode_slice_seconds",
            "Wall time materializing LOD face slices from compiled tables",
        ).handle()

    def _decode_at(self, obj_id: int, lod: int) -> DecodedLOD:
        """One decode attempt at exactly ``lod``; may raise."""
        if self.fault_injector is not None:
            self.fault_injector.before_decode(self.name, obj_id, lod)
        obj = self.objects[obj_id]
        tracer = self.tracer if self.tracer is not None and self.tracer.enabled else None
        if "lod_table" not in obj.__dict__:
            # First decode of this object anywhere: compile the columnar
            # table (cached on the object, shared by every later decode).
            start = time.perf_counter()
            table = obj.lod_table
            elapsed = time.perf_counter() - start
            self._m_table_build_seconds.observe(elapsed)
            if tracer is not None:
                tracer.record(
                    "decode_table_build", elapsed,
                    dataset=self.name, object=obj_id, rows=table.num_rows,
                )
        decoder = self._decoders.get(obj_id)
        if decoder is None or decoder.current_lod > lod:
            decoder = obj.decoder()
        before = decoder.vertices_reinserted
        decoder.advance_to(lod)
        # Commit the decoder only after a successful advance: a failed
        # advance may leave it mid-round, poisoning later requests.
        self._decoders[obj_id] = decoder
        self.decoded_vertices += decoder.vertices_reinserted - before
        self._m_decoded_vertices.inc(decoder.vertices_reinserted - before)
        start = time.perf_counter()
        faces = decoder.face_array()
        elapsed = time.perf_counter() - start
        self._m_slice_seconds.observe(elapsed)
        if tracer is not None:
            tracer.record(
                "decode_slice", elapsed, dataset=self.name, object=obj_id, lod=lod
            )
        return DecodedLOD(
            obj.positions,
            faces,
            tree_leaf_size=self.tree_leaf_size,
            lod=lod,
            degraded=obj_id in self.salvaged_ids,
        )

    def get(self, obj_id: int, lod: int, deadline=None, funnel=None) -> DecodedLOD:
        """Decode ``obj_id`` at ``lod``, degrading to a lower LOD on failure.

        Raises :class:`DecodeFailureError` when no LOD decodes at all.
        ``deadline`` (a :class:`~repro.core.deadline.Deadline`) is
        checked before every decode attempt — serving a cached entry
        never raises, but an expired budget refuses to start new decode
        work (:class:`~repro.core.errors.DeadlineExceededError`).
        ``funnel`` (a :class:`~repro.obs.funnel.QueryFunnel`) receives
        this request's decode traffic, charged to the requested ``lod``.
        Thread-safe: the whole miss path is serialized per provider.
        """
        with self._lock:
            return self._get_locked(obj_id, lod, deadline, funnel)

    def _get_locked(self, obj_id: int, lod: int, deadline=None, funnel=None) -> DecodedLOD:
        key = (self.name, obj_id, lod)
        cached = self.cache.get(key)
        if cached is not None:
            if funnel is not None:
                funnel.stage(lod).cache_hits += 1
            return cached
        if funnel is not None:
            funnel.stage(lod).cache_misses += 1
        if lod <= self._failed_lod.get(obj_id, -1):
            if funnel is not None:
                funnel.stage(lod).decode_failures += 1
            raise DecodeFailureError(self.name, obj_id, self.failed_ids[obj_id])

        start = time.perf_counter()
        push_phase("decode")
        try:
            last_error: Exception | None = None
            for attempt_lod in range(lod, -1, -1):
                # Outside the per-attempt except below, so expiry
                # propagates instead of reading as a decode failure.
                if deadline is not None:
                    deadline.check("decode")
                try:
                    decoded = self._decode_at(obj_id, attempt_lod)
                except Exception as exc:
                    self.decode_failures += 1
                    self._m_decode_failures.inc()
                    self._decoders.pop(obj_id, None)
                    last_error = exc
                    log_event(
                        _LOG, "decode_failure", level=logging.WARNING,
                        dataset=self.name, object=obj_id, lod=attempt_lod,
                        reason=repr(exc),
                    )
                    continue
                if attempt_lod < lod:
                    decoded.degraded = True
                    self.degraded_ids[obj_id] = attempt_lod
                    self._m_decode_fallbacks.inc()
                    log_event(
                        _LOG, "decode_fallback", level=logging.WARNING,
                        dataset=self.name, object=obj_id,
                        requested_lod=lod, served_lod=attempt_lod,
                    )
                self.cache.put(key, decoded)
                if funnel is not None:
                    stage = funnel.stage(lod)
                    stage.decoded_objects += 1
                    stage.decoded_bytes += decoded.nbytes
                return decoded
            reason = repr(last_error) if last_error is not None else "unknown"
            self.failed_ids[obj_id] = reason
            self._failed_lod[obj_id] = max(self._failed_lod.get(obj_id, -1), lod)
            if funnel is not None:
                funnel.stage(lod).decode_failures += 1
            log_event(
                _LOG, "decode_exhausted", level=logging.ERROR,
                dataset=self.name, object=obj_id, requested_lod=lod, reason=reason,
            )
            raise DecodeFailureError(self.name, obj_id, reason)
        finally:
            pop_phase()
            elapsed = time.perf_counter() - start
            self.decode_seconds += elapsed
            self._m_decode_seconds.observe(elapsed)
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                # Record the *same* elapsed number the engine attributes
                # to decode_seconds, so trace and stats cannot disagree.
                tracer.record(
                    "decode", elapsed, dataset=self.name, object=obj_id, lod=lod
                )

    def max_lod(self, obj_id: int) -> int:
        return self.objects[obj_id].max_lod

    def reset_decoders(self) -> None:
        """Drop decoder states (used between benchmark repetitions)."""
        self._decoders.clear()
