"""Memory-centered data management (paper Section 5.3).

Objects are compressed, grouped into fixed-size space cuboids, persisted
one file per cuboid, and loaded into memory for querying. Decoded
geometry is recycled through a byte-budgeted LRU cache keyed by
``(object, LOD)``, so spatially batched queries almost never decode the
same representation twice (Table 2).

Two on-disk layouts are supported: legacy v2 cuboid containers
(:mod:`repro.storage.fileformat`, loaded eagerly) and v3 memory-mapped
shard files (:mod:`repro.storage.shardfile`, loaded lazily and shared
read-only across worker processes through the OS page cache).
"""

from repro.storage.cache import DecodeCache, DecodedLOD, DecodedObjectProvider
from repro.storage.cuboid import CuboidGrid
from repro.storage.fileformat import (
    BlobFault,
    read_cuboid_file,
    salvage_cuboid_file,
    write_cuboid_file,
)
from repro.storage.shardfile import (
    SHARD_FORMAT_VERSION,
    ShardEntry,
    ShardReader,
    salvage_shard_file,
    write_shard_file,
)
from repro.storage.store import (
    Dataset,
    LoadReport,
    ShardBackedObject,
    ShardSet,
    load_dataset,
    migrate_dataset,
    save_dataset,
    spill_dataset,
)

__all__ = [
    "DecodeCache",
    "DecodedLOD",
    "DecodedObjectProvider",
    "CuboidGrid",
    "BlobFault",
    "read_cuboid_file",
    "salvage_cuboid_file",
    "write_cuboid_file",
    "SHARD_FORMAT_VERSION",
    "ShardEntry",
    "ShardReader",
    "salvage_shard_file",
    "write_shard_file",
    "Dataset",
    "LoadReport",
    "ShardBackedObject",
    "ShardSet",
    "load_dataset",
    "migrate_dataset",
    "save_dataset",
    "spill_dataset",
]
