"""Memory-centered data management (paper Section 5.3).

Objects are compressed, grouped into fixed-size space cuboids, persisted
one file per cuboid, and loaded into memory for querying. Decoded
geometry is recycled through a byte-budgeted LRU cache keyed by
``(object, LOD)``, so spatially batched queries almost never decode the
same representation twice (Table 2).
"""

from repro.storage.cache import DecodeCache, DecodedLOD, DecodedObjectProvider
from repro.storage.cuboid import CuboidGrid
from repro.storage.fileformat import (
    BlobFault,
    read_cuboid_file,
    salvage_cuboid_file,
    write_cuboid_file,
)
from repro.storage.store import Dataset, LoadReport, load_dataset, save_dataset

__all__ = [
    "DecodeCache",
    "DecodedLOD",
    "DecodedObjectProvider",
    "CuboidGrid",
    "BlobFault",
    "read_cuboid_file",
    "salvage_cuboid_file",
    "write_cuboid_file",
    "Dataset",
    "LoadReport",
    "load_dataset",
    "save_dataset",
]
