"""Engine configuration.

One :class:`EngineConfig` captures a full experimental cell of the
paper's Table 1: the query paradigm (FR or FPR) plus the acceleration
methods applied. ``Accel`` mirrors the table's columns.

Runtime-tunable settings resolve through one shared precedence chain
(:func:`resolve_setting`), documented once here and used by the engine,
the executor, the CLI, and the query server:

========================  ====================================================
layer (highest first)     example
========================  ====================================================
``QuerySpec`` field       ``QuerySpec(deadline_ms=50)``
call-site override        ``--deadline-ms 50`` / ``resolve_setting(override=)``
``EngineConfig`` field    ``EngineConfig(deadline_ms=50)``
``REPRO_*`` environment   ``REPRO_DEADLINE_MS=50``
built-in default          no deadline
========================  ====================================================

The first layer whose value is not ``None`` wins. Environment values
are parsed and validated loudly — a malformed ``REPRO_*`` raises
:class:`~repro.core.errors.EngineConfigError` rather than silently
falling back to the default.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.core.errors import EngineConfigError

__all__ = ["Accel", "EngineConfig", "SETTINGS", "resolve_setting"]


def _parse_int(env_name: str, raw: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise EngineConfigError(
            f"{env_name} must be an integer, got {raw!r}"
        ) from None


def _check_min(env_name: str, minimum: int):
    def check(value):
        if value < minimum:
            raise EngineConfigError(f"{env_name} must be >= {minimum}")
        return value

    return check


@dataclass(frozen=True)
class Setting:
    """One runtime-tunable setting and how its layers resolve.

    ``parse`` turns the raw environment string into a value (raising
    :class:`EngineConfigError` on malformed input); ``check`` validates
    any resolved value regardless of which layer supplied it.
    """

    name: str
    env: str | None
    default: object
    parse: object = str
    check: object = None

    def from_env(self):
        """The environment layer's value, or ``None`` when unset."""
        if self.env is None:
            return None
        raw = os.environ.get(self.env, "").strip()
        if not raw:
            return None
        return self.parse(self.env, raw) if self.parse is not str else raw


def _parse_backend(env_name: str, raw: str) -> str:
    value = raw.lower()
    if value not in ("thread", "process"):
        raise EngineConfigError(
            f"{env_name} must be 'thread' or 'process', got {raw!r}"
        )
    return value


def _parse_storage_backend(env_name: str, raw: str) -> str:
    value = raw.lower()
    if value not in ("shard", "legacy"):
        raise EngineConfigError(
            f"{env_name} must be 'shard' or 'legacy', got {raw!r}"
        )
    return value


def _parse_bool(env_name: str, raw: str) -> bool:
    value = raw.lower()
    if value in ("1", "true", "yes", "on"):
        return True
    if value in ("0", "false", "no", "off"):
        return False
    raise EngineConfigError(
        f"{env_name} must be a boolean (0/1/true/false), got {raw!r}"
    )


#: Every setting that resolves through the shared precedence chain.
SETTINGS: dict[str, Setting] = {
    s.name: s
    for s in (
        Setting(
            "query_workers", "REPRO_QUERY_WORKERS", 1,
            parse=_parse_int, check=_check_min("query_workers", 1),
        ),
        Setting("query_backend", "REPRO_QUERY_BACKEND", "thread",
                parse=_parse_backend),
        Setting("batched_refine", "REPRO_BATCHED_REFINE", True,
                parse=_parse_bool),
        # Persistent-store layout and process-backend transport:
        # "shard" = v3 memory-mapped cuboid shard files (workers share
        # read-only pages), "legacy" = v2 cuboid containers with
        # pickle-spill transport. Reading auto-detects either format;
        # this selects what *new* saves and spills produce.
        Setting("storage_backend", "REPRO_STORAGE_BACKEND", "legacy",
                parse=_parse_storage_backend),
        Setting(
            "deadline_ms", "REPRO_DEADLINE_MS", None,
            parse=_parse_int, check=_check_min("deadline_ms", 1),
        ),
        # Query-service knobs (repro.serve): resolved by the server from
        # the same chain so `repro serve`, tests, and deployments agree.
        Setting(
            "serve_port", "REPRO_SERVE_PORT", 8030,
            parse=_parse_int, check=_check_min("serve_port", 0),
        ),
        Setting(
            "serve_max_inflight", "REPRO_SERVE_MAX_INFLIGHT", 4,
            parse=_parse_int, check=_check_min("serve_max_inflight", 1),
        ),
        Setting(
            "serve_max_queue", "REPRO_SERVE_MAX_QUEUE", 16,
            parse=_parse_int, check=_check_min("serve_max_queue", 0),
        ),
    )
}


def resolve_setting(name: str, *, spec=None, override=None, config=None):
    """Resolve one setting through the documented precedence chain.

    ``spec`` is the per-query (``QuerySpec``) value, ``override`` the
    call-site / CLI value, ``config`` either an :class:`EngineConfig`
    (its field of the same name is read) or a plain value. The first
    non-``None`` layer wins: spec > override > config > env > default.
    Whatever layer supplies the value, it is validated by the setting's
    ``check``.
    """
    setting = SETTINGS[name]
    config_value = (
        getattr(config, name, None) if isinstance(config, EngineConfig) else config
    )
    for value in (spec, override, config_value):
        if value is not None:
            return setting.check(value) if setting.check else value
    value = setting.from_env()
    if value is not None:
        return setting.check(value) if setting.check else value
    return setting.default


@dataclass(frozen=True)
class Accel:
    """Acceleration methods (paper Section 5.1).

    ``aabbtree`` — per-object AABB-trees on decoded faces;
    ``partition`` — skeleton-based sub-object decomposition with
    per-part boxes in the global index;
    ``gpu`` — fused mega-batch kernel execution (simulated GPU).

    ``partition`` and ``gpu`` compose (the paper's Partition+GPU column);
    ``aabbtree`` is an alternative to ``gpu`` batching and to partition
    filtering, exactly as in Table 1, so combining it with the others is
    rejected.
    """

    aabbtree: bool = False
    partition: bool = False
    gpu: bool = False

    def validate(self) -> None:
        if self.aabbtree and (self.partition or self.gpu):
            raise EngineConfigError(
                "AABB-tree acceleration does not combine with partition/GPU "
                "(Table 1 evaluates them as alternatives)"
            )

    @property
    def label(self) -> str:
        """Short label matching the paper's Fig. 10 x-axis (B/P/A/G)."""
        if self.aabbtree:
            return "A"
        if self.partition and self.gpu:
            return "P+G"
        if self.partition:
            return "P"
        if self.gpu:
            return "G"
        return "B"


@dataclass(frozen=True)
class EngineConfig:
    """Complete engine configuration (one Table 1 cell)."""

    paradigm: str = "fpr"  # "fr" | "fpr"
    accel: Accel = field(default_factory=Accel)
    lod_list: tuple[int, ...] | None = None  # None: all LODs (fpr) / top (fr)
    partition_parts: int = 8
    partition_min_faces: int = 400  # only decompose complex objects
    cache_bytes: int = 256 * 1024 * 1024
    cache_enabled: bool = True
    tree_leaf_size: int = 8
    cpu_block: int = 48
    gpu_block: int = 4096
    workers: int = 1
    # Inter-target query parallelism: how many workers the QueryExecutor
    # fans target objects across, independent of the face-pair `workers`
    # above. None means "not set explicitly" — the engine then honors
    # the REPRO_QUERY_WORKERS environment variable (the CI override
    # hook) and finally defaults to 1 (serial).
    query_workers: int | None = None
    # How those workers run: "thread" shares one engine across a thread
    # pool (GIL-bound — measured ~1.0x on the FPR refinement path),
    # "process" fans the same cuboid-ordered chunks across worker
    # processes (repro.parallel.procpool), each opening the dataset from
    # the on-disk store with its own DecodeCache. None defers to the
    # REPRO_QUERY_BACKEND environment variable, then "thread".
    query_backend: str | None = None
    # Batched LOD-round refinement: each round gathers every surviving
    # candidate pair (and, on the serial/worker target loop, every
    # target in the chunk) into flat face-pair workloads evaluated by a
    # few fused kernel calls (repro.core.batch), instead of one Python
    # dispatch per pair. Results are identical either way; this exists
    # as an escape hatch and as the A/B axis for bench_pipeline. None
    # defers to REPRO_BATCHED_REFINE, then True. The AABB-tree
    # acceleration path always runs per pair (tree traversals do not
    # batch across pairs).
    batched_refine: bool | None = None
    # Persistent-store layout + process-backend dataset transport:
    # "shard" saves v3 memory-mapped cuboid shard stores and ships
    # in-memory datasets to workers as shard spills (workers mmap the
    # shards read-only and share OS page cache); "legacy" keeps the v2
    # cuboid containers and whole-dataset pickle-spill. Loading always
    # auto-detects the on-disk format regardless of this setting. None
    # defers to REPRO_STORAGE_BACKEND, then "legacy".
    storage_backend: str | None = None
    # FPR may settle a nearest neighbor before its exact distance is
    # known (the result carries an upper bound). Setting this forces a
    # final top-LOD distance evaluation for the reported neighbors -
    # costlier, but every returned distance is exact.
    exact_nn_distances: bool = False
    # Wall-clock budget per query, in milliseconds. At cooperative
    # checkpoints an expired deadline turns the rest of the query into a
    # *partial* result (QueryResult.completeness says what finished).
    # None means "not set explicitly": the engine then honors the
    # REPRO_DEADLINE_MS environment variable, and finally no deadline.
    # A QuerySpec-level deadline_ms overrides both.
    deadline_ms: int | None = None
    # Process-backend worker supervision (repro.parallel.procpool):
    # a chunk whose heartbeat goes stale for longer than
    # worker_hang_timeout_seconds has its pool killed and respawned
    # (None disables hang detection); each chunk is attempted at most
    # chunk_max_attempts times on the pool before it is quarantined to
    # serial in-process execution; and after pool_failure_threshold
    # consecutive pool failures the circuit breaker quarantines all
    # remaining chunks instead of resubmitting.
    worker_hang_timeout_seconds: float | None = None
    chunk_max_attempts: int = 2
    pool_failure_threshold: int = 3
    # Error budget: abort a query with ErrorBudgetExceededError once more
    # than this many distinct objects have degraded (decode fallback or
    # total decode failure). None disables the budget.
    max_decode_failures: int | None = None
    # Task-level fault tolerance (see repro.parallel.tasks.TaskScheduler).
    task_retries: int = 2
    task_backoff_seconds: float = 0.0
    # Optional repro.faults.FaultInjector threaded into the decode
    # provider and task scheduler for chaos testing.
    fault_injector: object = None
    # Observability (repro.obs): span tracing is off by default — when
    # disabled the engine's instrumented paths touch only the shared
    # no-op span. `metrics` overrides the process-wide registry
    # (repro.obs.metrics.REGISTRY) with a private MetricsRegistry.
    tracing: bool = False
    metrics: object = None
    # Sampling profiler (repro.obs.profile): when enabled the engine
    # runs a sampling thread for the duration of each query, bucketing
    # stacks by pipeline phase; per-chunk profiles from process workers
    # are shipped back and merged. Off by default — the only cost then
    # is a thread-local list push/pop per phase.
    profiling: bool = False
    profile_interval_ms: float = 2.0

    def __post_init__(self):
        if self.paradigm not in ("fr", "fpr"):
            raise EngineConfigError(f"paradigm must be 'fr' or 'fpr', got {self.paradigm!r}")
        if self.partition_parts < 1:
            raise EngineConfigError("partition_parts must be >= 1")
        if self.max_decode_failures is not None and self.max_decode_failures < 0:
            raise EngineConfigError("max_decode_failures must be None or >= 0")
        if self.query_workers is not None and self.query_workers < 1:
            raise EngineConfigError("query_workers must be None or >= 1")
        if self.query_backend not in (None, "thread", "process"):
            raise EngineConfigError(
                f"query_backend must be None, 'thread', or 'process', "
                f"got {self.query_backend!r}"
            )
        if self.storage_backend not in (None, "shard", "legacy"):
            raise EngineConfigError(
                f"storage_backend must be None, 'shard', or 'legacy', "
                f"got {self.storage_backend!r}"
            )
        if self.batched_refine not in (None, True, False):
            raise EngineConfigError(
                f"batched_refine must be None, True, or False, "
                f"got {self.batched_refine!r}"
            )
        if self.deadline_ms is not None and self.deadline_ms < 1:
            raise EngineConfigError("deadline_ms must be None or >= 1")
        if (
            self.worker_hang_timeout_seconds is not None
            and self.worker_hang_timeout_seconds <= 0
        ):
            raise EngineConfigError("worker_hang_timeout_seconds must be None or > 0")
        if self.chunk_max_attempts < 1:
            raise EngineConfigError("chunk_max_attempts must be >= 1")
        if self.pool_failure_threshold < 1:
            raise EngineConfigError("pool_failure_threshold must be >= 1")
        if self.task_retries < 0:
            raise EngineConfigError("task_retries must be >= 0")
        if self.task_backoff_seconds < 0:
            raise EngineConfigError("task_backoff_seconds must be >= 0")
        if self.profile_interval_ms <= 0:
            raise EngineConfigError("profile_interval_ms must be > 0")
        if self.lod_list is not None:
            if not self.lod_list:
                raise EngineConfigError("lod_list must be non-empty when given")
            if list(self.lod_list) != sorted(set(self.lod_list)):
                raise EngineConfigError("lod_list must be strictly ascending")
            if any(lod < 0 for lod in self.lod_list):
                raise EngineConfigError("lod_list entries must be >= 0")
        self.accel.validate()

    @property
    def label(self) -> str:
        """e.g. ``FPR/P+G`` — paradigm plus acceleration, as in Table 1."""
        return f"{self.paradigm.upper()}/{self.accel.label}"

    def with_paradigm(self, paradigm: str) -> "EngineConfig":
        return replace(self, paradigm=paradigm)

    def resolve_query_workers(self) -> int:
        """The effective query-worker count (see :func:`resolve_setting`)."""
        return resolve_setting("query_workers", config=self)

    def resolve_deadline_ms(self) -> int | None:
        """The effective per-query wall-clock budget in milliseconds."""
        return resolve_setting("deadline_ms", config=self)

    def resolve_query_backend(self) -> str:
        """The effective parallel backend: ``"thread"`` or ``"process"``."""
        return resolve_setting("query_backend", config=self)

    def resolve_batched_refine(self) -> bool:
        """Whether refinement rounds run batched (see :mod:`repro.core.batch`)."""
        return resolve_setting("batched_refine", config=self)

    def resolve_storage_backend(self) -> str:
        """The effective store layout / transport: ``"shard"`` or ``"legacy"``."""
        return resolve_setting("storage_backend", config=self)
