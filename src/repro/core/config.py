"""Engine configuration.

One :class:`EngineConfig` captures a full experimental cell of the
paper's Table 1: the query paradigm (FR or FPR) plus the acceleration
methods applied. ``Accel`` mirrors the table's columns.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.core.errors import EngineConfigError

__all__ = ["Accel", "EngineConfig"]


@dataclass(frozen=True)
class Accel:
    """Acceleration methods (paper Section 5.1).

    ``aabbtree`` — per-object AABB-trees on decoded faces;
    ``partition`` — skeleton-based sub-object decomposition with
    per-part boxes in the global index;
    ``gpu`` — fused mega-batch kernel execution (simulated GPU).

    ``partition`` and ``gpu`` compose (the paper's Partition+GPU column);
    ``aabbtree`` is an alternative to ``gpu`` batching and to partition
    filtering, exactly as in Table 1, so combining it with the others is
    rejected.
    """

    aabbtree: bool = False
    partition: bool = False
    gpu: bool = False

    def validate(self) -> None:
        if self.aabbtree and (self.partition or self.gpu):
            raise EngineConfigError(
                "AABB-tree acceleration does not combine with partition/GPU "
                "(Table 1 evaluates them as alternatives)"
            )

    @property
    def label(self) -> str:
        """Short label matching the paper's Fig. 10 x-axis (B/P/A/G)."""
        if self.aabbtree:
            return "A"
        if self.partition and self.gpu:
            return "P+G"
        if self.partition:
            return "P"
        if self.gpu:
            return "G"
        return "B"


@dataclass(frozen=True)
class EngineConfig:
    """Complete engine configuration (one Table 1 cell)."""

    paradigm: str = "fpr"  # "fr" | "fpr"
    accel: Accel = field(default_factory=Accel)
    lod_list: tuple[int, ...] | None = None  # None: all LODs (fpr) / top (fr)
    partition_parts: int = 8
    partition_min_faces: int = 400  # only decompose complex objects
    cache_bytes: int = 256 * 1024 * 1024
    cache_enabled: bool = True
    tree_leaf_size: int = 8
    cpu_block: int = 48
    gpu_block: int = 4096
    workers: int = 1
    # Inter-target query parallelism: how many workers the QueryExecutor
    # fans target objects across, independent of the face-pair `workers`
    # above. None means "not set explicitly" — the engine then honors
    # the REPRO_QUERY_WORKERS environment variable (the CI override
    # hook) and finally defaults to 1 (serial).
    query_workers: int | None = None
    # How those workers run: "thread" shares one engine across a thread
    # pool (GIL-bound — measured ~1.0x on the FPR refinement path),
    # "process" fans the same cuboid-ordered chunks across worker
    # processes (repro.parallel.procpool), each opening the dataset from
    # the on-disk store with its own DecodeCache. None defers to the
    # REPRO_QUERY_BACKEND environment variable, then "thread".
    query_backend: str | None = None
    # FPR may settle a nearest neighbor before its exact distance is
    # known (the result carries an upper bound). Setting this forces a
    # final top-LOD distance evaluation for the reported neighbors -
    # costlier, but every returned distance is exact.
    exact_nn_distances: bool = False
    # Wall-clock budget per query, in milliseconds. At cooperative
    # checkpoints an expired deadline turns the rest of the query into a
    # *partial* result (QueryResult.completeness says what finished).
    # None means "not set explicitly": the engine then honors the
    # REPRO_DEADLINE_MS environment variable, and finally no deadline.
    # A QuerySpec-level deadline_ms overrides both.
    deadline_ms: int | None = None
    # Process-backend worker supervision (repro.parallel.procpool):
    # a chunk whose heartbeat goes stale for longer than
    # worker_hang_timeout_seconds has its pool killed and respawned
    # (None disables hang detection); each chunk is attempted at most
    # chunk_max_attempts times on the pool before it is quarantined to
    # serial in-process execution; and after pool_failure_threshold
    # consecutive pool failures the circuit breaker quarantines all
    # remaining chunks instead of resubmitting.
    worker_hang_timeout_seconds: float | None = None
    chunk_max_attempts: int = 2
    pool_failure_threshold: int = 3
    # Error budget: abort a query with ErrorBudgetExceededError once more
    # than this many distinct objects have degraded (decode fallback or
    # total decode failure). None disables the budget.
    max_decode_failures: int | None = None
    # Task-level fault tolerance (see repro.parallel.tasks.TaskScheduler).
    task_retries: int = 2
    task_backoff_seconds: float = 0.0
    # Optional repro.faults.FaultInjector threaded into the decode
    # provider and task scheduler for chaos testing.
    fault_injector: object = None
    # Observability (repro.obs): span tracing is off by default — when
    # disabled the engine's instrumented paths touch only the shared
    # no-op span. `metrics` overrides the process-wide registry
    # (repro.obs.metrics.REGISTRY) with a private MetricsRegistry.
    tracing: bool = False
    metrics: object = None
    # Sampling profiler (repro.obs.profile): when enabled the engine
    # runs a sampling thread for the duration of each query, bucketing
    # stacks by pipeline phase; per-chunk profiles from process workers
    # are shipped back and merged. Off by default — the only cost then
    # is a thread-local list push/pop per phase.
    profiling: bool = False
    profile_interval_ms: float = 2.0

    def __post_init__(self):
        if self.paradigm not in ("fr", "fpr"):
            raise EngineConfigError(f"paradigm must be 'fr' or 'fpr', got {self.paradigm!r}")
        if self.partition_parts < 1:
            raise EngineConfigError("partition_parts must be >= 1")
        if self.max_decode_failures is not None and self.max_decode_failures < 0:
            raise EngineConfigError("max_decode_failures must be None or >= 0")
        if self.query_workers is not None and self.query_workers < 1:
            raise EngineConfigError("query_workers must be None or >= 1")
        if self.query_backend not in (None, "thread", "process"):
            raise EngineConfigError(
                f"query_backend must be None, 'thread', or 'process', "
                f"got {self.query_backend!r}"
            )
        if self.deadline_ms is not None and self.deadline_ms < 1:
            raise EngineConfigError("deadline_ms must be None or >= 1")
        if (
            self.worker_hang_timeout_seconds is not None
            and self.worker_hang_timeout_seconds <= 0
        ):
            raise EngineConfigError("worker_hang_timeout_seconds must be None or > 0")
        if self.chunk_max_attempts < 1:
            raise EngineConfigError("chunk_max_attempts must be >= 1")
        if self.pool_failure_threshold < 1:
            raise EngineConfigError("pool_failure_threshold must be >= 1")
        if self.task_retries < 0:
            raise EngineConfigError("task_retries must be >= 0")
        if self.task_backoff_seconds < 0:
            raise EngineConfigError("task_backoff_seconds must be >= 0")
        if self.profile_interval_ms <= 0:
            raise EngineConfigError("profile_interval_ms must be > 0")
        if self.lod_list is not None:
            if not self.lod_list:
                raise EngineConfigError("lod_list must be non-empty when given")
            if list(self.lod_list) != sorted(set(self.lod_list)):
                raise EngineConfigError("lod_list must be strictly ascending")
            if any(lod < 0 for lod in self.lod_list):
                raise EngineConfigError("lod_list entries must be >= 0")
        self.accel.validate()

    @property
    def label(self) -> str:
        """e.g. ``FPR/P+G`` — paradigm plus acceleration, as in Table 1."""
        return f"{self.paradigm.upper()}/{self.accel.label}"

    def with_paradigm(self, paradigm: str) -> "EngineConfig":
        return replace(self, paradigm=paradigm)

    def resolve_query_workers(self) -> int:
        """The effective query-worker count.

        An explicit ``query_workers`` always wins; otherwise the
        ``REPRO_QUERY_WORKERS`` environment variable applies (rejecting
        malformed values loudly rather than silently running serial),
        and the default is 1.
        """
        if self.query_workers is not None:
            return self.query_workers
        env = os.environ.get("REPRO_QUERY_WORKERS", "").strip()
        if not env:
            return 1
        try:
            value = int(env)
        except ValueError:
            raise EngineConfigError(
                f"REPRO_QUERY_WORKERS must be an integer, got {env!r}"
            ) from None
        if value < 1:
            raise EngineConfigError("REPRO_QUERY_WORKERS must be >= 1")
        return value

    def resolve_deadline_ms(self) -> int | None:
        """The effective per-query wall-clock budget in milliseconds.

        An explicit ``deadline_ms`` always wins; otherwise the
        ``REPRO_DEADLINE_MS`` environment variable applies (rejecting
        malformed values loudly rather than silently running
        unbounded), and the default is ``None`` (no deadline).
        """
        if self.deadline_ms is not None:
            return self.deadline_ms
        env = os.environ.get("REPRO_DEADLINE_MS", "").strip()
        if not env:
            return None
        try:
            value = int(env)
        except ValueError:
            raise EngineConfigError(
                f"REPRO_DEADLINE_MS must be an integer, got {env!r}"
            ) from None
        if value < 1:
            raise EngineConfigError("REPRO_DEADLINE_MS must be >= 1")
        return value

    def resolve_query_backend(self) -> str:
        """The effective parallel backend: ``"thread"`` or ``"process"``.

        An explicit ``query_backend`` always wins; otherwise the
        ``REPRO_QUERY_BACKEND`` environment variable applies (rejecting
        unknown values loudly), and the default is ``"thread"``.
        """
        if self.query_backend is not None:
            return self.query_backend
        env = os.environ.get("REPRO_QUERY_BACKEND", "").strip().lower()
        if not env:
            return "thread"
        if env not in ("thread", "process"):
            raise EngineConfigError(
                f"REPRO_QUERY_BACKEND must be 'thread' or 'process', got {env!r}"
            )
        return env
