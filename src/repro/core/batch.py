"""Gather/segment layer: many (target, source) face-set jobs per kernel call.

The refine stage historically dispatched one Python-level kernel call per
surviving candidate pair. This module batches *across* pairs: every job
contributes fixed-size sub-blocks of its face-pair cross product into a
shared buffer, the buffer is flushed through one fused numpy kernel
(:func:`~repro.geometry.tritri.tri_tri_intersect_batch` /
:func:`~repro.geometry.distance.tri_tri_distance_batch`) once it reaches
the saturating batch size, and per-job results are folded back out with
``np.*.reduceat`` segment reductions over the flush's chunk offsets.

Early exit is per job, via a wave discipline chosen for determinism:

* sub-blocks of a job's cross product are enumerated in the same fixed
  row-major order :func:`~repro.parallel.tasks.iter_pair_blocks` always
  used;
* each *wave* takes at most one sub-block from every unsettled job;
* every wave ends with a flush, and a job's settle state is re-checked
  only at wave boundaries — before its next sub-block can be enqueued.

A job therefore evaluates exactly ``ceil`` of its own settle point in
sub-blocks, **independent of which other jobs share the batch**. That is
what keeps ``face_pairs_by_lod`` identical between the serial run and
any chunked parallel run (thread or process backend), where the same
jobs are batched in different groupings.

``checkpoint`` (when given) runs after every flush; the refine layer
points it at the deadline check + worker heartbeat, which is the batched
path's cooperative-cancellation granularity.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.distance import tri_tri_distance_batch
from repro.geometry.tritri import tri_tri_intersect_batch
from repro.parallel.tasks import iter_pair_blocks

__all__ = ["batched_any_intersect", "batched_min_distances"]

#: Floor for early-exit sub-blocks on the distance path: below this the
#: wave bookkeeping dominates; above it too many lanes are wasted past
#: the threshold crossing (same trade-off as GeometryComputer's GPU
#: early-exit block).
_EXIT_BLOCK_FLOOR = 512


def _lane_box_gap_sq(tris_a: np.ndarray, tris_b: np.ndarray) -> np.ndarray:
    """Squared AABB gap per lane — an exact lower bound on lane distance."""
    lo_a = tris_a.min(axis=1)
    hi_a = tris_a.max(axis=1)
    lo_b = tris_b.min(axis=1)
    hi_b = tris_b.max(axis=1)
    gap = np.maximum(0.0, np.maximum(lo_a - hi_b, lo_b - hi_a))
    return (gap * gap).sum(axis=1)


def _screened_intersect(tris_a, tris_b, starts) -> np.ndarray:
    """SAT tests only on lanes whose triangle AABBs overlap.

    Disjoint boxes cannot hold intersecting triangles, so screening is
    exact; the screen is a pure per-lane function, so verdicts never
    depend on batch composition.
    """
    overlap = _lane_box_gap_sq(tris_a, tris_b) <= 0.0
    out = np.zeros(len(tris_a), dtype=bool)
    if overlap.any():
        out[overlap] = tri_tri_intersect_batch(tris_a[overlap], tris_b[overlap])
    return out


def _screened_distance(tris_a, tris_b, starts) -> np.ndarray:
    """Exact distances only on lanes that can decide their segment's min.

    Per lane, the AABB gap lower-bounds the true distance and the
    first-vertex pair distance upper-bounds it. A lane whose lower bound
    exceeds its segment's smallest upper bound cannot realize the
    segment minimum (the minimizing lane's lower bound never does), so
    it is reported as ``inf`` — the ``minimum.reduceat`` downstream is
    unchanged, and every segment keeps at least the lane that decides
    it. Bounds and cap are pure functions of the lane and its own
    sub-block, so screening never depends on batch composition.
    """
    lb_sq = _lane_box_gap_sq(tris_a, tris_b)
    delta = tris_a[:, 0] - tris_b[:, 0]
    ub_sq = (delta * delta).sum(axis=1)
    seg_ub = np.minimum.reduceat(ub_sq, starts)
    lengths = np.diff(np.append(starts, len(tris_a)))
    keep = lb_sq <= np.repeat(seg_ub, lengths)
    out = np.full(len(tris_a), np.inf)
    if keep.any():
        out[keep] = tri_tri_distance_batch(
            tris_a[keep], tris_b[keep], check_intersection=False
        )
    return out


def _run_waves(computer, jobs, *, block, kernel, reduce_segments, fold, init,
               settled, stats, checkpoint):
    """Drive all jobs to their settle points through fused flushes.

    ``kernel(tris_a, tris_b)`` evaluates one concatenated flush;
    ``reduce_segments(values, starts)`` collapses it to one value per
    contributed sub-block; ``fold(acc, value)`` merges a sub-block's
    value into its owner's accumulator (seeded with ``init``); and
    ``settled(acc)`` decides, at wave boundaries, whether a job needs no
    further sub-blocks.
    """
    results = [init] * len(jobs)
    capacity = max(1, computer.gpu_block)
    iters = [
        iter_pair_blocks(len(tris_a), len(tris_b), block)
        for tris_a, tris_b in jobs
    ]
    buf_a: list[np.ndarray] = []
    buf_b: list[np.ndarray] = []
    owners: list[int] = []
    filled = 0
    pairs_seen = 0

    def flush():
        nonlocal filled, pairs_seen
        if not buf_a:
            return
        tris_a = np.concatenate(buf_a)
        tris_b = np.concatenate(buf_b)
        pairs_seen += len(tris_a)
        computer._note_batch(len(tris_a))
        lengths = [len(chunk) for chunk in buf_a]
        starts = np.zeros(len(lengths), dtype=np.intp)
        np.cumsum(lengths[:-1], out=starts[1:])
        values = kernel(tris_a, tris_b, starts)
        segments = reduce_segments(values, starts)
        for owner, value in zip(owners, segments):
            results[owner] = fold(results[owner], value)
        buf_a.clear()
        buf_b.clear()
        owners.clear()
        filled = 0
        if checkpoint is not None:
            checkpoint()

    active = list(range(len(jobs)))
    while active:
        alive = []
        for job_id in active:
            step = next(iters[job_id], None)
            if step is None:
                continue  # cross product exhausted; result is final
            ii, jj = step
            tris_a, tris_b = jobs[job_id]
            buf_a.append(tris_a[ii])
            buf_b.append(tris_b[jj])
            owners.append(job_id)
            filled += len(ii)
            alive.append(job_id)
            if filled >= capacity:
                flush()
        # Wave barrier: settle decisions always see every result of the
        # wave, so a job's evaluated-pair count depends only on its own
        # sub-block sequence, never on its batch neighbors.
        flush()
        active = [job_id for job_id in alive if not settled(results[job_id])]

    if stats is not None:
        stats["pairs"] = stats.get("pairs", 0) + pairs_seen
    return results


def batched_any_intersect(computer, jobs, stats=None, checkpoint=None) -> list[bool]:
    """Per job, whether any face pair between its two sets intersects.

    Equivalent to ``[computer.intersects(a, b) for a, b in jobs]`` but in
    a handful of fused kernel calls. Intersection hits are early-exit
    dominated (positives usually land in the first blocks), so jobs
    contribute CPU-block-sized sub-blocks per wave; a job stops once a
    wave proves a hit. Jobs with an empty side contribute nothing and
    report ``False``, matching the per-pair kernel.
    """
    return _run_waves(
        computer,
        jobs,
        block=max(1, computer.cpu_block),
        kernel=_screened_intersect,
        reduce_segments=lambda values, starts: np.logical_or.reduceat(values, starts),
        fold=lambda acc, value: acc or bool(value),
        init=False,
        settled=lambda acc: acc,
        stats=stats,
        checkpoint=checkpoint,
    )


def batched_min_distances(
    computer, jobs, stop_below: float = 0.0, stats=None, checkpoint=None
) -> list[float]:
    """Per job, the minimum face-pair distance between its two sets.

    Equivalent to ``[computer.min_distance(a, b, stop_below=...) for a, b
    in jobs]`` up to early exit: a job stops contributing sub-blocks once
    its running minimum is ``<= stop_below`` (within's threshold settles
    the pair; 0.0 still exits on contact), so non-settling jobs get exact
    minima and settling jobs get a value provably at or under the
    threshold. ``min`` is exact and order-independent in floating point,
    so batch composition never changes a reported distance.
    """
    if stop_below > 0.0:
        block = min(computer.gpu_block, max(computer.cpu_block, _EXIT_BLOCK_FLOOR))
    else:
        block = computer.gpu_block
    return _run_waves(
        computer,
        jobs,
        block=max(1, block),
        kernel=_screened_distance,
        reduce_segments=lambda values, starts: np.minimum.reduceat(values, starts),
        fold=lambda acc, value: min(acc, float(value)),
        init=math.inf,
        settled=lambda acc: acc <= stop_below,
        stats=stats,
        checkpoint=checkpoint,
    )
