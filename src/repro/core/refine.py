"""Progressive refinement: the paper's Algorithms 1, 2, and 3.

Each function refines one target object against its filtered candidates
over an ascending LOD schedule, settling (pruning) candidates as early
as the progressive-approximation properties allow:

* intersection — an intersecting face pair at any LOD settles the pair
  as a result (property 1); containment is checked at the top LOD;
* within — a distance ≤ D at any LOD settles the pair as a result
  (property 2: low-LOD distance upper-bounds the true distance);
* nearest neighbor — each LOD tightens every candidate's MAXDIST, and
  candidates whose MINDIST exceeds the global MINMAXDIST are dropped;
  the range collapses to the exact distance at the top LOD.

Under the FR paradigm the same functions run with a single-entry LOD
schedule (the top LOD), which reduces them to classical refinement.

Batched rounds: with ``RefineContext.batched`` (the default, resolved
from ``EngineConfig.batched_refine``), each LOD round gathers every
surviving candidate's face pairs into flat workloads evaluated by a few
fused kernel calls (:mod:`repro.core.batch`) instead of one Python
dispatch per pair; :func:`refine_intersection_group` and
:func:`refine_within_group` extend the same gather across all targets
of an executor chunk. Pair classifications are per-lane deterministic
and ``min`` is exact, so results, funnel, and ledger are identical to
the per-pair path; the AABB-tree path (``use_tree``) always runs per
pair, since dual-tree traversals do not batch across pairs.

Degraded mode: when an object's stored geometry cannot be decoded even
at LOD 0 (see :class:`~repro.core.errors.DecodeFailureError`), each
algorithm falls back to the last rung of the ladder — MBB-only
evaluation at "LOD -1" — in whatever way keeps the returned results a
*correct subset* of the clean answer:

* intersection — an MBB overlap proves nothing about the meshes, so an
  undecodable candidate is dropped and an undecodable target yields only
  the pairs already confirmed;
* within — MAXDIST of the two MBBs upper-bounds the true distance, so
  ``MAXDIST <= D`` still soundly *confirms* a pair; pairs it cannot
  confirm are dropped;
* nearest neighbor — undecodable candidates keep their MBB
  ``[MINDIST, MAXDIST]`` ranges and are never marked ``exact``.

Every degraded object is charged against the context's error budget
(:class:`~repro.core.errors.ErrorBudgetExceededError` when exceeded).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core import batch
from repro.core.errors import (
    DeadlineExceededError,
    DecodeFailureError,
    ErrorBudgetExceededError,
)
from repro.geometry.aabb import box_maxdist
from repro.geometry.raycast import point_in_polyhedron, points_in_polyhedra
from repro.obs.trace import DISABLED_TRACER
from repro.parallel.executor import Device

__all__ = [
    "RefineContext",
    "NNCandidate",
    "GroupState",
    "refine_intersection",
    "refine_intersection_group",
    "refine_within",
    "refine_within_group",
    "refine_nn",
    "refine_containment",
]

_ALL_PARTS = None  # candidate part sentinel: evaluate every face
_NO_TRIANGLES = np.zeros((0, 3, 3))  # stand-in job for undecodable sources

# Per-survivor settle codes used by the gather/settle round helpers;
# non-negative values are indices into the round's shared job list.
_DEGRADED = -1  # settle now, classified degraded (decode failed / empty mesh)
_MISS = -2  # no kernel work this round (e.g. empty partition mask); survives


@dataclass
class NNCandidate:
    """A nearest-neighbor candidate with its evolving distance range."""

    sid: int
    mindist: float
    maxdist: float
    parts: object = _ALL_PARTS
    exact: bool = False


@dataclass
class RefineContext:
    """Everything a refinement pass needs for one (target, source) join."""

    computer: object  # GeometryComputer
    stats: object  # QueryStats
    target_provider: object  # DecodedObjectProvider
    source_provider: object
    target_partitions: dict = field(default_factory=dict)
    source_partitions: dict = field(default_factory=dict)
    lods: tuple[int, ...] = ()
    use_tree: bool = False
    exact_nn_distances: bool = False
    # Span tracer (repro.obs.trace); the disabled singleton hands out
    # no-op spans, so refinement stays uninstrumented-cost by default.
    tracer: object = DISABLED_TRACER
    # Degraded-mode bookkeeping: distinct degraded (side, id) keys seen,
    # the per-target "this answer touched degraded geometry" flag the
    # executor resets between targets, and the error budget (None = off).
    # Under parallel execution every worker context shares one
    # ``degraded_keys`` set guarded by ``lock``, so the distinct-object
    # count and the budget stay global and order-independent.
    max_decode_failures: int | None = None
    degraded_keys: set = field(default_factory=set)
    lock: object = None
    touched_degraded: bool = False
    # Optional repro.core.deadline.Deadline; refinement checks it at
    # every round and candidate batch (None keeps checkpoints free).
    deadline: object = None
    # Progressive-results hook (QuerySpec.progress): a callable
    # ``(target_id, lod, matches)`` invoked as pairs confirm, plus the
    # target the executor is currently refining. FPR never revokes a
    # confirmation, so every emission is final — the serve layer streams
    # them to clients before the query completes.
    progress: object = None
    progress_target: object = None
    # Batched LOD rounds (repro.core.batch): gather each round's
    # surviving pairs into fused kernel workloads. The per-pair path
    # stays available for A/B parity checks and the tree traversals.
    batched: bool = True
    # Optional worker-liveness callable (process-backend heartbeat),
    # invoked alongside the deadline check at every batch flush so hang
    # detection keeps per-batch granularity under batched rounds.
    heartbeat: object = None
    # Memoized per-(side, object, served-LOD) face AABBs for the
    # intersection containment stage, with hit/miss counters the cache
    # tests assert on. Contexts are per-chunk, so no locking is needed.
    aabb_cache_hits: int = 0
    aabb_cache_misses: int = 0
    _aabb_cache: dict = field(default_factory=dict)

    # -- cooperative cancellation ----------------------------------------------

    def emit_confirmed(self, lod: int, matches) -> None:
        """Push newly confirmed ``matches`` at ``lod`` to the progress hook.

        ``lod`` uses the funnel's conventions: a real LOD for per-round
        confirmations, ``-1`` for filter-level confirmations (within's
        definite matches), ``-2`` for final-selection confirmations
        (NN's top-k). No-op without a hook or without matches.
        """
        if self.progress is not None and matches:
            self.progress(self.progress_target, lod, list(matches))

    def checkpoint(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.deadline is not None:
            self.deadline.check(where)

    def batch_tick(self) -> None:
        """Per-flush checkpoint of the batched kernels: liveness + deadline."""
        if self.heartbeat is not None:
            self.heartbeat()
        self.checkpoint("refine_batch")

    # -- pairs ledger + funnel (single-writer, agree by construction) -----------

    def ledger_evaluated(self, lod: int, n: int) -> None:
        """Charge ``n`` pairs as refined at ``lod`` (ledger + funnel)."""
        if not n:
            return
        self.stats.pairs_evaluated_by_lod[lod] += n
        self.stats.funnel.stage(lod).evaluated += n

    def ledger_settled(
        self, lod: int, confirmed: int = 0, rejected: int = 0, degraded: int = 0
    ) -> None:
        """Settle pairs at ``lod``, classified by *how* they settled.

        ``confirmed`` became results, ``rejected`` are definite
        non-results, ``degraded`` were settled (dropped or confirmed via
        an upper bound) on degraded geometry. The sum lands on
        ``pairs_pruned_by_lod`` and the split on the funnel stage, so the
        two can never drift apart.
        """
        settled = confirmed + rejected + degraded
        if not settled:
            return
        self.stats.pairs_pruned_by_lod[lod] += settled
        stage = self.stats.funnel.stage(lod)
        stage.settled += settled
        stage.confirmed += confirmed
        stage.rejected += rejected
        stage.degraded += degraded

    # -- degraded-mode accounting ----------------------------------------------

    def note_degraded(self, side: str, obj_id: int) -> None:
        """Record that this answer leaned on degraded geometry.

        Raises :class:`ErrorBudgetExceededError` when the number of
        distinct degraded objects exceeds ``max_decode_failures``.
        """
        self.touched_degraded = True
        key = (side, obj_id)
        if self.lock is not None:
            with self.lock:
                self._note_degraded_key(key)
        else:
            self._note_degraded_key(key)

    def _note_degraded_key(self, key) -> None:
        if key not in self.degraded_keys:
            self.degraded_keys.add(key)
            self.stats.degraded_objects += 1
        if (
            self.max_decode_failures is not None
            and len(self.degraded_keys) > self.max_decode_failures
        ):
            raise ErrorBudgetExceededError(
                self.max_decode_failures,
                len(self.degraded_keys),
                query=getattr(self.stats, "query", ""),
            )

    def box_upper_bound(self, target_id: int | None, source_id: int) -> float:
        """MBB-based upper bound on the target-source distance ("LOD -1")."""
        if target_id is None:
            return math.inf
        return box_maxdist(
            self.target_provider.objects[target_id].aabb,
            self.source_provider.objects[source_id].aabb,
        )

    # -- decoding -------------------------------------------------------------

    def decode_target(self, obj_id: int, lod: int):
        try:
            dec = self.target_provider.get(
                obj_id,
                min(lod, self.target_provider.max_lod(obj_id)),
                deadline=self.deadline,
                funnel=self.stats.funnel,
            )
        except DecodeFailureError:
            self.note_degraded("target", obj_id)
            raise
        if dec.degraded:
            self.note_degraded("target", obj_id)
        return dec

    def decode_source(self, obj_id: int, lod: int):
        try:
            dec = self.source_provider.get(
                obj_id,
                min(lod, self.source_provider.max_lod(obj_id)),
                deadline=self.deadline,
                funnel=self.stats.funnel,
            )
        except DecodeFailureError:
            self.note_degraded("source", obj_id)
            raise
        if dec.degraded:
            self.note_degraded("source", obj_id)
        return dec

    def _decode_source_or_none(self, obj_id: int, lod: int):
        try:
            return self.decode_source(obj_id, lod)
        except DecodeFailureError:
            return None

    # -- face selection (partition acceleration) -------------------------------

    def source_faces(self, dec, obj_id: int, parts):
        """Triangles of a source object, restricted to candidate parts."""
        partition = self.source_partitions.get(obj_id)
        if parts is _ALL_PARTS or partition is None:
            return dec.triangles
        groups = dec.groups(partition)
        mask = np.isin(groups, np.fromiter(parts, dtype=np.int64))
        return dec.triangles[mask]

    # -- memoized face AABBs (intersection containment stage) -------------------

    def faces_aabb(self, side: str, obj_id: int, dec):
        """The (min, max) corners of a decoded object's faces, memoized.

        Keyed by the *served* LOD (``dec.lod`` — degraded decodes may
        serve a lower rung than requested), so every containment-stage
        visit after the first is a dictionary hit instead of a full
        reduction over the triangle array.
        """
        key = (side, obj_id, dec.lod)
        box = self._aabb_cache.get(key)
        if box is not None:
            self.aabb_cache_hits += 1
            return box
        self.aabb_cache_misses += 1
        box = _faces_aabb(dec)
        self._aabb_cache[key] = box
        return box

    # -- pair kernels -----------------------------------------------------------

    def pair_intersects(self, dec_t, dec_s, sid: int, parts, lod: int) -> bool:
        kernel_stats: dict = {}
        if self.use_tree:
            hit = self.computer.intersects(
                dec_t.triangles,
                dec_s.triangles,
                tree_a=dec_t.tree,
                tree_b=dec_s.tree,
                stats=kernel_stats,
            )
        else:
            tris_s = self.source_faces(dec_s, sid, parts)
            hit = (
                self.computer.intersects(dec_t.triangles, tris_s, stats=kernel_stats)
                if len(tris_s)
                else False
            )
        self.stats.face_pairs_by_lod[lod] += kernel_stats.get("pairs", 0)
        return hit

    def pair_min_distance(
        self, dec_t, dec_s, sid: int, parts, lod: int, stop_below: float = 0.0
    ) -> float:
        kernel_stats: dict = {}
        if self.use_tree:
            dist = self.computer.min_distance(
                dec_t.triangles,
                dec_s.triangles,
                tree_a=dec_t.tree,
                tree_b=dec_s.tree,
                stop_below=stop_below,
                stats=kernel_stats,
            )
        else:
            tris_s = self.source_faces(dec_s, sid, parts)
            dist = (
                self.computer.min_distance(
                    dec_t.triangles, tris_s, stop_below=stop_below, stats=kernel_stats
                )
                if len(tris_s)
                else math.inf
            )
        self.stats.face_pairs_by_lod[lod] += kernel_stats.get("pairs", 0)
        return dist

    def _gather_distance_jobs(self, dec_t, survivors, lod: int, target_id, jobs):
        """Decode each survivor in order; queue its face pairs as one job.

        Returns ``(entries, inexact)``: per survivor either a fixed
        distance (MBB fallback for undecodable candidates, ``inf`` for
        an empty partition mask — exactly the per-pair path's values) or
        the index of its job in the shared ``jobs`` list, plus the
        upper-bound-only flags. Decodes happen here, in survivor order,
        so the provider sees the same request sequence as the per-pair
        path (and the same fail-fast / fault-injection outcomes).
        """
        entries: list[tuple[str, object]] = []
        inexact: list[bool] = []
        for sid, parts in survivors:
            dec_s = self._decode_source_or_none(sid, lod)
            if dec_s is None:
                entries.append(("fixed", self.box_upper_bound(target_id, sid)))
                inexact.append(True)
                continue
            inexact.append(bool(dec_s.degraded))
            tris_s = self.source_faces(dec_s, sid, parts)
            if len(tris_s) == 0:
                entries.append(("fixed", math.inf))
            else:
                entries.append(("job", len(jobs)))
                jobs.append((dec_t.triangles, tris_s))
        return entries, inexact

    def batch_min_distances(
        self,
        dec_t,
        survivors: list,
        lod: int,
        stop_below: float = 0.0,
        target_id: int | None = None,
    ) -> tuple[list[float], list[bool]]:
        """Distances from the target to many candidates at one LOD.

        Returns ``(distances, inexact)`` — the second list flags, per
        candidate, whether its distance is only an upper bound: the
        decode failed outright (the distance is then the MBB-based
        :meth:`box_upper_bound` — still valid, so threshold confirms
        stay sound) or was served degraded (LOD fallback or salvaged
        geometry). The flag depends only on this decode, never on what
        other targets decoded earlier, which is what keeps NN exactness
        identical between serial and parallel execution.

        Batched contexts gather every candidate's face pairs into the
        fused wave kernels of :mod:`repro.core.batch` (early exit per
        candidate at ``stop_below``); otherwise the per-pair kernels
        run, with the GPU device fusing only exhaustive evaluations.
        """
        if self.batched and not self.use_tree:
            jobs: list = []
            entries, inexact = self._gather_distance_jobs(
                dec_t, survivors, lod, target_id, jobs
            )
            kernel_stats: dict = {}
            dists = batch.batched_min_distances(
                self.computer,
                jobs,
                stop_below=stop_below,
                stats=kernel_stats,
                checkpoint=self.batch_tick,
            )
            self.stats.face_pairs_by_lod[lod] += kernel_stats.get("pairs", 0)
            return _scatter_distances(entries, dists), inexact
        if self.use_tree or self.computer.device is not Device.GPU or stop_below > 0.0:
            out: list[float] = []
            inexact = []
            for sid, parts in survivors:
                dec_s = self._decode_source_or_none(sid, lod)
                if dec_s is None:
                    out.append(self.box_upper_bound(target_id, sid))
                    inexact.append(True)
                    continue
                inexact.append(bool(dec_s.degraded))
                out.append(
                    self.pair_min_distance(
                        dec_t, dec_s, sid, parts, lod, stop_below=stop_below
                    )
                )
            return out, inexact
        jobs = []
        inexact = []
        fallback: dict[int, float] = {}
        for i, (sid, parts) in enumerate(survivors):
            dec_s = self._decode_source_or_none(sid, lod)
            if dec_s is None:
                jobs.append((dec_t.triangles, _NO_TRIANGLES))
                fallback[i] = self.box_upper_bound(target_id, sid)
                inexact.append(True)
                continue
            tris_s = self.source_faces(dec_s, sid, parts)
            jobs.append((dec_t.triangles, tris_s))
            inexact.append(bool(dec_s.degraded))
        kernel_stats = {}
        nonempty = [(i, job) for i, job in enumerate(jobs) if len(job[1])]
        dists = self.computer.pairwise_min_distances(
            [job for _i, job in nonempty], stats=kernel_stats
        )
        self.stats.face_pairs_by_lod[lod] += kernel_stats.get("pairs", 0)
        out = [fallback.get(i, math.inf) for i in range(len(jobs))]
        for (i, _job), dist in zip(nonempty, dists):
            out[i] = dist
        return out, inexact


def _scatter_distances(entries, dists) -> list[float]:
    """Resolve gather entries back to per-survivor distances."""
    return [
        dists[payload] if kind == "job" else payload for kind, payload in entries
    ]


class GroupState:
    """Per-target progress through one batched multi-target refinement."""

    __slots__ = (
        "tid", "survivors", "results", "done", "touched",
        "entries", "inexact", "dec_t",
    )

    def __init__(self, tid: int, survivors):
        self.tid = tid
        self.survivors = survivors
        self.results: list[int] = []
        self.done = False
        self.touched = False
        self.entries = None
        self.inexact = None
        self.dec_t = None


def _attach_group_partial(exc: DeadlineExceededError, states) -> None:
    """Hang each state's confirmed-so-far results off the interrupt.

    Every appended result was final the moment it was appended (FPR
    never revokes a confirmation), so the per-target partials are sound
    subsets regardless of where in the group the budget ran out.
    """
    exc.partial_by_target = {s.tid: list(s.results) for s in states}
    exc.group_touched = {s.tid for s in states if s.touched}
    exc.group_finished = sum(1 for s in states if s.done)


# -- Algorithm 1: intersection -------------------------------------------------


def refine_intersection(ctx: RefineContext, target_id: int, candidates: dict) -> list[int]:
    """Source ids that truly intersect the target (Algorithm 1).

    MBB overlap cannot *confirm* a mesh intersection, so degraded mode
    only ever shrinks this answer: an undecodable candidate is dropped,
    and an undecodable target returns the pairs already confirmed at the
    LODs that did decode (a correct subset, by property 1).

    A deadline interrupt carries the confirmed-so-far ids out on the
    exception (``exc.partial``) — each is final the moment it is
    appended (property 1 again), so the partial answer is sound.
    """
    results: list[int] = []
    try:
        return _refine_intersection(ctx, target_id, candidates, results)
    except DeadlineExceededError as exc:
        exc.partial = list(results)
        raise


def _gather_intersect_entries(
    ctx: RefineContext, dec_t, survivors: dict, lod: int, top_lod: int, jobs: list
) -> list[tuple[int, int]]:
    """Decode each survivor in order; queue its face pairs as one job.

    Returns per-survivor ``(sid, code)`` settle entries: a job index, or
    ``_DEGRADED`` (undecodable candidate — or, uniformly with the
    containment stage's accounting, a decodable-but-empty mesh at the
    top LOD, which can never be confirmed), or ``_MISS`` (an empty
    partition mask: no kernel work, survives the round).
    """
    entries: list[tuple[int, int]] = []
    for sid, parts in survivors.items():
        ctx.checkpoint("intersection_pair")
        dec_s = ctx._decode_source_or_none(sid, lod)
        if dec_s is None:
            entries.append((sid, _DEGRADED))  # unconfirmable candidate: drop
            continue
        if dec_s.num_faces == 0 and lod == top_lod:
            ctx.note_degraded("source", sid)
            entries.append((sid, _DEGRADED))
            continue
        tris_s = ctx.source_faces(dec_s, sid, parts)
        if len(tris_s) == 0:
            entries.append((sid, _MISS))
            continue
        entries.append((sid, len(jobs)))
        jobs.append((dec_t.triangles, tris_s))
    return entries


def _settle_intersect_entries(
    ctx: RefineContext, survivors: dict, entries, hits, results: list[int], lod: int
) -> int:
    """Apply one round's batched verdicts, in survivor order."""
    settled = []
    confirmed = degraded = 0
    for sid, code in entries:
        if code == _DEGRADED:
            settled.append(sid)
            degraded += 1
        elif code == _MISS:
            continue
        elif hits[code]:
            results.append(sid)
            settled.append(sid)
            confirmed += 1
    for sid in settled:
        del survivors[sid]
    ctx.ledger_settled(lod, confirmed=confirmed, degraded=degraded)
    return len(settled)


def _refine_intersection(
    ctx: RefineContext, target_id: int, candidates: dict, results: list[int]
) -> list[int]:
    survivors = dict(candidates)
    top_lod = ctx.lods[-1]
    for lod in ctx.lods:
        if not survivors:
            break
        ctx.checkpoint("intersection_round")
        with ctx.tracer.span("refine", query="intersection", lod=lod,
                             survivors=len(survivors)) as round_span:
            try:
                dec_t = ctx.decode_target(target_id, lod)
            except DecodeFailureError:
                return results
            ctx.ledger_evaluated(lod, len(survivors))
            mark = len(results)
            if ctx.batched and not ctx.use_tree:
                jobs: list = []
                entries = _gather_intersect_entries(
                    ctx, dec_t, survivors, lod, top_lod, jobs
                )
                kernel_stats: dict = {}
                hits = batch.batched_any_intersect(
                    ctx.computer, jobs, stats=kernel_stats, checkpoint=ctx.batch_tick
                )
                ctx.stats.face_pairs_by_lod[lod] += kernel_stats.get("pairs", 0)
                n_settled = _settle_intersect_entries(
                    ctx, survivors, entries, hits, results, lod
                )
            else:
                settled = []
                confirmed = degraded = 0
                for sid, parts in survivors.items():
                    ctx.checkpoint("intersection_pair")
                    try:
                        dec_s = ctx.decode_source(sid, lod)
                    except DecodeFailureError:
                        settled.append(sid)  # unconfirmable candidate: drop
                        degraded += 1
                        continue
                    if dec_s.num_faces == 0 and lod == top_lod:
                        # Uniform degraded accounting with the batched
                        # path and the containment stage: an empty mesh
                        # can never be confirmed, so settle it here.
                        ctx.note_degraded("source", sid)
                        settled.append(sid)
                        degraded += 1
                        continue
                    if ctx.pair_intersects(dec_t, dec_s, sid, parts, lod):
                        results.append(sid)
                        settled.append(sid)
                        confirmed += 1
                for sid in settled:
                    del survivors[sid]
                ctx.ledger_settled(lod, confirmed=confirmed, degraded=degraded)
                n_settled = len(settled)
            ctx.emit_confirmed(lod, results[mark:])
            round_span.set(settled=n_settled)

    if survivors:
        _containment_stage(ctx, target_id, survivors, results)
    return results


def _containment_stage(
    ctx: RefineContext, target_id: int, survivors, results: list[int]
) -> None:
    """Algorithm 1 steps 8-12: no face pair intersects, but one object
    may contain the other entirely."""
    top_lod = ctx.lods[-1]
    try:
        dec_t = ctx.decode_target(target_id, top_lod)
    except DecodeFailureError:
        return
    if dec_t.num_faces == 0:
        # Salvage loading can yield a decodable-but-empty mesh; there
        # is no bounding box (and no probe vertex) to test, so
        # containment is unprovable and the remaining candidates are
        # dropped — the answer stays a correct subset.
        ctx.note_degraded("target", target_id)
        ctx.ledger_settled(top_lod, degraded=len(survivors))
        return
    t_box = ctx.faces_aabb("target", target_id, dec_t)
    confirmed = degraded = 0
    mark = len(results)
    if ctx.batched and not ctx.use_tree:
        probes: list = []
        entries: list[tuple[int, object]] = []
        for sid in survivors:
            ctx.checkpoint("intersection_containment_pair")
            try:
                dec_s = ctx.decode_source(sid, top_lod)
            except DecodeFailureError:
                entries.append((sid, _DEGRADED))
                continue
            if dec_s.num_faces == 0:
                ctx.note_degraded("source", sid)
                entries.append((sid, _DEGRADED))
                continue
            s_box = ctx.faces_aabb("source", sid, dec_s)
            wanted = []
            # Queue both directions eagerly when the boxes allow them;
            # the per-pair path skips the second probe after a confirm,
            # but an extra ray cast has no observable effect beyond time.
            if _box_contains(t_box, s_box):
                wanted.append(len(probes))
                probes.append((dec_s.triangles[0, 0], dec_t.triangles))
            if _box_contains(s_box, t_box):
                wanted.append(len(probes))
                probes.append((dec_t.triangles[0, 0], dec_s.triangles))
            entries.append((sid, wanted))
        contained = points_in_polyhedra(probes, checkpoint=ctx.batch_tick)
        for sid, code in entries:
            if code == _DEGRADED:
                degraded += 1
            elif any(contained[i] for i in code):
                results.append(sid)
                confirmed += 1
    else:
        for sid in survivors:
            ctx.checkpoint("intersection_containment_pair")
            try:
                dec_s = ctx.decode_source(sid, top_lod)
            except DecodeFailureError:
                degraded += 1
                continue
            if dec_s.num_faces == 0:
                ctx.note_degraded("source", sid)
                degraded += 1
                continue
            s_box = ctx.faces_aabb("source", sid, dec_s)
            if _box_contains(t_box, s_box):
                probe = dec_s.triangles[0, 0]
                if point_in_polyhedron(probe, dec_t.triangles):
                    results.append(sid)
                    confirmed += 1
                    continue
            if _box_contains(s_box, t_box):
                probe = dec_t.triangles[0, 0]
                if point_in_polyhedron(probe, dec_s.triangles):
                    results.append(sid)
                    confirmed += 1
    ctx.ledger_settled(
        top_lod,
        confirmed=confirmed,
        degraded=degraded,
        rejected=len(survivors) - confirmed - degraded,
    )
    ctx.emit_confirmed(top_lod, results[mark:])


def refine_intersection_group(ctx: RefineContext, items) -> list[GroupState]:
    """Refine many targets' intersection candidates as one batched group.

    ``items`` is ``[(target_id, candidates), ...]`` in execution order.
    Rounds run LOD-major: each round decodes every active target and its
    survivors (per target, in order — the same provider request sequence
    as the per-target loop) and pushes one flat workload through the
    fused kernels, so per-pair classifications, results order, funnel,
    and ledger all match the per-target path exactly. The containment
    stage then runs per target, with batched ray casts.

    Only used when no progress hook is attached (per-round streaming
    emission stays with the per-target loop). A deadline interrupt
    attaches per-target partials (``exc.partial_by_target``) plus the
    touched/finished bookkeeping the executor commits from.
    """
    states = [GroupState(tid, dict(candidates)) for tid, candidates in items]
    try:
        _intersection_group_rounds(ctx, states)
        for s in states:
            if s.done:
                continue
            ctx.touched_degraded = False
            try:
                if s.survivors:
                    _containment_stage(ctx, s.tid, s.survivors, s.results)
                s.done = True
            finally:
                s.touched |= ctx.touched_degraded
    except DeadlineExceededError as exc:
        _attach_group_partial(exc, states)
        raise
    return states


def _intersection_group_rounds(ctx: RefineContext, states) -> None:
    top_lod = ctx.lods[-1]
    for lod in ctx.lods:
        active = []
        for s in states:
            if s.done:
                continue
            if not s.survivors:
                s.done = True  # nothing left for the containment stage either
                continue
            active.append(s)
        if not active:
            return
        ctx.checkpoint("intersection_round")
        with ctx.tracer.span(
            "refine", query="intersection", lod=lod,
            survivors=sum(len(s.survivors) for s in active),
        ) as round_span:
            jobs: list = []
            gathered = []
            for s in active:
                ctx.touched_degraded = False
                try:
                    try:
                        dec_t = ctx.decode_target(s.tid, lod)
                    except DecodeFailureError:
                        # Keep the pairs already confirmed; no further
                        # rounds and no containment stage for this target.
                        s.done = True
                        continue
                    ctx.ledger_evaluated(lod, len(s.survivors))
                    s.entries = _gather_intersect_entries(
                        ctx, dec_t, s.survivors, lod, top_lod, jobs
                    )
                    gathered.append(s)
                finally:
                    s.touched |= ctx.touched_degraded
            kernel_stats: dict = {}
            hits = batch.batched_any_intersect(
                ctx.computer, jobs, stats=kernel_stats, checkpoint=ctx.batch_tick
            )
            ctx.stats.face_pairs_by_lod[lod] += kernel_stats.get("pairs", 0)
            n_settled = 0
            for s in gathered:
                n_settled += _settle_intersect_entries(
                    ctx, s.survivors, s.entries, hits, s.results, lod
                )
                s.entries = None
            round_span.set(settled=n_settled)


def _faces_aabb(dec) -> tuple[np.ndarray, np.ndarray]:
    tris = dec.triangles
    return tris.min(axis=(0, 1)), tris.max(axis=(0, 1))


def _box_contains(outer, inner) -> bool:
    return bool((outer[0] <= inner[0]).all() and (inner[1] <= outer[1]).all())


# -- Algorithm 2: within ---------------------------------------------------------


def refine_within(
    ctx: RefineContext, target_id: int, candidates: dict, distance: float
) -> list[int]:
    """Source ids truly within ``distance`` of the target (Algorithm 2).

    In degraded mode a measured distance is replaced by the MBB MAXDIST
    upper bound ("LOD -1"): ``MAXDIST <= distance`` still soundly
    confirms a pair, and anything unconfirmable is excluded — the answer
    stays a correct subset.

    A deadline interrupt carries the confirmed-so-far ids out on the
    exception (``exc.partial``): a distance ≤ D at any LOD settles the
    pair for good (property 2), so the partial answer is sound.
    """
    results: list[int] = []
    try:
        return _refine_within(ctx, target_id, candidates, distance, results)
    except DeadlineExceededError as exc:
        exc.partial = list(results)
        raise


def _classify_within(
    ctx: RefineContext,
    survivors: list,
    results: list[int],
    dists,
    inexact,
    lod: int,
    top_lod: int,
    distance: float,
    target_degraded: bool,
) -> tuple[list, int]:
    """Settle one within round from its measured distances.

    Returns ``(remaining_survivors, n_settled)``. Exact distances
    exclude at the top LOD; a rough distance (degraded decode or MBB
    fallback) is only an upper bound, so its exclusion is a
    degraded-mode drop.
    """
    remaining = []
    confirmed = rejected = degraded = 0
    for (sid, parts), dist, rough in zip(survivors, dists, inexact):
        if dist <= distance:
            results.append(sid)
            confirmed += 1
        elif lod == top_lod:
            if rough or target_degraded:
                degraded += 1
            else:
                rejected += 1
        else:
            remaining.append((sid, parts))
    ctx.ledger_settled(
        lod, confirmed=confirmed, rejected=rejected, degraded=degraded
    )
    return remaining, confirmed + rejected + degraded


def _refine_within(
    ctx: RefineContext,
    target_id: int,
    candidates: dict,
    distance: float,
    results: list[int],
) -> list[int]:
    survivors = list(candidates.items())
    top_lod = ctx.lods[-1]
    for lod in ctx.lods:
        if not survivors:
            break
        ctx.checkpoint("within_round")
        with ctx.tracer.span("refine", query="within", lod=lod,
                             survivors=len(survivors)) as round_span:
            try:
                dec_t = ctx.decode_target(target_id, lod)
            except DecodeFailureError:
                # MBB-only: confirm what the box upper bound alone can
                # prove. These fallback evaluations stay on the pairs
                # ledger — charged to the LOD whose decode failed — and
                # every survivor settles here (confirmed or excluded), so
                # pruned ≤ evaluated holds per LOD in degraded runs too.
                ctx.ledger_evaluated(lod, len(survivors))
                confirmed = 0
                mark = len(results)
                for sid, _parts in survivors:
                    if ctx.box_upper_bound(target_id, sid) <= distance:
                        results.append(sid)
                        confirmed += 1
                ctx.ledger_settled(
                    lod, confirmed=confirmed, degraded=len(survivors) - confirmed
                )
                ctx.emit_confirmed(lod, results[mark:])
                return results
            ctx.ledger_evaluated(lod, len(survivors))
            dists, inexact = ctx.batch_min_distances(
                dec_t, survivors, lod, stop_below=distance, target_id=target_id
            )
            mark = len(results)
            survivors, n_settled = _classify_within(
                ctx, survivors, results, dists, inexact,
                lod, top_lod, distance, dec_t.degraded,
            )
            ctx.emit_confirmed(lod, results[mark:])
            round_span.set(settled=n_settled)
    return results


def refine_within_group(
    ctx: RefineContext, items, distance: float
) -> list[GroupState]:
    """Refine many targets' within candidates as one batched group.

    ``items`` is ``[(target_id, (definite, open_candidates)), ...]`` —
    the filter's split, exactly as :meth:`WithinStrategy.filter` returns
    it. The definite matches are booked on the funnel here (as the
    per-target path does before refining); the executor folds them into
    each committed value. See :func:`refine_intersection_group` for the
    round structure and interrupt contract.
    """
    states = []
    for tid, (definite, open_candidates) in items:
        # The filter's definite matches are confirmed without any
        # refinement; the funnel books them at the query level so
        # confirmed_total still reconciles with the result count.
        ctx.stats.funnel.filter_confirmed += len(definite)
        states.append(GroupState(tid, list(open_candidates.items())))
    try:
        _within_group_rounds(ctx, states, distance)
    except DeadlineExceededError as exc:
        _attach_group_partial(exc, states)
        raise
    return states


def _within_group_rounds(ctx: RefineContext, states, distance: float) -> None:
    top_lod = ctx.lods[-1]
    for lod in ctx.lods:
        active = []
        for s in states:
            if s.done:
                continue
            if not s.survivors:
                s.done = True
                continue
            active.append(s)
        if not active:
            return
        ctx.checkpoint("within_round")
        with ctx.tracer.span(
            "refine", query="within", lod=lod,
            survivors=sum(len(s.survivors) for s in active),
        ) as round_span:
            jobs: list = []
            gathered = []
            for s in active:
                ctx.touched_degraded = False
                try:
                    try:
                        dec_t = ctx.decode_target(s.tid, lod)
                    except DecodeFailureError:
                        _within_mbb_fallback(ctx, s, lod, distance)
                        continue
                    ctx.ledger_evaluated(lod, len(s.survivors))
                    s.dec_t = dec_t
                    s.entries, s.inexact = ctx._gather_distance_jobs(
                        dec_t, s.survivors, lod, s.tid, jobs
                    )
                    gathered.append(s)
                finally:
                    s.touched |= ctx.touched_degraded
            kernel_stats: dict = {}
            dists = batch.batched_min_distances(
                ctx.computer, jobs, stop_below=distance,
                stats=kernel_stats, checkpoint=ctx.batch_tick,
            )
            ctx.stats.face_pairs_by_lod[lod] += kernel_stats.get("pairs", 0)
            n_settled = 0
            for s in gathered:
                s.survivors, settled = _classify_within(
                    ctx, s.survivors, s.results,
                    _scatter_distances(s.entries, dists), s.inexact,
                    lod, top_lod, distance, s.dec_t.degraded,
                )
                n_settled += settled
                s.entries = s.inexact = s.dec_t = None
            round_span.set(settled=n_settled)
    for s in states:
        if not s.survivors:
            s.done = True


def _within_mbb_fallback(ctx: RefineContext, s: GroupState, lod: int, distance: float) -> None:
    """Undecodable target: settle its whole state from box upper bounds."""
    ctx.ledger_evaluated(lod, len(s.survivors))
    confirmed = 0
    for sid, _parts in s.survivors:
        if ctx.box_upper_bound(s.tid, sid) <= distance:
            s.results.append(sid)
            confirmed += 1
    ctx.ledger_settled(
        lod, confirmed=confirmed, degraded=len(s.survivors) - confirmed
    )
    s.survivors = []
    s.done = True


# -- Algorithm 3: nearest neighbor ----------------------------------------------


def refine_nn(
    ctx: RefineContext, target_id: int, candidates: list[NNCandidate], k: int = 1
) -> list[NNCandidate]:
    """The ``k`` nearest candidates with tightened ranges (Algorithm 3).

    Candidates enter with their MBB-based [MINDIST, MAXDIST] ranges. Each
    LOD's measured distance replaces MAXDIST (a valid upper bound, by
    property 2) and the global pruning bound is the k-th smallest
    MAXDIST. At the top LOD ranges collapse and the result is exact; if
    pruning leaves only ``k`` candidates earlier, they are returned with
    their ranges still open (``exact=False``) — the early return that
    gives FPR its nearest-neighbor speedups.
    """
    if not candidates:
        return []
    survivors = sorted(candidates, key=lambda c: c.mindist)
    top_lod = ctx.lods[-1]

    # Initial prune from the MBB-based ranges alone (before any decoding).
    minmax = _kth_smallest((c.maxdist for c in survivors), k)
    before = len(survivors)
    survivors = [c for c in survivors if c.mindist <= minmax]
    ctx.stats.funnel.mbb_pruned += before - len(survivors)

    for lod in ctx.lods:
        if len(survivors) <= k and lod != top_lod:
            # Early NN determination without decoding further LODs.
            break

        ctx.checkpoint("nn_round")
        with ctx.tracer.span("refine", query="nn", lod=lod,
                             survivors=len(survivors)) as round_span:
            try:
                dec_t = ctx.decode_target(target_id, lod)
            except DecodeFailureError:
                # MBB-only: candidates keep whatever ranges are already
                # established; none of them can be called exact.
                break
            ctx.ledger_evaluated(lod, len(survivors))
            dists, inexact = ctx.batch_min_distances(
                dec_t, [(c.sid, c.parts) for c in survivors], lod, target_id=target_id
            )
            for cand, dist, rough in zip(survivors, dists, inexact):
                if lod == top_lod and not dec_t.degraded and not rough:
                    # Collapse the range to the exact distance. Do NOT keep a
                    # previously-tightened MAXDIST here: kernel summation
                    # order differs between LODs, so an earlier bound can sit
                    # an ulp *below* the exact value, leaving mindist >
                    # maxdist and pruning the true nearest neighbor away.
                    cand.maxdist = float(dist)
                    cand.mindist = float(dist)
                    cand.exact = True
                else:
                    # A pre-top LOD, a degraded decode on either side (the
                    # measured distance is only an upper bound then), or an
                    # undecodable candidate whose "distance" is the MBB upper
                    # bound — tighten, never collapse or mark exact.
                    cand.maxdist = min(cand.maxdist, float(dist))

            # Prune with the ranges this LOD just tightened, crediting the
            # prune to this LOD (Section 4.4's "pairs pruned by refining at
            # LOD i" — the quantity the schedule profiling feeds on).
            minmax = _kth_smallest((c.maxdist for c in survivors), k)
            kept = [c for c in survivors if c.mindist <= minmax]
            ctx.ledger_settled(lod, rejected=len(survivors) - len(kept))
            round_span.set(settled=len(survivors) - len(kept))
            survivors = kept

    if ctx.exact_nn_distances:
        pending = [c for c in survivors if not c.exact]
        if pending:
            try:
                dec_t = ctx.decode_target(target_id, top_lod)
            except DecodeFailureError:
                pending = []
        if pending:
            dists, inexact = ctx.batch_min_distances(
                dec_t, [(c.sid, c.parts) for c in pending], top_lod, target_id=target_id
            )
            for cand, dist, rough in zip(pending, dists, inexact):
                if dec_t.degraded or rough:
                    # Undecodable or degraded candidates can never be made
                    # exact; tighten with the upper bound rather than pretend.
                    cand.maxdist = min(cand.maxdist, float(dist))
                    continue
                cand.maxdist = cand.mindist = float(dist)
                cand.exact = True

    survivors.sort(key=lambda c: (c.maxdist, c.sid))
    return survivors[:k]


def _kth_smallest(values, k: int) -> float:
    """The k-th smallest value (ties counted), the max when ``k > len``.

    ``heapq.nsmallest`` is O(n log k) against the old full sort's
    O(n log n) — this runs once per NN round per target, over every
    surviving MAXDIST.
    """
    smallest = heapq.nsmallest(k, values)
    if not smallest:
        return math.inf
    return smallest[-1]


# -- point containment (Section 4.1 remark) --------------------------------------


def refine_containment(
    ctx: RefineContext, point, candidates: list[int], lods: tuple[int, ...]
) -> list[int]:
    """Source ids whose mesh contains ``point``, with progressive early accept.

    A point inside a lower-LOD mesh is inside the original (the LOD is a
    spatial subset), so containment is often confirmed without decoding
    further; only the top LOD can *exclude* a candidate. An undecodable
    candidate is dropped — MBB containment proves nothing about the mesh,
    so the answer stays a correct subset.

    A deadline interrupt carries the confirmed-so-far ids out on the
    exception (``exc.partial``) — inside a lower-LOD mesh means inside
    the original, so each early accept is final.
    """
    matches: list[int] = []
    try:
        return _refine_containment(ctx, point, candidates, lods, matches)
    except DeadlineExceededError as exc:
        exc.partial = list(matches)
        raise


def _refine_containment(
    ctx: RefineContext, point, candidates: list[int], lods: tuple[int, ...],
    matches: list[int],
) -> list[int]:
    if not lods:
        return matches
    top = lods[-1]
    survivors = list(candidates)
    for lod in lods:
        if not survivors:
            break
        ctx.checkpoint("containment_round")
        with ctx.tracer.span(
            "refine", query="containment", lod=lod, survivors=len(survivors)
        ):
            ctx.ledger_evaluated(lod, len(survivors))
            remaining = []
            confirmed = degraded = 0
            mark = len(matches)
            if ctx.batched:
                probes: list = []
                entries: list[tuple[int, int]] = []
                for sid in survivors:
                    ctx.checkpoint("containment_pair")
                    try:
                        dec = ctx.decode_source(sid, lod)
                    except DecodeFailureError:
                        entries.append((sid, _DEGRADED))
                        continue
                    entries.append((sid, len(probes)))
                    probes.append((point, dec.triangles))
                contained = points_in_polyhedra(probes, checkpoint=ctx.batch_tick)
                for sid, code in entries:
                    if code == _DEGRADED:
                        degraded += 1  # unverifiable candidate: drop
                    elif contained[code]:
                        matches.append(sid)  # inside a subset => inside
                        confirmed += 1
                    elif lod < top:
                        remaining.append(sid)
            else:
                for sid in survivors:
                    ctx.checkpoint("containment_pair")
                    try:
                        dec = ctx.decode_source(sid, lod)
                    except DecodeFailureError:
                        degraded += 1  # unverifiable candidate: drop
                        continue
                    if point_in_polyhedron(point, dec.triangles):
                        matches.append(sid)  # inside a subset => inside
                        confirmed += 1
                    elif lod < top:
                        remaining.append(sid)
            ctx.ledger_settled(
                lod,
                confirmed=confirmed,
                degraded=degraded,
                rejected=len(survivors) - len(remaining) - confirmed - degraded,
            )
            ctx.emit_confirmed(lod, matches[mark:])
            survivors = remaining
    return matches
