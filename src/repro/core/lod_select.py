"""Profiling-driven LOD selection (paper Sections 4.4 and 6.5).

Refining at LOD ``i`` is worthwhile only when the fraction of object
pairs it settles exceeds the cost ratio of postponing them to the next
level. With ``r`` the face-count growth factor between consecutive LODs,
pair evaluation cost grows ~``r^2`` per level, so the break-even pruned
fraction is ``1 / r^2`` (the paper's 25% for ``r = 2``).

:func:`profile_pruning` measures, on a sample of target objects, how
many pairs each LOD settles; :func:`choose_lod_list` applies the rule
and returns the LOD schedule to configure the engine with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.store import Dataset

__all__ = ["LODProfile", "profile_pruning", "choose_lod_list"]


@dataclass(frozen=True)
class LODProfile:
    """Measured pair flow per LOD for one (query, dataset pair)."""

    query: str
    lods: tuple[int, ...]
    evaluated: dict[int, int]
    pruned: dict[int, int]
    face_growth: float  # average r between consecutive LODs
    growth_by_lod: dict[int, float] | None = None  # r_i = faces(i+1)/faces(i)

    def pruned_fraction(self, lod: int) -> float:
        evaluated = self.evaluated.get(lod, 0)
        return self.pruned.get(lod, 0) / evaluated if evaluated else 0.0

    @property
    def break_even(self) -> float:
        """The Section 4.4 threshold ``1 / r^2`` with the average r."""
        r = max(self.face_growth, 1.0 + 1e-9)
        return 1.0 / (r * r)

    def break_even_at(self, lod: int) -> float:
        """Per-LOD break-even: ``1 / r_i^2``.

        The paper treats r as a constant ("the portion of vertices
        removed in each round is a constant"), which holds early in the
        decimation but not near the irreducible base where simplification
        stalls (r_i -> 1 and refinement at that LOD can essentially never
        pay). Using the measured per-level growth keeps the rule sharp on
        such chains.
        """
        if self.growth_by_lod is None:
            return self.break_even
        r = max(self.growth_by_lod.get(lod, self.face_growth), 1.0 + 1e-9)
        return 1.0 / (r * r)


def profile_pruning(
    engine,
    target_name: str,
    source_name: str,
    query: str,
    sample_size: int = 32,
    distance: float | None = None,
    k: int = 1,
) -> LODProfile:
    """Run ``query`` over a target sample with refinement at every LOD.

    ``engine`` must be configured with the FPR paradigm and
    ``lod_list=None`` (all LODs) — the profile measures how much each
    level prunes when every level runs. A deterministic every-n-th
    sample of the target dataset is loaded under a temporary name.
    """
    if engine.config.paradigm != "fpr" or engine.config.lod_list is not None:
        raise ValueError("profiling requires paradigm='fpr' with lod_list=None")
    target = engine._get(target_name)
    objects = target.dataset.objects
    step = max(1, len(objects) // sample_size)
    sample = [objects[i] for i in range(0, len(objects), step)][:sample_size]
    sample_name = f"__sample_{target_name}__"
    engine.load_dataset(Dataset(sample_name, sample))
    try:
        if query == "intersection":
            result = engine.intersection_join(sample_name, source_name)
        elif query == "within":
            if distance is None:
                raise ValueError("within profiling needs a distance")
            result = engine.within_join(sample_name, source_name, distance)
        elif query == "nn":
            result = engine.knn_join(sample_name, source_name, k=k)
        else:
            raise ValueError(f"unknown query {query!r}")
    finally:
        del engine._datasets[sample_name]

    lods = engine._lod_schedule(target, engine._get(source_name))
    return LODProfile(
        query=query,
        lods=lods,
        evaluated=dict(result.stats.pairs_evaluated_by_lod),
        pruned=dict(result.stats.pairs_pruned_by_lod),
        face_growth=measure_face_growth(engine._get(source_name).dataset),
        growth_by_lod=measure_face_growth_by_lod(engine._get(source_name).dataset),
    )


def measure_face_growth(dataset: Dataset, max_objects: int = 64) -> float:
    """Average face-count ratio between consecutive LODs (the paper's r)."""
    ratios: list[float] = []
    for obj in dataset.objects[:max_objects]:
        counts = [obj.face_count_at_lod(lod) for lod in obj.lods]
        for low, high in zip(counts, counts[1:]):
            if low > 0 and high > low:
                ratios.append(high / low)
    return sum(ratios) / len(ratios) if ratios else 2.0


def measure_face_growth_by_lod(dataset: Dataset, max_objects: int = 64) -> dict[int, float]:
    """Average face-count ratio per LOD level: r_i = faces(i+1)/faces(i)."""
    sums: dict[int, float] = {}
    counts: dict[int, int] = {}
    for obj in dataset.objects[:max_objects]:
        faces = [obj.face_count_at_lod(lod) for lod in obj.lods]
        for lod, (low, high) in enumerate(zip(faces, faces[1:])):
            if low > 0:
                sums[lod] = sums.get(lod, 0.0) + high / low
                counts[lod] = counts.get(lod, 0) + 1
    return {lod: sums[lod] / counts[lod] for lod in sums}


def choose_lod_list(
    profile: LODProfile, threshold: float | None = None, rule: str = "to-top"
) -> tuple[int, ...]:
    """Keep the LODs whose pruned fraction clears a break-even rule.

    Rules:

    * ``"to-top"`` (default) — keep LOD i when
      ``pruned_fraction(i) > (N_i / N_top)^2``. Refining everyone at LOD
      i costs ~``N_i^2`` per pair; every pair settled there saves *at
      least* its top-LOD evaluation (``N_top^2``), and usually several
      intermediate ones too. This non-myopic variant matters in practice:
      the consecutive rule drops mid LODs whose pruning pays off across
      all later levels (our NN-NV ablation shows it choosing a 4x worse
      schedule).
    * ``"consecutive"`` — the paper's Section 4.4 rule,
      ``pruned_fraction(i) > 1 / r_i^2``, which only credits a pruned
      pair with skipping the next level.
    * an explicit ``threshold`` overrides both.

    The top LOD is always included so exact answers remain possible
    (Section 4.4: "the list is ended with the highest LOD").
    """
    top = profile.lods[-1]
    if threshold is not None:
        cutoff = {lod: threshold for lod in profile.lods}
    elif rule == "consecutive":
        cutoff = {lod: profile.break_even_at(lod) for lod in profile.lods}
    elif rule == "to-top":
        cutoff = {lod: _cost_ratio_to_top(profile, lod) ** 2 for lod in profile.lods}
    else:
        raise ValueError(f"unknown rule {rule!r}")
    chosen = {
        lod for lod in profile.lods if profile.pruned_fraction(lod) > cutoff[lod]
    }
    chosen.add(top)
    return tuple(sorted(chosen))


def _cost_ratio_to_top(profile: LODProfile, lod: int) -> float:
    """``N_lod / N_top`` from the measured per-level growth factors."""
    top = profile.lods[-1]
    ratio = 1.0
    for level in range(lod, top):
        if profile.growth_by_lod is not None:
            growth = profile.growth_by_lod.get(level, profile.face_growth)
        else:
            growth = profile.face_growth
        ratio /= max(growth, 1.0 + 1e-9)
    return ratio
