"""Builtin-type normalization at JSON boundaries.

Engine internals are free to hold numpy scalars — LODTable cumulatives,
kernel distance reductions, R-tree MINDIST/MAXDIST math all produce
``np.int64`` / ``np.float64`` — but everything crossing a JSON boundary
(``QueryStats.as_dict``, ``QueryCompleteness.as_dict``, the serve wire
schema) must be builtin types: ``json.dumps`` rejects numpy scalars, and
a dict keyed by ``np.int64`` silently serializes differently from one
keyed by ``int``. :func:`json_safe` is that single normalization point.
"""

from __future__ import annotations

__all__ = ["json_safe"]


def _scalar(value):
    """Coerce one scalar to a builtin, or return it unchanged."""
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, int):
        return int(value)  # collapses bool-like and IntEnum subclasses too
    if isinstance(value, float):
        return float(value)
    # Numpy scalars are not int/float subclasses in general, but all
    # expose item() returning the closest builtin. Checked by duck type
    # so this module never has to import numpy.
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", None) == ():
        return item()
    return value


def json_safe(value):
    """Recursively convert ``value`` into JSON-serializable builtins.

    Numpy scalars become ``int``/``float``/``bool``; numpy arrays become
    nested lists; tuples/sets become lists; dict keys are normalized the
    same way (non-string keys stay non-string — ``json.dumps`` stringifies
    builtin ints consistently, which is all the wire format needs).
    Unknown objects pass through untouched, so ``json.dumps`` still
    raises loudly on genuinely unserializable values instead of silently
    mangling them.
    """
    if isinstance(value, dict):
        return {_scalar(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [json_safe(v) for v in items]
    tolist = getattr(value, "tolist", None)
    if callable(tolist) and getattr(value, "ndim", 0):
        return tolist()
    return _scalar(value)
