"""The shared query executor: one driver for every query kind.

:class:`QueryExecutor` runs a compiled :class:`~repro.core.plan.QueryPlan`
through the single per-target pipeline the paper's Fig. 8 describes —
filter (global index) → progressive refine → accumulate — with the
per-kind differences delegated to the plan's strategy. It owns the
cross-cutting machinery the five old drivers each re-implemented: phase
timing (`TimedPhase` keeps `QueryStats` and the span tree in lockstep),
per-query stats snapshots/attribution, degraded-target tracking, the
root query span, and the query metrics.

Inter-target parallelism (`EngineConfig.query_workers`): targets are
split into contiguous chunks of the cuboid-ordered target list (so each
worker keeps the decode-cache locality the serial loop has) and fanned
across one of two backends (`EngineConfig.query_backend`):

* ``"thread"`` (default) — a :class:`~repro.parallel.tasks.TaskScheduler`
  worker pool, inheriting its retry/backoff/serial-fallback semantics,
  with :class:`~repro.core.errors.ErrorBudgetExceededError` marked fatal
  so the error budget aborts the query exactly as it does serially. Each
  worker accumulates into its own ``QueryStats`` and opens its spans
  under the adopted root span. GIL-bound: pure-Python refinement gains
  little wall-clock from threads.
* ``"process"`` — each chunk becomes a self-contained sub-query
  (``QuerySpec.target_ids``) executed by a worker *process* with its own
  engine and decode cache (:mod:`repro.parallel.procpool`); workers ship
  back pairs, stats, degraded keys, span trees, and metrics deltas.
  Containment queries (no target dataset) and pool/transport failures
  fall back to the thread backend.

Either way, chunk results are merged **in chunk order**, so ``pairs``,
``degraded_targets``, and every merged counter are identical to the
serial run (the refinement layer keeps per-decode outcomes
order-independent; see ``batch_min_distances`` and the provider's
LOD-aware fail-fast).

Merge semantics worth knowing: summed phase seconds are *busy* time
across workers — under parallel execution ``compute_seconds`` can exceed
``total_seconds`` (which stays the root span's wall clock).
"""

from __future__ import annotations

import logging
import threading
import time

from repro.core.config import resolve_setting
from repro.core.deadline import Deadline
from repro.core.errors import DeadlineExceededError, ErrorBudgetExceededError
from repro.core.plan import QueryCompleteness, QueryPlan, QueryResult
from repro.core.refine import RefineContext
from repro.core.stats import QueryStats
from repro.obs.funnel import PAIR_STAGES
from repro.obs.logs import get_logger, log_event
from repro.obs.profile import phase_scope
from repro.obs.trace import Span, TimedPhase
from repro.parallel.tasks import TaskScheduler

__all__ = ["QueryExecutor"]

_LOG = get_logger("executor")

#: Chunks per worker: small enough to amortize per-chunk overhead,
#: large enough that a straggler chunk cannot idle the rest of the pool.
_CHUNKS_PER_WORKER = 4


class QueryExecutor:
    """Runs query plans; the only query driver in the engine."""

    def __init__(self, engine):
        self.engine = engine
        self.config = engine.config
        self.metrics = engine.metrics
        self._m_queries = self.metrics.counter(
            "repro_queries_total", "Queries executed, labeled by join kind"
        )
        self._m_query_seconds = self.metrics.histogram(
            "repro_query_seconds", "End-to-end query wall time"
        )
        self._m_degraded = self.metrics.counter(
            "repro_degraded_objects_total",
            "Distinct objects served below requested fidelity, per query",
        )
        self._m_deadline_exceeded = self.metrics.counter(
            "repro_deadline_exceeded_total",
            "Queries returning partial results (deadline expiry or cancellation)",
        )
        # SLO accounting: end-to-end latency and deadline headroom, per
        # query kind. The unlabeled repro_query_seconds above stays the
        # stable aggregate; these carry the per-kind SLO series.
        self._m_query_latency = self.metrics.histogram(
            "repro_query_latency_seconds",
            "End-to-end query wall time, labeled by query kind",
        )
        self._m_headroom = self.metrics.histogram(
            "repro_deadline_headroom_ratio",
            "Fraction of the deadline budget left when the query returned",
            buckets=(0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
        )
        # Refinement-funnel series, emitted once per query from the
        # merged QueryStats.funnel (worker emissions are skipped by the
        # procpool metrics-delta filter, so counts never double).
        self._m_funnel_candidates = self.metrics.counter(
            "repro_funnel_candidates_total",
            "Candidates entering refinement, labeled by query kind",
        )
        self._m_funnel_mbb_pruned = self.metrics.counter(
            "repro_funnel_mbb_pruned_total",
            "Candidates dropped by MBB distance ranges before any decode",
        )
        self._m_funnel_pairs = self.metrics.counter(
            "repro_funnel_pairs_total",
            "Refinement pair flow, labeled by kind, LOD, and funnel stage",
        )
        self._m_funnel_decoded_objects = self.metrics.counter(
            "repro_funnel_decoded_objects_total",
            "Cache-miss decodes that produced geometry, labeled by kind and LOD",
        )
        self._m_funnel_decoded_bytes = self.metrics.counter(
            "repro_funnel_decoded_bytes_total",
            "Bytes of decoded geometry produced, labeled by kind and LOD",
        )
        self._m_funnel_cache = self.metrics.counter(
            "repro_funnel_decode_cache_total",
            "Decode cache accesses during refinement, labeled by kind, LOD, result",
        )
        self._m_funnel_decode_failures = self.metrics.counter(
            "repro_funnel_decode_failures_total",
            "Decode requests whose whole fallback ladder failed, by kind and LOD",
        )
        # Process-backend supervision counters, registered eagerly so
        # they export (at zero) from any engine; incremented by
        # repro.parallel.procpool's chunk supervisor.
        self._m_worker_restarts = self.metrics.counter(
            "repro_worker_restarts_total",
            "Worker pools killed and respawned (crash or hang) during queries",
        )
        self._m_quarantined = self.metrics.counter(
            "repro_chunks_quarantined_total",
            "Suspect chunks retired from the pool to serial in-process execution",
        )
        # Optional callable invoked at target-loop boundaries; the
        # process backend's workers point it at their chunk's heartbeat
        # file so the parent's hang detector sees liveness per target.
        self.heartbeat = None
        # Batched LOD-round refinement (core/batch.py): resolved once per
        # engine; the per-pair path stays selectable for A/B parity runs
        # (EngineConfig.batched_refine / REPRO_BATCHED_REFINE=0).
        self.batched_refine = self.config.resolve_batched_refine()

    @property
    def tracer(self):
        return self.engine.tracer

    @property
    def cache(self):
        return self.engine.cache

    # -- driving ---------------------------------------------------------------

    def run(self, plan: QueryPlan) -> QueryResult:
        """Run a plan, under the sampling profiler when one is configured.

        The ``other`` phase scope covers the whole query on the driving
        thread; planning/merge samples land there, while TimedPhase and
        the decode provider push ``filter``/``compute``/``decode`` on
        top of it. Profiler start/stop nest (probe queries recurse into
        ``run``), so one sampler covers the outer query.
        """
        profiler = self.engine.profiler
        if profiler is None:
            return self._run(plan)
        profiler.start()
        try:
            with phase_scope("other"):
                return self._run(plan)
        finally:
            profiler.stop()

    def _run(self, plan: QueryPlan) -> QueryResult:
        providers = plan.providers
        stats = self._new_stats(plan.label, providers)
        started = time.perf_counter()
        tids = plan.strategy.target_ids(plan)
        workers = min(self.engine.query_workers, max(1, len(tids)))
        deadline = self._deadline_for(plan.spec)

        pairs: dict = {}
        degraded_targets: set = set()
        degraded_keys: set = set()
        finished = 0
        inflight = 0
        reason = None
        root = self.tracer.span(
            "query",
            query=stats.query,
            config=self.config.label,
            target=plan.span_target,
            source=plan.source.name,
        )
        if workers == 1:
            ctx = self._context(plan, stats, deadline=deadline)
            degraded_keys = ctx.degraded_keys
            with root:
                finished, inflight, interrupt = self._refine_targets(
                    plan, ctx, stats, tids, pairs, degraded_targets, deadline
                )
                if interrupt is not None:
                    reason = interrupt.reason
        else:
            chunk_size = -(-len(tids) // (workers * _CHUNKS_PER_WORKER))
            chunks = plan.strategy.target_chunks(plan, tids, chunk_size)
            # Containment has no target dataset to restrict by target id,
            # so it always runs on the thread backend.
            use_process = (
                self.engine.query_backend == "process"
                and plan.spec.kind != "containment"
            )
            outcomes = None
            with root:
                if use_process:
                    outcomes = self._run_process(
                        plan, stats, chunks, workers, root, deadline
                    )
                if outcomes is None:
                    thread_outcomes, degraded_keys = self._run_parallel(
                        plan, stats, chunks, workers, root, deadline
                    )
            # Merge in chunk order: chunks are contiguous slices of the
            # cuboid-ordered target list, so insertion order — and with
            # it the result, byte for byte — matches the serial loop.
            if outcomes is not None:
                degraded_keys, finished, inflight, reason = self._merge_process(
                    outcomes, pairs, degraded_targets, stats, root
                )
            else:
                for (
                    chunk_pairs,
                    chunk_degraded,
                    chunk_stats,
                    chunk_finished,
                    chunk_inflight,
                    chunk_interrupt,
                ) in thread_outcomes:
                    pairs.update(chunk_pairs)
                    degraded_targets |= chunk_degraded
                    stats.merge(chunk_stats)
                    finished += chunk_finished
                    inflight += chunk_inflight
                    if chunk_interrupt is not None:
                        reason = reason or chunk_interrupt.reason
        completeness = self._completeness(
            len(tids), finished, inflight, reason, stats, deadline
        )
        self._finish_stats(stats, started, providers, root)
        self._emit_attribution(plan, stats, completeness, root)
        if not completeness.complete:
            self._note_partial(stats, completeness, root)
        return QueryResult(
            pairs,
            stats,
            degraded_targets,
            plan.spec,
            degraded_keys=degraded_keys,
            completeness=completeness,
        )

    def _deadline_for(self, spec) -> Deadline | None:
        """Per-query deadline via the one resolver: spec > config > env."""
        ms = resolve_setting("deadline_ms", spec=spec.deadline_ms, config=self.config)
        token = spec.cancellation
        if ms is None and token is None:
            return None
        return Deadline.after_ms(ms, token=token)

    def _completeness(
        self, total, finished, inflight, reason, stats, deadline
    ) -> QueryCompleteness:
        evaluated = stats.pairs_evaluated_by_lod
        headroom = None
        if deadline is not None and deadline.deadline_ms:
            remaining = deadline.remaining()
            if remaining is not None:
                headroom = min(
                    1.0, remaining / (deadline.deadline_ms / 1000.0)
                )
        return QueryCompleteness(
            complete=reason is None,
            reason=reason or "",
            targets_total=total,
            targets_finished=finished if reason is not None else total,
            targets_inflight=inflight,
            targets_unstarted=(
                max(0, total - finished - inflight) if reason is not None else 0
            ),
            max_lod_reached=max(evaluated) if evaluated else -1,
            deadline_ms=deadline.deadline_ms if deadline is not None else None,
            deadline_headroom_ratio=headroom,
        )

    def _emit_attribution(self, plan, stats, completeness, root) -> None:
        """Emit the merged funnel and SLO series, once per query.

        Runs after the chunk merge, so the counts cover every backend's
        workers exactly once (worker processes' own emissions are
        excluded from the metrics delta they ship back). The funnel
        summary is also attached to the root span.
        """
        kind = plan.spec.kind
        funnel = stats.funnel
        self._m_query_latency.observe(stats.total_seconds, kind=kind)
        if completeness.deadline_headroom_ratio is not None:
            self._m_headroom.observe(
                completeness.deadline_headroom_ratio, kind=kind
            )
        if funnel.candidates:
            self._m_funnel_candidates.inc(funnel.candidates, kind=kind)
        if funnel.mbb_pruned:
            self._m_funnel_mbb_pruned.inc(funnel.mbb_pruned, kind=kind)
        for lod, stage in sorted(funnel.stages.items()):
            for stage_name in PAIR_STAGES:
                count = getattr(stage, stage_name)
                if count:
                    self._m_funnel_pairs.inc(
                        count, kind=kind, lod=lod, stage=stage_name
                    )
            if stage.decoded_objects:
                self._m_funnel_decoded_objects.inc(
                    stage.decoded_objects, kind=kind, lod=lod
                )
            if stage.decoded_bytes:
                self._m_funnel_decoded_bytes.inc(
                    stage.decoded_bytes, kind=kind, lod=lod
                )
            if stage.cache_hits:
                self._m_funnel_cache.inc(
                    stage.cache_hits, kind=kind, lod=lod, result="hit"
                )
            if stage.cache_misses:
                self._m_funnel_cache.inc(
                    stage.cache_misses, kind=kind, lod=lod, result="miss"
                )
            if stage.decode_failures:
                self._m_funnel_decode_failures.inc(
                    stage.decode_failures, kind=kind, lod=lod
                )
        if funnel.filter_confirmed or funnel.confirmed_final:
            # Results confirmed off the per-LOD ledger: the filter's
            # definite matches and NN's final top-k selection.
            if funnel.filter_confirmed:
                self._m_funnel_pairs.inc(
                    funnel.filter_confirmed, kind=kind, lod=-1, stage="confirmed"
                )
            if funnel.confirmed_final:
                self._m_funnel_pairs.inc(
                    funnel.confirmed_final, kind=kind, lod=-2, stage="confirmed"
                )
        if root is not None and root.enabled:
            root.set(funnel=funnel.summary())

    def _note_partial(self, stats, completeness, root) -> None:
        self._m_deadline_exceeded.inc(reason=completeness.reason)
        log_event(
            _LOG, "partial_result", level=logging.WARNING,
            query=stats.query, reason=completeness.reason,
            targets_finished=completeness.targets_finished,
            targets_inflight=completeness.targets_inflight,
            targets_unstarted=completeness.targets_unstarted,
            max_lod_reached=completeness.max_lod_reached,
        )
        if root is not None and root.enabled:
            root.set(
                partial=True,
                partial_reason=completeness.reason,
                targets_finished=completeness.targets_finished,
                targets_unstarted=completeness.targets_unstarted,
            )

    def _group_eligible(self, plan) -> bool:
        """Whether this plan's targets can refine as one batched group.

        Group refinement needs the batched kernels (the tree traversals
        are inherently per-pair) and forgoes per-target progressive
        emission, so streaming queries stay on the per-target loop.
        """
        return (
            plan.strategy.supports_group_refine
            and self.batched_refine
            and not self.config.accel.aabbtree
            and plan.spec.progress is None
        )

    def _refine_targets(
        self, plan, ctx, stats, tids, pairs, degraded_targets, deadline,
        heartbeat=True, where="target_loop",
    ):
        """Drive a target list through filter → refine → accumulate.

        Returns ``(finished, inflight, interrupt)`` — the completeness
        inputs the serial, thread-chunk, and quarantine callers all
        share. Group-eligible plans refine every target of the list as
        one batched group; everything else walks the per-target loop.
        """
        if self._group_eligible(plan):
            return self._run_target_group(
                plan, ctx, stats, tids, pairs, degraded_targets, deadline,
                heartbeat=heartbeat, where=where,
            )
        finished = 0
        try:
            for tid in tids:
                if heartbeat and self.heartbeat is not None:
                    self.heartbeat()
                if deadline is not None:
                    deadline.check(where)
                self._run_target(plan, ctx, stats, tid, pairs, degraded_targets)
                finished += 1
        except DeadlineExceededError as exc:
            return finished, (1 if exc.in_target else 0), exc
        return finished, 0, None

    def _run_target_group(
        self, plan, ctx, stats, tids, pairs, degraded_targets, deadline,
        heartbeat=True, where="target_loop",
    ):
        """All targets of a chunk through one batched group refinement.

        Filters run per target (in target order), then the strategy's
        group refinement settles every target's candidates LOD-major
        through shared kernel batches (see ``refine_*_group``). Commits
        land in target order, so ``pairs`` insertion order — and every
        funnel/ledger count — matches the per-target loop exactly.
        """
        strategy = plan.strategy
        items = []
        try:
            for tid in tids:
                if heartbeat and self.heartbeat is not None:
                    self.heartbeat()
                if deadline is not None:
                    deadline.check(where)
                if strategy.counts_targets:
                    stats.targets += 1
                ctx.progress_target = tid
                with TimedPhase(self.tracer, stats, "filter"):
                    candidates = strategy.filter(plan, tid)
                n_candidates = strategy.candidate_count(candidates)
                stats.candidates += n_candidates
                stats.funnel.candidates += n_candidates
                items.append((tid, candidates))
        except DeadlineExceededError as exc:
            # Interrupted while filtering: nothing refined and nothing
            # committed, so every target of this list counts unstarted —
            # the same shape as an interrupt at a per-target loop check.
            return 0, 0, exc
        try:
            with TimedPhase(self.tracer, stats, "compute", targets=len(items)):
                states = strategy.group_refine(plan, ctx, items)
        except DeadlineExceededError as exc:
            # Anytime semantics, per target: each target's partial is the
            # pairs it confirmed before the budget ran out (attached by
            # the group refiner), each final the moment it was confirmed.
            exc.in_target = True
            partial = getattr(exc, "partial_by_target", {})
            touched = getattr(exc, "group_touched", set())
            finished = getattr(exc, "group_finished", 0)
            for tid, candidates in items:
                if tid in touched:
                    degraded_targets.add(tid)
                value, count = strategy.group_value(candidates, partial.get(tid, []))
                if value is not None:
                    pairs[tid] = value
                    stats.results += count
            return finished, max(0, len(items) - finished), exc
        for (tid, candidates), state in zip(items, states):
            if state.touched:
                degraded_targets.add(tid)
            value, count = strategy.group_value(candidates, state.results)
            if value is not None:
                pairs[tid] = value
                stats.results += count
        return len(items), 0, None

    def _run_target(self, plan, ctx, stats, tid, pairs, degraded_targets) -> None:
        """One target through filter → refine → accumulate."""
        strategy = plan.strategy
        if strategy.counts_targets:
            stats.targets += 1
        ctx.progress_target = tid
        with TimedPhase(self.tracer, stats, "filter"):
            candidates = strategy.filter(plan, tid)
        n_candidates = strategy.candidate_count(candidates)
        stats.candidates += n_candidates
        stats.funnel.candidates += n_candidates
        ctx.touched_degraded = False
        with TimedPhase(self.tracer, stats, "compute", **strategy.compute_attrs(tid)):
            try:
                value, count = strategy.refine(plan, ctx, tid, candidates)
            except DeadlineExceededError as exc:
                # Anytime semantics: pairs this target confirmed before
                # the budget ran out are final (FPR never revokes a
                # confirmation), so commit them before propagating.
                exc.in_target = True
                value, count = strategy.partial_value(exc)
                if ctx.touched_degraded:
                    degraded_targets.add(tid)
                if value is not None:
                    pairs[tid] = value
                    stats.results += count
                raise
        if ctx.touched_degraded:
            degraded_targets.add(tid)
        if value is not None:
            pairs[tid] = value
            stats.results += count

    @staticmethod
    def _chunk_targets(tids, workers: int) -> list:
        """Contiguous equal-size chunks of the cuboid-ordered target list.

        The legacy chunk shape; the executor now routes through
        :meth:`~repro.core.plan.KindStrategy.target_chunks`, which
        additionally aligns cuts to cuboid boundaries for shard-backed
        targets. Kept as the reference slicing used by tests.
        """
        chunk_size = -(-len(tids) // (workers * _CHUNKS_PER_WORKER))
        return [tids[i : i + chunk_size] for i in range(0, len(tids), chunk_size)]

    def _run_process(self, plan, stats, chunks, workers, root, deadline):
        """Fan chunks across worker processes; ``None`` means fall back.

        Chunks the supervisor quarantined (crash/hang suspects that
        exhausted their pool attempts) come back as
        :class:`~repro.parallel.procpool.QuarantinedChunk` markers and
        are re-run serially in-process here, inside the root span, so
        the query still completes without a whole-query thread fallback.
        """
        from repro.parallel import procpool

        log_event(
            _LOG, "parallel_query", query=stats.query, backend="process",
            workers=workers, chunks=len(chunks),
            targets=sum(len(c) for c in chunks),
        )
        try:
            outcomes = procpool.execute_chunks(
                self.engine, plan, chunks, deadline=deadline
            )
        except procpool.ProcessBackendUnavailable as exc:
            log_event(
                _LOG, "process_backend_fallback", level=logging.WARNING,
                query=stats.query, error=str(exc),
                traceback=exc.traceback or "",
            )
            return None
        return [
            self._run_chunk_local(plan, stats, outcome, root, deadline)
            if isinstance(outcome, procpool.QuarantinedChunk)
            else outcome
            for outcome in outcomes
        ]

    def _run_chunk_local(self, plan, stats, quarantined, root, deadline):
        """Serial in-process execution of a quarantined chunk."""
        from repro.parallel.procpool import ChunkOutcome

        log_event(
            _LOG, "chunk_quarantine_run", level=logging.WARNING,
            query=stats.query, chunk=quarantined.index,
            targets=len(quarantined.targets), reason=quarantined.reason,
        )
        chunk_stats = QueryStats(query=stats.query, config_label=stats.config_label)
        ctx = self._context(plan, chunk_stats, deadline=deadline)
        chunk_pairs: dict = {}
        chunk_degraded: set = set()
        with self.tracer.adopt(root):
            with self.tracer.span(
                "worker", targets=len(quarantined.targets), backend="quarantine"
            ):
                finished, inflight, interrupted = self._refine_targets(
                    plan, ctx, chunk_stats, quarantined.targets, chunk_pairs,
                    chunk_degraded, deadline, heartbeat=False,
                    where="quarantine_loop",
                )
        completeness = QueryCompleteness(
            complete=interrupted is None,
            reason=interrupted.reason if interrupted is not None else "",
            targets_total=len(quarantined.targets),
            targets_finished=finished,
            targets_inflight=inflight,
            targets_unstarted=max(0, len(quarantined.targets) - finished - inflight),
        )
        return ChunkOutcome(
            pairs=chunk_pairs,
            degraded_targets=chunk_degraded,
            stats=chunk_stats,
            degraded_keys=set(ctx.degraded_keys),
            spans=(),
            metrics_delta={},
            completeness=completeness,
        )

    def _merge_process(self, outcomes, pairs, degraded_targets, stats, root) -> tuple:
        """Merge worker-process chunk outcomes, in submission order."""
        degraded_keys: set = set()
        finished = 0
        inflight = 0
        reason = None
        for outcome in outcomes:
            pairs.update(outcome.pairs)
            degraded_targets |= outcome.degraded_targets
            stats.merge(outcome.stats)
            degraded_keys |= outcome.degraded_keys
            comp = outcome.completeness
            if comp is not None:
                finished += comp.targets_finished
                inflight += comp.targets_inflight
                if not comp.complete:
                    reason = reason or (comp.reason or "deadline")
            else:
                finished += outcome.stats.targets
            if outcome.metrics_delta:
                self.metrics.merge_state(outcome.metrics_delta)
            profile = getattr(outcome, "profile", None)
            if profile is not None and self.engine.profiler is not None:
                # Per-chunk worker profile: fold into the parent's report
                # so one flamegraph covers every process that refined.
                self.engine.profiler.absorb(profile)
            if root is not None and root.enabled:
                for payload in outcome.spans:
                    span = Span.from_payload(
                        payload,
                        rebase=root.start_offset - payload.get("start_offset", 0.0),
                    )
                    if span.name == "query":
                        span.name = "worker"
                        span.attrs["backend"] = "process"
                    root.children.append(span)
        # The distinct degraded-object count and the error budget are per
        # *query*: re-derive both from the cross-chunk union (merge()
        # summed each chunk's distinct count, and each worker only ever
        # checked the budget against its own chunk).
        stats.degraded_objects = len(degraded_keys)
        budget = self.config.max_decode_failures
        if budget is not None and len(degraded_keys) > budget:
            raise ErrorBudgetExceededError(
                budget, len(degraded_keys), query=stats.query
            )
        return degraded_keys, finished, inflight, reason

    def _run_parallel(self, plan, stats, chunks, workers, root, deadline) -> tuple:
        # One degraded-key set across all workers (guarded): the distinct
        # degraded-object count and the error budget are per *query*, not
        # per worker, and must not depend on chunk boundaries.
        degraded_keys: set = set()
        degraded_lock = threading.Lock()

        def run_chunk(chunk):
            chunk_stats = QueryStats(query=stats.query, config_label=stats.config_label)
            ctx = self._context(
                plan,
                chunk_stats,
                degraded_keys=degraded_keys,
                lock=degraded_lock,
                deadline=deadline,
            )
            chunk_pairs: dict = {}
            chunk_degraded: set = set()
            # Deadline expiry is caught *inside* the chunk so completed
            # targets ship back as a partial outcome — it must never look
            # like a task failure the scheduler would retry.
            with self.tracer.adopt(root):
                with self.tracer.span("worker", targets=len(chunk)):
                    chunk_finished, chunk_inflight, interrupted = self._refine_targets(
                        plan, ctx, chunk_stats, chunk, chunk_pairs,
                        chunk_degraded, deadline, heartbeat=False,
                    )
            return (
                chunk_pairs, chunk_degraded, chunk_stats,
                chunk_finished, chunk_inflight, interrupted,
            )

        # A dedicated scheduler per query: it reuses the face-pair
        # scheduler's retry/backoff/serial-fallback semantics but not its
        # fault injector — injected task faults would re-run whole target
        # chunks, double-counting their stats. The error budget stays
        # fatal so it aborts the query exactly as in the serial path.
        scheduler = TaskScheduler(
            workers=workers,
            max_retries=self.config.task_retries,
            backoff_seconds=self.config.task_backoff_seconds,
            metrics=self.metrics,
            fatal_types=(ErrorBudgetExceededError,),
        )
        log_event(
            _LOG, "parallel_query", query=stats.query, backend="thread",
            workers=workers, chunks=len(chunks),
            targets=sum(len(c) for c in chunks),
        )
        return scheduler.map(run_chunk, chunks), degraded_keys

    # -- shared machinery (moved verbatim from the old per-kind drivers) --------

    def _context(
        self, plan, stats, degraded_keys=None, lock=None, deadline=None
    ) -> RefineContext:
        ctx = RefineContext(
            deadline=deadline,
            computer=self.engine.computer,
            stats=stats,
            target_provider=plan.target.provider,
            source_provider=plan.source.provider,
            target_partitions=plan.target.partitions,
            source_partitions=plan.source.partitions,
            lods=plan.lods,
            use_tree=self.config.accel.aabbtree,
            exact_nn_distances=self.config.exact_nn_distances,
            max_decode_failures=self.config.max_decode_failures,
            tracer=self.tracer,
            progress=plan.spec.progress,
            batched=self.batched_refine and not self.config.accel.aabbtree,
            heartbeat=self.heartbeat,
        )
        if degraded_keys is not None:
            ctx.degraded_keys = degraded_keys
            ctx.lock = lock
        return ctx

    def _new_stats(self, query: str, providers=()) -> QueryStats:
        stats = QueryStats(query=query, config_label=self.config.label)
        stats.cache_hits = -self.cache.hits
        stats.cache_misses = -self.cache.misses
        stats.decode_seconds_base = sum(p.decode_seconds for p in providers)
        stats.decode_failures_base = sum(p.decode_failures for p in providers)
        return stats

    def _finish_stats(self, stats: QueryStats, started: float, providers, root=None) -> None:
        # When tracing, the root span's wall clock IS total_seconds — the
        # stats summary is populated from the trace, never in parallel.
        wall = getattr(root, "wall_seconds", None) if root is not None else None
        stats.total_seconds = (
            wall if wall is not None else time.perf_counter() - started
        )
        stats.cache_hits += self.cache.hits
        stats.cache_misses += self.cache.misses
        # Accumulate (not overwrite) this engine's provider deltas: under
        # the process backend the merged worker chunk stats already carry
        # their engines' decode time / failures / vertices, and this
        # engine's own providers contribute nothing (the filter phase is
        # index-only). Serial and thread runs are unchanged — their
        # pre-merge values for these fields are zero.
        decode = sum(p.decode_seconds for p in providers) - stats.decode_seconds_base
        stats.decode_seconds += decode
        stats.compute_seconds = max(0.0, stats.compute_seconds - decode)
        stats.decoded_vertices += sum(p.decoded_vertices for p in providers)
        stats.decode_failures += (
            sum(p.decode_failures for p in providers) - stats.decode_failures_base
        )
        if root is not None and root.enabled:
            root.set(
                targets=stats.targets,
                candidates=stats.candidates,
                results=stats.results,
                face_pairs=stats.face_pairs_total,
                degraded_objects=stats.degraded_objects,
                decode_failures=stats.decode_failures,
            )
        self._m_queries.inc(query=stats.query)
        self._m_query_seconds.observe(stats.total_seconds)
        if stats.degraded_objects:
            self._m_degraded.inc(stats.degraded_objects)
            log_event(
                _LOG, "degraded_query", level=logging.WARNING,
                query=stats.query, config=stats.config_label,
                degraded_objects=stats.degraded_objects,
                decode_failures=stats.decode_failures,
            )
