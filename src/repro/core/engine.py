"""The 3DPro engine: dataset loading, planning, and query execution.

The engine owns (Fig. 8 of the paper):

* a **global index** — one R-tree per loaded dataset over object MBBs
  (or sub-object boxes when partition acceleration is on);
* an **object decoder** behind a shared LRU decode cache;
* a **geometry computer** — the batched face-pair kernel executor;
* the **query processor** — :meth:`ThreeDPro.execute` compiles a
  declarative :class:`~repro.core.plan.QuerySpec` into a
  :class:`~repro.core.plan.QueryPlan` and hands it to the single shared
  :class:`~repro.core.executor.QueryExecutor`, which batches target
  objects cuboid by cuboid for cache locality (optionally fanning them
  across ``query_workers`` threads) and delegates per-target work to the
  progressive refinement of :mod:`repro.core.refine`.

The historical per-kind methods (``intersection_join`` …) remain as
thin wrappers over :meth:`execute`.
"""

from __future__ import annotations

import warnings
from dataclasses import replace

from repro.compression.ppvp import PPVPEncoder
from repro.core.config import EngineConfig
from repro.core.errors import DatasetNotLoadedError, EngineConfigError
from repro.core.executor import QueryExecutor
from repro.core.plan import STRATEGIES, QueryPlan, QueryResult, QuerySpec
from repro.core.stats import QueryStats
from repro.index.rtree import RTree, RTreeEntry
from repro.mesh.polyhedron import Polyhedron
from repro.obs import metrics as obs_metrics
from repro.obs.profile import ProfileReport, SamplingProfiler
from repro.obs.trace import Tracer
from repro.parallel.executor import Device, GeometryComputer
from repro.parallel.tasks import TaskScheduler
from repro.partition.partitioner import partition_faces
from repro.storage.cache import DecodeCache, DecodedObjectProvider
from repro.storage.store import Dataset

__all__ = ["ThreeDPro", "JoinResult", "QuerySpec", "QueryResult"]

#: Compatibility alias: joins historically returned a ``JoinResult``;
#: the unified result type is a drop-in superset.
JoinResult = QueryResult


class _LoadedDataset:
    """Engine-side state for one dataset."""

    def __init__(self, dataset: Dataset, provider: DecodedObjectProvider, rtree: RTree, partitions: dict):
        self.dataset = dataset
        self.provider = provider
        self.rtree = rtree
        self.partitions = partitions

    @property
    def name(self) -> str:
        return self.dataset.name


class ThreeDPro:
    """The progressive 3D spatial query engine."""

    def __init__(self, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        self.metrics = (
            self.config.metrics
            if self.config.metrics is not None
            else obs_metrics.REGISTRY
        )
        self.tracer = Tracer(enabled=self.config.tracing)
        self.cache = DecodeCache(
            capacity_bytes=self.config.cache_bytes,
            enabled=self.config.cache_enabled,
            metrics=self.metrics,
        )
        device = Device.GPU if self.config.accel.gpu else Device.CPU
        self.computer = GeometryComputer(
            device=device,
            cpu_block=self.config.cpu_block,
            gpu_block=self.config.gpu_block,
            scheduler=TaskScheduler(
                workers=self.config.workers,
                max_retries=self.config.task_retries,
                backoff_seconds=self.config.task_backoff_seconds,
                fault_injector=self.config.fault_injector,
                metrics=self.metrics,
            ),
            metrics=self.metrics,
        )
        self.query_workers = self.config.resolve_query_workers()
        self.query_backend = self.config.resolve_query_backend()
        self.profiler = (
            SamplingProfiler(interval_seconds=self.config.profile_interval_ms / 1000.0)
            if self.config.profiling
            else None
        )
        self.executor = QueryExecutor(self)
        self._datasets: dict[str, _LoadedDataset] = {}
        self._probe_seq = 0

    # -- loading ---------------------------------------------------------------

    def load_dataset(self, dataset: Dataset) -> None:
        """Register a dataset: build its provider, partitions, and R-tree."""
        provider = DecodedObjectProvider(
            dataset.name,
            dataset.objects,
            self.cache,
            tree_leaf_size=self.config.tree_leaf_size,
            fault_injector=self.config.fault_injector,
            salvaged_ids=dataset.degraded_ids,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        partitions: dict[int, object] = {}
        entries: list[RTreeEntry] = []
        for obj_id, obj in enumerate(dataset.objects):
            if (
                self.config.accel.partition
                and obj.face_count_at_lod(obj.max_lod) >= self.config.partition_min_faces
            ):
                try:
                    full = obj.decode(obj.max_lod)
                    partition = partition_faces(full, self.config.partition_parts)
                except Exception:
                    # Undecodable (e.g. salvage-recovered) object: index
                    # its whole MBB instead of sub-object boxes.
                    entries.append(RTreeEntry(obj.aabb, (obj_id, None)))
                    continue
                partitions[obj_id] = partition
                entries.extend(
                    RTreeEntry(sub.aabb, (obj_id, sub.index))
                    for sub in partition.sub_objects
                )
            else:
                entries.append(RTreeEntry(obj.aabb, (obj_id, None)))
        self._datasets[dataset.name] = _LoadedDataset(
            dataset, provider, RTree(entries), partitions
        )

    def load_polyhedra(
        self, name: str, polyhedra: list[Polyhedron], encoder: PPVPEncoder | None = None
    ) -> Dataset:
        """Convenience ingest: compress raw meshes and load them."""
        dataset = Dataset.from_polyhedra(name, polyhedra, encoder=encoder)
        self.load_dataset(dataset)
        return dataset

    def dataset(self, name: str) -> Dataset:
        """The loaded dataset registered under ``name``."""
        return self._get(name).dataset

    def _get(self, name: str) -> _LoadedDataset:
        loaded = self._datasets.get(name)
        if loaded is None:
            raise DatasetNotLoadedError(name)
        return loaded

    @property
    def dataset_names(self) -> list[str]:
        return sorted(self._datasets)

    def dataset_provider(self, name: str) -> DecodedObjectProvider:
        """The decode provider behind a loaded dataset (counter inspection)."""
        return self._get(name).provider

    # -- profiling ---------------------------------------------------------------

    def take_profile(self) -> ProfileReport | None:
        """Detach the profiler's accumulated samples (None when off).

        The process backend calls this after each chunk so the report
        ships back with the chunk's stats; interactive callers use it to
        collect one query's samples before exporting a flamegraph.
        """
        if self.profiler is None:
            return None
        return self.profiler.take()

    # -- LOD scheduling ----------------------------------------------------------

    def _lod_schedule(self, target: _LoadedDataset, source: _LoadedDataset) -> tuple[int, ...]:
        top = 0
        for loaded in (target, source):
            for obj in loaded.dataset.objects:
                top = max(top, obj.max_lod)
        if self.config.paradigm == "fr":
            return (top,)
        if self.config.lod_list is None:
            return tuple(range(top + 1))
        lods = sorted({min(lod, top) for lod in self.config.lod_list} | {top})
        return tuple(lods)

    # -- the unified query API ----------------------------------------------------

    def execute(self, spec: QuerySpec) -> QueryResult:
        """Run one declarative query; every public query form routes here.

        Probe specs (an ad-hoc polyhedron instead of a loaded target
        dataset) are handled by loading the probe as a transient
        single-object dataset, joining, and evicting it — its single
        answer lands under target id 0 (``result.matches``).
        """
        spec = spec.normalized()
        if spec.probe is not None:
            self._probe_seq += 1
            # Unique per-probe name AND a cache eviction on the way out:
            # the decode cache is keyed by (dataset, object, LOD), so a
            # reused probe name would serve a previous probe's geometry.
            name = f"__probe__{self._probe_seq}"
            self.load_dataset(Dataset.from_polyhedra(name, [spec.probe]))
            try:
                inner = self.execute(replace(spec, probe=None, target=name))
                return QueryResult(
                    inner.pairs, inner.stats, inner.degraded_targets, spec,
                    degraded_keys=inner.degraded_keys,
                    completeness=inner.completeness,
                )
            finally:
                del self._datasets[name]
                self.cache.evict_dataset(name)
        return self.executor.run(self._compile(spec))

    def _compile(self, spec: QuerySpec) -> QueryPlan:
        strategy = STRATEGIES[spec.kind]
        source = self._get(spec.source)
        if spec.kind == "containment":
            # The query point plays the target role; no join-wide LOD
            # schedule — the ladder is derived from the candidates.
            return QueryPlan(
                spec=spec, strategy=strategy, target=source, source=source,
                lods=(), config=self.config, span_target="<point>",
            )
        target = self._get(spec.target)
        return QueryPlan(
            spec=spec, strategy=strategy, target=target, source=source,
            lods=self._lod_schedule(target, source),
            config=self.config, span_target=target.name,
        )

    # -- joins (compatibility wrappers) --------------------------------------------

    def intersection_join(self, target_name: str, source_name: str) -> QueryResult:
        """For every target object, the source objects intersecting it."""
        return self.execute(
            QuerySpec(kind="intersection", source=source_name, target=target_name)
        )

    def within_join(
        self, target_name: str, source_name: str, distance: float
    ) -> QueryResult:
        """For every target object, the source objects within ``distance``."""
        if distance < 0:
            raise EngineConfigError("distance must be >= 0")
        return self.execute(
            QuerySpec(
                kind="within", source=source_name, target=target_name,
                distance=distance,
            )
        )

    def nn_join(self, target_name: str, source_name: str) -> QueryResult:
        """All-nearest-neighbor join (ANN): the closest source per target."""
        return self.knn_join(target_name, source_name, k=1)

    def knn_join(self, target_name: str, source_name: str, k: int = 1) -> QueryResult:
        """The ``k`` nearest source objects per target object."""
        if k < 1:
            raise EngineConfigError("k must be >= 1")
        return self.execute(
            QuerySpec(kind="knn", source=source_name, target=target_name, k=k)
        )

    # -- single-object queries ---------------------------------------------------

    def intersection_query(self, source_name: str, probe: Polyhedron) -> list[int]:
        """Deprecated: use ``execute(QuerySpec(kind="intersection", probe=...))``."""
        self._warn_bare_form("intersection_query")
        return self.execute(
            QuerySpec(kind="intersection", source=source_name, probe=probe)
        ).matches

    def within_query(
        self, source_name: str, probe: Polyhedron, distance: float
    ) -> list[int]:
        """Deprecated: use ``execute(QuerySpec(kind="within", probe=...))``."""
        self._warn_bare_form("within_query")
        return self.execute(
            QuerySpec(
                kind="within", source=source_name, probe=probe, distance=distance
            )
        ).matches

    def nn_query(self, source_name: str, probe: Polyhedron) -> tuple[int, float, bool] | None:
        """Deprecated: use ``execute(QuerySpec(kind="nn", probe=...))``."""
        self._warn_bare_form("nn_query")
        matches = self.execute(
            QuerySpec(kind="nn", source=source_name, probe=probe)
        ).matches
        return matches[0] if matches else None

    @staticmethod
    def _warn_bare_form(method: str) -> None:
        warnings.warn(
            f"ThreeDPro.{method} returns a bare result and drops QueryStats; "
            f"use engine.execute(QuerySpec(...)) which returns a QueryResult. "
            f"The bare form will be removed in 2.0.",
            DeprecationWarning,
            stacklevel=3,
        )

    def containment_query(self, source_name: str, point) -> tuple[list[int], QueryStats]:
        """Deprecated: use ``execute(QuerySpec(kind="containment", point=...))``.

        The paper notes (Section 4.1) that point-in-polyhedron checks also
        benefit from the FPR paradigm; the ``execute`` form returns the
        full :class:`~repro.core.plan.QueryResult` (completeness, funnel,
        wire serialization) instead of this bare ``(matches, stats)``
        tuple.
        """
        self._warn_bare_form("containment_query")
        result = self.execute(
            QuerySpec(kind="containment", source=source_name, point=point)
        )
        return result.matches, result.stats
