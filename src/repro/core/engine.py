"""The 3DPro engine: dataset loading, filtering, and spatial joins.

The engine owns (Fig. 8 of the paper):

* a **global index** — one R-tree per loaded dataset over object MBBs
  (or sub-object boxes when partition acceleration is on);
* an **object decoder** behind a shared LRU decode cache;
* a **geometry computer** — the batched face-pair kernel executor;
* the **query processor** — the join drivers below, which batch target
  objects cuboid by cuboid for cache locality and delegate per-target
  work to the progressive refinement of :mod:`repro.core.refine`.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field

from repro.compression.ppvp import PPVPEncoder
from repro.core.config import EngineConfig
from repro.core.errors import (
    DatasetNotLoadedError,
    DecodeFailureError,
    EngineConfigError,
    ErrorBudgetExceededError,
)
from repro.core.refine import (
    NNCandidate,
    RefineContext,
    refine_intersection,
    refine_nn,
    refine_within,
)
from repro.core.stats import QueryStats
from repro.geometry.aabb import AABB
from repro.index.rtree import RTree, RTreeEntry
from repro.mesh.polyhedron import Polyhedron
from repro.obs import metrics as obs_metrics
from repro.obs.logs import get_logger, log_event
from repro.obs.trace import TimedPhase, Tracer
from repro.parallel.executor import Device, GeometryComputer
from repro.parallel.tasks import TaskScheduler
from repro.partition.partitioner import partition_faces
from repro.storage.cache import DecodeCache, DecodedObjectProvider
from repro.storage.store import Dataset

__all__ = ["ThreeDPro", "JoinResult"]

_LOG = get_logger("engine")


@dataclass
class JoinResult:
    """Join output: per-target matches plus execution statistics.

    ``pairs`` maps each target object id to its matches — a sorted list
    of source ids for intersection/within joins, or a list of
    ``(source_id, distance, exact)`` triples for NN/kNN joins (when the
    FPR paradigm settles a nearest neighbor early, ``distance`` is the
    best known upper bound and ``exact`` is False).

    ``degraded_targets`` holds the target ids whose answers leaned on
    degraded geometry (a decode fell back to a lower LOD, a salvaged
    object, or MBB-only evaluation): those answers are guaranteed
    correct *subsets* of the clean answer rather than exact matches.
    """

    pairs: dict
    stats: QueryStats
    degraded_targets: set = field(default_factory=set)

    @property
    def total_matches(self) -> int:
        return sum(len(v) for v in self.pairs.values())

    @property
    def degraded_objects(self) -> int:
        """Distinct objects served below requested fidelity (from stats)."""
        return self.stats.degraded_objects


class _LoadedDataset:
    """Engine-side state for one dataset."""

    def __init__(self, dataset: Dataset, provider: DecodedObjectProvider, rtree: RTree, partitions: dict):
        self.dataset = dataset
        self.provider = provider
        self.rtree = rtree
        self.partitions = partitions

    @property
    def name(self) -> str:
        return self.dataset.name


class ThreeDPro:
    """The progressive 3D spatial query engine."""

    def __init__(self, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        self.metrics = (
            self.config.metrics
            if self.config.metrics is not None
            else obs_metrics.REGISTRY
        )
        self.tracer = Tracer(enabled=self.config.tracing)
        self.cache = DecodeCache(
            capacity_bytes=self.config.cache_bytes,
            enabled=self.config.cache_enabled,
            metrics=self.metrics,
        )
        device = Device.GPU if self.config.accel.gpu else Device.CPU
        self.computer = GeometryComputer(
            device=device,
            cpu_block=self.config.cpu_block,
            gpu_block=self.config.gpu_block,
            scheduler=TaskScheduler(
                workers=self.config.workers,
                max_retries=self.config.task_retries,
                backoff_seconds=self.config.task_backoff_seconds,
                fault_injector=self.config.fault_injector,
                metrics=self.metrics,
            ),
            metrics=self.metrics,
        )
        self._m_queries = self.metrics.counter(
            "repro_queries_total", "Queries executed, labeled by join kind"
        )
        self._m_query_seconds = self.metrics.histogram(
            "repro_query_seconds", "End-to-end query wall time"
        )
        self._m_degraded = self.metrics.counter(
            "repro_degraded_objects_total",
            "Distinct objects served below requested fidelity, per query",
        )
        self._datasets: dict[str, _LoadedDataset] = {}
        self._probe_seq = 0

    # -- loading ---------------------------------------------------------------

    def load_dataset(self, dataset: Dataset) -> None:
        """Register a dataset: build its provider, partitions, and R-tree."""
        provider = DecodedObjectProvider(
            dataset.name,
            dataset.objects,
            self.cache,
            tree_leaf_size=self.config.tree_leaf_size,
            fault_injector=self.config.fault_injector,
            salvaged_ids=dataset.degraded_ids,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        partitions: dict[int, object] = {}
        entries: list[RTreeEntry] = []
        for obj_id, obj in enumerate(dataset.objects):
            if (
                self.config.accel.partition
                and obj.face_count_at_lod(obj.max_lod) >= self.config.partition_min_faces
            ):
                try:
                    full = obj.decode(obj.max_lod)
                    partition = partition_faces(full, self.config.partition_parts)
                except Exception:
                    # Undecodable (e.g. salvage-recovered) object: index
                    # its whole MBB instead of sub-object boxes.
                    entries.append(RTreeEntry(obj.aabb, (obj_id, None)))
                    continue
                partitions[obj_id] = partition
                entries.extend(
                    RTreeEntry(sub.aabb, (obj_id, sub.index))
                    for sub in partition.sub_objects
                )
            else:
                entries.append(RTreeEntry(obj.aabb, (obj_id, None)))
        self._datasets[dataset.name] = _LoadedDataset(
            dataset, provider, RTree(entries), partitions
        )

    def load_polyhedra(
        self, name: str, polyhedra: list[Polyhedron], encoder: PPVPEncoder | None = None
    ) -> Dataset:
        """Convenience ingest: compress raw meshes and load them."""
        dataset = Dataset.from_polyhedra(name, polyhedra, encoder=encoder)
        self.load_dataset(dataset)
        return dataset

    def _get(self, name: str) -> _LoadedDataset:
        loaded = self._datasets.get(name)
        if loaded is None:
            raise DatasetNotLoadedError(name)
        return loaded

    @property
    def dataset_names(self) -> list[str]:
        return sorted(self._datasets)

    # -- LOD scheduling ----------------------------------------------------------

    def _lod_schedule(self, target: _LoadedDataset, source: _LoadedDataset) -> tuple[int, ...]:
        top = 0
        for loaded in (target, source):
            for obj in loaded.dataset.objects:
                top = max(top, obj.max_lod)
        if self.config.paradigm == "fr":
            return (top,)
        if self.config.lod_list is None:
            return tuple(range(top + 1))
        lods = sorted({min(lod, top) for lod in self.config.lod_list} | {top})
        return tuple(lods)

    # -- candidate gathering -------------------------------------------------------

    @staticmethod
    def _merge_payloads(payloads) -> dict:
        """Collapse (obj, part) payloads into obj -> candidate part set."""
        merged: dict[int, object] = {}
        for obj_id, part in payloads:
            if part is None:
                merged[obj_id] = None
            else:
                existing = merged.get(obj_id, set())
                if existing is not None:
                    existing = set(existing)
                    existing.add(part)
                    merged[obj_id] = existing
        return merged

    def _refine_context(self, target: _LoadedDataset, source: _LoadedDataset, stats: QueryStats, lods) -> RefineContext:
        return RefineContext(
            computer=self.computer,
            stats=stats,
            target_provider=target.provider,
            source_provider=source.provider,
            target_partitions=target.partitions,
            source_partitions=source.partitions,
            lods=lods,
            use_tree=self.config.accel.aabbtree,
            exact_nn_distances=self.config.exact_nn_distances,
            max_decode_failures=self.config.max_decode_failures,
            tracer=self.tracer,
        )

    def _phase(self, stats: QueryStats, name: str, **attrs) -> TimedPhase:
        """A filter/compute phase: timed once into both stats and a span."""
        return TimedPhase(self.tracer, stats, name, **attrs)

    def _root_span(self, stats: QueryStats, target_name: str, source_name: str):
        return self.tracer.span(
            "query",
            query=stats.query,
            config=self.config.label,
            target=target_name,
            source=source_name,
        )

    def _new_stats(self, query: str, providers=()) -> QueryStats:
        stats = QueryStats(query=query, config_label=self.config.label)
        stats.cache_hits = -self.cache.hits
        stats.cache_misses = -self.cache.misses
        stats.decode_seconds_base = sum(p.decode_seconds for p in providers)
        stats.decode_failures_base = sum(p.decode_failures for p in providers)
        return stats

    def _finish_stats(self, stats: QueryStats, started: float, providers, root=None) -> None:
        # When tracing, the root span's wall clock IS total_seconds — the
        # stats summary is populated from the trace, never in parallel.
        wall = getattr(root, "wall_seconds", None) if root is not None else None
        stats.total_seconds = (
            wall if wall is not None else time.perf_counter() - started
        )
        stats.cache_hits += self.cache.hits
        stats.cache_misses += self.cache.misses
        decode = sum(p.decode_seconds for p in providers) - stats.decode_seconds_base
        stats.decode_seconds = decode
        stats.compute_seconds = max(0.0, stats.compute_seconds - decode)
        stats.decoded_vertices = sum(p.decoded_vertices for p in providers)
        stats.decode_failures = (
            sum(p.decode_failures for p in providers) - stats.decode_failures_base
        )
        if root is not None and root.enabled:
            root.set(
                targets=stats.targets,
                candidates=stats.candidates,
                results=stats.results,
                face_pairs=stats.face_pairs_total,
                degraded_objects=stats.degraded_objects,
                decode_failures=stats.decode_failures,
            )
        self._m_queries.inc(query=stats.query)
        self._m_query_seconds.observe(stats.total_seconds)
        if stats.degraded_objects:
            self._m_degraded.inc(stats.degraded_objects)
            log_event(
                _LOG, "degraded_query", level=logging.WARNING,
                query=stats.query, config=stats.config_label,
                degraded_objects=stats.degraded_objects,
                decode_failures=stats.decode_failures,
            )

    # -- joins ----------------------------------------------------------------------

    def intersection_join(self, target_name: str, source_name: str) -> JoinResult:
        """For every target object, the source objects intersecting it."""
        target, source = self._get(target_name), self._get(source_name)
        lods = self._lod_schedule(target, source)
        stats = self._new_stats(
            "intersection_join", (target.provider, source.provider)
        )
        ctx = self._refine_context(target, source, stats, lods)
        started = time.perf_counter()

        pairs: dict[int, list[int]] = {}
        degraded_targets: set[int] = set()
        root = self._root_span(stats, target_name, source_name)
        with root:
            for batch in target.dataset.cuboid_batches():
                for tid in batch:
                    stats.targets += 1
                    box = target.dataset.objects[tid].aabb
                    with self._phase(stats, "filter"):
                        payloads = source.rtree.query_intersecting(box)
                        candidates = self._merge_payloads(payloads)
                    stats.candidates += len(candidates)
                    ctx.touched_degraded = False
                    with self._phase(stats, "compute", target=tid):
                        matches = refine_intersection(ctx, tid, candidates)
                    if ctx.touched_degraded:
                        degraded_targets.add(tid)
                    if matches:
                        pairs[tid] = sorted(matches)
                        stats.results += len(matches)
        self._finish_stats(stats, started, (target.provider, source.provider), root)
        return JoinResult(pairs, stats, degraded_targets)

    def within_join(
        self, target_name: str, source_name: str, distance: float
    ) -> JoinResult:
        """For every target object, the source objects within ``distance``."""
        if distance < 0:
            raise EngineConfigError("distance must be >= 0")
        target, source = self._get(target_name), self._get(source_name)
        lods = self._lod_schedule(target, source)
        stats = self._new_stats("within_join", (target.provider, source.provider))
        ctx = self._refine_context(target, source, stats, lods)
        started = time.perf_counter()

        pairs: dict[int, list[int]] = {}
        degraded_targets: set[int] = set()
        root = self._root_span(stats, target_name, source_name)
        with root:
            for batch in target.dataset.cuboid_batches():
                for tid in batch:
                    stats.targets += 1
                    box = target.dataset.objects[tid].aabb
                    with self._phase(stats, "filter"):
                        found = source.rtree.query_within(box, distance)
                        definite = self._merge_payloads(found.definite)
                        candidates = self._merge_payloads(
                            p for p in found.candidates if p[0] not in definite
                        )
                    stats.candidates += len(candidates)
                    ctx.touched_degraded = False
                    with self._phase(stats, "compute", target=tid):
                        matches = set(definite) | set(
                            refine_within(ctx, tid, candidates, distance)
                        )
                    if ctx.touched_degraded:
                        degraded_targets.add(tid)
                    if matches:
                        pairs[tid] = sorted(matches)
                        stats.results += len(matches)
        self._finish_stats(stats, started, (target.provider, source.provider), root)
        return JoinResult(pairs, stats, degraded_targets)

    def nn_join(self, target_name: str, source_name: str) -> JoinResult:
        """All-nearest-neighbor join (ANN): the closest source per target."""
        return self.knn_join(target_name, source_name, k=1)

    def knn_join(self, target_name: str, source_name: str, k: int = 1) -> JoinResult:
        """The ``k`` nearest source objects per target object."""
        if k < 1:
            raise EngineConfigError("k must be >= 1")
        target, source = self._get(target_name), self._get(source_name)
        lods = self._lod_schedule(target, source)
        stats = self._new_stats(
            "nn_join" if k == 1 else f"knn_join(k={k})",
            (target.provider, source.provider),
        )
        ctx = self._refine_context(target, source, stats, lods)
        started = time.perf_counter()

        pairs: dict[int, list[tuple[int, float, bool]]] = {}
        degraded_targets: set[int] = set()
        root = self._root_span(stats, target_name, source_name)
        with root:
            for batch in target.dataset.cuboid_batches():
                for tid in batch:
                    stats.targets += 1
                    box = target.dataset.objects[tid].aabb
                    with self._phase(stats, "filter"):
                        # For k = 1 the part-level bound is already the
                        # object-level bound: an object whose every part has
                        # MINDIST above the smallest part MAXDIST is farther
                        # than the nearest object, and the part realizing an
                        # object's distance always survives. For k > 1, k
                        # objects may own up to k * partition_parts of the
                        # smallest part ranges, so keep that many.
                        k_entries = k if k == 1 else k * (
                            self.config.partition_parts if source.partitions else 1
                        )
                        raw = source.rtree.query_nn_candidates(box, k=k_entries)
                        candidates = self._merge_nn_payloads(raw)
                    stats.candidates += len(candidates)
                    ctx.touched_degraded = False
                    with self._phase(stats, "compute", target=tid):
                        nearest = refine_nn(ctx, tid, candidates, k=k)
                    if ctx.touched_degraded:
                        degraded_targets.add(tid)
                    if nearest:
                        pairs[tid] = [(c.sid, c.maxdist, c.exact) for c in nearest]
                        stats.results += len(nearest)
        self._finish_stats(stats, started, (target.provider, source.provider), root)
        return JoinResult(pairs, stats, degraded_targets)

    @staticmethod
    def _merge_nn_payloads(raw) -> list[NNCandidate]:
        """Collapse per-part NN candidates into per-object distance ranges."""
        merged: dict[int, NNCandidate] = {}
        for (obj_id, part), mind, maxd in raw:
            cand = merged.get(obj_id)
            if cand is None:
                parts = None if part is None else {part}
                merged[obj_id] = NNCandidate(obj_id, mind, maxd, parts)
                continue
            cand.mindist = min(cand.mindist, mind)
            cand.maxdist = min(cand.maxdist, maxd)
            if cand.parts is not None and part is not None:
                cand.parts.add(part)
            else:
                cand.parts = None if part is None else cand.parts
        return list(merged.values())

    # -- single-object queries ---------------------------------------------------

    def intersection_query(self, source_name: str, probe: Polyhedron) -> list[int]:
        """Source objects intersecting an ad-hoc probe polyhedron."""
        return self._probe_join(source_name, probe, "intersection")

    def within_query(
        self, source_name: str, probe: Polyhedron, distance: float
    ) -> list[int]:
        """Source objects within ``distance`` of a probe polyhedron."""
        return self._probe_join(source_name, probe, "within", distance=distance)

    def nn_query(self, source_name: str, probe: Polyhedron) -> tuple[int, float, bool] | None:
        """The nearest source object to a probe polyhedron."""
        matches = self._probe_join(source_name, probe, "nn")
        return matches[0] if matches else None

    def containment_query(self, source_name: str, point) -> tuple[list[int], QueryStats]:
        """Source objects containing ``point``, with progressive early accept.

        The paper notes (Section 4.1) that point-in-polyhedron checks also
        benefit from the FPR paradigm: a point inside a lower-LOD mesh is
        inside the original (the LOD is a spatial subset), so containment
        can often be confirmed without decoding further. Only the top LOD
        can *exclude* a candidate.
        """
        from repro.geometry.raycast import point_in_polyhedron

        source = self._get(source_name)
        stats = self._new_stats("containment_query", (source.provider,))
        started = time.perf_counter()
        point = tuple(float(v) for v in point)
        probe = AABB(point, point)

        root = self._root_span(stats, "<point>", source_name)
        root.__enter__()
        try:
            with self._phase(stats, "filter"):
                payloads = source.rtree.query_intersecting(probe)
                candidates = sorted({obj_id for obj_id, _part in payloads})
            stats.candidates = len(candidates)

            degraded_seen: set[int] = set()

            def note_degraded(sid: int) -> None:
                if sid not in degraded_seen:
                    degraded_seen.add(sid)
                    stats.degraded_objects += 1
                budget = self.config.max_decode_failures
                if budget is not None and len(degraded_seen) > budget:
                    raise ErrorBudgetExceededError(
                        budget, len(degraded_seen), query=stats.query
                    )

            top = max((source.provider.max_lod(sid) for sid in candidates), default=0)
            lods = (top,) if self.config.paradigm == "fr" else tuple(range(top + 1))
            matches: list[int] = []
            with self._phase(stats, "compute"):
                survivors = list(candidates)
                for lod in lods:
                    if not survivors:
                        break
                    with self.tracer.span(
                        "refine", query="containment", lod=lod,
                        survivors=len(survivors),
                    ):
                        stats.pairs_evaluated_by_lod[lod] += len(survivors)
                        remaining = []
                        for sid in survivors:
                            try:
                                dec = source.provider.get(
                                    sid, min(lod, source.provider.max_lod(sid))
                                )
                            except DecodeFailureError:
                                # MBB containment proves nothing about the mesh:
                                # drop the candidate (subset-correct).
                                note_degraded(sid)
                                continue
                            if dec.degraded:
                                note_degraded(sid)
                            if point_in_polyhedron(point, dec.triangles):
                                matches.append(sid)  # inside a subset => inside
                            elif lod < top:
                                remaining.append(sid)
                        stats.pairs_pruned_by_lod[lod] += len(survivors) - len(remaining)
                        survivors = remaining
        finally:
            root.__exit__(None, None, None)
        stats.results = len(matches)
        self._finish_stats(stats, started, (source.provider,), root)
        return sorted(matches), stats

    def _probe_join(self, source_name, probe, kind, distance=None):
        # Unique per-probe name AND a cache purge on the way out: the
        # decode cache is keyed by (dataset, object, LOD), so a reused
        # probe name would serve a previous probe's decoded geometry.
        self._probe_seq += 1
        name = f"__probe__{self._probe_seq}"
        probe_dataset = Dataset.from_polyhedra(name, [probe])
        self.load_dataset(probe_dataset)
        try:
            if kind == "intersection":
                result = self.intersection_join(name, source_name)
            elif kind == "within":
                result = self.within_join(name, source_name, distance)
            else:
                result = self.nn_join(name, source_name)
            return result.pairs.get(0, [])
        finally:
            del self._datasets[name]
            self.cache.purge_dataset(name)
