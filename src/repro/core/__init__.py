"""The 3DPro query engine (the paper's primary contribution).

:class:`~repro.core.engine.ThreeDPro` executes spatial joins —
intersection, within, nearest-neighbor, and kNN — over datasets of
PPVP-compressed objects under either query paradigm:

* **FR** (Filter-Refine): filter with the global R-tree, then decode
  every candidate to the highest LOD and refine; the classical baseline.
* **FPR** (Filter-Progressive-Refine): refine candidates progressively
  from low LODs, returning results early whenever the
  progressive-approximation properties allow (Algorithms 1-3).

Acceleration methods (AABB-trees, skeleton partitioning, simulated-GPU
batching) compose with both paradigms, as in the paper's Table 1.
"""

from repro.core.config import Accel, EngineConfig
from repro.core.deadline import CancellationToken, Deadline
from repro.core.engine import JoinResult, QueryResult, QuerySpec, ThreeDPro
from repro.core.errors import (
    BlobChecksumError,
    CuboidFormatError,
    DatasetFormatError,
    DatasetNotLoadedError,
    DeadlineExceededError,
    DecodeFailureError,
    EngineConfigError,
    EngineError,
    ErrorBudgetExceededError,
    StorageError,
    TaskExecutionError,
)
from repro.core.lod_select import LODProfile, choose_lod_list, profile_pruning
from repro.core.plan import QueryCompleteness
from repro.core.stats import QueryStats

__all__ = [
    "Accel",
    "CancellationToken",
    "Deadline",
    "DeadlineExceededError",
    "EngineConfig",
    "JoinResult",
    "QueryCompleteness",
    "QueryResult",
    "QuerySpec",
    "ThreeDPro",
    "EngineError",
    "EngineConfigError",
    "DatasetNotLoadedError",
    "StorageError",
    "CuboidFormatError",
    "BlobChecksumError",
    "DatasetFormatError",
    "DecodeFailureError",
    "ErrorBudgetExceededError",
    "TaskExecutionError",
    "LODProfile",
    "choose_lod_list",
    "profile_pruning",
    "QueryStats",
]
