"""Declarative query specs, compiled plans, and the unified result type.

The query layer is split the way a database splits it:

* :class:`QuerySpec` — *what* to compute: the query kind plus its
  parameters (target/source datasets, distance threshold, ``k``, probe
  mesh, containment point). Pure data, validated once.
* :class:`QueryPlan` — the spec bound to engine state: resolved
  datasets, the LOD schedule, the per-kind :class:`KindStrategy`, and
  the stats/span labels. Compiled by :meth:`ThreeDPro.execute`.
* :class:`QueryResult` — *every* kind's answer in one shape: per-target
  ``pairs``, a :class:`~repro.core.stats.QueryStats`, and the set of
  targets whose answers leaned on degraded geometry.

A :class:`KindStrategy` contributes only what genuinely differs per
query kind — which targets to iterate, how to filter one target's
candidates, and which refinement algorithm settles them. Everything
else (phase timing, stats, degraded tracking, fan-out across workers)
lives once in :class:`~repro.core.executor.QueryExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.errors import DeadlineExceededError, EngineConfigError
from repro.core.refine import (
    NNCandidate,
    refine_containment,
    refine_intersection,
    refine_nn,
    refine_within,
)
from repro.core.stats import QueryStats
from repro.geometry.aabb import AABB

__all__ = [
    "QuerySpec",
    "QueryPlan",
    "QueryResult",
    "QueryCompleteness",
    "KindStrategy",
    "QUERY_KINDS",
]

QUERY_KINDS = ("intersection", "within", "nn", "knn", "containment")


@dataclass(frozen=True)
class QuerySpec:
    """One declarative query: kind plus parameters.

    ``kind`` is one of :data:`QUERY_KINDS`. Join kinds name a loaded
    ``target`` dataset *or* carry an ad-hoc ``probe`` polyhedron (the
    single-object query forms); ``containment`` takes a ``point``.
    ``distance`` applies to ``within``; ``k`` to ``knn`` (``nn`` is
    ``knn`` with ``k=1``).
    """

    kind: str
    source: str
    target: str | None = None
    probe: object = None  # Polyhedron, for ad-hoc single-object queries
    distance: float | None = None
    k: int | None = None
    point: tuple | None = None
    # Restrict execution to these target object ids (None = all). The
    # process backend uses this to hand each worker one contiguous chunk
    # of the cuboid-ordered target list as a self-contained sub-query;
    # cuboid iteration order among the kept ids is preserved.
    target_ids: tuple | None = None
    # Wall-clock budget for this query in milliseconds; overrides the
    # engine-level EngineConfig.deadline_ms / REPRO_DEADLINE_MS. Expiry
    # yields a partial QueryResult (see QueryResult.completeness).
    deadline_ms: int | None = None
    # Optional repro.core.deadline.CancellationToken; cancelling it
    # unwinds the query at its next checkpoint with a partial result.
    # In-process only: the process backend strips it from worker specs
    # (workers get a re-budgeted deadline_ms instead).
    cancellation: object = None

    def normalized(self) -> "QuerySpec":
        """Validate and canonicalize (``nn`` becomes ``knn`` with k=1)."""
        if self.kind not in QUERY_KINDS:
            raise EngineConfigError(
                f"unknown query kind {self.kind!r} (one of {QUERY_KINDS})"
            )
        spec = self
        if spec.kind == "nn":
            if spec.k not in (None, 1):
                raise EngineConfigError("nn queries take no k (use kind='knn')")
            spec = replace(spec, kind="knn", k=1)
        if spec.kind == "knn":
            k = 1 if spec.k is None else spec.k
            if k < 1:
                raise EngineConfigError("k must be >= 1")
            spec = replace(spec, k=k)
        elif spec.k is not None:
            raise EngineConfigError(f"k does not apply to {spec.kind!r} queries")
        if spec.kind == "within":
            if spec.distance is None:
                raise EngineConfigError("within queries require a distance")
            if spec.distance < 0:
                raise EngineConfigError("distance must be >= 0")
        elif spec.distance is not None:
            raise EngineConfigError(f"distance does not apply to {spec.kind!r} queries")
        if spec.kind == "containment":
            if spec.point is None:
                raise EngineConfigError("containment queries require a point")
            if spec.target is not None or spec.probe is not None:
                raise EngineConfigError(
                    "containment queries take a point, not a target/probe"
                )
            spec = replace(spec, point=tuple(float(v) for v in spec.point))
        else:
            if spec.point is not None:
                raise EngineConfigError(f"point does not apply to {spec.kind!r} queries")
            if (spec.target is None) == (spec.probe is None):
                raise EngineConfigError(
                    f"{spec.kind!r} queries take exactly one of target / probe"
                )
        if spec.target_ids is not None:
            if spec.kind == "containment" or spec.probe is not None:
                raise EngineConfigError(
                    "target_ids applies only to joins over a loaded target dataset"
                )
            spec = replace(spec, target_ids=tuple(int(t) for t in spec.target_ids))
        if spec.deadline_ms is not None and spec.deadline_ms < 1:
            raise EngineConfigError("deadline_ms must be None or >= 1")
        return spec

    @property
    def label(self) -> str:
        """The stats label (``QueryStats.query``) for this spec."""
        if self.kind == "containment":
            return "containment_query"
        if self.kind == "knn":
            k = 1 if self.k is None else self.k
            return "nn_join" if k == 1 else f"knn_join(k={k})"
        return f"{self.kind}_join"


@dataclass
class QueryCompleteness:
    """How much of a query actually ran (the anytime-result contract).

    ``complete`` is True for an undisturbed run. When a deadline expires
    or a :class:`~repro.core.deadline.CancellationToken` fires,
    ``reason`` says which (``"deadline"`` / ``"cancelled"``) and the
    target tallies partition the target list: ``targets_finished`` ran
    to the end, ``targets_inflight`` were interrupted mid-refinement
    (their confirmed-so-far matches are still in ``pairs`` — sound
    under FPR, where a pair confirmed at any LOD is final), and
    ``targets_unstarted`` never began. ``max_lod_reached`` is the
    highest LOD any pair was evaluated at (-1: none). Picklable, so the
    process backend ships per-chunk records back to the parent.
    """

    complete: bool = True
    reason: str = ""  # "" | "deadline" | "cancelled"
    targets_total: int = 0
    targets_finished: int = 0
    targets_inflight: int = 0
    targets_unstarted: int = 0
    max_lod_reached: int = -1
    deadline_ms: int | None = None
    # SLO accounting: fraction of the deadline budget left when the
    # query finished (1.0 = instant, 0.0 = expired). None when the
    # query ran without a deadline.
    deadline_headroom_ratio: float | None = None

    def as_dict(self) -> dict:
        return {
            "complete": self.complete,
            "reason": self.reason,
            "targets_total": self.targets_total,
            "targets_finished": self.targets_finished,
            "targets_inflight": self.targets_inflight,
            "targets_unstarted": self.targets_unstarted,
            "max_lod_reached": self.max_lod_reached,
            "deadline_ms": self.deadline_ms,
            "deadline_headroom_ratio": self.deadline_headroom_ratio,
        }


@dataclass
class QueryResult:
    """Any query's output: per-target matches plus execution statistics.

    ``pairs`` maps each target object id to its matches — a sorted list
    of source ids for intersection/within/containment, or a list of
    ``(source_id, distance, exact)`` triples for NN/kNN (when the FPR
    paradigm settles a nearest neighbor early, ``distance`` is the best
    known upper bound and ``exact`` is False). Single-target queries
    (probe and containment forms) key their one answer under target 0 —
    use :attr:`matches`.

    ``degraded_targets`` holds the target ids whose answers leaned on
    degraded geometry (a decode fell back to a lower LOD, a salvaged
    object, or MBB-only evaluation): those answers are guaranteed
    correct *subsets* of the clean answer rather than exact matches.
    """

    pairs: dict
    stats: QueryStats
    degraded_targets: set = field(default_factory=set)
    spec: QuerySpec | None = None
    # Distinct degraded (side, object id) keys behind degraded_targets:
    # ``stats.degraded_objects`` is their count. The process backend
    # ships these per chunk so the parent can deduplicate objects that
    # degraded in more than one worker.
    degraded_keys: set = field(default_factory=set)
    # Anytime-result record: did the query run to the end, and if not,
    # which targets finished / were in flight / never started. A partial
    # result's pairs are always a correct subset of the complete run's.
    completeness: QueryCompleteness = field(default_factory=QueryCompleteness)

    @property
    def complete(self) -> bool:
        """True when the query ran to the end (no deadline/cancel cut)."""
        return self.completeness.complete

    @property
    def total_matches(self) -> int:
        return sum(len(v) for v in self.pairs.values())

    @property
    def degraded_objects(self) -> int:
        """Distinct objects served below requested fidelity (from stats)."""
        return self.stats.degraded_objects

    @property
    def matches(self) -> list:
        """The single target's matches (probe / containment queries)."""
        return self.pairs.get(0, [])

    @property
    def funnel(self):
        """The refinement-funnel record (``stats.funnel``) for this query."""
        return self.stats.funnel

    def __iter__(self):
        """Legacy ``(pairs, stats)`` unpacking — kept one release."""
        yield self.pairs
        yield self.stats


@dataclass
class QueryPlan:
    """A spec bound to engine state, ready for the executor.

    ``target`` / ``source`` are the engine's loaded-dataset records
    (``target`` is the source dataset for containment, whose "target"
    is the query point). ``lods`` is the join-wide LOD schedule (empty
    for containment, which derives its ladder from the candidates).
    """

    spec: QuerySpec
    strategy: "KindStrategy"
    target: object
    source: object
    lods: tuple[int, ...]
    config: object  # EngineConfig
    span_target: str

    @property
    def label(self) -> str:
        return self.spec.label

    @property
    def providers(self) -> tuple:
        if self.spec.kind == "containment":
            return (self.source.provider,)
        return (self.target.provider, self.source.provider)


# -- candidate-merging helpers (shared by the filter strategies) ---------------


def merge_payloads(payloads) -> dict:
    """Collapse (obj, part) payloads into obj -> candidate part set."""
    merged: dict[int, object] = {}
    for obj_id, part in payloads:
        if part is None:
            merged[obj_id] = None
        else:
            existing = merged.get(obj_id, set())
            if existing is not None:
                existing = set(existing)
                existing.add(part)
                merged[obj_id] = existing
    return merged


def merge_nn_payloads(raw) -> list[NNCandidate]:
    """Collapse per-part NN candidates into per-object distance ranges."""
    merged: dict[int, NNCandidate] = {}
    for (obj_id, part), mind, maxd in raw:
        cand = merged.get(obj_id)
        if cand is None:
            parts = None if part is None else {part}
            merged[obj_id] = NNCandidate(obj_id, mind, maxd, parts)
            continue
        cand.mindist = min(cand.mindist, mind)
        cand.maxdist = min(cand.maxdist, maxd)
        if cand.parts is not None and part is not None:
            cand.parts.add(part)
        else:
            cand.parts = None if part is None else cand.parts
    return list(merged.values())


# -- per-kind strategies -------------------------------------------------------


class KindStrategy:
    """What differs per query kind inside the shared per-target pipeline."""

    #: whether each pipeline iteration counts into ``stats.targets``
    #: (containment's single pseudo-target historically does not).
    counts_targets = True

    def target_ids(self, plan: QueryPlan) -> list[int]:
        """Targets in execution order (cuboid order, for cache locality).

        A spec-level ``target_ids`` restriction keeps only the listed
        ids, preserving cuboid order — the contract that lets the
        process backend split one query into per-chunk sub-queries whose
        concatenated results equal the unrestricted run.
        """
        ordered = [
            tid
            for batch in plan.target.dataset.cuboid_batches()
            for tid in batch
        ]
        restrict = plan.spec.target_ids
        if restrict is None:
            return ordered
        keep = set(restrict)
        return [tid for tid in ordered if tid in keep]

    def compute_attrs(self, tid: int) -> dict:
        return {"target": tid}

    def filter(self, plan: QueryPlan, tid: int):
        """Index-filtered candidates for one target (opaque per kind)."""
        raise NotImplementedError

    def candidate_count(self, candidates) -> int:
        return len(candidates)

    def refine(self, plan: QueryPlan, ctx, tid: int, candidates):
        """Settle one target; returns ``(pairs_value | None, n_results)``."""
        raise NotImplementedError

    def partial_value(self, exc: DeadlineExceededError):
        """The confirmed-so-far value of a target interrupted mid-refine.

        Default: drop the in-flight target (sound, since nothing was
        committed). Kinds whose per-LOD confirmations are final override
        this to keep them — the anytime property of FPR.
        """
        return None, 0


def _sorted_partial(exc: DeadlineExceededError):
    """Sorted confirmed-so-far id matches from an interrupted refine."""
    matches = exc.partial or []
    if not matches:
        return None, 0
    value = sorted(set(matches))
    return value, len(value)


class IntersectionStrategy(KindStrategy):
    def filter(self, plan, tid):
        box = plan.target.dataset.objects[tid].aabb
        return merge_payloads(plan.source.rtree.query_intersecting(box))

    def refine(self, plan, ctx, tid, candidates):
        matches = refine_intersection(ctx, tid, candidates)
        if not matches:
            return None, 0
        return sorted(matches), len(matches)

    partial_value = staticmethod(_sorted_partial)


class WithinStrategy(KindStrategy):
    def filter(self, plan, tid):
        box = plan.target.dataset.objects[tid].aabb
        found = plan.source.rtree.query_within(box, plan.spec.distance)
        definite = merge_payloads(found.definite)
        candidates = merge_payloads(
            p for p in found.candidates if p[0] not in definite
        )
        return definite, candidates

    def candidate_count(self, candidates) -> int:
        _definite, open_candidates = candidates
        return len(open_candidates)

    def refine(self, plan, ctx, tid, candidates):
        definite, open_candidates = candidates
        # The filter's definite matches are confirmed without any
        # refinement; the funnel books them at the query level so
        # confirmed_total still reconciles with the result count.
        ctx.stats.funnel.filter_confirmed += len(definite)
        try:
            refined = refine_within(ctx, tid, open_candidates, plan.spec.distance)
        except DeadlineExceededError as exc:
            # The filter's definite matches were confirmed before the
            # interrupt; fold them into the partial answer.
            exc.partial = sorted(set(definite) | set(exc.partial or ()))
            raise
        matches = set(definite) | set(refined)
        if not matches:
            return None, 0
        return sorted(matches), len(matches)

    partial_value = staticmethod(_sorted_partial)


class KnnStrategy(KindStrategy):
    def filter(self, plan, tid):
        k = plan.spec.k
        box = plan.target.dataset.objects[tid].aabb
        # For k = 1 the part-level bound is already the object-level
        # bound: an object whose every part has MINDIST above the
        # smallest part MAXDIST is farther than the nearest object, and
        # the part realizing an object's distance always survives. For
        # k > 1, k objects may own up to k * partition_parts of the
        # smallest part ranges, so keep that many.
        k_entries = k if k == 1 else k * (
            plan.config.partition_parts if plan.source.partitions else 1
        )
        raw = plan.source.rtree.query_nn_candidates(box, k=k_entries)
        return merge_nn_payloads(raw)

    def refine(self, plan, ctx, tid, candidates):
        nearest = refine_nn(ctx, tid, candidates, k=plan.spec.k)
        if not nearest:
            return None, 0
        # NN confirmation is by elimination: the survivors that end up
        # in the top-k were never "settled" per LOD, so book them as
        # query-level final confirmations for funnel reconciliation.
        ctx.stats.funnel.confirmed_final += len(nearest)
        return [(c.sid, c.maxdist, c.exact) for c in nearest], len(nearest)


class ContainmentStrategy(KindStrategy):
    counts_targets = False

    def target_ids(self, plan):
        return [0]  # the query point is the single pseudo-target

    def compute_attrs(self, tid):
        return {}

    def filter(self, plan, tid):
        point = plan.spec.point
        probe = AABB(point, point)
        payloads = plan.source.rtree.query_intersecting(probe)
        return sorted({obj_id for obj_id, _part in payloads})

    def refine(self, plan, ctx, tid, candidates):
        provider = plan.source.provider
        top = max((provider.max_lod(sid) for sid in candidates), default=0)
        lods = (
            (top,) if plan.config.paradigm == "fr" else tuple(range(top + 1))
        )
        matches = refine_containment(ctx, plan.spec.point, candidates, lods)
        return sorted(matches), len(matches)

    partial_value = staticmethod(_sorted_partial)


STRATEGIES = {
    "intersection": IntersectionStrategy(),
    "within": WithinStrategy(),
    "knn": KnnStrategy(),
    "containment": ContainmentStrategy(),
}
