"""Declarative query specs, compiled plans, and the unified result type.

The query layer is split the way a database splits it:

* :class:`QuerySpec` — *what* to compute: the query kind plus its
  parameters (target/source datasets, distance threshold, ``k``, probe
  mesh, containment point). Pure data, validated once.
* :class:`QueryPlan` — the spec bound to engine state: resolved
  datasets, the LOD schedule, the per-kind :class:`KindStrategy`, and
  the stats/span labels. Compiled by :meth:`ThreeDPro.execute`.
* :class:`QueryResult` — *every* kind's answer in one shape: per-target
  ``pairs``, a :class:`~repro.core.stats.QueryStats`, and the set of
  targets whose answers leaned on degraded geometry.

A :class:`KindStrategy` contributes only what genuinely differs per
query kind — which targets to iterate, how to filter one target's
candidates, and which refinement algorithm settles them. Everything
else (phase timing, stats, degraded tracking, fan-out across workers)
lives once in :class:`~repro.core.executor.QueryExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.errors import DeadlineExceededError, EngineConfigError, WireFormatError
from repro.core.jsonsafe import json_safe
from repro.core.refine import (
    NNCandidate,
    refine_containment,
    refine_intersection,
    refine_intersection_group,
    refine_nn,
    refine_within,
    refine_within_group,
)
from repro.core.stats import QueryStats
from repro.geometry.aabb import AABB

__all__ = [
    "QuerySpec",
    "QueryPlan",
    "QueryResult",
    "QueryCompleteness",
    "KindStrategy",
    "QUERY_KINDS",
    "WIRE_SCHEMA_VERSION",
]

QUERY_KINDS = ("intersection", "within", "nn", "knn", "containment")

#: Version of the JSON wire contract (specs and results). Bumped on any
#: incompatible change; the server rejects unknown versions with a 400
#: and ``from_wire`` raises :class:`~repro.core.errors.WireFormatError`.
WIRE_SCHEMA_VERSION = 1

#: QuerySpec fields that cross the wire (everything else is in-process
#: state: ``probe`` carries a live mesh, ``cancellation`` a token,
#: ``progress`` a streaming callback).
_SPEC_WIRE_FIELDS = (
    "kind", "source", "target", "distance", "k", "point", "target_ids",
    "deadline_ms",
)


@dataclass(frozen=True)
class QuerySpec:
    """One declarative query: kind plus parameters.

    ``kind`` is one of :data:`QUERY_KINDS`. Join kinds name a loaded
    ``target`` dataset *or* carry an ad-hoc ``probe`` polyhedron (the
    single-object query forms); ``containment`` takes a ``point``.
    ``distance`` applies to ``within``; ``k`` to ``knn`` (``nn`` is
    ``knn`` with ``k=1``).
    """

    kind: str
    source: str
    target: str | None = None
    probe: object = None  # Polyhedron, for ad-hoc single-object queries
    distance: float | None = None
    k: int | None = None
    point: tuple | None = None
    # Restrict execution to these target object ids (None = all). The
    # process backend uses this to hand each worker one contiguous chunk
    # of the cuboid-ordered target list as a self-contained sub-query;
    # cuboid iteration order among the kept ids is preserved.
    target_ids: tuple | None = None
    # Wall-clock budget for this query in milliseconds; overrides the
    # engine-level EngineConfig.deadline_ms / REPRO_DEADLINE_MS. Expiry
    # yields a partial QueryResult (see QueryResult.completeness).
    deadline_ms: int | None = None
    # Optional repro.core.deadline.CancellationToken; cancelling it
    # unwinds the query at its next checkpoint with a partial result.
    # In-process only: the process backend strips it from worker specs
    # (workers get a re-budgeted deadline_ms instead).
    cancellation: object = None
    # Optional progressive-results callback ``(target_id, lod, matches)``
    # invoked as refinement confirms pairs (the serve layer's streaming
    # hook). In-process only, like ``cancellation``: excluded from the
    # wire schema and stripped from process-backend worker specs. May be
    # called from worker threads — implementations must be thread-safe.
    progress: object = None

    def normalized(self) -> "QuerySpec":
        """Validate and canonicalize (``nn`` becomes ``knn`` with k=1)."""
        if self.kind not in QUERY_KINDS:
            raise EngineConfigError(
                f"unknown query kind {self.kind!r} (one of {QUERY_KINDS})"
            )
        spec = self
        if spec.kind == "nn":
            if spec.k not in (None, 1):
                raise EngineConfigError("nn queries take no k (use kind='knn')")
            spec = replace(spec, kind="knn", k=1)
        if spec.kind == "knn":
            k = 1 if spec.k is None else spec.k
            if k < 1:
                raise EngineConfigError("k must be >= 1")
            spec = replace(spec, k=k)
        elif spec.k is not None:
            raise EngineConfigError(f"k does not apply to {spec.kind!r} queries")
        if spec.kind == "within":
            if spec.distance is None:
                raise EngineConfigError("within queries require a distance")
            if spec.distance < 0:
                raise EngineConfigError("distance must be >= 0")
        elif spec.distance is not None:
            raise EngineConfigError(f"distance does not apply to {spec.kind!r} queries")
        if spec.kind == "containment":
            if spec.point is None:
                raise EngineConfigError("containment queries require a point")
            if spec.target is not None or spec.probe is not None:
                raise EngineConfigError(
                    "containment queries take a point, not a target/probe"
                )
            spec = replace(spec, point=tuple(float(v) for v in spec.point))
        else:
            if spec.point is not None:
                raise EngineConfigError(f"point does not apply to {spec.kind!r} queries")
            if (spec.target is None) == (spec.probe is None):
                raise EngineConfigError(
                    f"{spec.kind!r} queries take exactly one of target / probe"
                )
        if spec.target_ids is not None:
            if spec.kind == "containment" or spec.probe is not None:
                raise EngineConfigError(
                    "target_ids applies only to joins over a loaded target dataset"
                )
            spec = replace(spec, target_ids=tuple(int(t) for t in spec.target_ids))
        if spec.deadline_ms is not None and spec.deadline_ms < 1:
            raise EngineConfigError("deadline_ms must be None or >= 1")
        return spec

    @property
    def label(self) -> str:
        """The stats label (``QueryStats.query``) for this spec."""
        if self.kind == "containment":
            return "containment_query"
        if self.kind == "knn":
            k = 1 if self.k is None else self.k
            return "nn_join" if k == 1 else f"knn_join(k={k})"
        return f"{self.kind}_join"

    # -- the wire schema (the canonical public query contract) -----------------

    def to_wire(self) -> dict:
        """This spec as a versioned JSON-safe dict (the serve contract).

        The spec is normalized first, so ``from_wire(spec.to_wire())``
        is the identity on normalized specs. ``None`` fields are
        omitted. Raises :class:`~repro.core.errors.WireFormatError` for
        specs carrying in-process-only state (``probe``,
        ``cancellation``, ``progress``) — those never cross the wire.
        """
        spec = self.normalized()
        if spec.probe is not None:
            raise WireFormatError(
                "probe specs are not wire-serializable (load the probe as a "
                "dataset and query it by name)"
            )
        if spec.cancellation is not None or spec.progress is not None:
            raise WireFormatError(
                "cancellation tokens and progress callbacks are in-process "
                "state and cannot cross the wire"
            )
        payload = {"schema_version": WIRE_SCHEMA_VERSION}
        for name in _SPEC_WIRE_FIELDS:
            value = getattr(spec, name)
            if value is not None:
                payload[name] = json_safe(value)
        return payload

    @classmethod
    def from_wire(cls, payload: dict) -> "QuerySpec":
        """Parse a wire dict back into a normalized spec — strictly.

        Unknown fields, a missing/unsupported ``schema_version``, and
        invalid parameter combinations all raise
        :class:`~repro.core.errors.WireFormatError` (the latter wrapping
        the normalization error), never silently drop data.
        """
        if not isinstance(payload, dict):
            raise WireFormatError(
                f"spec payload must be a JSON object, got {type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if version is None:
            raise WireFormatError("spec payload is missing schema_version")
        if version != WIRE_SCHEMA_VERSION:
            raise WireFormatError(
                f"unsupported schema_version {version!r} "
                f"(this build speaks {WIRE_SCHEMA_VERSION})"
            )
        unknown = sorted(
            k for k in payload if k != "schema_version" and k not in _SPEC_WIRE_FIELDS
        )
        if unknown:
            raise WireFormatError(
                f"unknown spec field(s) {', '.join(unknown)} "
                f"(known: {', '.join(_SPEC_WIRE_FIELDS)})"
            )
        if "kind" not in payload:
            raise WireFormatError("spec payload is missing kind")
        kwargs = {}
        for name in _SPEC_WIRE_FIELDS:
            if name in payload:
                value = payload[name]
                if name in ("point", "target_ids") and isinstance(value, list):
                    value = tuple(value)
                kwargs[name] = value
        try:
            return cls(**kwargs).normalized()
        except (EngineConfigError, TypeError, ValueError) as exc:
            raise WireFormatError(f"invalid spec: {exc}") from exc


@dataclass
class QueryCompleteness:
    """How much of a query actually ran (the anytime-result contract).

    ``complete`` is True for an undisturbed run. When a deadline expires
    or a :class:`~repro.core.deadline.CancellationToken` fires,
    ``reason`` says which (``"deadline"`` / ``"cancelled"``) and the
    target tallies partition the target list: ``targets_finished`` ran
    to the end, ``targets_inflight`` were interrupted mid-refinement
    (their confirmed-so-far matches are still in ``pairs`` — sound
    under FPR, where a pair confirmed at any LOD is final), and
    ``targets_unstarted`` never began. ``max_lod_reached`` is the
    highest LOD any pair was evaluated at (-1: none). Picklable, so the
    process backend ships per-chunk records back to the parent.
    """

    complete: bool = True
    reason: str = ""  # "" | "deadline" | "cancelled"
    targets_total: int = 0
    targets_finished: int = 0
    targets_inflight: int = 0
    targets_unstarted: int = 0
    max_lod_reached: int = -1
    deadline_ms: int | None = None
    # SLO accounting: fraction of the deadline budget left when the
    # query finished (1.0 = instant, 0.0 = expired). None when the
    # query ran without a deadline.
    deadline_headroom_ratio: float | None = None

    def as_dict(self) -> dict:
        # json_safe at the boundary: max_lod_reached and the target
        # tallies can arrive as numpy ints (LOD keys flow out of
        # LODTable cumulatives and kernel reductions upstream).
        return json_safe({
            "complete": bool(self.complete),
            "reason": self.reason,
            "targets_total": self.targets_total,
            "targets_finished": self.targets_finished,
            "targets_inflight": self.targets_inflight,
            "targets_unstarted": self.targets_unstarted,
            "max_lod_reached": self.max_lod_reached,
            "deadline_ms": self.deadline_ms,
            "deadline_headroom_ratio": self.deadline_headroom_ratio,
        })

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryCompleteness":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class QueryResult:
    """Any query's output: per-target matches plus execution statistics.

    ``pairs`` maps each target object id to its matches — a sorted list
    of source ids for intersection/within/containment, or a list of
    ``(source_id, distance, exact)`` triples for NN/kNN (when the FPR
    paradigm settles a nearest neighbor early, ``distance`` is the best
    known upper bound and ``exact`` is False). Single-target queries
    (probe and containment forms) key their one answer under target 0 —
    use :attr:`matches`.

    ``degraded_targets`` holds the target ids whose answers leaned on
    degraded geometry (a decode fell back to a lower LOD, a salvaged
    object, or MBB-only evaluation): those answers are guaranteed
    correct *subsets* of the clean answer rather than exact matches.
    """

    pairs: dict
    stats: QueryStats
    degraded_targets: set = field(default_factory=set)
    spec: QuerySpec | None = None
    # Distinct degraded (side, object id) keys behind degraded_targets:
    # ``stats.degraded_objects`` is their count. The process backend
    # ships these per chunk so the parent can deduplicate objects that
    # degraded in more than one worker.
    degraded_keys: set = field(default_factory=set)
    # Anytime-result record: did the query run to the end, and if not,
    # which targets finished / were in flight / never started. A partial
    # result's pairs are always a correct subset of the complete run's.
    completeness: QueryCompleteness = field(default_factory=QueryCompleteness)

    @property
    def complete(self) -> bool:
        """True when the query ran to the end (no deadline/cancel cut)."""
        return self.completeness.complete

    @property
    def total_matches(self) -> int:
        return sum(len(v) for v in self.pairs.values())

    @property
    def degraded_objects(self) -> int:
        """Distinct objects served below requested fidelity (from stats)."""
        return self.stats.degraded_objects

    @property
    def matches(self) -> list:
        """The single target's matches (probe / containment queries)."""
        return self.pairs.get(0, [])

    @property
    def funnel(self):
        """The refinement-funnel record (``stats.funnel``) for this query."""
        return self.stats.funnel

    def __iter__(self):
        """Legacy ``(pairs, stats)`` unpacking — kept one release."""
        yield self.pairs
        yield self.stats

    # -- the wire schema -------------------------------------------------------

    def to_wire(self) -> dict:
        """This result as a versioned JSON-safe dict (the serve contract).

        Pairs are keyed by the target id's decimal string (JSON objects
        key on strings); NN/kNN matches serialize as ``[sid, distance,
        exact]`` triples. Stats (funnel included), completeness, and
        degraded targets ride along, so a remote client reconstructs the
        full :class:`QueryResult` — funnel conservation checks intact.
        """
        spec_wire = None
        if self.spec is not None and self.spec.probe is None:
            spec_wire = replace(
                self.spec, cancellation=None, progress=None
            ).to_wire()
        return json_safe({
            "schema_version": WIRE_SCHEMA_VERSION,
            "spec": spec_wire,
            "pairs": {str(tid): matches for tid, matches in self.pairs.items()},
            "stats": self.stats.as_dict(),
            "completeness": self.completeness.as_dict(),
            "degraded_targets": sorted(self.degraded_targets),
            "total_matches": self.total_matches,
        })

    @classmethod
    def from_wire(cls, payload: dict) -> "QueryResult":
        """Reconstruct a result from its wire dict — strictly versioned.

        The round trip preserves everything a caller can observe:
        ``pairs`` (int keys restored; kNN triples back to tuples),
        merged stats with the funnel, completeness, and the degraded
        target set. ``QueryStats`` timing fields are the server's
        measurements, unchanged.
        """
        if not isinstance(payload, dict):
            raise WireFormatError(
                f"result payload must be a JSON object, got {type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if version != WIRE_SCHEMA_VERSION:
            raise WireFormatError(
                f"unsupported result schema_version {version!r} "
                f"(this build speaks {WIRE_SCHEMA_VERSION})"
            )
        spec = None
        if payload.get("spec") is not None:
            spec = QuerySpec.from_wire(payload["spec"])
        nn_style = spec is not None and spec.kind == "knn"
        pairs = {}
        for tid, matches in payload.get("pairs", {}).items():
            if nn_style:
                matches = [
                    (int(sid), float(dist), bool(exact))
                    for sid, dist, exact in matches
                ]
            pairs[int(tid)] = matches
        stats = QueryStats.from_dict(payload.get("stats", {}))
        completeness = QueryCompleteness.from_dict(payload.get("completeness", {}))
        return cls(
            pairs,
            stats,
            degraded_targets=set(payload.get("degraded_targets", ())),
            spec=spec,
            completeness=completeness,
        )


@dataclass
class QueryPlan:
    """A spec bound to engine state, ready for the executor.

    ``target`` / ``source`` are the engine's loaded-dataset records
    (``target`` is the source dataset for containment, whose "target"
    is the query point). ``lods`` is the join-wide LOD schedule (empty
    for containment, which derives its ladder from the candidates).
    """

    spec: QuerySpec
    strategy: "KindStrategy"
    target: object
    source: object
    lods: tuple[int, ...]
    config: object  # EngineConfig
    span_target: str

    @property
    def label(self) -> str:
        return self.spec.label

    @property
    def providers(self) -> tuple:
        if self.spec.kind == "containment":
            return (self.source.provider,)
        return (self.target.provider, self.source.provider)


# -- candidate-merging helpers (shared by the filter strategies) ---------------


def merge_payloads(payloads) -> dict:
    """Collapse (obj, part) payloads into obj -> candidate part set."""
    merged: dict[int, object] = {}
    for obj_id, part in payloads:
        if part is None:
            merged[obj_id] = None
        else:
            existing = merged.get(obj_id, set())
            if existing is not None:
                existing = set(existing)
                existing.add(part)
                merged[obj_id] = existing
    return merged


def merge_nn_payloads(raw) -> list[NNCandidate]:
    """Collapse per-part NN candidates into per-object distance ranges."""
    merged: dict[int, NNCandidate] = {}
    for (obj_id, part), mind, maxd in raw:
        cand = merged.get(obj_id)
        if cand is None:
            parts = None if part is None else {part}
            merged[obj_id] = NNCandidate(obj_id, mind, maxd, parts)
            continue
        cand.mindist = min(cand.mindist, mind)
        cand.maxdist = min(cand.maxdist, maxd)
        if cand.parts is not None and part is not None:
            cand.parts.add(part)
        else:
            cand.parts = None if part is None else cand.parts
    return list(merged.values())


# -- per-kind strategies -------------------------------------------------------


class KindStrategy:
    """What differs per query kind inside the shared per-target pipeline."""

    #: whether each pipeline iteration counts into ``stats.targets``
    #: (containment's single pseudo-target historically does not).
    counts_targets = True

    def target_ids(self, plan: QueryPlan) -> list[int]:
        """Targets in execution order (cuboid order, for cache locality).

        A spec-level ``target_ids`` restriction keeps only the listed
        ids, preserving cuboid order — the contract that lets the
        process backend split one query into per-chunk sub-queries whose
        concatenated results equal the unrestricted run.
        """
        ordered = [
            tid
            for batch in plan.target.dataset.cuboid_batches()
            for tid in batch
        ]
        restrict = plan.spec.target_ids
        if restrict is None:
            return ordered
        keep = set(restrict)
        return [tid for tid in ordered if tid in keep]

    def target_chunks(self, plan: QueryPlan, tids, chunk_size: int) -> list:
        """Contiguous chunks of ``tids`` for scatter-gather fan-out.

        Legacy datasets get plain equal-size slices — the historical
        shape, which chunk-keyed chaos injection depends on. When the
        target dataset is shard-backed, cuts are aligned to cuboid
        boundaries instead (``tids`` is already in flattened-cuboid
        order, so boundary-aligned cuts stay contiguous and the
        chunk-order merge is unchanged): each chunk then maps to whole
        shards, so a process worker faults in only the shard files its
        chunk actually owns. Cuboids larger than ``chunk_size`` are
        split rather than ballooning one chunk.
        """
        chunk_size = max(1, chunk_size)
        target = getattr(plan, "target", None)
        dataset = getattr(target, "dataset", None)
        if dataset is None or getattr(dataset, "shard_source", None) is None:
            return [
                tids[i : i + chunk_size] for i in range(0, len(tids), chunk_size)
            ]
        # Contiguous per-cuboid runs of the (possibly restricted) tids.
        owner = {
            tid: index
            for index, batch in enumerate(dataset.cuboid_batches())
            for tid in batch
        }
        runs: list[tuple[int | None, list[int]]] = []
        for tid in tids:
            cuboid = owner.get(tid)
            if runs and runs[-1][0] == cuboid:
                runs[-1][1].append(tid)
            else:
                runs.append((cuboid, [tid]))
        chunks: list[list[int]] = []
        current: list[int] = []
        for _, run in runs:
            while len(run) > chunk_size:
                if current:
                    chunks.append(current)
                    current = []
                chunks.append(run[:chunk_size])
                run = run[chunk_size:]
            if not run:
                continue
            if current and len(current) + len(run) > chunk_size:
                chunks.append(current)
                current = []
            current.extend(run)
        if current:
            chunks.append(current)
        return chunks

    def compute_attrs(self, tid: int) -> dict:
        return {"target": tid}

    def filter(self, plan: QueryPlan, tid: int):
        """Index-filtered candidates for one target (opaque per kind)."""
        raise NotImplementedError

    def candidate_count(self, candidates) -> int:
        return len(candidates)

    def refine(self, plan: QueryPlan, ctx, tid: int, candidates):
        """Settle one target; returns ``(pairs_value | None, n_results)``."""
        raise NotImplementedError

    def partial_value(self, exc: DeadlineExceededError):
        """The confirmed-so-far value of a target interrupted mid-refine.

        Default: drop the in-flight target (sound, since nothing was
        committed). Kinds whose per-LOD confirmations are final override
        this to keep them — the anytime property of FPR.
        """
        return None, 0

    #: whether the kind can refine many targets as one batched group
    #: (``QueryExecutor._run_target_group``). Kinds that opt in provide
    #: ``group_refine``/``group_value``.
    supports_group_refine = False

    def group_refine(self, plan: QueryPlan, ctx, items):
        """Refine ``[(tid, candidates), ...]``; returns per-target states."""
        raise NotImplementedError

    def group_value(self, candidates, matches):
        """A target's committed ``(pairs_value | None, n_results)`` from
        its filter output and group-refined (possibly partial) matches."""
        raise NotImplementedError


def _sorted_partial(exc: DeadlineExceededError):
    """Sorted confirmed-so-far id matches from an interrupted refine."""
    matches = exc.partial or []
    if not matches:
        return None, 0
    value = sorted(set(matches))
    return value, len(value)


class IntersectionStrategy(KindStrategy):
    def filter(self, plan, tid):
        box = plan.target.dataset.objects[tid].aabb
        return merge_payloads(plan.source.rtree.query_intersecting(box))

    def refine(self, plan, ctx, tid, candidates):
        matches = refine_intersection(ctx, tid, candidates)
        if not matches:
            return None, 0
        return sorted(matches), len(matches)

    partial_value = staticmethod(_sorted_partial)

    supports_group_refine = True

    def group_refine(self, plan, ctx, items):
        return refine_intersection_group(ctx, items)

    def group_value(self, candidates, matches):
        if not matches:
            return None, 0
        value = sorted(set(matches))
        return value, len(value)


class WithinStrategy(KindStrategy):
    def filter(self, plan, tid):
        box = plan.target.dataset.objects[tid].aabb
        found = plan.source.rtree.query_within(box, plan.spec.distance)
        definite = merge_payloads(found.definite)
        candidates = merge_payloads(
            p for p in found.candidates if p[0] not in definite
        )
        return definite, candidates

    def candidate_count(self, candidates) -> int:
        _definite, open_candidates = candidates
        return len(open_candidates)

    def refine(self, plan, ctx, tid, candidates):
        definite, open_candidates = candidates
        # The filter's definite matches are confirmed without any
        # refinement; the funnel books them at the query level so
        # confirmed_total still reconciles with the result count.
        ctx.stats.funnel.filter_confirmed += len(definite)
        # Filter-level confirmations stream at pseudo-LOD -1, matching
        # the funnel's filter_confirmed bucket.
        ctx.emit_confirmed(-1, sorted(definite))
        try:
            refined = refine_within(ctx, tid, open_candidates, plan.spec.distance)
        except DeadlineExceededError as exc:
            # The filter's definite matches were confirmed before the
            # interrupt; fold them into the partial answer.
            exc.partial = sorted(set(definite) | set(exc.partial or ()))
            raise
        matches = set(definite) | set(refined)
        if not matches:
            return None, 0
        return sorted(matches), len(matches)

    partial_value = staticmethod(_sorted_partial)

    supports_group_refine = True

    def group_refine(self, plan, ctx, items):
        return refine_within_group(ctx, items, plan.spec.distance)

    def group_value(self, candidates, matches):
        definite, _open = candidates
        merged = set(definite) | set(matches)
        if not merged:
            return None, 0
        value = sorted(merged)
        return value, len(value)


class KnnStrategy(KindStrategy):
    def filter(self, plan, tid):
        k = plan.spec.k
        box = plan.target.dataset.objects[tid].aabb
        # For k = 1 the part-level bound is already the object-level
        # bound: an object whose every part has MINDIST above the
        # smallest part MAXDIST is farther than the nearest object, and
        # the part realizing an object's distance always survives. For
        # k > 1, k objects may own up to k * partition_parts of the
        # smallest part ranges, so keep that many.
        k_entries = k if k == 1 else k * (
            plan.config.partition_parts if plan.source.partitions else 1
        )
        raw = plan.source.rtree.query_nn_candidates(box, k=k_entries)
        return merge_nn_payloads(raw)

    def refine(self, plan, ctx, tid, candidates):
        nearest = refine_nn(ctx, tid, candidates, k=plan.spec.k)
        if not nearest:
            return None, 0
        # NN confirmation is by elimination: the survivors that end up
        # in the top-k were never "settled" per LOD, so book them as
        # query-level final confirmations for funnel reconciliation.
        ctx.stats.funnel.confirmed_final += len(nearest)
        matches = [(c.sid, c.maxdist, c.exact) for c in nearest]
        # Final-selection confirmations stream at pseudo-LOD -2 (the
        # top-k only exists once elimination finishes).
        ctx.emit_confirmed(-2, matches)
        return matches, len(nearest)


class ContainmentStrategy(KindStrategy):
    counts_targets = False

    def target_ids(self, plan):
        return [0]  # the query point is the single pseudo-target

    def compute_attrs(self, tid):
        return {}

    def filter(self, plan, tid):
        point = plan.spec.point
        probe = AABB(point, point)
        payloads = plan.source.rtree.query_intersecting(probe)
        return sorted({obj_id for obj_id, _part in payloads})

    def refine(self, plan, ctx, tid, candidates):
        provider = plan.source.provider
        top = max((provider.max_lod(sid) for sid in candidates), default=0)
        lods = (
            (top,) if plan.config.paradigm == "fr" else tuple(range(top + 1))
        )
        matches = refine_containment(ctx, plan.spec.point, candidates, lods)
        return sorted(matches), len(matches)

    partial_value = staticmethod(_sorted_partial)


STRATEGIES = {
    "intersection": IntersectionStrategy(),
    "within": WithinStrategy(),
    "knn": KnnStrategy(),
    "containment": ContainmentStrategy(),
}
