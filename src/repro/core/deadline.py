"""Wall-clock deadlines and cooperative cancellation.

The ROADMAP's query-service north star budgets every request: a caller
sets ``deadline_ms`` (on the :class:`~repro.core.plan.QuerySpec`, the
:class:`~repro.core.config.EngineConfig`, ``REPRO_DEADLINE_MS``, or
``--deadline-ms``) and the engine returns whatever the FPR paradigm has
*confirmed* by then — a sound partial answer, never a wrong one.

Both primitives here are cooperative: nothing is interrupted
asynchronously. The execution stack calls :meth:`Deadline.check` at its
checkpoints (executor target loop, refinement rounds, candidate
batches, decode-ladder entry, task scheduler), and the check raises
:class:`~repro.core.errors.DeadlineExceededError` once the budget is
spent or the token is cancelled. Checkpoints sit *between* units of
work, so a confirmed pair can never be half-recorded.

:class:`CancellationToken` is the caller-driven half: share one token
between the request thread and the query (``QuerySpec.cancellation``)
and call :meth:`CancellationToken.cancel` from anywhere — the query
unwinds at its next checkpoint with ``reason="cancelled"``. Tokens are
in-process objects (they hold no cross-process plumbing); the process
backend instead re-buds each worker's remaining wall-clock budget at
chunk submission time.
"""

from __future__ import annotations

import threading
import time

from repro.core.errors import DeadlineExceededError

__all__ = ["CancellationToken", "Deadline"]


class CancellationToken:
    """A thread-safe, latching cancel signal.

    ``cancel()`` may be called from any thread, any number of times (the
    first call wins); the query observes it at its next checkpoint.
    """

    __slots__ = ("_event", "_reason", "_lock")

    def __init__(self):
        self._event = threading.Event()
        self._reason = "cancelled"
        self._lock = threading.Lock()

    def cancel(self, reason: str = "cancelled") -> None:
        with self._lock:
            if not self._event.is_set():
                self._reason = reason
                self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> str:
        return self._reason


class Deadline:
    """A monotonic wall-clock budget, optionally paired with a token.

    ``seconds=None`` means no time budget (token-only cancellation);
    ``token=None`` means no caller-driven cancellation. ``clock`` is
    injectable for deterministic tests.
    """

    __slots__ = ("deadline_ms", "token", "_clock", "_expires_at")

    def __init__(self, seconds: float | None = None, token=None, clock=time.monotonic):
        if seconds is not None and seconds <= 0:
            raise ValueError("deadline seconds must be > 0")
        self.deadline_ms = None if seconds is None else int(round(seconds * 1000))
        self.token = token
        self._clock = clock
        self._expires_at = None if seconds is None else clock() + seconds

    @classmethod
    def after_ms(cls, ms: int | None, token=None, clock=time.monotonic) -> "Deadline":
        return cls(None if ms is None else ms / 1000.0, token=token, clock=clock)

    def remaining(self) -> float | None:
        """Seconds left, floored at 0.0; ``None`` when there is no budget."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and self._clock() >= self._expires_at

    @property
    def cancelled(self) -> bool:
        return self.token is not None and self.token.cancelled

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if spent or cancelled."""
        if self.cancelled:
            raise DeadlineExceededError(
                reason="cancelled", where=where, deadline_ms=self.deadline_ms
            )
        if self.expired:
            raise DeadlineExceededError(
                reason="deadline", where=where, deadline_ms=self.deadline_ms
            )
