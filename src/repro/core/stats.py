"""Per-query execution statistics and time accounting.

Every join returns a :class:`QueryStats` whose fields are the raw
material of the paper's evaluation artifacts:

* the filter / decode / compute time split (Fig. 10),
* object pairs evaluated and pruned per LOD (Fig. 12 and the Section 4.4
  LOD-selection rule),
* face-pair kernel counts and cache hit/miss counters (Table 2).
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.jsonsafe import json_safe
from repro.obs.funnel import QueryFunnel

__all__ = ["QueryStats"]

#: Scalar fields that round-trip through ``as_dict``/``from_dict``
#: unchanged (the per-LOD ledgers and the funnel are handled apart).
_SCALAR_FIELDS = (
    "total_seconds", "filter_seconds", "decode_seconds", "compute_seconds",
    "targets", "candidates", "results", "decoded_vertices",
    "cache_hits", "cache_misses", "degraded_objects", "decode_failures",
)


@dataclass
class QueryStats:
    """Counters and timers for one query or join execution."""

    query: str = ""
    config_label: str = ""

    filter_seconds: float = 0.0
    decode_seconds: float = 0.0
    compute_seconds: float = 0.0
    total_seconds: float = 0.0

    targets: int = 0
    candidates: int = 0
    results: int = 0

    # Object-pair flow per LOD (Fig. 12): evaluated[l] pairs were refined
    # at LOD l; pruned[l] of them were settled (result or discard) there.
    pairs_evaluated_by_lod: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    pairs_pruned_by_lod: dict[int, int] = field(default_factory=lambda: defaultdict(int))

    # Face-pair kernel work, per LOD.
    face_pairs_by_lod: dict[int, int] = field(default_factory=lambda: defaultdict(int))

    decoded_vertices: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    # Degraded-mode accounting: distinct objects whose geometry was
    # served below the requested fidelity (LOD fallback, salvage, or
    # total decode failure), and individual decode attempts that raised.
    degraded_objects: int = 0
    decode_failures: int = 0

    # Snapshots of the providers' cumulative decode time / failure count
    # taken when the query starts; the engine uses them to attribute the
    # per-query deltas.
    decode_seconds_base: float = 0.0
    decode_failures_base: int = 0

    # Refinement-funnel telemetry: per-LOD evaluated/settled splits and
    # decode traffic, written through RefineContext's ledger_* helpers so
    # it agrees with the pairs ledger above by construction.
    funnel: QueryFunnel = field(default_factory=QueryFunnel)

    @contextmanager
    def clock(self, phase: str):
        """Accumulate wall time into ``<phase>_seconds``."""
        attr = f"{phase}_seconds"
        if not hasattr(self, attr):
            raise AttributeError(f"unknown phase {phase!r}")
        start = time.perf_counter()
        try:
            yield
        finally:
            setattr(self, attr, getattr(self, attr) + time.perf_counter() - start)

    @property
    def face_pairs_total(self) -> int:
        return sum(self.face_pairs_by_lod.values())

    @property
    def other_seconds(self) -> float:
        """Wall time not attributed to filter/decode/compute."""
        return max(
            0.0,
            self.total_seconds
            - self.filter_seconds
            - self.decode_seconds
            - self.compute_seconds,
        )

    def pruned_fraction(self, lod: int) -> float:
        """Fraction of pairs refined at ``lod`` that were settled there."""
        evaluated = self.pairs_evaluated_by_lod.get(lod, 0)
        if not evaluated:
            return 0.0
        return self.pairs_pruned_by_lod.get(lod, 0) / evaluated

    def merge(self, other: "QueryStats") -> None:
        """Fold another stats object into this one (multi-batch joins)."""
        self.filter_seconds += other.filter_seconds
        self.decode_seconds += other.decode_seconds
        self.compute_seconds += other.compute_seconds
        self.total_seconds += other.total_seconds
        self.targets += other.targets
        self.candidates += other.candidates
        self.results += other.results
        self.decoded_vertices += other.decoded_vertices
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.degraded_objects += other.degraded_objects
        self.decode_failures += other.decode_failures
        for lod, count in other.pairs_evaluated_by_lod.items():
            self.pairs_evaluated_by_lod[lod] += count
        for lod, count in other.pairs_pruned_by_lod.items():
            self.pairs_pruned_by_lod[lod] += count
        for lod, count in other.face_pairs_by_lod.items():
            self.face_pairs_by_lod[lod] += count
        self.funnel.merge(other.funnel)

    def as_dict(self) -> dict:
        # json_safe at the boundary: LOD keys and counter values can be
        # numpy scalars (LODTable cumulatives, kernel reductions), which
        # json.dumps rejects; the export contract is builtins only.
        return json_safe({
            "query": self.query,
            "config": self.config_label,
            "total_seconds": self.total_seconds,
            "filter_seconds": self.filter_seconds,
            "decode_seconds": self.decode_seconds,
            "compute_seconds": self.compute_seconds,
            "other_seconds": self.other_seconds,
            "targets": self.targets,
            "candidates": self.candidates,
            "results": self.results,
            "face_pairs_total": self.face_pairs_total,
            "pairs_evaluated_by_lod": dict(self.pairs_evaluated_by_lod),
            "pairs_pruned_by_lod": dict(self.pairs_pruned_by_lod),
            "face_pairs_by_lod": dict(self.face_pairs_by_lod),
            "decoded_vertices": self.decoded_vertices,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "degraded_objects": self.degraded_objects,
            "decode_failures": self.decode_failures,
            "funnel": self.funnel.as_dict(),
        })

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryStats":
        """Rebuild stats from :meth:`as_dict` output (the wire round trip).

        Accepts per-LOD ledger keys as ints or decimal strings — JSON
        stringifies object keys — and restores the funnel, so the
        ledger/funnel conservation invariants survive a serialize →
        deserialize cycle. Derived fields (``other_seconds``,
        ``face_pairs_total``) are recomputed, not stored.
        """
        stats = cls(
            query=payload.get("query", ""),
            config_label=payload.get("config", ""),
        )
        for name in _SCALAR_FIELDS:
            if name in payload:
                setattr(stats, name, payload[name])
        for attr, key in (
            ("pairs_evaluated_by_lod", "pairs_evaluated_by_lod"),
            ("pairs_pruned_by_lod", "pairs_pruned_by_lod"),
            ("face_pairs_by_lod", "face_pairs_by_lod"),
        ):
            ledger = getattr(stats, attr)
            for lod, count in payload.get(key, {}).items():
                ledger[int(lod)] += count
        if "funnel" in payload:
            stats.funnel = QueryFunnel.from_dict(payload["funnel"])
        return stats

    def summary(self) -> str:
        """One-line human-readable digest."""
        line = (
            f"{self.query or 'query'} [{self.config_label}] "
            f"total={self.total_seconds:.3f}s "
            f"(filter={self.filter_seconds:.3f} decode={self.decode_seconds:.3f} "
            f"compute={self.compute_seconds:.3f}) "
            f"targets={self.targets} candidates={self.candidates} "
            f"results={self.results} face_pairs={self.face_pairs_total}"
        )
        if self.degraded_objects or self.decode_failures:
            line += (
                f" degraded_objects={self.degraded_objects}"
                f" decode_failures={self.decode_failures}"
            )
        return line
