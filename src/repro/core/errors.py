"""Engine error types."""

__all__ = ["EngineError", "EngineConfigError", "DatasetNotLoadedError"]


class EngineError(Exception):
    """Base class for engine failures."""


class EngineConfigError(EngineError, ValueError):
    """Raised for invalid or unsupported configuration combinations."""


class DatasetNotLoadedError(EngineError, KeyError):
    """Raised when a query references a dataset name that is not loaded."""
