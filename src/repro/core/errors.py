"""Engine error taxonomy.

Every failure the engine can surface derives from :class:`EngineError`,
so callers can catch one base class. The storage branch distinguishes
*format* problems (structurally unparseable bytes) from *integrity*
problems (well-formed bytes whose checksum says they were corrupted) —
the distinction salvage loading keys on: format errors quarantine a
whole container file, integrity errors quarantine a single blob.
"""

__all__ = [
    "EngineError",
    "EngineConfigError",
    "DatasetNotLoadedError",
    "StorageError",
    "CuboidFormatError",
    "ShardFormatError",
    "ShardLifetimeError",
    "BlobChecksumError",
    "DatasetFormatError",
    "DecodeFailureError",
    "DeadlineExceededError",
    "ErrorBudgetExceededError",
    "TaskExecutionError",
    "WireFormatError",
]


class EngineError(Exception):
    """Base class for engine failures."""


class EngineConfigError(EngineError, ValueError):
    """Raised for invalid or unsupported configuration combinations."""


class DatasetNotLoadedError(EngineError, KeyError):
    """Raised when a query references a dataset name that is not loaded."""


class WireFormatError(EngineError, ValueError):
    """Raised for malformed wire payloads (the serve JSON contract).

    Strictness is deliberate: unknown fields, a missing or unsupported
    ``schema_version``, and wrong-typed fields all reject rather than
    silently dropping data — the versioned schema is the compatibility
    mechanism, not leniency.
    """


class StorageError(EngineError):
    """Base class for persistent-storage failures (containers, blobs)."""


class CuboidFormatError(StorageError, ValueError):
    """Raised for malformed or corrupted cuboid container files."""


class ShardFormatError(StorageError, ValueError):
    """Raised for malformed or corrupted v3 shard files (bad magic,
    unsupported version/codec, unparseable or checksum-failing index)."""


class ShardLifetimeError(StorageError):
    """Raised when a :class:`~repro.storage.shardfile.ShardReader` is
    closed while exported ``memoryview`` blob slices are still alive —
    the mapping cannot be unmapped under live buffers."""


class BlobChecksumError(StorageError, ValueError):
    """Raised when a blob's CRC32 does not match its payload.

    Distinguishes *detected corruption* (well-formed framing, bad bytes)
    from :class:`CuboidFormatError` (unparseable framing).
    """


class DatasetFormatError(StorageError, ValueError):
    """Raised for inconsistent dataset directories (manifest/object-id problems)."""


class DecodeFailureError(EngineError):
    """An object could not be decoded at any LOD (not even the base mesh).

    Carries enough context for degraded-mode query execution to fall
    back to MBB-only evaluation ("LOD -1") for the object.
    """

    def __init__(self, dataset: str, obj_id: int, reason: str = ""):
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"object {obj_id} of dataset {dataset!r} failed to decode at every LOD{detail}"
        )
        self.dataset = dataset
        self.obj_id = obj_id
        self.reason = reason

    def __reduce__(self):
        # Default exception pickling replays __init__ with self.args (the
        # formatted message), which does not match this signature; spell
        # out the constructor so the error survives a process boundary.
        return (type(self), (self.dataset, self.obj_id, self.reason))


class ErrorBudgetExceededError(EngineError):
    """A query degraded more objects than ``EngineConfig.max_decode_failures`` allows."""

    def __init__(self, budget: int, degraded: int, query: str = ""):
        label = f" during {query}" if query else ""
        super().__init__(
            f"decode-failure budget exceeded{label}: {degraded} degraded objects "
            f"> budget of {budget}"
        )
        self.budget = budget
        self.degraded = degraded
        self.query = query

    def __reduce__(self):
        return (type(self), (self.budget, self.degraded, self.query))


class DeadlineExceededError(EngineError):
    """A query's wall-clock budget expired (or its token was cancelled).

    Raised at cooperative checkpoints throughout the execution stack
    (executor target loop, refinement rounds, candidate batches, the
    decode provider, the task scheduler). The executor converts it into
    a *partial* :class:`~repro.core.plan.QueryResult` rather than
    letting it escape: everything confirmed before the checkpoint is a
    sound answer under the FPR paradigm (pairs confirmed at any LOD are
    final), so the exception carries the refine layer's confirmed-so-far
    values in ``partial`` and the ``in_target`` flag marks whether a
    target was interrupted mid-refinement.
    """

    def __init__(self, reason: str = "deadline", where: str = "",
                 deadline_ms: int | None = None):
        at = f" at {where}" if where else ""
        budget = f" (budget {deadline_ms}ms)" if deadline_ms is not None else ""
        super().__init__(f"query {reason}{at}{budget}")
        self.reason = reason
        self.where = where
        self.deadline_ms = deadline_ms
        # Confirmed-so-far matches attached by the interrupted refine
        # pass; None when the interrupt happened between targets.
        self.partial = None
        self.in_target = False

    def __reduce__(self):
        return (type(self), (self.reason, self.where, self.deadline_ms))


class TaskExecutionError(EngineError):
    """A scheduled task failed every attempt (including the serial fallback)."""
