"""Mesh and compression analysis tools.

Quality metrics for triangle meshes and distortion profiles for
compressed LOD chains. The paper's compression-related work evaluates
codecs by compression rate *and* distortion rate; this package provides
the measurement side: sampled surface deviation, volume loss, and
triangle-quality statistics per LOD.
"""

from repro.analysis.distortion import lod_distortion_profile, sampled_surface_deviation
from repro.analysis.quality import MeshQualityReport, mesh_quality

__all__ = [
    "lod_distortion_profile",
    "sampled_surface_deviation",
    "MeshQualityReport",
    "mesh_quality",
]
