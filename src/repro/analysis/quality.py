"""Triangle-mesh quality statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry._fast import cross3

__all__ = ["MeshQualityReport", "mesh_quality"]


@dataclass(frozen=True)
class MeshQualityReport:
    """Summary statistics of a mesh's triangle quality.

    ``aspect_ratio`` is longest-edge over twice-inradius (1.15.. for an
    equilateral triangle, growing without bound for slivers);
    ``min_angle_deg`` is the smallest interior angle across all faces.
    """

    num_faces: int
    mean_edge_length: float
    min_edge_length: float
    max_edge_length: float
    mean_area: float
    min_area: float
    mean_aspect_ratio: float
    worst_aspect_ratio: float
    min_angle_deg: float

    def as_dict(self) -> dict:
        return {
            "num_faces": self.num_faces,
            "mean_edge_length": self.mean_edge_length,
            "min_edge_length": self.min_edge_length,
            "max_edge_length": self.max_edge_length,
            "mean_area": self.mean_area,
            "min_area": self.min_area,
            "mean_aspect_ratio": self.mean_aspect_ratio,
            "worst_aspect_ratio": self.worst_aspect_ratio,
            "min_angle_deg": self.min_angle_deg,
        }


def mesh_quality(polyhedron) -> MeshQualityReport:
    """Compute quality statistics over all faces of ``polyhedron``."""
    tris = polyhedron.triangles
    if len(tris) == 0:
        raise ValueError("mesh has no faces")

    edges = np.stack(
        [tris[:, 1] - tris[:, 0], tris[:, 2] - tris[:, 1], tris[:, 0] - tris[:, 2]],
        axis=1,
    )
    lengths = np.sqrt((edges * edges).sum(axis=2))  # (n, 3)
    normals = cross3(tris[:, 1] - tris[:, 0], tris[:, 2] - tris[:, 0])
    areas = np.sqrt((normals * normals).sum(axis=1)) / 2.0

    semi = lengths.sum(axis=1) / 2.0
    safe_semi = np.where(semi > 0, semi, 1.0)
    inradius = areas / safe_semi
    safe_inradius = np.where(inradius > 1e-300, inradius, 1e-300)
    aspect = lengths.max(axis=1) / (2.0 * np.sqrt(3.0) * safe_inradius) * np.sqrt(3.0)

    # Interior angles via the law of cosines on each corner.
    a2 = (lengths**2)[:, [1, 2, 0]]
    b2 = (lengths**2)[:, [2, 0, 1]]
    c2 = lengths**2
    denom = 2.0 * np.sqrt(a2 * b2)
    cos_angles = np.clip((a2 + b2 - c2) / np.where(denom > 0, denom, 1.0), -1.0, 1.0)
    angles = np.degrees(np.arccos(cos_angles))

    return MeshQualityReport(
        num_faces=len(tris),
        mean_edge_length=float(lengths.mean()),
        min_edge_length=float(lengths.min()),
        max_edge_length=float(lengths.max()),
        mean_area=float(areas.mean()),
        min_area=float(areas.min()),
        mean_aspect_ratio=float(aspect.mean()),
        worst_aspect_ratio=float(aspect.max()),
        min_angle_deg=float(angles.min()),
    )
