"""Distortion measurement for compressed LOD chains.

Measures how far each LOD's surface deviates from the original — the
"distortion rate" axis on which progressive codecs are traditionally
evaluated. Because PPVP is prune-only, deviation is one-sided (the LOD
surface sits inside the original) and must shrink monotonically as LOD
rises; the tests assert exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.distance import point_triangle_distance_batch
from repro.mesh.measures import mesh_volume

__all__ = ["sample_surface_points", "sampled_surface_deviation", "lod_distortion_profile"]


def sample_surface_points(polyhedron, samples_per_face: int = 3, seed: int = 0) -> np.ndarray:
    """Uniform-ish samples on the surface: barycentric draws per face."""
    tris = polyhedron.triangles
    rng = np.random.default_rng(seed)
    n = len(tris) * samples_per_face
    u = rng.random(n)
    v = rng.random(n)
    flip = u + v > 1.0
    u[flip] = 1.0 - u[flip]
    v[flip] = 1.0 - v[flip]
    w = 1.0 - u - v
    owners = np.repeat(np.arange(len(tris)), samples_per_face)
    corners = tris[owners]
    return (
        corners[:, 0] * w[:, None]
        + corners[:, 1] * u[:, None]
        + corners[:, 2] * v[:, None]
    )


def _points_to_surface(points: np.ndarray, tris: np.ndarray, block: int = 4096) -> np.ndarray:
    """Distance from each point to the nearest triangle of a face soup."""
    out = np.full(len(points), np.inf)
    # Cheap per-triangle AABB prefilter bound: distance to triangle AABB
    # lower-bounds distance to the triangle.
    tri_low = tris.min(axis=1)
    tri_high = tris.max(axis=1)
    for i, point in enumerate(points):
        gap = np.maximum(np.maximum(tri_low - point, point - tri_high), 0.0)
        bounds = np.sqrt((gap * gap).sum(axis=1))
        best = np.inf
        order = np.argsort(bounds)
        for start in range(0, len(order), block):
            chunk = order[start : start + block]
            if bounds[chunk[0]] >= best:
                break
            dists = point_triangle_distance_batch(
                np.broadcast_to(point, (len(chunk), 3)), tris[chunk]
            )
            best = min(best, float(dists.min()))
        out[i] = best
    return out


def sampled_surface_deviation(
    simplified, original, samples_per_face: int = 3, seed: int = 0
) -> dict:
    """One-sided surface deviation of ``simplified`` from ``original``.

    Samples points on the simplified surface and measures their distance
    to the original surface. Returns mean / max / rms deviation.
    """
    points = sample_surface_points(simplified, samples_per_face, seed)
    dists = _points_to_surface(points, original.triangles)
    return {
        "mean": float(dists.mean()),
        "max": float(dists.max()),
        "rms": float(np.sqrt((dists**2).mean())),
        "samples": len(points),
    }


def lod_distortion_profile(compressed, samples_per_face: int = 3, seed: int = 0) -> list[dict]:
    """Per-LOD distortion of a compressed object.

    Returns one record per LOD with the face count, enclosed-volume
    ratio to the original, and sampled surface deviation. For a PPVP
    object the volume ratio is <= 1 and non-decreasing in LOD.
    """
    original = compressed.decode(compressed.max_lod)
    original_volume = mesh_volume(original)
    out = []
    for lod in compressed.lods:
        mesh = compressed.decode(lod)
        deviation = (
            sampled_surface_deviation(mesh, original, samples_per_face, seed)
            if lod < compressed.max_lod
            else {"mean": 0.0, "max": 0.0, "rms": 0.0, "samples": 0}
        )
        out.append(
            {
                "lod": lod,
                "faces": mesh.num_faces,
                "volume_ratio": (
                    mesh_volume(mesh) / original_volume if original_volume else 1.0
                ),
                "deviation": deviation,
            }
        )
    return out
