"""The geometry computer: device-parameterized pair evaluation.

Two devices are modeled:

* ``Device.CPU`` — small fixed-size blocks (many kernel launches, early
  exit between blocks), the multicore-CPU baseline of the paper;
* ``Device.GPU`` — fused batches at the kernel-saturating size; in
  this pure Python reproduction the "GPU" is numpy vectorization at the
  block size that maximizes hardware throughput (amortizing per-launch
  overhead, staying inside cache), while the CPU path deliberately pays
  per-launch overhead on many small tasks — the same
  batched-versus-blocked contrast that separates the paper's CUDA
  kernels from its multicore loops.

When AABB-trees are supplied the computer uses the dual-tree traversals
instead of exhaustive pair enumeration (the paper's AABB acceleration;
tree traversal and GPU batching are alternatives, per Table 1).
"""

from __future__ import annotations

import enum
import math

import numpy as np

from repro.geometry.distance import tri_tri_distance_batch
from repro.geometry.tritri import tri_tri_intersect_batch
from repro.index.aabbtree import TriangleAABBTree
from repro.obs import metrics as obs_metrics
from repro.parallel.tasks import TaskScheduler, iter_pair_blocks

__all__ = ["Device", "GeometryComputer"]

# Batch sizes span 1 .. gpu_block; powers of two keep the histogram honest.
_BATCH_BUCKETS = (1, 8, 16, 32, 48, 64, 128, 256, 512, 1024, 2048, 4096, 8192)


class Device(enum.Enum):
    """Execution style for face-pair kernels."""

    CPU = "cpu"
    GPU = "gpu"


_CPU_BLOCK = 48
_GPU_BLOCK = 4096


class GeometryComputer:
    """Evaluates intersection / distance between two decoded face sets."""

    def __init__(
        self,
        device: Device = Device.CPU,
        cpu_block: int = _CPU_BLOCK,
        gpu_block: int = _GPU_BLOCK,
        scheduler: TaskScheduler | None = None,
        metrics: obs_metrics.MetricsRegistry | None = None,
    ):
        self.device = device
        self.cpu_block = cpu_block
        self.gpu_block = gpu_block
        self.scheduler = scheduler or TaskScheduler(workers=1)
        registry = metrics if metrics is not None else obs_metrics.REGISTRY
        self._m_batch_size = registry.histogram(
            "repro_face_pair_batch_size",
            "Face pairs per kernel launch (batched paths; tree traversals excluded)",
            buckets=_BATCH_BUCKETS,
        )
        self._m_face_pairs = registry.counter(
            "repro_face_pairs_total", "Face pairs evaluated by batched kernels"
        )

    def _note_batch(self, size: int) -> None:
        self._m_batch_size.observe(size)
        self._m_face_pairs.inc(size)

    @property
    def block_size(self) -> int:
        return self.gpu_block if self.device is Device.GPU else self.cpu_block

    # -- intersection ---------------------------------------------------------

    def intersects(
        self,
        tris_a: np.ndarray,
        tris_b: np.ndarray,
        tree_a: TriangleAABBTree | None = None,
        tree_b: TriangleAABBTree | None = None,
        stats: dict | None = None,
    ) -> bool:
        """True when any face pair between the two sets intersects.

        Intersection tests are early-exit dominated (most positive pairs
        hit within the first few dozen face pairs), so both devices use
        the small task granularity here; saturating mega-batches would
        only evaluate thousands of pairs past the first hit. This matches
        the paper's Table 1, where GPU acceleration is neutral for the
        intersection test.
        """
        if tree_a is not None and tree_b is not None:
            return tree_a.intersects(tree_b, stats=stats)
        # Accumulate locally and merge once: per-block read-modify-write
        # on a caller-shared stats dict loses updates when jobs run on
        # scheduler threads (see pairwise_min_distances).
        pairs_seen = 0
        hit = False
        for ii, jj in iter_pair_blocks(len(tris_a), len(tris_b), self.cpu_block):
            pairs_seen += len(ii)
            self._note_batch(len(ii))
            if bool(tri_tri_intersect_batch(tris_a[ii], tris_b[jj]).any()):
                hit = True
                break
        if stats is not None:
            stats["pairs"] = stats.get("pairs", 0) + pairs_seen
        return hit

    # -- distance -------------------------------------------------------------

    def min_distance(
        self,
        tris_a: np.ndarray,
        tris_b: np.ndarray,
        tree_a: TriangleAABBTree | None = None,
        tree_b: TriangleAABBTree | None = None,
        stop_below: float = 0.0,
        upper_bound: float = math.inf,
        stats: dict | None = None,
    ) -> float:
        """Minimum face-pair distance between the two sets.

        ``stop_below`` allows early return once the result is known to
        clear a threshold (within queries); ``upper_bound`` seeds
        branch-and-bound pruning when trees are used.
        """
        if tree_a is not None and tree_b is not None:
            return tree_a.min_distance(
                tree_b, stop_below=stop_below, upper_bound=upper_bound, stats=stats
            )
        # Early-exit thresholds cap the useful batch size: work past the
        # first qualifying pair is wasted, so the GPU device trades some
        # batch amortization for exit granularity (512-pair tasks).
        block = self.block_size
        if stop_below > 0.0 and self.device is Device.GPU:
            block = min(block, max(self.cpu_block, 512))
        best = upper_bound
        pairs_seen = 0
        for ii, jj in iter_pair_blocks(len(tris_a), len(tris_b), block):
            pairs_seen += len(ii)
            self._note_batch(len(ii))
            dist = float(
                tri_tri_distance_batch(
                    tris_a[ii], tris_b[jj], check_intersection=False
                ).min()
            )
            best = min(best, dist)
            if best <= stop_below:
                break
        if stats is not None:
            stats["pairs"] = stats.get("pairs", 0) + pairs_seen
        return best

    # -- bulk distance over many pairs (used by the GPU-style NN batch) -------

    def pairwise_min_distances(
        self,
        jobs: list[tuple[np.ndarray, np.ndarray]],
        stats: dict | None = None,
    ) -> list[float]:
        """Minimum distance per (tris_a, tris_b) job.

        On the GPU device all jobs' pair blocks are packed together and
        evaluated in fused batches (one kernel per mega-block); on CPU
        each job runs its own blocked loop, optionally across the
        scheduler's workers.
        """
        if self.device is Device.GPU:
            return self._fused_min_distances(jobs, stats)

        # Each scheduler job counts into its own dict; the shared caller
        # dict is updated once, serially, after all jobs complete. With
        # workers > 1 the old shared-dict read-modify-write raced and
        # undercounted "pairs".
        def run_job(job):
            job_stats: dict = {}
            dist = self.min_distance(job[0], job[1], stats=job_stats)
            return dist, job_stats.get("pairs", 0)

        outcomes = self.scheduler.map(run_job, jobs)
        if stats is not None:
            stats["pairs"] = stats.get("pairs", 0) + sum(p for _d, p in outcomes)
        return [d for d, _p in outcomes]

    def _fused_min_distances(
        self, jobs: list[tuple[np.ndarray, np.ndarray]], stats: dict | None
    ) -> list[float]:
        results = [math.inf] * len(jobs)
        buffer_a: list[np.ndarray] = []
        buffer_b: list[np.ndarray] = []
        owners: list[int] = []
        filled = 0

        def flush():
            nonlocal filled
            if not buffer_a:
                return
            tris_a = np.concatenate(buffer_a)
            tris_b = np.concatenate(buffer_b)
            if stats is not None:
                stats["pairs"] = stats.get("pairs", 0) + len(tris_a)
            self._note_batch(len(tris_a))
            dists = tri_tri_distance_batch(tris_a, tris_b, check_intersection=False)
            start = 0
            for owner, chunk in zip(owners, buffer_a):
                segment = dists[start : start + len(chunk)]
                results[owner] = min(results[owner], float(segment.min()))
                start += len(chunk)
            buffer_a.clear()
            buffer_b.clear()
            owners.clear()
            filled = 0

        for job_id, (tris_a, tris_b) in enumerate(jobs):
            for ii, jj in iter_pair_blocks(len(tris_a), len(tris_b), self.gpu_block):
                buffer_a.append(tris_a[ii])
                buffer_b.append(tris_b[jj])
                owners.append(job_id)
                filled += len(ii)
                if filled >= self.gpu_block:
                    flush()
        flush()
        return results
