"""Process-backed query execution: real multi-core fan-out for joins.

PR 3's thread backend parallelized the query executor above the GIL —
and its own benchmark honestly measured ~1.0x, because FPR refinement is
pure-Python-bound. This module is the other half of that architecture:
the executor's contiguous, cuboid-ordered target chunks become
self-contained sub-queries (``QuerySpec.target_ids``) fanned across a
pool of **worker processes**, each owning a full engine — its own
``DecodeCache``, decoders, R-tree, and metrics registry.

Dataset transport
    A dataset loaded from disk (``Dataset.source_dir`` set) is reopened
    by each worker with salvage-mode :func:`~repro.storage.store.load_dataset`
    — deterministic, so a clean store loads identically to strict mode
    and a damaged store reproduces the parent's salvage outcome. An
    in-memory dataset is *spilled* once to a pickle file (exact
    round-trip; the serialized store format re-quantizes positions and
    would perturb results) and unpickled by workers. Compiled
    :class:`~repro.compression.lodtable.LODTable` columnar decode
    tables are immutable and pickle with their objects, so any table
    the parent already built ships in the spill; workers compile the
    rest lazily on first decode (store-reopened datasets always
    compile worker-side).

Result transport
    Each worker ships back a picklable :class:`ChunkOutcome`: pairs,
    per-chunk ``QueryStats``, degraded ``(side, object)`` keys, span
    trees (plain dicts), and a monotonic metrics delta. The parent
    merges outcomes in submission order — the same deterministic rule
    as the thread backend — so results are byte-identical to serial,
    fault injection included (decode faults are keyed by
    ``dataset:object:lod``, never by worker identity; only the
    ``FaultInjector.max_faults`` cap is order-sensitive, and in process
    mode it bounds each worker separately).

Worker-side engines are cached (small LRU keyed by config + dataset
manifests), so repeated queries against the same datasets pay the
engine bootstrap once per process, and each process keeps its own warm
decode cache — memory use scales with ``query_workers`` times
``cache_bytes`` in the worst case.
"""

from __future__ import annotations

import atexit
import os
import pickle
import shutil
import tempfile
import threading
import uuid
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace

from repro.obs.logs import get_logger, log_event

__all__ = [
    "ChunkOutcome",
    "ChunkTask",
    "DatasetManifest",
    "ProcessBackendUnavailable",
    "execute_chunks",
    "shutdown",
]

_LOG = get_logger("parallel.procpool")

#: Per-query series the parent's executor accounts itself; worker deltas
#: must not re-add them (each chunk is not a query of its own), and the
#: degraded-object count is deduplicated across chunks by the parent.
_PER_QUERY_SERIES = (
    "repro_queries_total",
    "repro_query_seconds",
    "repro_degraded_objects_total",
)

#: Worker-side engine cache size. Engines are keyed by (config, dataset
#: manifests); a handful covers a test session's distinct configurations
#: while bounding worker memory.
_MAX_WORKER_ENGINES = 4


class ProcessBackendUnavailable(RuntimeError):
    """Pool or transport infrastructure failed (not a query error).

    The executor catches this and falls back to the thread backend; real
    query failures (``EngineError`` subclasses raised inside a worker)
    propagate unchanged.
    """


@dataclass(frozen=True)
class DatasetManifest:
    """How a worker obtains one dataset: reload from the store, or unpickle."""

    name: str
    kind: str  # "store" | "spill"
    path: str


@dataclass(frozen=True)
class ChunkTask:
    """One sub-query shipped to a worker process."""

    engine_key: bytes
    config: object  # sanitized EngineConfig (metrics stripped, serial)
    manifests: tuple
    spec: object  # QuerySpec restricted to this chunk's target_ids


@dataclass
class ChunkOutcome:
    """One chunk's results, shipped back to the parent."""

    pairs: dict
    degraded_targets: set
    stats: object  # QueryStats
    degraded_keys: set
    spans: list  # worker span trees as plain dicts ([] when untraced)
    metrics_delta: dict


# -- parent side ---------------------------------------------------------------

_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0
_POOL_LOCK = threading.Lock()
_SPILL_DIR: str | None = None
# id(dataset) -> spill path; entries are removed by a weakref.finalize
# when the dataset is collected, so a recycled id can never alias a
# stale spill file.
_SPILLS: dict[int, str] = {}


def _ensure_importable() -> None:
    """Make sure spawned children can ``import repro``.

    Spawned workers re-import this module by name before running any
    task; when the parent runs from a source checkout (``PYTHONPATH=src``
    or ``sys.path`` manipulation) the package root must reach the child
    through the environment.
    """
    import repro

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    parts = [os.path.abspath(p) for p in existing.split(os.pathsep) if p]
    if pkg_root not in parts:
        os.environ["PYTHONPATH"] = (
            pkg_root + (os.pathsep + existing if existing else "")
        )


def _ensure_pool(workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is None or _POOL_WORKERS < workers:
            if _POOL is not None:
                _POOL.shutdown(wait=False, cancel_futures=True)
            _ensure_importable()
            import multiprocessing

            _POOL = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
            _POOL_WORKERS = workers
            log_event(_LOG, "procpool_started", workers=workers)
        return _POOL


def shutdown() -> None:
    """Tear down the shared pool and spill directory (atexit / tests)."""
    global _POOL, _POOL_WORKERS, _SPILL_DIR
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=False, cancel_futures=True)
            _POOL = None
            _POOL_WORKERS = 0
        if _SPILL_DIR is not None:
            shutil.rmtree(_SPILL_DIR, ignore_errors=True)
            _SPILL_DIR = None
            _SPILLS.clear()


atexit.register(shutdown)


def _spill_dir() -> str:
    global _SPILL_DIR
    if _SPILL_DIR is None:
        _SPILL_DIR = tempfile.mkdtemp(prefix="repro-procpool-")
    return _SPILL_DIR


def _manifest_for(dataset) -> DatasetManifest:
    if dataset.source_dir is not None:
        return DatasetManifest(dataset.name, "store", dataset.source_dir)
    path = _SPILLS.get(id(dataset))
    if path is None:
        path = os.path.join(_spill_dir(), f"spill-{uuid.uuid4().hex}.pkl")
        with open(path, "wb") as fh:
            pickle.dump(dataset, fh, protocol=pickle.HIGHEST_PROTOCOL)
        _SPILLS[id(dataset)] = path
        weakref.finalize(dataset, _SPILLS.pop, id(dataset), None)
    return DatasetManifest(dataset.name, "spill", path)


def _worker_config(config):
    """The parent config sanitized for shipping to a worker.

    Workers always run their chunk serially on the thread backend (so a
    worker can never recursively spawn processes), with a private
    metrics registry created on the far side. The fault injector ships
    with its fired-counts cleared: decisions are pure functions of
    ``(seed, kind, key)``, so workers re-derive exactly the parent's
    faults, but the parent-side ``counts`` bookkeeping stays local.
    """
    injector = config.fault_injector
    if injector is not None:
        injector = replace(injector, counts={})
    return replace(
        config,
        metrics=None,
        fault_injector=injector,
        query_workers=1,
        query_backend="thread",
    )


def execute_chunks(engine, plan, chunks: list) -> list[ChunkOutcome]:
    """Fan ``chunks`` (lists of target ids) across the process pool.

    Returns chunk outcomes **in submission order** — the caller merges
    them exactly like the thread backend's chunk results. Raises
    :class:`ProcessBackendUnavailable` on pool/transport failures;
    worker-side query errors (``EngineError``) propagate as themselves.
    """
    from repro.core.errors import EngineError

    try:
        config = _worker_config(engine.config)
        records = {plan.target.dataset.name: plan.target.dataset}
        records[plan.source.dataset.name] = plan.source.dataset
        manifests = tuple(
            _manifest_for(records[name]) for name in sorted(records)
        )
        blob = pickle.dumps((config, manifests), protocol=pickle.HIGHEST_PROTOCOL)
        import hashlib

        engine_key = hashlib.sha1(blob).digest()
        pool = _ensure_pool(engine.query_workers)
        futures = [
            pool.submit(
                _run_chunk,
                ChunkTask(
                    engine_key=engine_key,
                    config=config,
                    manifests=manifests,
                    spec=replace(plan.spec, target_ids=tuple(chunk)),
                ),
            )
            for chunk in chunks
        ]
        return [future.result() for future in futures]
    except EngineError:
        raise
    except (BrokenProcessPool, OSError, pickle.PicklingError, RuntimeError) as exc:
        raise ProcessBackendUnavailable(str(exc)) from exc


# -- worker side ---------------------------------------------------------------

# Per-process caches: datasets by manifest, engines by (config, manifests).
_WORKER_DATASETS: dict[DatasetManifest, object] = {}
_WORKER_ENGINES: "OrderedDict[bytes, object]" = OrderedDict()


def _load_manifest(manifest: DatasetManifest):
    dataset = _WORKER_DATASETS.get(manifest)
    if dataset is None:
        if manifest.kind == "store":
            from repro.storage.store import load_dataset

            dataset = load_dataset(manifest.path, mode="salvage")
        else:
            with open(manifest.path, "rb") as fh:
                dataset = pickle.load(fh)
        _WORKER_DATASETS[manifest] = dataset
    return dataset


def _engine_for(task: ChunkTask):
    engine = _WORKER_ENGINES.get(task.engine_key)
    if engine is not None:
        _WORKER_ENGINES.move_to_end(task.engine_key)
        return engine
    from repro.core.engine import ThreeDPro
    from repro.obs.metrics import MetricsRegistry

    engine = ThreeDPro(replace(task.config, metrics=MetricsRegistry()))
    for manifest in task.manifests:
        engine.load_dataset(_load_manifest(manifest))
    _WORKER_ENGINES[task.engine_key] = engine
    while len(_WORKER_ENGINES) > _MAX_WORKER_ENGINES:
        _WORKER_ENGINES.popitem(last=False)
    return engine


def _run_chunk(task: ChunkTask) -> ChunkOutcome:
    """Execute one restricted sub-query in this worker process."""
    from repro.obs.metrics import diff_states

    engine = _engine_for(task)
    tracer = engine.tracer
    if tracer.enabled:
        tracer.clear()
    providers = [
        engine.dataset_provider(name)
        for name in sorted({task.spec.source, task.spec.target})
    ]
    vertices_before = sum(p.decoded_vertices for p in providers)
    metrics_before = engine.metrics.export_state()

    result = engine.execute(task.spec)

    stats = result.stats
    # Provider vertex counters are lifetime-valued and this engine is
    # cached across chunks; ship the per-chunk delta.
    stats.decoded_vertices = (
        sum(p.decoded_vertices for p in providers) - vertices_before
    )
    return ChunkOutcome(
        pairs=result.pairs,
        degraded_targets=result.degraded_targets,
        stats=stats,
        degraded_keys=set(result.degraded_keys),
        spans=[root.to_dict() for root in tracer.roots] if tracer.enabled else [],
        metrics_delta=diff_states(
            metrics_before, engine.metrics.export_state(), skip=_PER_QUERY_SERIES
        ),
    )
