"""Process-backed query execution: real multi-core fan-out for joins.

PR 3's thread backend parallelized the query executor above the GIL —
and its own benchmark honestly measured ~1.0x, because FPR refinement is
pure-Python-bound. This module is the other half of that architecture:
the executor's contiguous, cuboid-ordered target chunks become
self-contained sub-queries (``QuerySpec.target_ids``) fanned across a
pool of **worker processes**, each owning a full engine — its own
``DecodeCache``, decoders, R-tree, and metrics registry.

Dataset transport
    A dataset loaded from disk (``Dataset.source_dir`` set) is reopened
    by each worker from its directory — what crosses the process
    boundary is a tiny :class:`DatasetManifest` handle (name + path +
    load mode), never object bytes. A v3 shard store the parent loaded
    cleanly is strict-loaded *lazily* (``verify="lazy"``): each worker
    memory-maps the shards and faults in only the blobs its chunks
    decode, and every worker on the machine shares those pages through
    the OS page cache — resident memory stays O(dataset), not
    O(workers × dataset). Legacy v2 stores (and any store whose parent
    load was not clean) reload in salvage mode — deterministic, so a
    clean store loads identically to strict mode and a damaged store
    reproduces the parent's salvage outcome.

    An in-memory dataset is *spilled* once. Under
    ``REPRO_STORAGE_BACKEND=shard`` the spill is a pickle-codec v3
    shard store (:func:`~repro.storage.store.spill_dataset`: exact
    object round-trip, mmap-shared, lazily unpickled per touched
    object); under the legacy backend it is a single pickle file the
    workers unpickle whole. Either spill round-trips objects exactly —
    the serialized store format re-quantizes positions and would
    perturb results. Compiled
    :class:`~repro.compression.lodtable.LODTable` columnar decode
    tables are immutable and pickle with their objects, so any table
    the parent already built ships in the spill; workers compile the
    rest lazily on first decode (store-reopened datasets always
    compile worker-side).

    Spill directories are self-identifying (``owner.pid``): pool
    startup sweeps stale ``repro-procpool-*`` directories — spills and
    heartbeat files orphaned by a killed parent — whose owning process
    is gone.

Result transport
    Each worker ships back a picklable :class:`ChunkOutcome`: pairs,
    per-chunk ``QueryStats``, degraded ``(side, object)`` keys, span
    trees (plain dicts), and a monotonic metrics delta. The parent
    merges outcomes in submission order — the same deterministic rule
    as the thread backend — so results are byte-identical to serial,
    fault injection included (decode faults are keyed by
    ``dataset:object:lod``, never by worker identity; only the
    ``FaultInjector.max_faults`` cap is order-sensitive, and in process
    mode it bounds each worker separately).

Worker-side engines are cached (small LRU keyed by config + dataset
manifests), so repeated queries against the same datasets pay the
engine bootstrap once per process, and each process keeps its own warm
decode cache — memory use scales with ``query_workers`` times
``cache_bytes`` in the worst case.

Supervision
    ``execute_chunks`` is a chunk *supervisor*, not a fire-and-forget
    fan-out. Each submitted chunk carries a heartbeat file its worker
    touches at chunk start and at every target boundary; the parent
    polls outstanding futures and treats a stale heartbeat (older than
    ``EngineConfig.worker_hang_timeout_seconds``) like a worker crash.
    On a crash or hang the pool is killed — terminated *and* joined, so
    no orphan processes outlive the query — and respawned, and the
    unfinished chunks are resubmitted. A chunk that burns
    ``chunk_max_attempts`` attempts is *quarantined*: returned as a
    :class:`QuarantinedChunk` marker the executor re-runs serially
    in-process, so one poisoned chunk costs one slot, not the whole
    query's process backend. ``pool_failure_threshold`` consecutive
    pool failures trip a circuit breaker that quarantines everything
    still pending instead of thrashing respawns.
"""

from __future__ import annotations

import atexit
import logging
import os
import pickle
import shutil
import tempfile
import threading
import time
import traceback as _traceback
import uuid
import weakref
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

from repro.obs.logs import get_logger, log_event

__all__ = [
    "ChunkOutcome",
    "ChunkTask",
    "DatasetManifest",
    "ProcessBackendUnavailable",
    "QuarantinedChunk",
    "execute_chunks",
    "shutdown",
]

_LOG = get_logger("parallel.procpool")

#: Per-query series the parent's executor accounts itself; worker deltas
#: must not re-add them (each chunk is not a query of its own), and the
#: degraded-object count is deduplicated across chunks by the parent.
_PER_QUERY_SERIES = (
    "repro_queries_total",
    "repro_query_seconds",
    "repro_degraded_objects_total",
    # Partiality is accounted once per *query* by the parent from the
    # merged completeness record, not once per worker chunk.
    "repro_deadline_exceeded_total",
    # Performance attribution is emitted once per query by the parent
    # from the merged stats/funnel; a worker chunk's own emission would
    # double-count every stage.
    "repro_query_latency_seconds",
    "repro_deadline_headroom_ratio",
    "repro_funnel_candidates_total",
    "repro_funnel_mbb_pruned_total",
    "repro_funnel_pairs_total",
    "repro_funnel_decoded_objects_total",
    "repro_funnel_decoded_bytes_total",
    "repro_funnel_decode_cache_total",
    "repro_funnel_decode_failures_total",
)

#: Worker-side engine cache size. Engines are keyed by (config, dataset
#: manifests); a handful covers a test session's distinct configurations
#: while bounding worker memory.
_MAX_WORKER_ENGINES = 4


class ProcessBackendUnavailable(RuntimeError):
    """Pool or transport infrastructure failed (not a query error).

    The executor catches this and falls back to the thread backend; real
    query failures (``EngineError`` subclasses raised inside a worker)
    propagate unchanged. ``traceback`` carries the formatted cause so
    the fallback log line can say exactly why.
    """

    def __init__(self, message: str, traceback: str = ""):
        super().__init__(message)
        self.traceback = traceback


@dataclass(frozen=True)
class DatasetManifest:
    """How a worker obtains one dataset: reload from the store, or unpickle.

    ``mode`` selects the worker's load: ``"strict"`` (lazy shard load,
    ``verify="lazy"`` so only touched blobs are CRC-checked and
    deserialized) for stores the parent loaded cleanly, ``"salvage"``
    otherwise. Irrelevant for ``kind="spill"`` pickle files.
    """

    name: str
    kind: str  # "store" | "spill"
    path: str
    mode: str = "salvage"  # "strict" | "salvage"


@dataclass(frozen=True)
class ChunkTask:
    """One sub-query shipped to a worker process."""

    engine_key: bytes
    config: object  # sanitized EngineConfig (metrics stripped, serial)
    manifests: tuple
    spec: object  # QuerySpec restricted to this chunk's target_ids
    chunk_key: str = ""  # stable chunk identity for deterministic faults
    attempt: int = 0  # 0-based submission attempt
    heartbeat_path: str = ""  # file the worker touches per target


@dataclass
class ChunkOutcome:
    """One chunk's results, shipped back to the parent."""

    pairs: dict
    degraded_targets: set
    stats: object  # QueryStats
    degraded_keys: set
    spans: list  # worker span trees as plain dicts ([] when untraced)
    metrics_delta: dict
    completeness: object = None  # the sub-query's QueryCompleteness
    # The chunk's sampling-profiler report (repro.obs.profile
    # .ProfileReport) when the worker engine runs with profiling on;
    # the parent absorbs it so flamegraphs cover worker time too.
    profile: object = None


@dataclass
class QuarantinedChunk:
    """A chunk retired from the pool; the executor runs it serially."""

    index: int
    targets: tuple
    reason: str  # "attempts_exhausted" | "circuit_breaker"


# -- parent side ---------------------------------------------------------------

_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0
_POOL_LOCK = threading.Lock()
_SPILL_DIR: str | None = None
# (id(dataset), storage backend) -> spill path; entries are removed by
# a weakref.finalize when the dataset is collected, so a recycled id can
# never alias a stale spill file.
_SPILLS: dict[tuple[int, str], str] = {}


def _ensure_importable() -> None:
    """Make sure spawned children can ``import repro``.

    Spawned workers re-import this module by name before running any
    task; when the parent runs from a source checkout (``PYTHONPATH=src``
    or ``sys.path`` manipulation) the package root must reach the child
    through the environment.
    """
    import repro

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    parts = [os.path.abspath(p) for p in existing.split(os.pathsep) if p]
    if pkg_root not in parts:
        os.environ["PYTHONPATH"] = (
            pkg_root + (os.pathsep + existing if existing else "")
        )


def _ensure_pool(workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is None or _POOL_WORKERS < workers:
            if _POOL is not None:
                _POOL.shutdown(wait=False, cancel_futures=True)
            _ensure_importable()
            import multiprocessing

            _POOL = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
            _POOL_WORKERS = workers
            log_event(_LOG, "procpool_started", workers=workers)
        return _POOL


def shutdown() -> None:
    """Tear down the shared pool and spill directory (atexit / tests)."""
    global _POOL, _POOL_WORKERS, _SPILL_DIR
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=False, cancel_futures=True)
            _POOL = None
            _POOL_WORKERS = 0
        if _SPILL_DIR is not None:
            shutil.rmtree(_SPILL_DIR, ignore_errors=True)
            _SPILL_DIR = None
            _SPILLS.clear()


atexit.register(shutdown)


def _kill_pool() -> None:
    """Hard-stop the shared pool: terminate workers and *reap* them.

    Joining after terminate is what guarantees no orphaned processes —
    a SIGKILLed worker left unjoined would linger as a zombie for the
    parent's lifetime.
    """
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        pool, _POOL, _POOL_WORKERS = _POOL, None, 0
    if pool is None:
        return
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        try:
            if proc.is_alive():
                proc.terminate()
        except (OSError, ValueError):
            pass
    for proc in processes:
        try:
            proc.join(timeout=5.0)
        except (OSError, ValueError, AssertionError):
            pass


_SPILL_PREFIX = "repro-procpool-"
#: Unowned spill dirs (no readable owner.pid) are reaped only once this
#: old, so a sweep can never race a parent that is mid-mkdtemp.
_SPILL_ORPHAN_AGE_SECONDS = 3600.0


def _sweep_stale_spills(tmp_root: str, own: str | None = None) -> int:
    """Remove ``repro-procpool-*`` dirs whose owning process is gone.

    Abnormal parent exits (SIGKILL, OOM) orphan spill files and
    heartbeat files until reboot; each new parent sweeps them at pool
    startup. A directory is reclaimed when its ``owner.pid`` names a
    dead process; dirs without a readable pidfile are reclaimed only
    after :data:`_SPILL_ORPHAN_AGE_SECONDS`. Returns the count removed.
    """
    removed = 0
    try:
        names = os.listdir(tmp_root)
    except OSError:
        return 0
    own = os.path.abspath(own) if own is not None else None
    for name in names:
        if not name.startswith(_SPILL_PREFIX):
            continue
        path = os.path.join(tmp_root, name)
        if own is not None and os.path.abspath(path) == own:
            continue
        if not os.path.isdir(path):
            continue
        try:
            with open(os.path.join(path, "owner.pid")) as fh:
                pid = int(fh.read().strip())
        except (OSError, ValueError):
            try:
                age = time.time() - os.path.getmtime(path)
            except OSError:
                continue
            if age < _SPILL_ORPHAN_AGE_SECONDS:
                continue
        else:
            try:
                os.kill(pid, 0)
                continue  # owner still running
            except ProcessLookupError:
                pass  # owner is dead: reclaim
            except OSError:
                continue  # EPERM etc.: someone else's live process
        shutil.rmtree(path, ignore_errors=True)
        removed += 1
    if removed:
        log_event(_LOG, "stale_spills_swept", tmp_root=tmp_root, removed=removed)
    return removed


def _spill_dir() -> str:
    global _SPILL_DIR
    if _SPILL_DIR is None:
        _SPILL_DIR = tempfile.mkdtemp(prefix=_SPILL_PREFIX)
        with open(os.path.join(_SPILL_DIR, "owner.pid"), "w") as fh:
            fh.write(str(os.getpid()))
        _sweep_stale_spills(os.path.dirname(_SPILL_DIR), own=_SPILL_DIR)
    return _SPILL_DIR


def _manifest_for(dataset, backend: str = "legacy") -> DatasetManifest:
    if dataset.source_dir is not None:
        # Shard stores the parent loaded cleanly strict-load lazily in
        # the workers; anything else (legacy v2, damaged stores)
        # reloads in deterministic salvage mode.
        report = dataset.load_report
        clean = report is None or report.ok
        mode = "strict" if (dataset.shard_source is not None and clean) else "salvage"
        return DatasetManifest(dataset.name, "store", dataset.source_dir, mode)
    key = (id(dataset), backend)
    path = _SPILLS.get(key)
    if path is None:
        if backend == "shard":
            from repro.storage.store import spill_dataset

            path = os.path.join(_spill_dir(), f"spill-{uuid.uuid4().hex}")
            spill_dataset(dataset, path)
            kind, mode = "store", "strict"
        else:
            path = os.path.join(_spill_dir(), f"spill-{uuid.uuid4().hex}.pkl")
            with open(path, "wb") as fh:
                pickle.dump(dataset, fh, protocol=pickle.HIGHEST_PROTOCOL)
            kind, mode = "spill", "salvage"
        _SPILLS[key] = path
        weakref.finalize(dataset, _SPILLS.pop, key, None)
    else:
        kind = "spill" if path.endswith(".pkl") else "store"
        mode = "salvage" if kind == "spill" else "strict"
    return DatasetManifest(dataset.name, kind, path, mode)


def _worker_config(config):
    """The parent config sanitized for shipping to a worker.

    Workers always run their chunk serially on the thread backend (so a
    worker can never recursively spawn processes), with a private
    metrics registry created on the far side. The fault injector ships
    with its fired-counts cleared: decisions are pure functions of
    ``(seed, kind, key)``, so workers re-derive exactly the parent's
    faults, but the parent-side ``counts`` bookkeeping stays local.
    """
    injector = config.fault_injector
    if injector is not None:
        injector = replace(injector, counts={})
    return replace(
        config,
        metrics=None,
        fault_injector=injector,
        query_workers=1,
        query_backend="thread",
        # The worker's budget is the parent's *remaining* wall clock,
        # re-stamped onto each chunk's spec at submission; a config- or
        # env-level deadline must not start a fresh full budget per chunk.
        deadline_ms=None,
    )


def execute_chunks(engine, plan, chunks: list, deadline=None) -> list:
    """Fan ``chunks`` (lists of target ids) across the supervised pool.

    Returns one entry per chunk **in submission order** — a
    :class:`ChunkOutcome`, or a :class:`QuarantinedChunk` marker for a
    chunk the supervisor retired (the executor runs those serially
    in-process). The caller merges them exactly like the thread
    backend's chunk results. Raises :class:`ProcessBackendUnavailable`
    only when the pool/transport infrastructure is unusable (spill I/O,
    unpicklable payloads, pool bootstrap); worker crashes and hangs are
    handled *here* by killing + respawning the pool and retrying the
    affected chunks. Worker-side query errors (``EngineError``)
    propagate as themselves.
    """
    from repro.core.config import resolve_setting
    from repro.core.errors import EngineError

    try:
        config = _worker_config(engine.config)
        backend = resolve_setting("storage_backend", config=engine.config)
        records = {plan.target.dataset.name: plan.target.dataset}
        records[plan.source.dataset.name] = plan.source.dataset
        manifests = tuple(
            _manifest_for(records[name], backend) for name in sorted(records)
        )
        blob = pickle.dumps((config, manifests), protocol=pickle.HIGHEST_PROTOCOL)
        import hashlib

        engine_key = hashlib.sha1(blob).digest()
        return _supervise(
            engine, plan, chunks, deadline, config, manifests, engine_key
        )
    except EngineError:
        raise
    except (BrokenProcessPool, OSError, pickle.PicklingError) as exc:
        raise ProcessBackendUnavailable(str(exc), _traceback.format_exc()) from exc


def _chunk_spec(plan, chunk, deadline):
    """The chunk's restricted spec, deadline re-budgeted at submit time.

    Tokens hold no cross-process plumbing, so ``cancellation`` is
    stripped; the worker gets the parent's *remaining* milliseconds
    instead (floored at 1ms — an already-expired budget still yields a
    well-formed empty partial from the worker's first checkpoint).
    ``progress`` callbacks are in-process-only for the same reason —
    consumers needing per-LOD streaming under this backend rely on the
    serve layer's catch-up flush after the merged result lands.
    """
    deadline_ms = None
    if deadline is not None:
        remaining = deadline.remaining()
        if remaining is not None:
            deadline_ms = max(1, int(remaining * 1000))
    return replace(
        plan.spec,
        target_ids=tuple(chunk),
        cancellation=None,
        progress=None,
        deadline_ms=deadline_ms,
    )


def _heartbeat_age(path: str) -> float | None:
    try:
        return time.time() - os.path.getmtime(path)
    except OSError:
        return None


def _supervise(engine, plan, chunks, deadline, config, manifests, engine_key):
    """Submit, watch, retry, quarantine: the chunk supervision loop."""
    from repro.core.errors import EngineError

    executor = engine.executor
    tracer = engine.tracer
    max_attempts = engine.config.chunk_max_attempts
    breaker = engine.config.pool_failure_threshold
    hang_timeout = engine.config.worker_hang_timeout_seconds

    outcomes: list = [None] * len(chunks)
    attempts = [0] * len(chunks)
    pending = set(range(len(chunks)))
    heartbeats: dict[int, str] = {}
    pool_failures = 0

    def quarantine(index: int, reason: str) -> None:
        outcomes[index] = QuarantinedChunk(
            index=index, targets=tuple(chunks[index]), reason=reason
        )
        pending.discard(index)
        executor._m_quarantined.inc()
        log_event(
            _LOG, "chunk_quarantined", level=logging.WARNING,
            chunk=index, attempts=attempts[index], reason=reason,
        )
        with tracer.span(
            "supervision", event="chunk_quarantined", chunk=index, reason=reason
        ):
            pass

    def pool_failure(reason: str, error: str = "") -> None:
        nonlocal pool_failures
        pool_failures += 1
        executor._m_worker_restarts.inc()
        log_event(
            _LOG, "worker_pool_restart", level=logging.WARNING,
            reason=reason, error=error, consecutive_failures=pool_failures,
            pending_chunks=len(pending),
        )
        with tracer.span(
            "supervision", event="pool_restart", reason=reason,
            consecutive_failures=pool_failures,
        ):
            pass
        _kill_pool()

    while pending:
        # Retire chunks out of attempts, or everything once the breaker
        # trips — resubmitting to a pool that keeps dying only burns time.
        if pool_failures >= breaker:
            for index in sorted(pending):
                quarantine(index, "circuit_breaker")
            break
        for index in sorted(pending):
            if attempts[index] >= max_attempts:
                quarantine(index, "attempts_exhausted")
        if not pending:
            break

        round_indices = sorted(pending)
        futures = {}
        try:
            pool = _ensure_pool(engine.query_workers)
            for index in round_indices:
                path = heartbeats.get(index)
                if path is None:
                    path = os.path.join(_spill_dir(), f"hb-{uuid.uuid4().hex}")
                    heartbeats[index] = path
                with open(path, "a"):
                    pass
                os.utime(path)
                task = ChunkTask(
                    engine_key=engine_key,
                    config=config,
                    manifests=manifests,
                    spec=_chunk_spec(plan, chunks[index], deadline),
                    chunk_key=f"{plan.label}:{index}",
                    attempt=attempts[index],
                    heartbeat_path=path,
                )
                attempts[index] += 1
                futures[pool.submit(_run_chunk, task)] = index
        except BrokenProcessPool as exc:
            pool_failure("submit_failed", repr(exc))
            continue

        poll = None if hang_timeout is None else max(0.05, hang_timeout / 4.0)
        outstanding = set(futures)
        broken = False
        while outstanding and not broken:
            done, outstanding = wait(
                outstanding, timeout=poll, return_when=FIRST_COMPLETED
            )
            for future in done:
                index = futures[future]
                try:
                    outcome = future.result()
                except EngineError:
                    raise
                except BrokenProcessPool as exc:
                    if not broken:
                        pool_failure("worker_crashed", repr(exc))
                        broken = True
                except (OSError, pickle.PickleError, EOFError) as exc:
                    # Transport failure for this chunk (e.g. result
                    # unpickling); burns the chunk's attempt but the
                    # pool itself is still healthy.
                    log_event(
                        _LOG, "chunk_transport_error", level=logging.WARNING,
                        chunk=index, error=repr(exc),
                        traceback=_traceback.format_exc(),
                    )
                else:
                    outcomes[index] = outcome
                    pending.discard(index)
            if broken or not outstanding:
                break
            if hang_timeout is not None:
                hung = [
                    futures[f]
                    for f in outstanding
                    if (_heartbeat_age(heartbeats[futures[f]]) or 0.0) > hang_timeout
                ]
                if hung:
                    pool_failure(
                        "worker_hang",
                        f"chunks {hung} heartbeat older than {hang_timeout}s",
                    )
                    broken = True
        if not broken:
            # A clean round: the breaker counts *consecutive* failures.
            pool_failures = 0
    return outcomes


# -- worker side ---------------------------------------------------------------

# Per-process caches: datasets by manifest, engines by (config, manifests).
_WORKER_DATASETS: dict[DatasetManifest, object] = {}
_WORKER_ENGINES: "OrderedDict[bytes, object]" = OrderedDict()


def _load_manifest(manifest: DatasetManifest):
    dataset = _WORKER_DATASETS.get(manifest)
    if dataset is None:
        if manifest.kind == "store":
            from repro.storage.store import load_dataset

            if manifest.mode == "strict":
                # Lazy shard load: mmap the shards, CRC-check and
                # unpickle/deserialize only the blobs this worker's
                # chunks actually touch.
                dataset = load_dataset(manifest.path, mode="strict", verify="lazy")
            else:
                dataset = load_dataset(manifest.path, mode="salvage")
        else:
            with open(manifest.path, "rb") as fh:
                dataset = pickle.load(fh)
        _WORKER_DATASETS[manifest] = dataset
    return dataset


def _engine_for(task: ChunkTask):
    engine = _WORKER_ENGINES.get(task.engine_key)
    if engine is not None:
        _WORKER_ENGINES.move_to_end(task.engine_key)
        return engine
    from repro.core.engine import ThreeDPro
    from repro.obs.metrics import MetricsRegistry

    engine = ThreeDPro(replace(task.config, metrics=MetricsRegistry()))
    for manifest in task.manifests:
        engine.load_dataset(_load_manifest(manifest))
    _WORKER_ENGINES[task.engine_key] = engine
    while len(_WORKER_ENGINES) > _MAX_WORKER_ENGINES:
        _WORKER_ENGINES.popitem(last=False)
    return engine


def _heartbeat_fn(path: str):
    def beat() -> None:
        try:
            os.utime(path)
        except OSError:
            pass  # liveness reporting must never fail the chunk

    return beat


def _run_chunk(task: ChunkTask) -> ChunkOutcome:
    """Execute one restricted sub-query in this worker process."""
    from repro.obs.metrics import diff_states

    heartbeat = _heartbeat_fn(task.heartbeat_path) if task.heartbeat_path else None
    if heartbeat is not None:
        heartbeat()
    engine = _engine_for(task)
    injector = engine.config.fault_injector
    if injector is not None:
        # Chunk-level chaos (worker kill / hang) fires before any work,
        # keyed by (chunk, attempt) so a retried chunk can deterministically
        # succeed on its next attempt.
        injector.before_chunk(task.chunk_key, task.attempt)
    tracer = engine.tracer
    if tracer.enabled:
        tracer.clear()
    providers = [
        engine.dataset_provider(name)
        for name in sorted({task.spec.source, task.spec.target})
    ]
    vertices_before = sum(p.decoded_vertices for p in providers)
    metrics_before = engine.metrics.export_state()

    engine.executor.heartbeat = heartbeat
    try:
        result = engine.execute(task.spec)
    finally:
        engine.executor.heartbeat = None

    stats = result.stats
    # Provider vertex counters are lifetime-valued and this engine is
    # cached across chunks; ship the per-chunk delta.
    stats.decoded_vertices = (
        sum(p.decoded_vertices for p in providers) - vertices_before
    )
    return ChunkOutcome(
        pairs=result.pairs,
        degraded_targets=result.degraded_targets,
        stats=stats,
        degraded_keys=set(result.degraded_keys),
        spans=[root.to_dict() for root in tracer.roots] if tracer.enabled else [],
        metrics_delta=diff_states(
            metrics_before, engine.metrics.export_state(), skip=_PER_QUERY_SERIES
        ),
        completeness=result.completeness,
        profile=engine.take_profile(),
    )
