"""Task generation and scheduling for face-pair evaluation.

A "task" is a contiguous block of the flattened ``n_a x n_b`` pair index
space; block size is the device's batch granularity (paper Section 5.2:
"geometric computations ... are grouped into small tasks with a fixed
number of face pair evaluations").
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator

import numpy as np

__all__ = ["iter_pair_blocks", "TaskScheduler"]


def iter_pair_blocks(
    n_a: int, n_b: int, block: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (ii, jj) index arrays covering the n_a x n_b pair space.

    Pairs are enumerated row-major (all of face 0's pairs first), so an
    early exit after the first blocks has touched whole faces of the
    first operand — the locality the decode cache likes.
    """
    if block < 1:
        raise ValueError("block must be >= 1")
    total = n_a * n_b
    for start in range(0, total, block):
        flat = np.arange(start, min(start + block, total))
        yield flat // n_b, flat % n_b


class TaskScheduler:
    """Optional thread-pool fan-out for independent pair blocks.

    Stands in for the paper's CPU/GPU resource manager: tasks are
    submitted as thunks and executed by whichever worker is free. With
    ``workers <= 1`` everything runs inline (the default for
    reproducible single-thread benchmarks).
    """

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        if self.workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, items))
