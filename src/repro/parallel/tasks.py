"""Task generation and scheduling for face-pair evaluation.

A "task" is a contiguous block of the flattened ``n_a x n_b`` pair index
space; block size is the device's batch granularity (paper Section 5.2:
"geometric computations ... are grouped into small tasks with a fixed
number of face pair evaluations").

The scheduler is fault-tolerant: a task that raises is retried up to
``max_retries`` times with optional exponential backoff, and tasks that
fail inside the thread pool are re-run serially (a worker-thread crash
must not take down the whole query). Only when a task exhausts its
retries does the scheduler raise
:class:`~repro.core.errors.TaskExecutionError`.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.errors import DeadlineExceededError, TaskExecutionError
from repro.obs import metrics as obs_metrics
from repro.obs.logs import get_logger, log_event

__all__ = ["iter_pair_blocks", "TaskScheduler"]

_LOG = get_logger("parallel.tasks")


def iter_pair_blocks(
    n_a: int, n_b: int, block: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (ii, jj) index arrays covering the n_a x n_b pair space.

    Pairs are enumerated row-major (all of face 0's pairs first), so an
    early exit after the first blocks has touched whole faces of the
    first operand — the locality the decode cache likes.
    """
    if block < 1:
        raise ValueError("block must be >= 1")
    total = n_a * n_b
    for start in range(0, total, block):
        flat = np.arange(start, min(start + block, total))
        yield flat // n_b, flat % n_b


class TaskScheduler:
    """Optional thread-pool fan-out for independent pair blocks.

    Stands in for the paper's CPU/GPU resource manager: tasks are
    submitted as thunks and executed by whichever worker is free. With
    ``workers <= 1`` everything runs inline (the default for
    reproducible single-thread benchmarks).

    ``max_retries`` bounds re-execution of a failing task (0 disables
    retry); ``backoff_seconds`` is the base of an exponential backoff
    slept between attempts. ``fault_injector`` (see :mod:`repro.faults`)
    may synthesize failures/delays per ``(task index, attempt)`` for
    chaos tests. ``retries`` and ``serial_fallbacks`` count what
    actually happened.

    ``fatal_types`` lists exception types that must propagate unwrapped
    and unretried (e.g. a query's
    :class:`~repro.core.errors.ErrorBudgetExceededError` — retrying
    cannot help, and callers match on the type).
    :class:`~repro.core.errors.DeadlineExceededError` is always treated
    as fatal — a spent budget cannot be retried into existence — and an
    optional ``deadline`` is checked before each task starts, so an
    expired query stops launching new work.
    """

    def __init__(
        self,
        workers: int = 1,
        max_retries: int = 2,
        backoff_seconds: float = 0.0,
        fault_injector=None,
        metrics: obs_metrics.MetricsRegistry | None = None,
        fatal_types: tuple = (),
        deadline=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")
        self.workers = workers
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.fault_injector = fault_injector
        self.fatal_types = tuple(fatal_types)
        self.deadline = deadline
        self.retries = 0
        self.serial_fallbacks = 0
        registry = metrics if metrics is not None else obs_metrics.REGISTRY
        self._m_tasks = registry.counter(
            "repro_tasks_total", "Tasks submitted to the scheduler"
        )
        self._m_retries = registry.counter(
            "repro_task_retries_total", "Task attempts re-run after a failure"
        )
        self._m_serial_fallbacks = registry.counter(
            "repro_task_serial_fallbacks_total",
            "Tasks that failed in the thread pool and were re-run serially",
        )

    def _run(self, fn: Callable, item, index: int, first_attempt: int = 0):
        """Run one task with retry; raises TaskExecutionError when spent."""
        last: Exception | None = None
        for attempt in range(first_attempt, self.max_retries + 1):
            if attempt > first_attempt:
                self.retries += 1
                self._m_retries.inc()
                backoff = 0.0
                if self.backoff_seconds > 0:
                    backoff = self.backoff_seconds * 2 ** (attempt - 1)
                log_event(
                    _LOG, "task_retry", level=logging.WARNING,
                    task=index, attempt=attempt, backoff_seconds=backoff,
                    error=repr(last),
                )
                if backoff > 0:
                    time.sleep(backoff)
            try:
                if self.deadline is not None:
                    self.deadline.check("task")
                if self.fault_injector is not None:
                    self.fault_injector.before_task(index, attempt)
                return fn(item)
            except Exception as exc:
                if isinstance(exc, self.fatal_types) or isinstance(
                    exc, DeadlineExceededError
                ):
                    raise
                last = exc
        raise TaskExecutionError(
            f"task {index} failed after {self.max_retries + 1 - first_attempt} "
            f"attempt(s): {last!r}"
        ) from last

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        self._m_tasks.inc(len(items))
        if self.workers == 1 or len(items) <= 1:
            return [self._run(fn, item, i) for i, item in enumerate(items)]

        def pooled(pair):
            """First attempt only; failures are retried serially by the caller."""
            index, item = pair
            try:
                if self.fault_injector is not None:
                    self.fault_injector.before_task(index, 0)
                return True, fn(item)
            except Exception as exc:
                return False, exc

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            outcomes = list(pool.map(pooled, enumerate(items)))
        results = []
        for index, (ok, value) in enumerate(outcomes):
            if ok:
                results.append(value)
                continue
            if isinstance(value, self.fatal_types) or isinstance(
                value, DeadlineExceededError
            ):
                raise value
            self.serial_fallbacks += 1
            self._m_serial_fallbacks.inc()
            log_event(
                _LOG, "task_serial_fallback", level=logging.WARNING,
                task=index, error=repr(value),
            )
            if self.max_retries == 0:
                raise TaskExecutionError(
                    f"task {index} failed after 1 attempt(s): {value!r}"
                ) from value
            results.append(self._run(fn, items[index], index, first_attempt=1))
        return results
