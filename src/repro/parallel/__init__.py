"""The geometry computer: batched face-pair evaluation (Section 5.1-5.2).

Geometric computation between two decoded polyhedra reduces to many
independent face-pair evaluations. The paper packs those pairs into
fixed-size tasks executed by CPU cores or GPU kernels; here the "GPU" is
simulated by fused numpy mega-batches (one vectorized kernel invocation
over hundreds of thousands of pairs) while the "CPU" path evaluates
small blocks — reproducing the batched-vs-blocked performance contrast
inside one process. A thread-pool scheduler stands in for the resource
manager.
"""

from repro.parallel.executor import Device, GeometryComputer
from repro.parallel.tasks import TaskScheduler, iter_pair_blocks

__all__ = ["Device", "GeometryComputer", "TaskScheduler", "iter_pair_blocks"]
