"""LEB128 variable-length integers with zigzag signed coding."""

from __future__ import annotations

__all__ = [
    "write_uvarint",
    "read_uvarint",
    "write_svarint",
    "read_svarint",
    "zigzag_encode",
    "zigzag_decode",
]


def write_uvarint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint to ``out``."""
    if value < 0:
        raise ValueError("uvarint requires a non-negative value")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Read an unsigned varint at ``offset``; returns (value, new_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise EOFError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise ValueError("varint too long")


def zigzag_encode(value: int) -> int:
    return (value << 1) if value >= 0 else (((-value) << 1) - 1)


def zigzag_decode(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def write_svarint(out: bytearray, value: int) -> None:
    """Append a zigzag-coded signed varint."""
    write_uvarint(out, (value << 1) if value >= 0 else (((-value) << 1) - 1))


def read_svarint(data: bytes, offset: int) -> tuple[int, int]:
    raw, offset = read_uvarint(data, offset)
    return zigzag_decode(raw), offset
