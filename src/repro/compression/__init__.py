"""Progressive mesh compression (paper Section 3).

The centerpiece is **PPVP** — Progressive Protruding-Vertex Pruning: a
multi-round decimation codec that only ever removes *protruding*
vertices, so every decoded level of detail is a progressive
approximation (spatial subset) of the original object. That subset
property is what lets the query engine return early from low LODs
(Section 3.2's two query properties).

A PPMC-style baseline codec (unconstrained vertex pruning, as in the
paper's reference [38]) is included to demonstrate that, without the
protruding constraint, neither query property holds.
"""

from repro.compression.classify import (
    classify_vertices,
    patch_is_protruding,
    protruding_fraction,
)
from repro.compression.lodtable import LODTable, compile_lod_table
from repro.compression.ppmc import PPMCEncoder
from repro.compression.ppvp import (
    CompressedObject,
    PPVPEncoder,
    ProgressiveDecoder,
    RemovalRecord,
    ReplayDecoder,
)
from repro.compression.serialize import (
    deserialize_object,
    serialize_object,
    serialized_segment_sizes,
)

__all__ = [
    "classify_vertices",
    "patch_is_protruding",
    "protruding_fraction",
    "LODTable",
    "compile_lod_table",
    "PPMCEncoder",
    "CompressedObject",
    "PPVPEncoder",
    "ProgressiveDecoder",
    "RemovalRecord",
    "ReplayDecoder",
    "deserialize_object",
    "serialize_object",
    "serialized_segment_sizes",
]
