"""PPVP: Progressive Protruding-Vertex Pruning compression (Section 3.2).

The encoder runs rounds of decimation. In each round it sweeps the live
vertices in deterministic order and removes every vertex that

* still has a removable star (a single closed fan),
* is not marked irremovable (no two removed vertices may share an edge
  within a round, so the surface simplifies evenly — Section 2.3), and
* is **protruding** for some valid fan re-triangulation of its ring,

recording, per removal, just the vertex id, its ordered ring, and which
ring rotation served as the fan apex — enough to reconstruct both the
deleted star and the inserted patch. Because pruning only ever cuts
solid tetrahedra off the surface, the mesh after any number of rounds
covers a subset of the original volume, and therefore (paper Section 3.2):

1. if two objects intersect at a lower LOD they intersect at every
   higher LOD, and
2. the distance between two objects at a lower LOD upper-bounds their
   distance at every higher LOD.

Decoding is progressive: a :class:`ProgressiveDecoder` starts from the
base (coarsest) mesh and reinserts removal rounds in reverse, which is
exactly the access pattern of the Filter-Progressive-Refine query
engine. The decoder no longer replays records through an
:class:`~repro.mesh.editable.EditableMesh`: each object compiles its
rounds once into a columnar :class:`~repro.compression.lodtable.LODTable`
(face rows with birth/death decode-step intervals) and a decoder is just
a monotone cursor slicing that table. The record-by-record replay
survives as :class:`ReplayDecoder` — the reference implementation the
equivalence tests and benchmarks compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from math import ceil

import numpy as np

from repro.compression.classify import patch_is_embedded, patch_is_protruding
from repro.compression.lodtable import LODTable, compile_lod_table
from repro.geometry.aabb import AABB
from repro.mesh.editable import EditableMesh, VertexPatch
from repro.mesh.polyhedron import Polyhedron

__all__ = [
    "RemovalRecord",
    "CompressedObject",
    "PPVPEncoder",
    "ProgressiveDecoder",
    "ReplayDecoder",
]


@dataclass(frozen=True)
class RemovalRecord:
    """A compact, reconstructible record of one vertex removal.

    The deleted star is always the full fan ``(vertex, ring[i],
    ring[i+1])``; the inserted patch is the fan of the ring rotated so
    ``ring[apex_offset]`` comes first. Storing only ``(vertex, ring,
    apex_offset)`` therefore reproduces the entire surgery.
    """

    vertex: int
    ring: tuple[int, ...]
    apex_offset: int

    def star_faces(self) -> tuple[tuple[int, int, int], ...]:
        k = len(self.ring)
        return tuple(
            (self.vertex, self.ring[i], self.ring[(i + 1) % k]) for i in range(k)
        )

    def patch_faces(self) -> tuple[tuple[int, int, int], ...]:
        loop = self.ring[self.apex_offset :] + self.ring[: self.apex_offset]
        apex = loop[0]
        return tuple((apex, loop[j], loop[j + 1]) for j in range(1, len(loop) - 1))

    def as_vertex_patch(self) -> VertexPatch:
        return VertexPatch(self.vertex, self.ring, self.star_faces(), self.patch_faces())

    @staticmethod
    def from_vertex_patch(patch: VertexPatch) -> "RemovalRecord":
        apex = patch.patch_faces[0][0] if patch.patch_faces else patch.ring[0]
        return RemovalRecord(patch.vertex, tuple(patch.ring), patch.ring.index(apex))


@dataclass(frozen=True)
class CompressedObject:
    """A 3D object compressed into a base mesh plus removal rounds.

    ``rounds[0]`` is the first round applied during encoding (removals
    closest to the original surface); ``rounds[-1]`` produced the base
    mesh. Decoding reinserts rounds from the back of the list forward.
    All face records index into the single shared ``positions`` table,
    which includes removed vertices — vertex ids are stable across LODs.
    """

    positions: np.ndarray
    base_faces: np.ndarray
    rounds: tuple[tuple[RemovalRecord, ...], ...]
    rounds_per_lod: int = 2
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.rounds_per_lod < 1:
            raise ValueError("rounds_per_lod must be >= 1")
        self.positions.setflags(write=False)
        self.base_faces.setflags(write=False)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def max_lod(self) -> int:
        """Highest LOD index; LOD 0 is the base, ``max_lod`` the original."""
        return ceil(self.num_rounds / self.rounds_per_lod)

    @property
    def lods(self) -> range:
        """All decodable LODs, ascending (coarse to fine)."""
        return range(self.max_lod + 1)

    def rounds_reinserted_at(self, lod: int) -> int:
        """How many rounds must be decoded (reinserted) to reach ``lod``."""
        if lod < 0 or lod > self.max_lod:
            raise ValueError(f"lod must be in [0, {self.max_lod}], got {lod}")
        return min(self.num_rounds, lod * self.rounds_per_lod)

    @cached_property
    def aabb(self) -> AABB:
        """MBB of the original (highest-LOD) object.

        PPVP only prunes, so this also bounds every lower LOD; it is the
        box registered in the global R-tree without decoding anything.
        """
        stored = self.metadata.get("aabb")
        if stored is not None:
            return stored
        return AABB.of_points(self.positions)

    @cached_property
    def _decode_cum_records(self) -> tuple[int, ...]:
        """Cumulative removal records per decode step (``[0]`` at step 0).

        Computed once from the round sizes alone — cheap enough for the
        load path, which asks for face counts before anything decodes.
        """
        sizes = [0]
        for records in reversed(self.rounds):
            sizes.append(sizes[-1] + len(records))
        return tuple(sizes)

    @cached_property
    def lod_table(self) -> LODTable:
        """The compiled columnar birth/death face table (built once).

        Every decoder, cache entry, and worker decoding this object
        shares this one immutable table; it rides along when the object
        is pickled (process-backend spill transport).
        """
        return compile_lod_table(self.base_faces, self.rounds)

    def face_count_at_lod(self, lod: int) -> int:
        """Face count at ``lod`` in O(1): each reinsertion adds 2 faces."""
        reinserted = self.rounds_reinserted_at(lod)
        return len(self.base_faces) + 2 * self._decode_cum_records[reinserted]

    def decoder(self) -> "ProgressiveDecoder":
        return ProgressiveDecoder(self)

    def decode(self, lod: int) -> Polyhedron:
        """One-shot decode to ``lod`` (use a decoder for progressive access)."""
        decoder = self.decoder()
        decoder.advance_to(lod)
        return decoder.polyhedron()


class ProgressiveDecoder:
    """Stateful coarse-to-fine decoder over a :class:`CompressedObject`.

    Decoding is monotone: LODs can only increase (matching the FPR
    refinement loop). ``vertices_reinserted`` tallies the decode work
    performed, which the engine uses for cost accounting.

    A decoder is a thin cursor over the object's compiled
    :attr:`~CompressedObject.lod_table`: advancing is O(1) bookkeeping
    and :meth:`face_array` materializes the face set as a sorted
    birth-prefix slice plus a death mask — byte-identical (rows, order,
    orientation, and the accounting above) to the record-by-record
    :class:`ReplayDecoder` it replaced. Corrupt rounds keep their legacy
    behavior: every step the table compiled decodes normally and an
    advance into the corrupt region raises the original replay error.
    """

    def __init__(self, compressed: CompressedObject):
        self.compressed = compressed
        self._table = compressed.lod_table
        self._rounds_reinserted = 0
        self.current_lod = 0
        self.vertices_reinserted = 0

    def advance_to(self, lod: int) -> int:
        """Reinsert rounds until ``lod`` is reached; returns vertices added."""
        target = self.compressed.rounds_reinserted_at(lod)
        if lod < self.current_lod:
            raise ValueError(
                f"decoder is at LOD {self.current_lod}; cannot go back to {lod}"
            )
        table = self._table
        if table.failed_step is not None and target >= table.failed_step:
            # Same error, same trigger point as replaying the records.
            raise table.failure
        added = int(table.cum_records[target] - table.cum_records[self._rounds_reinserted])
        self._rounds_reinserted = target
        self.current_lod = lod
        self.vertices_reinserted += added
        return added

    def polyhedron(self) -> Polyhedron:
        """Snapshot of the mesh at the current LOD (shares the vertex table)."""
        return Polyhedron(self.compressed.positions, self.face_array(), copy=False)

    def face_array(self) -> np.ndarray:
        return self._table.faces_at_step(self._rounds_reinserted)


class ReplayDecoder:
    """Reference decoder: replays removal records through an EditableMesh.

    This is the pre-table implementation, kept as ground truth — the
    equivalence suite asserts :class:`ProgressiveDecoder` matches it
    byte-for-byte at every LOD, and the decode benchmark measures the
    table against it. Not used on any query path.
    """

    def __init__(self, compressed: CompressedObject):
        self.compressed = compressed
        self._mesh = EditableMesh(
            compressed.positions, map(tuple, compressed.base_faces.tolist())
        )
        self._rounds_reinserted = 0
        self.current_lod = 0
        self.vertices_reinserted = 0

    def advance_to(self, lod: int) -> int:
        """Reinsert rounds until ``lod`` is reached; returns vertices added."""
        target = self.compressed.rounds_reinserted_at(lod)
        if lod < self.current_lod:
            raise ValueError(
                f"decoder is at LOD {self.current_lod}; cannot go back to {lod}"
            )
        added = 0
        rounds = self.compressed.rounds
        while self._rounds_reinserted < target:
            # Rounds reinsert in reverse encode order.
            round_records = rounds[len(rounds) - 1 - self._rounds_reinserted]
            for record in round_records:
                self._mesh.reinsert(record.as_vertex_patch())
            added += len(round_records)
            self._rounds_reinserted += 1
        self.current_lod = lod
        self.vertices_reinserted += added
        return added

    def polyhedron(self) -> Polyhedron:
        """Snapshot of the mesh at the current LOD (shares the vertex table)."""
        return self._mesh.to_polyhedron()

    def face_array(self) -> np.ndarray:
        return self._mesh.face_array()


class PPVPEncoder:
    """Encoder for PPVP compression.

    Parameters mirror the paper's experimental setup: 6 LODs, one LOD
    level per two rounds of decimation, and decimation stops when the
    mesh reaches ``min_faces`` or a round removes nothing.
    """

    def __init__(
        self,
        max_lods: int = 6,
        rounds_per_lod: int = 2,
        min_faces: int = 16,
        max_ring: int = 16,
        protruding_only: bool = True,
    ):
        if max_lods < 1:
            raise ValueError("max_lods must be >= 1")
        if rounds_per_lod < 1:
            raise ValueError("rounds_per_lod must be >= 1")
        if min_faces < 4:
            raise ValueError("min_faces must be >= 4 (closed mesh lower bound)")
        self.max_lods = max_lods
        self.rounds_per_lod = rounds_per_lod
        self.min_faces = min_faces
        self.max_ring = max_ring
        self.protruding_only = protruding_only

    @property
    def max_rounds(self) -> int:
        return (self.max_lods - 1) * self.rounds_per_lod

    def encode(self, polyhedron: Polyhedron) -> CompressedObject:
        """Compress ``polyhedron`` into a base mesh plus removal rounds."""
        positions = np.asarray(polyhedron.vertices, dtype=np.float64)
        mesh = EditableMesh.from_polyhedron(polyhedron)
        aabb = polyhedron.aabb

        accept = None
        if self.protruding_only:

            def accept(vertex, patch):
                # Cheap halfspace test first; the embedding guard (which
                # keeps the tetrahedron-cut argument geometrically valid
                # on saddle rings) only runs for vertices that pass it.
                if not patch_is_protruding(positions, vertex, patch):
                    return False
                ring_vertices = {index for face in patch for index in face}
                guard: set = set()
                for u in ring_vertices:
                    guard.update(mesh.star(u))
                return patch_is_embedded(positions, patch, guard)

        rounds: list[tuple[RemovalRecord, ...]] = []
        for _round_index in range(self.max_rounds):
            if mesh.num_faces <= self.min_faces:
                break
            removed = self._decimation_round(mesh, accept)
            if not removed:
                break
            rounds.append(removed)

        return CompressedObject(
            positions=positions.copy(),
            base_faces=mesh.face_array(),
            rounds=tuple(rounds),
            rounds_per_lod=self.rounds_per_lod,
            metadata={"aabb": aabb, "original_faces": polyhedron.num_faces},
        )

    def _decimation_round(self, mesh, accept) -> tuple[RemovalRecord, ...]:
        """One round: remove an independent set of (protruding) vertices."""
        irremovable: set[int] = set()
        removed: list[RemovalRecord] = []
        for vertex in sorted(mesh.live_vertices):
            if vertex in irremovable:
                continue
            if mesh.num_faces - 2 < self.min_faces:
                break
            star_size = len(mesh.star(vertex))
            if star_size < 3 or star_size > self.max_ring:
                continue
            patch = mesh.try_remove_vertex(vertex, accept=accept)
            if patch is None:
                continue
            irremovable.update(patch.ring)
            removed.append(RemovalRecord.from_vertex_patch(patch))
        return tuple(removed)
