"""Canonical Huffman entropy coding over byte streams.

The serialized object format entropy-codes each segment independently
(so per-LOD sizes stay measurable for the paper's Fig. 9). A canonical
code needs only the 256 code lengths as a header; codes are assigned in
(length, symbol) order on both sides.
"""

from __future__ import annotations

import heapq
from collections import Counter

from repro.compression.bits import BitReader, BitWriter
from repro.compression.varint import read_uvarint, write_uvarint

__all__ = ["huffman_encode", "huffman_decode", "code_lengths"]

_MAX_CODE_LEN = 32


def code_lengths(data: bytes) -> dict[int, int]:
    """Huffman code length per symbol for ``data`` (canonical package)."""
    freq = Counter(data)
    if not freq:
        return {}
    if len(freq) == 1:
        return {next(iter(freq)): 1}

    # Standard Huffman tree; entries are (weight, tiebreak, symbols...).
    heap: list[tuple[int, int, tuple[int, ...]]] = [
        (count, symbol, (symbol,)) for symbol, count in freq.items()
    ]
    heapq.heapify(heap)
    depths: dict[int, int] = dict.fromkeys(freq, 0)
    tiebreak = 256
    while len(heap) > 1:
        w1, _t1, s1 = heapq.heappop(heap)
        w2, _t2, s2 = heapq.heappop(heap)
        for symbol in s1 + s2:
            depths[symbol] += 1
        heapq.heappush(heap, (w1 + w2, tiebreak, s1 + s2))
        tiebreak += 1
    if max(depths.values()) > _MAX_CODE_LEN:
        raise ValueError("Huffman code exceeds supported length")
    return depths


def _canonical_codes(lengths: dict[int, int]) -> dict[int, tuple[int, int]]:
    """Map symbol -> (code, length), assigned in canonical order."""
    ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for symbol, length in ordered:
        code <<= length - prev_len
        codes[symbol] = (code, length)
        code += 1
        prev_len = length
    return codes


def huffman_encode(data: bytes) -> bytes:
    """Encode ``data``; output is self-describing (lengths header + bits)."""
    header = bytearray()
    write_uvarint(header, len(data))
    lengths = code_lengths(data)
    present = sorted(lengths)
    write_uvarint(header, len(present))
    for symbol in present:
        header.append(symbol)
        header.append(lengths[symbol])
    if not data:
        return bytes(header)

    codes = _canonical_codes(lengths)
    writer = BitWriter()
    for byte in data:
        code, length = codes[byte]
        writer.write(code, length)
    return bytes(header) + writer.getvalue()


def huffman_decode(blob: bytes) -> bytes:
    """Inverse of :func:`huffman_encode`."""
    size, offset = read_uvarint(blob, 0)
    nsymbols, offset = read_uvarint(blob, offset)
    lengths: dict[int, int] = {}
    for _ in range(nsymbols):
        if offset + 2 > len(blob):
            raise EOFError("truncated Huffman header")
        lengths[blob[offset]] = blob[offset + 1]
        offset += 2
    if size == 0:
        return b""
    if not lengths:
        raise ValueError("non-empty payload with empty code table")

    codes = _canonical_codes(lengths)
    # Canonical decoding tables: for each length, the first code value and
    # the symbols in canonical order.
    by_length: dict[int, list[int]] = {}
    first_code: dict[int, int] = {}
    for symbol, (code, length) in sorted(
        codes.items(), key=lambda item: (item[1][1], item[1][0])
    ):
        if length not in by_length:
            by_length[length] = []
            first_code[length] = code
        by_length[length].append(symbol)

    reader = BitReader(blob, offset * 8)
    out = bytearray()
    max_len = max(by_length)
    for _ in range(size):
        code = 0
        length = 0
        while True:
            code = (code << 1) | reader.read_bit()
            length += 1
            symbols = by_length.get(length)
            if symbols is not None:
                index = code - first_code[length]
                if 0 <= index < len(symbols):
                    out.append(symbols[index])
                    break
            if length > max_len:
                raise ValueError("corrupt Huffman stream")
    return bytes(out)
