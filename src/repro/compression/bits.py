"""Minimal MSB-first bit stream reader/writer.

Used for fixed-width packing of quantized vertex coordinates and for the
Huffman coder's code emission.
"""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulates bits MSB-first into a byte buffer."""

    def __init__(self):
        self._buffer = bytearray()
        self._accum = 0
        self._nbits = 0

    def write(self, value: int, width: int) -> None:
        """Append the ``width`` low bits of ``value``."""
        if width < 0:
            raise ValueError("width must be >= 0")
        if value < 0 or (width < 64 and value >> width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._accum = (self._accum << width) | value
        self._nbits += width
        while self._nbits >= 8:
            self._nbits -= 8
            self._buffer.append((self._accum >> self._nbits) & 0xFF)
        self._accum &= (1 << self._nbits) - 1

    def write_bit(self, bit: int) -> None:
        self.write(1 if bit else 0, 1)

    def getvalue(self) -> bytes:
        """Flush (zero-padding the last byte) and return the stream."""
        if self._nbits:
            pad = 8 - self._nbits
            return bytes(self._buffer) + bytes(
                [(self._accum << pad) & 0xFF]
            )
        return bytes(self._buffer)

    @property
    def bit_length(self) -> int:
        return len(self._buffer) * 8 + self._nbits


class BitReader:
    """Reads bits MSB-first from a byte buffer."""

    def __init__(self, data: bytes, offset_bits: int = 0):
        self._data = data
        self._pos = offset_bits

    def read(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        if width < 0:
            raise ValueError("width must be >= 0")
        end = self._pos + width
        if end > len(self._data) * 8:
            raise EOFError("bit stream exhausted")
        value = 0
        pos = self._pos
        remaining = width
        while remaining:
            byte_index, bit_index = divmod(pos, 8)
            take = min(8 - bit_index, remaining)
            chunk = self._data[byte_index]
            chunk >>= 8 - bit_index - take
            chunk &= (1 << take) - 1
            value = (value << take) | chunk
            pos += take
            remaining -= take
        self._pos = end
        return value

    def read_bit(self) -> int:
        return self.read(1)

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos
