"""Binary serialization of compressed objects (paper Section 6.2).

A serialized object is a small header plus one *segment per LOD
increment*: segment 0 holds the base mesh (LOD0), segment ``i`` the
removal records of encoding round ``i``. Decoding an object to LOD ``k``
touches only the header, the base segment, and the round segments that
LOD needs — exactly the paper's "decoding one object to a specific LOD
also needs the data for all the LODs lower than that LOD", and the
per-segment byte counts reproduce Fig. 9.

Vertex coordinates are uniformly quantized over the object's MBB with a
configurable bit width and bit-packed; all integer fields are varints;
each segment is independently entropy-coded (canonical Huffman by
default, zlib or raw also available). Quantization is the only lossy
stage: every LOD of a deserialized object snaps to the same grid, so the
progressive-subset property is preserved within the quantized geometry.

Format v2 adds integrity metadata: every segment-table entry carries the
CRC32 of its (entropy-coded) segment, and the blob ends with a 4-byte
little-endian CRC32 of all preceding bytes. Corruption is therefore
*detected* (:class:`~repro.core.errors.BlobChecksumError`) instead of
parsed into garbage geometry, and :func:`salvage_object_blob` can
recover the longest checksum-valid LOD prefix of a damaged blob — the
storage-level counterpart of the paper's progressive-subset property.
v1 blobs (no checksums) remain readable.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.compression.bits import BitReader, BitWriter
from repro.compression.entropy import huffman_decode, huffman_encode
from repro.compression.ppvp import CompressedObject, RemovalRecord
from repro.compression.varint import read_uvarint, write_uvarint
from repro.geometry.aabb import AABB

__all__ = [
    "serialize_object",
    "deserialize_object",
    "salvage_object_blob",
    "serialized_segment_sizes",
    "SerializationError",
    "BLOB_FORMAT_VERSION",
]

_MAGIC = b"3DPR"
BLOB_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)
_BACKENDS = {"none": 0, "huffman": 1, "zlib": 2}
_BACKEND_NAMES = {v: k for k, v in _BACKENDS.items()}


class SerializationError(ValueError):
    """Raised on malformed input blobs."""


def _compress(payload: bytes, backend: str) -> bytes:
    """Entropy-code one segment, adaptively.

    Quantized coordinate bits are close to incompressible while the
    connectivity varints are highly skewed, so each segment stores
    whichever of {raw, requested backend} is smaller, tagged with a
    one-byte backend id.
    """
    if backend == "none":
        coded = payload
    elif backend == "huffman":
        coded = huffman_encode(payload)
    elif backend == "zlib":
        coded = zlib.compress(payload, level=6)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    if backend != "none" and len(coded) < len(payload):
        return bytes([_BACKENDS[backend]]) + coded
    return bytes([_BACKENDS["none"]]) + payload


def _decompress(blob: bytes) -> bytes:
    if not blob:
        raise SerializationError("empty segment")
    backend = _BACKEND_NAMES.get(blob[0])
    body = blob[1:]
    if backend == "none":
        return body
    if backend == "huffman":
        return huffman_decode(body)
    if backend == "zlib":
        return zlib.decompress(body)
    raise SerializationError(f"unknown segment backend id {blob[0]}")


def _quantize(points: np.ndarray, aabb: AABB, bits: int) -> np.ndarray:
    low, high = aabb.as_arrays()
    span = np.where(high - low > 0, high - low, 1.0)
    levels = (1 << bits) - 1
    q = np.rint((points - low) / span * levels)
    return np.clip(q, 0, levels).astype(np.int64)


def _dequantize(q: np.ndarray, aabb: AABB, bits: int) -> np.ndarray:
    low, high = aabb.as_arrays()
    span = high - low
    levels = (1 << bits) - 1
    return low + q.astype(np.float64) / levels * span


def _pack_positions(quantized: np.ndarray, bits: int) -> bytes:
    writer = BitWriter()
    for x, y, z in quantized.tolist():
        writer.write(x, bits)
        writer.write(y, bits)
        writer.write(z, bits)
    return writer.getvalue()


def _unpack_positions(data: bytes, count: int, bits: int) -> np.ndarray:
    reader = BitReader(data)
    out = np.empty((count, 3), dtype=np.int64)
    for i in range(count):
        out[i, 0] = reader.read(bits)
        out[i, 1] = reader.read(bits)
        out[i, 2] = reader.read(bits)
    return out


def _build_base_segment(obj: CompressedObject, quant: np.ndarray, bits: int) -> bytes:
    base_ids = sorted({int(v) for face in obj.base_faces.tolist() for v in face})
    rank = {vid: i for i, vid in enumerate(base_ids)}

    part_a = bytearray()
    write_uvarint(part_a, len(base_ids))
    prev = 0
    for vid in base_ids:
        write_uvarint(part_a, vid - prev)  # delta over sorted ids
        prev = vid
    write_uvarint(part_a, len(obj.base_faces))
    for a, b, c in obj.base_faces.tolist():
        write_uvarint(part_a, rank[a])
        write_uvarint(part_a, rank[b])
        write_uvarint(part_a, rank[c])

    part_b = _pack_positions(quant[np.asarray(base_ids, dtype=np.int64)], bits)
    out = bytearray()
    write_uvarint(out, len(part_a))
    out += part_a
    out += part_b
    return bytes(out)


def _parse_base_segment(
    payload: bytes, bits: int
) -> tuple[list[int], np.ndarray, np.ndarray]:
    a_len, offset = read_uvarint(payload, 0)
    part_a = payload[offset : offset + a_len]
    part_b = payload[offset + a_len :]

    count, pos = read_uvarint(part_a, 0)
    base_ids: list[int] = []
    prev = 0
    for _ in range(count):
        delta, pos = read_uvarint(part_a, pos)
        prev += delta
        base_ids.append(prev)
    nfaces, pos = read_uvarint(part_a, pos)
    faces = np.empty((nfaces, 3), dtype=np.int64)
    for i in range(nfaces):
        for j in range(3):
            r, pos = read_uvarint(part_a, pos)
            if r >= count:
                raise SerializationError("base face rank out of range")
            faces[i, j] = base_ids[r]
    quant = _unpack_positions(part_b, count, bits)
    return base_ids, faces, quant


def _build_round_segment(
    records: tuple[RemovalRecord, ...], quant: np.ndarray, bits: int
) -> bytes:
    part_a = bytearray()
    write_uvarint(part_a, len(records))
    vids = []
    for record in records:
        write_uvarint(part_a, record.vertex)
        write_uvarint(part_a, record.apex_offset)
        write_uvarint(part_a, len(record.ring))
        for vid in record.ring:
            write_uvarint(part_a, vid)
        vids.append(record.vertex)

    if vids:
        part_b = _pack_positions(quant[np.asarray(vids, dtype=np.int64)], bits)
    else:
        part_b = b""
    out = bytearray()
    write_uvarint(out, len(part_a))
    out += part_a
    out += part_b
    return bytes(out)


def _parse_round_segment(
    payload: bytes, bits: int
) -> tuple[tuple[RemovalRecord, ...], list[int], np.ndarray]:
    a_len, offset = read_uvarint(payload, 0)
    part_a = payload[offset : offset + a_len]
    part_b = payload[offset + a_len :]

    count, pos = read_uvarint(part_a, 0)
    records: list[RemovalRecord] = []
    vids: list[int] = []
    for _ in range(count):
        vertex, pos = read_uvarint(part_a, pos)
        apex, pos = read_uvarint(part_a, pos)
        ring_len, pos = read_uvarint(part_a, pos)
        ring = []
        for _ in range(ring_len):
            vid, pos = read_uvarint(part_a, pos)
            ring.append(vid)
        if ring_len < 3 or apex >= ring_len:
            raise SerializationError("malformed removal record")
        records.append(RemovalRecord(vertex, tuple(ring), apex))
        vids.append(vertex)
    quant = _unpack_positions(part_b, count, bits)
    return tuple(records), vids, quant


def _checksum_error(message: str) -> Exception:
    # Imported lazily: repro.core.errors lives above repro.compression in
    # the package import order, so a module-level import would be cyclic.
    from repro.core.errors import BlobChecksumError

    return BlobChecksumError(message)


def serialize_object(
    obj: CompressedObject, quant_bits: int = 16, backend: str = "huffman"
) -> bytes:
    """Serialize a :class:`CompressedObject` to a self-contained blob."""
    if not 4 <= quant_bits <= 31:
        raise ValueError("quant_bits must be in [4, 31]")
    if backend not in _BACKENDS:
        raise ValueError(f"unknown backend {backend!r}")

    aabb = obj.aabb
    quant = _quantize(obj.positions, aabb, quant_bits)

    segments = [_compress(_build_base_segment(obj, quant, quant_bits), backend)]
    for records in obj.rounds:
        segments.append(
            _compress(_build_round_segment(records, quant, quant_bits), backend)
        )

    out = bytearray()
    out += _MAGIC
    out.append(BLOB_FORMAT_VERSION)
    out.append(_BACKENDS[backend])
    out.append(quant_bits)
    write_uvarint(out, obj.rounds_per_lod)
    write_uvarint(out, len(obj.positions))
    write_uvarint(out, obj.num_rounds)
    out += struct.pack("<6d", *aabb.low, *aabb.high)
    for segment in segments:
        write_uvarint(out, len(segment))
        write_uvarint(out, zlib.crc32(segment))
    for segment in segments:
        out += segment
    out += zlib.crc32(bytes(out)).to_bytes(4, "little")
    return bytes(out)


@dataclass
class _Header:
    """Parsed blob header plus the segment table."""

    version: int
    backend: str
    quant_bits: int
    rounds_per_lod: int
    num_vertices: int
    num_rounds: int
    aabb: AABB
    seg_lengths: list[int]
    seg_crcs: list[int]
    offset: int  # first byte of segment data
    body_end: int  # one past the last segment byte (trailer excluded)


def _parse_header(blob: bytes, verify: bool = True) -> _Header:
    if blob[:4] != _MAGIC:
        raise SerializationError("bad magic")
    version = blob[4]
    if version not in _SUPPORTED_VERSIONS:
        raise SerializationError(f"unsupported version {version}")
    body_end = len(blob)
    if version >= 2:
        if len(blob) < 9:
            raise SerializationError("truncated blob")
        if verify:
            stored = int.from_bytes(blob[-4:], "little")
            if zlib.crc32(blob[:-4]) != stored:
                raise _checksum_error("blob checksum mismatch")
        body_end = len(blob) - 4
    backend = _BACKEND_NAMES.get(blob[5])
    if backend is None:
        raise SerializationError(f"unknown backend id {blob[5]}")
    quant_bits = blob[6]
    offset = 7
    rounds_per_lod, offset = read_uvarint(blob, offset)
    num_vertices, offset = read_uvarint(blob, offset)
    num_rounds, offset = read_uvarint(blob, offset)
    if num_rounds > body_end:
        raise SerializationError(f"implausible round count {num_rounds}")
    coords = struct.unpack_from("<6d", blob, offset)
    offset += 48
    aabb = AABB(coords[:3], coords[3:])
    seg_lengths = []
    seg_crcs = []
    for _ in range(num_rounds + 1):
        length, offset = read_uvarint(blob, offset)
        seg_lengths.append(length)
        crc = 0
        if version >= 2:
            crc, offset = read_uvarint(blob, offset)
        seg_crcs.append(crc)
    return _Header(
        version, backend, quant_bits, rounds_per_lod, num_vertices, num_rounds,
        aabb, seg_lengths, seg_crcs, offset, body_end,
    )


def deserialize_object(blob: bytes) -> CompressedObject:
    """Rebuild a :class:`CompressedObject` (positions snapped to the grid).

    v2 blobs have their trailing CRC32 verified first; any corruption
    raises :class:`~repro.core.errors.BlobChecksumError` rather than
    parsing into garbage geometry. Malformed bytes of any provenance
    (including a corrupted version byte demoting a v2 blob to the
    checksum-free v1 layout) surface as :class:`SerializationError`,
    never as a raw parser exception.
    """
    from repro.core.errors import BlobChecksumError

    try:
        return _deserialize(blob)
    except (SerializationError, BlobChecksumError):
        raise
    except Exception as exc:
        raise SerializationError(f"malformed blob: {exc!r}") from exc


def _deserialize(blob: bytes) -> CompressedObject:
    head = _parse_header(blob)
    offset = head.offset
    segments = []
    for length in head.seg_lengths:
        segments.append(_decompress(blob[offset : offset + length]))
        offset += length
    if offset != head.body_end:
        raise SerializationError(f"{head.body_end - offset} trailing bytes")

    quant_table = np.zeros((head.num_vertices, 3), dtype=np.int64)
    base_ids, base_faces, base_quant = _parse_base_segment(segments[0], head.quant_bits)
    quant_table[np.asarray(base_ids, dtype=np.int64)] = base_quant

    rounds: list[tuple[RemovalRecord, ...]] = []
    for segment in segments[1:]:
        records, vids, round_quant = _parse_round_segment(segment, head.quant_bits)
        if vids:
            quant_table[np.asarray(vids, dtype=np.int64)] = round_quant
        rounds.append(records)

    positions = _dequantize(quant_table, head.aabb, head.quant_bits)
    return CompressedObject(
        positions=positions,
        base_faces=base_faces,
        rounds=tuple(rounds),
        rounds_per_lod=head.rounds_per_lod,
        metadata={"aabb": head.aabb, "quant_bits": head.quant_bits},
    )


def salvage_object_blob(blob: bytes) -> tuple[CompressedObject, int]:
    """Best-effort partial deserialize of a corrupted blob.

    Checksums are used for *localization* instead of rejection: the
    header and segment table must parse, the base segment must be intact,
    and the longest checksum-valid **suffix** of round segments is kept
    (the decoder reinserts rounds from the back, so a valid suffix is
    exactly what lower LODs need — the truncated object's every LOD is
    identical to the same LOD of the original). Returns
    ``(object, rounds_dropped)``; raises :class:`SerializationError` if
    not even the base mesh can be recovered.
    """
    head = _parse_header(blob, verify=False)

    raw_segments: list[bytes | None] = []
    offset = head.offset
    for length, crc in zip(head.seg_lengths, head.seg_crcs):
        end = offset + length
        if end > head.body_end:
            raw_segments.append(None)  # truncated
        else:
            segment = blob[offset:end]
            ok = zlib.crc32(segment) == crc if head.version >= 2 else True
            raw_segments.append(segment if ok else None)
        offset = end

    if raw_segments[0] is None:
        raise SerializationError("base segment unrecoverable")
    base_payload = _decompress(raw_segments[0])
    base_ids, base_faces, base_quant = _parse_base_segment(base_payload, head.quant_bits)

    # Longest valid suffix of rounds: scan from the last round backwards.
    parsed: list[tuple] = []
    for segment in reversed(raw_segments[1:]):
        if segment is None:
            break
        try:
            parsed.append(_parse_round_segment(_decompress(segment), head.quant_bits))
        except Exception:
            break
    parsed.reverse()
    dropped = head.num_rounds - len(parsed)

    quant_table = np.zeros((head.num_vertices, 3), dtype=np.int64)
    quant_table[np.asarray(base_ids, dtype=np.int64)] = base_quant
    rounds: list[tuple[RemovalRecord, ...]] = []
    for records, vids, round_quant in parsed:
        if vids:
            quant_table[np.asarray(vids, dtype=np.int64)] = round_quant
        rounds.append(records)

    positions = _dequantize(quant_table, head.aabb, head.quant_bits)
    obj = CompressedObject(
        positions=positions,
        base_faces=base_faces,
        rounds=tuple(rounds),
        rounds_per_lod=head.rounds_per_lod,
        metadata={
            "aabb": head.aabb,
            "quant_bits": head.quant_bits,
            "salvaged_rounds_dropped": dropped,
        },
    )
    return obj, dropped


def extract_lod_prefix(blob: bytes, lod: int) -> bytes:
    """Rebuild a valid blob containing only the segments LOD ``lod`` needs.

    Progressive transmission: a serialized object's base and round
    segments are independently decodable, and decoding to LOD k only
    needs the base plus the *last* ``k * rounds_per_lod`` encode rounds
    (reinsertions replay from the back). The returned blob deserializes
    to an object whose top LOD is ``lod`` — the receiver can refine as
    more segments arrive by re-extracting at a higher LOD.
    """
    head = _parse_header(blob)

    max_lod = -(-head.num_rounds // head.rounds_per_lod)
    if not 0 <= lod <= max_lod:
        raise ValueError(f"lod must be in [0, {max_lod}], got {lod}")
    keep_rounds = min(head.num_rounds, lod * head.rounds_per_lod)

    segments = []
    cursor = head.offset
    for length in head.seg_lengths:
        segments.append(blob[cursor : cursor + length])
        cursor += length
    # Segment 0 is the base; rounds are stored in encode order, and the
    # decoder consumes them from the back, so keep the LAST ``keep_rounds``.
    kept = [segments[0]] + segments[1 + (head.num_rounds - keep_rounds) :]

    out = bytearray()
    out += _MAGIC
    out.append(BLOB_FORMAT_VERSION)
    out.append(_BACKENDS[head.backend])
    out.append(head.quant_bits)
    write_uvarint(out, head.rounds_per_lod)
    write_uvarint(out, head.num_vertices)
    write_uvarint(out, keep_rounds)
    out += struct.pack("<6d", *head.aabb.low, *head.aabb.high)
    for segment in kept:
        write_uvarint(out, len(segment))
        write_uvarint(out, zlib.crc32(segment))
    for segment in kept:
        out += segment
    out += zlib.crc32(bytes(out)).to_bytes(4, "little")
    return bytes(out)


def serialized_segment_sizes(blob: bytes) -> dict:
    """Byte counts of the header, the base segment, and each round segment.

    This is the raw material for the paper's Fig. 9 ("portions of space
    taken by different LODs"). ``header`` covers everything before the
    first segment; ``trailer`` is the v2 integrity trailer (0 for v1).
    """
    head = _parse_header(blob)
    return {
        "header": head.offset,
        "base": head.seg_lengths[0],
        "rounds": list(head.seg_lengths[1:]),
        "trailer": len(blob) - head.body_end,
        "total": len(blob),
    }
