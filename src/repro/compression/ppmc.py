"""PPMC-style baseline codec (paper reference [38], Section 2.3).

Identical machinery to the PPVP encoder except that *any* removable
vertex may be pruned — protruding or recessing. The resulting LODs are
neither progressive nor conservative approximations of the original
object, which is exactly the limitation the paper's Section 3 sets out
to fix; the test suite demonstrates the broken query properties on this
codec, and the benchmarks use it to show why the FPR paradigm needs
PPVP.
"""

from __future__ import annotations

from repro.compression.ppvp import PPVPEncoder

__all__ = ["PPMCEncoder"]


class PPMCEncoder(PPVPEncoder):
    """Progressive codec without the protruding-vertex constraint."""

    def __init__(
        self,
        max_lods: int = 6,
        rounds_per_lod: int = 2,
        min_faces: int = 16,
        max_ring: int = 16,
    ):
        super().__init__(
            max_lods=max_lods,
            rounds_per_lod=rounds_per_lod,
            min_faces=min_faces,
            max_ring=max_ring,
            protruding_only=False,
        )
