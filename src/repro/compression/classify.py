"""Protruding-vertex classification (paper Section 3.1).

Removing a vertex replaces its star with a patch of new triangles; the
vertex together with each patch triangle forms a tetrahedron. If, for
every patch triangle, the removed vertex lies on or outside the
triangle's oriented plane (the angle between the outward normal and the
vector toward the vertex is acute, or the tetrahedron is degenerate),
then every tetrahedron removal *cuts solid material* and the simplified
polyhedron is a subset of the original: the vertex is **protruding**.
If any patch triangle has the vertex strictly inside its halfspace, the
removal would fill a pit and grow the object: the vertex is
**recessing**.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.geometry._fast import cross3

from repro.mesh.adjacency import MeshAdjacency

__all__ = [
    "patch_is_protruding",
    "classify_vertex",
    "classify_vertices",
    "protruding_fraction",
    "PROTRUDING",
    "RECESSING",
    "UNREMOVABLE",
]

PROTRUDING = "protruding"
RECESSING = "recessing"
UNREMOVABLE = "unremovable"

_REL_EPS = 1e-9


def patch_is_protruding(positions: np.ndarray, vertex: int, patch_faces) -> bool:
    """True when ``vertex`` is on or outside every patch face's plane.

    ``patch_faces`` is the fan of index triples that re-closes the hole;
    the test is performed against their oriented (outward) normals. A
    vertex exactly on a plane contributes an invalid tetrahedron whose
    removal has no effect, so equality counts as protruding.
    """
    patch = np.asarray(patch_faces, dtype=np.int64)
    if patch.size == 0:
        return True
    tris = positions[patch]
    normals = cross3(tris[:, 1] - tris[:, 0], tris[:, 2] - tris[:, 0])
    centroids = tris.mean(axis=1)
    offsets = positions[vertex] - centroids
    dots = (normals * offsets).sum(axis=1)
    # Relative tolerance so the test is scale-invariant.
    scale = np.sqrt((normals * normals).sum(axis=1)) * np.sqrt(
        (offsets * offsets).sum(axis=1)
    )
    return bool((dots >= -_REL_EPS * np.maximum(scale, 1e-300)).all())


def _shrink(tris: np.ndarray, factor: float = 1e-6) -> np.ndarray:
    """Pull triangle corners toward their centroid.

    Shrinking removes the legitimate shared-edge/vertex contacts between
    neighbouring faces so the SAT intersection test only reports true
    transversal crossings.
    """
    centroids = tris.mean(axis=1, keepdims=True)
    return centroids + (tris - centroids) * (1.0 - factor)


def patch_is_embedded(
    positions: np.ndarray, patch_faces, guard_faces
) -> bool:
    """True when no patch triangle crosses a guard or sibling triangle.

    The halfspace test of :func:`patch_is_protruding` treats the removed
    region as a union of tetrahedra, which is only geometrically valid
    when the cut surface (old star + new patch) is embedded. On saddle
    rings a fan chord can pass the per-face test yet bulge *outside* the
    surrounding surface, growing the object. This guard rejects such
    patches by testing (shrunken) patch triangles against the local
    neighbourhood faces (``guard_faces``: the star being removed plus
    the faces around the ring) and against each other. Coplanar overlaps
    are forgiven: a patch face lying inside the plane of a neighbour
    encloses zero volume and cannot grow the object.
    """
    from repro.geometry.tritri import tri_tri_intersect_batch

    patch = np.asarray(patch_faces, dtype=np.int64)
    if patch.size == 0:
        return True
    patch_tris = _shrink(positions[patch])

    pairs_a = []
    pairs_b = []
    guard = np.asarray(list(guard_faces), dtype=np.int64)
    if guard.size:
        guard_tris = _shrink(positions[guard])
        n_p, n_g = len(patch_tris), len(guard_tris)
        ii, jj = np.divmod(np.arange(n_p * n_g), n_g)
        # Box prefilter: triangles with disjoint AABBs cannot intersect.
        p_low, p_high = patch_tris.min(axis=1), patch_tris.max(axis=1)
        g_low, g_high = guard_tris.min(axis=1), guard_tris.max(axis=1)
        overlap = np.all(
            (p_low[ii] <= g_high[jj]) & (g_low[jj] <= p_high[ii]), axis=1
        )
        pairs_a.append(patch_tris[ii[overlap]])
        pairs_b.append(guard_tris[jj[overlap]])
    if len(patch_tris) > 1:
        iu, ju = np.triu_indices(len(patch_tris), k=1)
        pairs_a.append(patch_tris[iu])
        pairs_b.append(patch_tris[ju])
    if not pairs_a:
        return True
    tris_a = np.concatenate(pairs_a)
    tris_b = np.concatenate(pairs_b)
    hits = tri_tri_intersect_batch(tris_a, tris_b)
    if not bool(hits.any()):
        return True
    return all(
        _coplanar(tris_a[index], tris_b[index]) for index in np.nonzero(hits)[0]
    )


def _coplanar(tri_a: np.ndarray, tri_b: np.ndarray, rel_eps: float = 1e-7) -> bool:
    """True when the two triangles lie in the same plane."""
    normal = cross3(tri_a[1] - tri_a[0], tri_a[2] - tri_a[0])
    scale = np.linalg.norm(normal) * max(np.abs(tri_b - tri_a[0]).max(), 1e-300)
    offsets = (tri_b - tri_a[0]) @ normal
    return bool((np.abs(offsets) <= rel_eps * max(scale, 1e-300)).all())


def _fan_patch_for_ring(ring: list[int]) -> list[tuple[int, int, int]]:
    apex = ring[0]
    return [(apex, ring[j], ring[j + 1]) for j in range(1, len(ring) - 1)]


def classify_vertex(positions: np.ndarray, adjacency: MeshAdjacency, vertex: int) -> str:
    """Classify one vertex of a static mesh as protruding / recessing.

    Uses the default fan re-triangulation of the vertex's ring (the same
    default the encoder tries first). Vertices whose star is not a single
    closed fan are reported ``unremovable``.
    """
    ring = adjacency.ring(vertex)
    if ring is None or len(ring) < 3:
        return UNREMOVABLE
    patch = _fan_patch_for_ring(ring)
    if patch_is_protruding(positions, vertex, patch):
        return PROTRUDING
    return RECESSING


def classify_vertices(polyhedron) -> dict[str, int]:
    """Histogram of vertex classes for a polyhedron (paper Section 6.2).

    Returns a dict with keys ``protruding`` / ``recessing`` /
    ``unremovable``; the paper reports ~99% protruding for nuclei and
    ~75% for vessels.
    """
    positions = np.asarray(polyhedron.vertices, dtype=np.float64)
    adjacency = MeshAdjacency(polyhedron.faces)
    counts: Counter[str] = Counter()
    for vertex in adjacency.vertex_faces:
        counts[classify_vertex(positions, adjacency, vertex)] += 1
    return {PROTRUDING: counts[PROTRUDING], RECESSING: counts[RECESSING], UNREMOVABLE: counts[UNREMOVABLE]}


def protruding_fraction(polyhedron) -> float:
    """Fraction of classifiable vertices that are protruding."""
    counts = classify_vertices(polyhedron)
    classified = counts[PROTRUDING] + counts[RECESSING]
    if classified == 0:
        return 0.0
    return counts[PROTRUDING] / classified
