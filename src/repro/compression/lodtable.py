"""Columnar birth/death-interval LOD tables: the decode fast path.

PPVP decoding replays removal records back-to-front, and vertex ids are
stable (removal only deletes faces, the position table is shared across
LODs — see :mod:`repro.mesh.editable`). Two consequences make decoding
compilable:

1. every face the decoder will ever hold is known up front — the base
   faces plus the star fans of every removal record; and
2. each such face instance is live over exactly one contiguous interval
   of decode steps ``[birth, death)``: it appears when its round is
   reinserted (or at step 0 for base faces) and disappears only when a
   later round's star replaces the patch fan it belongs to.

So instead of replaying dict surgery per record, we compile the rounds
once into a flat table — ``faces[(N, 3)]`` with parallel ``birth`` /
``death`` step arrays — and materialize the face set at decode step
``s`` as a *sorted birth-prefix slice plus a death mask*: rows are stored
in mesh insertion order, which makes ``birth`` non-decreasing, so
``birth <= s`` is a prefix and only ``death > s`` needs a mask. The
result is byte-identical to an :class:`~repro.mesh.editable.EditableMesh`
replay — same rows, same orientation, same order — because Python dicts
preserve insertion order and a reinsertion appends its star faces
exactly where the table appends its rows.

Compilation itself is vectorized: births and deaths become sorted event
streams per face key, matched with ``searchsorted`` (a face key's events
strictly alternate add/remove in any consistent record stream). Records
that violate that invariant — corrupt v1 blobs, fuzzed rounds — drop to
a sequential builder that replays record by record and truncates the
table at the first inconsistent step, preserving the decoder's legacy
failure ladder: every step before the failure decodes normally, any step
at or past it raises the original error.

Tables are immutable (plain numpy arrays, no locks), so they pickle
cleanly across the process query backend's spill transport and can be
shared by every decoder, cache entry, and worker touching the object.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ALIVE", "LODTable", "compile_lod_table"]

# Death sentinel: the face is still live at the final compiled step.
# Using a sentinel (not num_steps + 1) keeps tables extendable — adding
# decode steps appends rows and stamps deaths without rewriting
# survivors.
ALIVE = int(np.iinfo(np.int32).max)

# The vectorized compiler packs a sorted vertex triple into one int64
# (3 x 21 bits); meshes with larger vertex ids use the sequential path.
_PACK_BITS = 21
_PACK_LIMIT = 1 << _PACK_BITS


class LODTable:
    """Immutable columnar face-interval table for one compressed object.

    ``faces`` holds every face instance the decoder can ever produce, in
    mesh insertion order (base faces first, then each decode step's star
    fans in record order). ``birth[i]``/``death[i]`` bound row ``i``'s
    live interval in decode steps: row ``i`` is present at step ``s`` iff
    ``birth[i] <= s < death[i]`` (``death == ALIVE`` means never removed).

    ``face_counts[s]`` / ``cum_records[s]`` are the live face count and
    the cumulative removal records reinserted through step ``s`` — the
    numbers the decoder reports as work done without touching the rows.

    ``failed_step`` marks the first decode step whose compilation hit an
    inconsistent record (corrupt data); the table is valid up to the
    preceding step and re-raises the captured ``failure`` for any access
    at or past it, mirroring where a record-by-record replay would have
    raised.
    """

    def __init__(
        self,
        faces: np.ndarray,
        birth: np.ndarray,
        death: np.ndarray,
        face_counts: np.ndarray,
        cum_records: np.ndarray,
        failed_step: int | None = None,
        failure: Exception | None = None,
    ):
        self.faces = faces
        self.birth = birth
        self.death = death
        self.face_counts = face_counts
        self.cum_records = cum_records
        self.failed_step = failed_step
        self.failure = failure
        for arr in (faces, birth, death, face_counts, cum_records):
            arr.setflags(write=False)

    @property
    def num_steps(self) -> int:
        """Decode steps covered (including any steps past ``failed_step``)."""
        return len(self.face_counts) - 1

    @property
    def num_rows(self) -> int:
        return len(self.faces)

    @property
    def nbytes(self) -> int:
        return (
            self.faces.nbytes + self.birth.nbytes + self.death.nbytes
            + self.face_counts.nbytes + self.cum_records.nbytes
        )

    def _check_step(self, step: int) -> None:
        if step < 0 or step > self.num_steps:
            raise ValueError(f"step must be in [0, {self.num_steps}], got {step}")
        if self.failed_step is not None and step >= self.failed_step:
            raise self.failure

    def faces_at_step(self, step: int) -> np.ndarray:
        """The oriented ``(m, 3)`` face array at decode step ``step``.

        Byte-identical (rows, order, orientation) to an
        :class:`~repro.mesh.editable.EditableMesh` replay of the same
        rounds. Read-only; shares the table's storage when no row born
        by ``step`` has died yet.
        """
        self._check_step(step)
        prefix = int(np.searchsorted(self.birth, step, side="right"))
        dead = self.death[:prefix] <= step
        if not dead.any():
            return self.faces[:prefix]
        out = self.faces[:prefix][~dead]
        out.setflags(write=False)
        return out

    def face_count_at_step(self, step: int) -> int:
        self._check_step(step)
        return int(self.face_counts[step])

    def records_through_step(self, step: int) -> int:
        """Removal records reinserted to reach ``step`` (decode work)."""
        self._check_step(step)
        return int(self.cum_records[step])

    def extended(self, earlier_rounds) -> "LODTable":
        """A new table with ``earlier_rounds`` appended as decode steps.

        ``earlier_rounds`` are encode rounds that *precede* the rounds
        this table was compiled from (the salvage/progressive-transmission
        case: a checksum-valid round suffix compiles to a truncated
        table, and newly arrived earlier segments extend it). Survivor
        rows are untouched; new steps append rows and stamp deaths, so
        every step this table served is preserved verbatim.
        """
        if self.failed_step is not None:
            raise ValueError("cannot extend a table whose compilation failed")
        if not earlier_rounds:
            return self
        faces = [tuple(face) for face in self.faces.tolist()]
        birth = self.birth.tolist()
        death = self.death.tolist()
        live = {
            tuple(sorted(face)): row
            for row, face in enumerate(faces)
            if death[row] == ALIVE
        }
        face_counts = self.face_counts.tolist()
        records_per_step = [0] + np.diff(self.cum_records).tolist()
        failed_step, failure = _replay_steps(
            faces, birth, death, live, face_counts, records_per_step,
            tuple(earlier_rounds)[::-1], first_step=self.num_steps + 1,
        )
        return _finish(faces, birth, death, face_counts, records_per_step,
                       failed_step, failure)

    # Tables are plain immutable arrays; define the pickle protocol
    # explicitly so the process backend's spill transport stays stable
    # even if derived caches are ever added to instances.
    def __getstate__(self):
        return {
            "faces": self.faces, "birth": self.birth, "death": self.death,
            "face_counts": self.face_counts, "cum_records": self.cum_records,
            "failed_step": self.failed_step, "failure": self.failure,
        }

    def __setstate__(self, state):
        self.__init__(**state)


def compile_lod_table(base_faces: np.ndarray, rounds) -> LODTable:
    """Compile base faces plus removal rounds into a :class:`LODTable`.

    ``rounds`` is in encode order (as stored on
    :class:`~repro.compression.ppvp.CompressedObject`); decode step ``s``
    replays ``rounds[len(rounds) - s]``. Tries the vectorized event-stream
    compiler first and falls back to the sequential replay builder when
    the records are inconsistent (the fallback reproduces the legacy
    decoder's exact failure step and error).
    """
    base = np.ascontiguousarray(np.asarray(base_faces, dtype=np.int64).reshape(-1, 3))
    decode_rounds = tuple(rounds)[::-1]
    table = _compile_vectorized(base, decode_rounds)
    if table is None:
        table = _compile_sequential(base, decode_rounds)
    return table


# -- vectorized compiler ------------------------------------------------------


def _pack_keys(faces: np.ndarray) -> np.ndarray:
    """One int64 per face: its sorted vertex triple, lexicographically."""
    key = np.sort(faces, axis=1)
    return (key[:, 0] << (2 * _PACK_BITS)) | (key[:, 1] << _PACK_BITS) | key[:, 2]


def _compile_vectorized(base: np.ndarray, decode_rounds) -> LODTable | None:
    """Event-stream compilation; None when the records need the fallback.

    Births (base rows, star fans) and deaths (patch fans) are per-key
    event streams; in any stream a sequential replay accepts, a key's
    events strictly alternate add/remove with increasing steps, so after
    sorting both streams by (key, step) the i-th death of a key pairs
    with its i-th birth. Any violation of the alternation invariants
    means a replay would raise somewhere — exactly when we return None
    and let the sequential builder find the precise failing step.
    """
    num_steps = len(decode_rounds)
    records_per_step = np.zeros(num_steps + 1, dtype=np.int64)
    verts: list[int] = []
    offs: list[int] = []
    lens: list[int] = []
    steps: list[int] = []
    ring_flat: list[int] = []
    for step, records in enumerate(decode_rounds, start=1):
        records_per_step[step] = len(records)
        for record in records:
            ring_tuple = record.ring
            verts.append(record.vertex)
            offs.append(record.apex_offset)
            lens.append(len(ring_tuple))
            steps.append(step)
            ring_flat.extend(ring_tuple)

    k = np.asarray(lens, dtype=np.int64)
    if len(k) and bool((k < 3).any()):
        return None  # degenerate rings: let the sequential builder decide
    off = np.asarray(offs, dtype=np.int64)
    if len(off) and bool(((off < 0) | (off >= np.maximum(k, 1))).any()):
        return None  # rotation semantics differ for out-of-range offsets
    vert = np.asarray(verts, dtype=np.int64)
    step_of = np.asarray(steps, dtype=np.int64)
    ring = np.asarray(ring_flat, dtype=np.int64)
    starts = np.zeros(len(k), dtype=np.int64)
    if len(k):
        starts[1:] = np.cumsum(k[:-1])

    # Star fans, record order: (vertex, ring[i], ring[(i + 1) % k]).
    n_star = int(k.sum())
    rec_s = np.repeat(np.arange(len(k)), k)
    pos = np.arange(n_star) - starts[rec_s]
    star = np.empty((n_star, 3), dtype=np.int64)
    star[:, 0] = vert[rec_s]
    star[:, 1] = ring
    star[:, 2] = ring[starts[rec_s] + (pos + 1) % np.maximum(k[rec_s], 1)]

    # Patch fans: with loop = ring rotated to start at the apex, the
    # faces are (apex, loop[j], loop[j + 1]) for j = 1..k-2.
    fan = k - 2
    n_patch = int(fan.sum())
    rec_p = np.repeat(np.arange(len(k)), fan)
    pstarts = np.zeros(len(k), dtype=np.int64)
    if len(k):
        pstarts[1:] = np.cumsum(fan[:-1])
    j = np.arange(n_patch) - pstarts[rec_p] + 1
    seg = starts[rec_p]
    seg_k = k[rec_p]
    seg_off = off[rec_p]
    removed = np.empty((n_patch, 3), dtype=np.int64)
    removed[:, 0] = ring[seg + seg_off]
    removed[:, 1] = ring[seg + (seg_off + j) % seg_k]
    removed[:, 2] = ring[seg + (seg_off + j + 1) % seg_k]
    dsteps = step_of[rec_p]

    faces = np.concatenate([base, star], axis=0)
    birth = np.concatenate([np.zeros(len(base), dtype=np.int64), step_of[rec_s]])

    all_ids = (faces, removed)
    for ids in all_ids:
        if ids.size and (ids.min() < 0 or ids.max() >= _PACK_LIMIT):
            return None

    bkeys = _pack_keys(faces)
    death = np.full(len(faces), ALIVE, dtype=np.int64)

    border = np.lexsort((birth, bkeys))
    sb_keys = bkeys[border]
    sb_steps = birth[border]
    # A key born twice without an intervening death would make a replay
    # raise "already present" — alternation requires strictly increasing
    # birth steps per key.
    if len(sb_keys) > 1 and bool(
        ((sb_keys[1:] == sb_keys[:-1]) & (sb_steps[1:] <= sb_steps[:-1])).any()
    ):
        return None

    if len(removed):
        dkeys = _pack_keys(removed)
        dorder = np.lexsort((dsteps, dkeys))
        sd_keys = dkeys[dorder]
        sd_steps = dsteps[dorder]
        first_birth = np.searchsorted(sb_keys, sd_keys, side="left")
        group_start = np.searchsorted(sd_keys, sd_keys, side="left")
        match = first_birth + (np.arange(len(sd_keys)) - group_start)
        if bool((match >= len(sb_keys)).any()):
            return None
        if bool((sb_keys[match] != sd_keys).any()):
            return None  # death of a key never (or not often enough) born
        if bool((sb_steps[match] >= sd_steps).any()):
            return None  # death before (or at) its birth step
        nxt = np.minimum(match + 1, len(sb_keys) - 1)
        early_rebirth = (
            (match + 1 < len(sb_keys))
            & (sb_keys[nxt] == sd_keys)
            & (sb_steps[nxt] <= sd_steps)
        )
        if bool(early_rebirth.any()):
            return None
        death[border[match]] = sd_steps

    born_per_step = np.bincount(birth, minlength=num_steps + 1)
    dead_per_step = np.bincount(dsteps, minlength=num_steps + 1)
    face_counts = (np.cumsum(born_per_step) - np.cumsum(dead_per_step)).astype(np.int64)
    return LODTable(
        faces=faces,
        birth=birth.astype(np.int32),
        death=death.astype(np.int32),
        face_counts=face_counts,
        cum_records=np.cumsum(records_per_step),
    )


# -- sequential fallback ------------------------------------------------------


def _replay_steps(
    faces: list, birth: list, death: list, live: dict,
    face_counts: list, records_per_step: list,
    steps_rounds, first_step: int,
) -> tuple[int | None, Exception | None]:
    """Replay decode steps record by record, mutating the builder lists.

    On an inconsistent record the whole step rolls back (the table stays
    exactly at the previous step) and the original error is returned so
    the decoder can re-raise it for any request at or past that step.
    """
    for offset, records in enumerate(steps_rounds):
        step = first_step + offset
        killed_rows: list[int] = []
        appended_from = len(faces)
        try:
            for record in records:
                for face in record.patch_faces():
                    key = tuple(sorted(face))
                    row = live.pop(key, None)
                    if row is None:
                        raise KeyError(f"no face over vertices {key}")
                    death[row] = step
                    killed_rows.append(row)
                for face in record.star_faces():
                    key = tuple(sorted(face))
                    if key in live:
                        raise ValueError(f"face over vertices {key} already present")
                    live[key] = len(faces)
                    faces.append(face)
                    birth.append(step)
                    death.append(ALIVE)
        except Exception as exc:
            for row in killed_rows:
                death[row] = ALIVE
            del faces[appended_from:]
            del birth[appended_from:]
            del death[appended_from:]
            live.clear()
            live.update(
                (tuple(sorted(face)), row)
                for row, face in enumerate(faces)
                if death[row] == ALIVE
            )
            remaining = len(steps_rounds) - offset
            face_counts.extend([face_counts[-1]] * remaining)
            records_per_step.extend([0] * remaining)
            return step, exc
        face_counts.append(len(live))
        records_per_step.append(len(records))
    return None, None


def _finish(
    faces: list, birth: list, death: list,
    face_counts: list, records_per_step: list,
    failed_step: int | None, failure: Exception | None,
) -> LODTable:
    return LODTable(
        faces=np.asarray(faces, dtype=np.int64).reshape(-1, 3),
        birth=np.asarray(birth, dtype=np.int32),
        death=np.asarray(death, dtype=np.int32),
        face_counts=np.asarray(face_counts, dtype=np.int64),
        cum_records=np.cumsum(np.asarray(records_per_step, dtype=np.int64)),
        failed_step=failed_step,
        failure=failure,
    )


def _compile_sequential(base: np.ndarray, decode_rounds) -> LODTable:
    """Record-by-record builder: exact legacy replay failure semantics."""
    faces: list[tuple[int, int, int]] = []
    birth: list[int] = []
    death: list[int] = []
    live: dict[tuple[int, int, int], int] = {}
    for face in map(tuple, base.tolist()):
        key = tuple(sorted(face))
        if key in live:
            # Matches EditableMesh.add_face at decoder construction.
            raise ValueError(f"face over vertices {key} already present")
        live[key] = len(faces)
        faces.append(face)
        birth.append(0)
        death.append(ALIVE)
    face_counts = [len(faces)]
    records_per_step = [0]
    failed_step, failure = _replay_steps(
        faces, birth, death, live, face_counts, records_per_step,
        decode_rounds, first_step=1,
    )
    return _finish(faces, birth, death, face_counts, records_per_step,
                   failed_step, failure)
