"""A PostGIS-like comparator engine (paper Section 6.6).

Models how a traditional SDBMS processes 3D joins, with the properties
the paper identifies as its bottlenecks:

* geometry is stored and evaluated at full resolution only — no
  compression, no multiple LODs, no progressive anything;
* the filter step is a plain MBB index (we reuse the R-tree; PostGIS
  uses GiST over bounding boxes);
* refinement is brute-force face-pair evaluation per candidate pair,
  with no intra-object index;
* nearest-neighbor has no index support: as in the paper's methodology,
  a buffer distance is supplied, candidates are gathered by expanding
  the target MBB by the buffer, and exact distances are computed for
  all of them.

Everything runs single-threaded with the same small task granularity
as the engine's CPU device, and — like a row store that parses WKB on
every access — geometry is *materialized from storage bytes per pair
evaluation* rather than cached as live arrays.

Joins return the same :class:`~repro.core.plan.QueryResult` shape as
:class:`~repro.core.engine.ThreeDPro`; legacy ``pairs, stats = ...``
unpacking keeps working through ``QueryResult.__iter__``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.plan import QueryResult
from repro.core.stats import QueryStats
from repro.geometry.distance import tri_tri_distance_batch
from repro.geometry.raycast import point_in_polyhedron
from repro.geometry.tritri import tri_tri_intersect_batch
from repro.index.rtree import RTree, RTreeEntry
from repro.mesh.polyhedron import Polyhedron

__all__ = ["PostGISLikeEngine"]

_BLOCK = 48  # same CPU task granularity as the engine


class PostGISLikeEngine:
    """Full-resolution MBB-filter + brute-force-refine engine."""

    def __init__(self, targets: list[Polyhedron], sources: list[Polyhedron]):
        self.targets = targets
        self.sources = sources
        self._source_tree = RTree(
            [RTreeEntry(s.aabb, sid) for sid, s in enumerate(sources)]
        )
        # Row storage: packed coordinate/index bytes, parsed per access.
        self._rows: dict[tuple[str, int], tuple[bytes, bytes, int, int]] = {}
        for kind, meshes in (("t", targets), ("s", sources)):
            for index, mesh in enumerate(meshes):
                self._rows[(kind, index)] = (
                    mesh.vertices.tobytes(),
                    mesh.faces.tobytes(),
                    mesh.num_vertices,
                    mesh.num_faces,
                )

    def _materialize(self, kind: str, index: int) -> np.ndarray:
        """Parse one row's geometry into a corner-triangle array.

        Deliberately repeated per pair evaluation: a traditional SDBMS
        deserializes geometry values from storage for every operator
        invocation, which is a large share of the paper's PostGIS gap.
        """
        vbytes, fbytes, nv, nf = self._rows[(kind, index)]
        vertices = np.frombuffer(vbytes, dtype=np.float64).reshape(nv, 3)
        faces = np.frombuffer(fbytes, dtype=np.int64).reshape(nf, 3)
        return vertices[faces]

    # -- pair evaluation ----------------------------------------------------------

    def _pair_intersects(self, tid: int, sid: int, stats: QueryStats) -> bool:
        tris_a = self._materialize("t", tid)
        tris_b = self._materialize("s", sid)
        total = len(tris_a) * len(tris_b)
        for start in range(0, total, _BLOCK):
            flat = np.arange(start, min(start + _BLOCK, total))
            ii, jj = flat // len(tris_b), flat % len(tris_b)
            stats.face_pairs_by_lod[0] += len(flat)
            if bool(tri_tri_intersect_batch(tris_a[ii], tris_b[jj]).any()):
                return True
        if point_in_polyhedron(tris_b[0, 0], tris_a):
            return True
        return bool(point_in_polyhedron(tris_a[0, 0], tris_b))

    def _pair_distance(self, tid: int, sid: int, stats: QueryStats) -> float:
        tris_a = self._materialize("t", tid)
        tris_b = self._materialize("s", sid)
        total = len(tris_a) * len(tris_b)
        best = np.inf
        for start in range(0, total, _BLOCK):
            flat = np.arange(start, min(start + _BLOCK, total))
            ii, jj = flat // len(tris_b), flat % len(tris_b)
            stats.face_pairs_by_lod[0] += len(flat)
            best = min(
                best,
                float(
                    tri_tri_distance_batch(
                        tris_a[ii], tris_b[jj], check_intersection=False
                    ).min()
                ),
            )
        return float(best)

    # -- joins ----------------------------------------------------------------------

    def intersection_join(self) -> QueryResult:
        stats = QueryStats(query="intersection_join", config_label="PostGIS-like")
        started = time.perf_counter()
        pairs: dict[int, list[int]] = {}
        for tid, target in enumerate(self.targets):
            stats.targets += 1
            with stats.clock("filter"):
                candidates = self._source_tree.query_intersecting(target.aabb)
            stats.candidates += len(candidates)
            matches = []
            with stats.clock("compute"):
                for sid in candidates:
                    if self._pair_intersects(tid, sid, stats):
                        matches.append(sid)
            if matches:
                pairs[tid] = sorted(matches)
                stats.results += len(matches)
        stats.total_seconds = time.perf_counter() - started
        return QueryResult(pairs, stats)

    def within_join(self, distance: float) -> QueryResult:
        stats = QueryStats(query="within_join", config_label="PostGIS-like")
        started = time.perf_counter()
        pairs: dict[int, list[int]] = {}
        for tid, target in enumerate(self.targets):
            stats.targets += 1
            with stats.clock("filter"):
                probe = target.aabb.expanded(distance)
                candidates = self._source_tree.query_intersecting(probe)
            stats.candidates += len(candidates)
            matches = []
            with stats.clock("compute"):
                for sid in candidates:
                    if self._pair_distance(tid, sid, stats) <= distance:
                        matches.append(sid)
            if matches:
                pairs[tid] = sorted(matches)
                stats.results += len(matches)
        stats.total_seconds = time.perf_counter() - started
        return QueryResult(pairs, stats)

    def nn_join(self, buffer_distance: float) -> QueryResult:
        """Nearest neighbor via the buffer trick (Section 6.6).

        ``buffer_distance`` plays the role of the paper's precomputed
        buffer: the largest true NN distance over all targets. Targets
        whose buffer probe matches nothing fall back to scanning every
        source (as a real system without NN indexing ultimately must).
        """
        stats = QueryStats(query="nn_join", config_label="PostGIS-like")
        started = time.perf_counter()
        pairs: dict[int, tuple[int, float]] = {}
        for tid, target in enumerate(self.targets):
            stats.targets += 1
            with stats.clock("filter"):
                probe = target.aabb.expanded(buffer_distance)
                candidates = self._source_tree.query_intersecting(probe)
            if not candidates:
                candidates = list(range(len(self.sources)))
            stats.candidates += len(candidates)
            with stats.clock("compute"):
                best_sid, best_dist = -1, np.inf
                for sid in candidates:
                    dist = self._pair_distance(tid, sid, stats)
                    if dist < best_dist:
                        best_sid, best_dist = sid, dist
            if best_sid >= 0:
                pairs[tid] = (best_sid, float(best_dist))
                stats.results += 1
        stats.total_seconds = time.perf_counter() - started
        return QueryResult(pairs, stats)
