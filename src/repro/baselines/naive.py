"""Ground-truth engine: exhaustive full-resolution evaluation.

No filtering, no LODs, no early exits — every object pair is evaluated
with complete face-pair kernels on the original meshes. Quadratic and
slow by design; the test suite compares every 3DPro configuration
against these answers.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.plan import QueryResult
from repro.core.stats import QueryStats
from repro.geometry.distance import tri_tri_distance_batch
from repro.geometry.raycast import point_in_polyhedron
from repro.geometry.tritri import tri_tri_intersect_batch
from repro.mesh.polyhedron import Polyhedron

__all__ = ["NaiveEngine"]


def _cross_pairs(tris_a: np.ndarray, tris_b: np.ndarray):
    ii, jj = np.meshgrid(np.arange(len(tris_a)), np.arange(len(tris_b)), indexing="ij")
    return tris_a[ii.ravel()], tris_b[jj.ravel()]


class NaiveEngine:
    """Exhaustive reference implementation of the three join types.

    ``prefilter=True`` skips pairs that provably cannot match using MBB
    distance bounds (box MINDIST lower-bounds the true distance, box
    overlap is necessary for intersection). This never changes answers —
    it only makes ground-truth computation affordable in tests.

    Every join returns a :class:`~repro.core.plan.QueryResult` — the
    same shape as :class:`~repro.core.engine.ThreeDPro` and the
    PostGIS-like comparator, so comparison code never special-cases the
    baseline. The stats carry only what a baseline honestly has:
    targets, results, and wall time (``config_label="naive"``).
    """

    def __init__(
        self,
        targets: list[Polyhedron],
        sources: list[Polyhedron],
        prefilter: bool = False,
    ):
        self.targets = targets
        self.sources = sources
        self.prefilter = prefilter

    # -- pair predicates -------------------------------------------------------

    @staticmethod
    def meshes_intersect(a: Polyhedron, b: Polyhedron) -> bool:
        """Surface intersection or full containment, both directions."""
        pa, pb = _cross_pairs(a.triangles, b.triangles)
        if bool(tri_tri_intersect_batch(pa, pb).any()):
            return True
        # Disjoint surfaces: check containment either way.
        if point_in_polyhedron(b.vertices[b.faces[0, 0]], a.triangles):
            return True
        return bool(point_in_polyhedron(a.vertices[a.faces[0, 0]], b.triangles))

    @staticmethod
    def mesh_distance(a: Polyhedron, b: Polyhedron) -> float:
        pa, pb = _cross_pairs(a.triangles, b.triangles)
        return float(tri_tri_distance_batch(pa, pb).min())

    # -- result packaging --------------------------------------------------------

    def _result(self, query: str, pairs: dict, started: float) -> QueryResult:
        stats = QueryStats(query=query, config_label="naive")
        stats.targets = len(self.targets)
        stats.results = sum(len(v) if isinstance(v, list) else 1 for v in pairs.values())
        stats.total_seconds = time.perf_counter() - started
        return QueryResult(pairs, stats)

    # -- joins -------------------------------------------------------------------

    def intersection_join(self) -> QueryResult:
        started = time.perf_counter()
        out: dict[int, list[int]] = {}
        for tid, target in enumerate(self.targets):
            matches = []
            for sid, source in enumerate(self.sources):
                if self.prefilter and not target.aabb.intersects(source.aabb):
                    continue  # disjoint boxes cannot intersect
                if self.meshes_intersect(target, source):
                    matches.append(sid)
            if matches:
                out[tid] = matches
        return self._result("intersection_join", out, started)

    def within_join(self, distance: float) -> QueryResult:
        started = time.perf_counter()
        out: dict[int, list[int]] = {}
        for tid, target in enumerate(self.targets):
            matches = []
            for sid, source in enumerate(self.sources):
                if self.prefilter and target.aabb.mindist(source.aabb) > distance:
                    continue  # box MINDIST lower-bounds the true distance
                if self.mesh_distance(target, source) <= distance:
                    matches.append(sid)
            if matches:
                out[tid] = matches
        return self._result("within_join", out, started)

    def nn_join(self) -> QueryResult:
        started = time.perf_counter()
        knn = self.knn_join(1).pairs
        out = {tid: matches[0] for tid, matches in knn.items() if matches}
        return self._result("nn_join", out, started)

    def knn_join(self, k: int) -> QueryResult:
        started = time.perf_counter()
        out: dict[int, list[tuple[int, float]]] = {}
        for tid, target in enumerate(self.targets):
            if not self.sources:
                continue
            order = range(len(self.sources))
            if self.prefilter:
                # Evaluate in ascending box-MINDIST order and stop once the
                # bound exceeds the current k-th best exact distance.
                order = sorted(
                    order, key=lambda sid: target.aabb.mindist(self.sources[sid].aabb)
                )
            best: list[tuple[float, int]] = []
            for sid in order:
                bound = target.aabb.mindist(self.sources[sid].aabb)
                if self.prefilter and len(best) >= k and bound > best[k - 1][0]:
                    break
                dist = self.mesh_distance(target, self.sources[sid])
                best.append((dist, sid))
                best.sort()
            out[tid] = [(sid, d) for d, sid in best[:k]]
        return self._result(f"knn_join(k={k})" if k > 1 else "nn_join", out, started)
