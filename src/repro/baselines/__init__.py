"""Reference and comparator engines.

* :mod:`repro.baselines.naive` — a deliberately simple full-resolution
  engine used as ground truth by the test suite (no index, no LODs, no
  tricks: every answer is computed by exhaustive geometry).
* :mod:`repro.baselines.postgis` — a PostGIS-like comparator for the
  paper's Section 6.6: MBB pre-filter, full-resolution geometry only,
  no compression / multi-LOD / intra-object indexing, and the nearest
  neighbor implemented via the buffer trick the paper describes.
"""

from repro.baselines.naive import NaiveEngine
from repro.baselines.postgis import PostGISLikeEngine

__all__ = ["NaiveEngine", "PostGISLikeEngine"]
