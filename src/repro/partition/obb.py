"""PCA-based oriented bounding boxes.

Sub-objects produced by the partitioner can be approximated by OBBs
instead of axis-aligned MBBs (paper reference [26]); an OBB hugs
elongated tube segments much more tightly. The engine's filter step only
needs the OBB's *axis-aligned* bounds (for R-tree compatibility), but
the tighter volume is reported for the partition-quality analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB

__all__ = ["OBB", "obb_of_points"]


@dataclass(frozen=True)
class OBB:
    """An oriented box: center, orthonormal axes (rows), half extents."""

    center: tuple[float, float, float]
    axes: tuple[tuple[float, float, float], ...]
    half_extents: tuple[float, float, float]

    @property
    def volume(self) -> float:
        hx, hy, hz = self.half_extents
        return 8.0 * hx * hy * hz

    def corners(self) -> np.ndarray:
        """The 8 corner points, shape (8, 3)."""
        center = np.asarray(self.center)
        axes = np.asarray(self.axes)
        half = np.asarray(self.half_extents)
        signs = np.array(
            [
                (sx, sy, sz)
                for sx in (-1, 1)
                for sy in (-1, 1)
                for sz in (-1, 1)
            ],
            dtype=np.float64,
        )
        return center + (signs * half) @ axes

    def aabb(self) -> AABB:
        """Axis-aligned bounds of the oriented box."""
        return AABB.of_points(self.corners())

    def contains_point(self, point, tol: float = 1e-9) -> bool:
        local = (np.asarray(point, dtype=np.float64) - np.asarray(self.center)) @ np.asarray(
            self.axes
        ).T
        return bool((np.abs(local) <= np.asarray(self.half_extents) + tol).all())


def obb_of_points(points: np.ndarray) -> OBB:
    """Fit an OBB with axes from the principal components of ``points``."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3 or len(points) == 0:
        raise ValueError("expected a non-empty (n, 3) point array")
    mean = points.mean(axis=0)
    centered = points - mean
    if len(points) == 1:
        axes = np.eye(3)
    else:
        cov = centered.T @ centered / len(points)
        _eigvals, eigvecs = np.linalg.eigh(cov)
        axes = eigvecs.T[::-1]  # descending variance
        # Ensure a right-handed frame.
        if np.linalg.det(axes) < 0:
            axes = axes.copy()
            axes[2] = -axes[2]
    local = centered @ axes.T
    low = local.min(axis=0)
    high = local.max(axis=0)
    center = mean + ((low + high) / 2.0) @ axes
    half = (high - low) / 2.0
    return OBB(
        tuple(center.tolist()),
        tuple(tuple(row) for row in axes.tolist()),
        tuple(half.tolist()),
    )
