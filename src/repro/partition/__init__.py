"""Skeleton-based partitioning of complex objects (paper Section 5.1).

A complex object (e.g. a bifurcated vessel) is decomposed into simple
sub-objects: skeleton points are extracted from the geometry, every face
of the highest-LOD mesh is assigned to its nearest skeleton point, and
each group is approximated by its own MBB (or OBB). Indexing those boxes
instead of one object-wide MBB tightens the filter step and confines
refinement to the sub-objects that can actually matter.
"""

from repro.partition.obb import OBB, obb_of_points
from repro.partition.partitioner import ObjectPartition, SubObject, partition_faces
from repro.partition.skeleton import extract_skeleton

__all__ = [
    "OBB",
    "obb_of_points",
    "ObjectPartition",
    "SubObject",
    "partition_faces",
    "extract_skeleton",
]
