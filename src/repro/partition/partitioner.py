"""Decomposition of an object into sub-objects with per-group boxes.

``ObjectPartition`` is computed once per object on the highest-LOD
geometry; at query time the decoded faces of *any* LOD are regrouped by
nearest skeleton point (`group_faces`), so sub-object membership stays
consistent across the progressive refinement levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB
from repro.partition.obb import OBB, obb_of_points
from repro.partition.skeleton import extract_skeleton, nearest_skeleton_point

__all__ = ["SubObject", "ObjectPartition", "partition_faces"]


@dataclass(frozen=True)
class SubObject:
    """One group of faces with its approximations."""

    index: int
    aabb: AABB
    obb: OBB
    face_count: int


@dataclass(frozen=True)
class ObjectPartition:
    """Skeleton points plus the sub-objects of one object."""

    skeleton: np.ndarray
    sub_objects: tuple[SubObject, ...]

    @property
    def num_parts(self) -> int:
        return len(self.sub_objects)

    def group_faces(self, triangles: np.ndarray) -> np.ndarray:
        """Assign each triangle (by centroid) to a sub-object index.

        Works on the decoded faces of any LOD; PPVP pruning moves faces
        only inward, so groups remain covered by their max-LOD boxes.
        """
        centroids = np.asarray(triangles, dtype=np.float64).mean(axis=1)
        return nearest_skeleton_point(centroids, self.skeleton)

    def boxes(self) -> list[AABB]:
        return [sub.aabb for sub in self.sub_objects]


def partition_faces(polyhedron, n_parts: int, lloyd_iterations: int = 5) -> ObjectPartition:
    """Partition ``polyhedron`` into at most ``n_parts`` sub-objects.

    Skeleton points are extracted from the vertex cloud; every face of
    the (highest-LOD) mesh joins the group of its nearest skeleton
    point; empty groups are dropped. Each group gets a tight MBB and a
    PCA OBB.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    triangles = polyhedron.triangles
    used = polyhedron.vertices[polyhedron.used_vertex_ids]
    skeleton = extract_skeleton(used, n_parts, lloyd_iterations=lloyd_iterations)

    centroids = triangles.mean(axis=1)
    assign = nearest_skeleton_point(centroids, skeleton)

    subs: list[SubObject] = []
    kept_points: list[np.ndarray] = []
    for k in range(len(skeleton)):
        face_ids = np.nonzero(assign == k)[0]
        if face_ids.size == 0:
            continue
        corners = triangles[face_ids].reshape(-1, 3)
        subs.append(
            SubObject(
                index=len(subs),
                aabb=AABB.of_points(corners),
                obb=obb_of_points(corners),
                face_count=int(face_ids.size),
            )
        )
        kept_points.append(skeleton[k])
    return ObjectPartition(
        skeleton=np.asarray(kept_points, dtype=np.float64), sub_objects=tuple(subs)
    )
