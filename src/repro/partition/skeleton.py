"""Skeleton point extraction.

The paper's partitioner ([4], skeleton-based) reduces an object to a
small list of interior points spread along its structure. We implement
this as farthest-point sampling over the mesh vertices followed by a few
Lloyd relaxation steps: for elongated/bifurcated shapes the relaxed
points settle along the centerline of each branch, which is exactly what
the sub-object grouping needs; for compact shapes they spread evenly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["extract_skeleton", "nearest_skeleton_point"]


def extract_skeleton(
    points: np.ndarray, n_points: int, lloyd_iterations: int = 5
) -> np.ndarray:
    """Pick ``n_points`` representative skeleton points for a point cloud.

    Deterministic: seeding starts from the point closest to the
    centroid, then farthest-point sampling, then ``lloyd_iterations``
    rounds of assign-to-nearest / move-to-mean relaxation.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3 or len(points) == 0:
        raise ValueError("expected a non-empty (n, 3) point array")
    if n_points < 1:
        raise ValueError("n_points must be >= 1")
    n_points = min(n_points, len(points))

    centroid = points.mean(axis=0)
    seed = int(np.argmin(((points - centroid) ** 2).sum(axis=1)))
    chosen = [seed]
    dist2 = ((points - points[seed]) ** 2).sum(axis=1)
    for _ in range(n_points - 1):
        nxt = int(np.argmax(dist2))
        chosen.append(nxt)
        dist2 = np.minimum(dist2, ((points - points[nxt]) ** 2).sum(axis=1))

    skeleton = points[chosen].copy()
    for _ in range(lloyd_iterations):
        assign = nearest_skeleton_point(points, skeleton)
        for k in range(len(skeleton)):
            members = points[assign == k]
            if len(members):
                skeleton[k] = members.mean(axis=0)
    return skeleton


def nearest_skeleton_point(points: np.ndarray, skeleton: np.ndarray) -> np.ndarray:
    """Index of the nearest skeleton point for each input point."""
    points = np.asarray(points, dtype=np.float64)
    skeleton = np.asarray(skeleton, dtype=np.float64)
    diff = points[:, None, :] - skeleton[None, :, :]
    return np.argmin((diff * diff).sum(axis=2), axis=1)
