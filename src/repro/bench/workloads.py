"""Benchmark workloads: paper-shaped scenes at laptop-friendly scales.

The paper's datasets (10M nuclei, 50K vessels) are far beyond a pure
Python engine; every benchmark here uses the same *shape classes* at a
scale selected by the ``REPRO_BENCH_SCALE`` environment variable:

* ``tiny``   (default) — seconds per cell; CI-friendly;
* ``small``  — tens of seconds for the worst cells;
* ``medium`` — minutes; closest to the paper's relative gaps;
* ``large``  — the memory-ceiling tier: enough objects that per-worker
  dataset copies visibly dominate process-backend RSS, used by
  ``benchmarks/bench_shard.py`` to measure the shard store's shared
  page-cache ceiling. Generation takes minutes; not for CI loops.

All generation is deterministic and cached per process so a benchmark
session builds each workload exactly once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.compression.ppvp import PPVPEncoder
from repro.datagen.scenes import make_tissue_scene
from repro.datagen.vessels import VesselSpec
from repro.storage.store import Dataset

__all__ = ["BenchScale", "SCALES", "bench_scale", "get_workload", "Workload"]


@dataclass(frozen=True)
class BenchScale:
    """One named benchmark size."""

    name: str
    n_nuclei: int
    n_vessels: int
    nucleus_subdivisions: int
    vessel_spec: VesselSpec
    region: float
    within_nn: float  # WN-NN threshold
    within_nv: float  # WN-NV threshold


SCALES = {
    "tiny": BenchScale(
        name="tiny",
        n_nuclei=32,
        n_vessels=3,
        nucleus_subdivisions=1,  # 80 faces
        vessel_spec=VesselSpec(bifurcations=3, points_per_branch=4, segments=6),
        region=135.0,
        within_nn=1.2,
        within_nv=12.0,
    ),
    "small": BenchScale(
        name="small",
        n_nuclei=120,
        n_vessels=2,
        nucleus_subdivisions=2,  # 320 faces, matches the paper's ~300
        vessel_spec=VesselSpec(bifurcations=4, points_per_branch=6, segments=10),
        region=160.0,
        within_nn=1.2,
        within_nv=15.0,
    ),
    "medium": BenchScale(
        name="medium",
        n_nuclei=300,
        n_vessels=3,
        nucleus_subdivisions=2,
        vessel_spec=VesselSpec(bifurcations=5, points_per_branch=8, segments=12),
        region=260.0,
        within_nn=1.2,
        within_nv=18.0,
    ),
    "large": BenchScale(
        name="large",
        n_nuclei=1000,
        n_vessels=4,
        nucleus_subdivisions=2,
        vessel_spec=VesselSpec(bifurcations=5, points_per_branch=8, segments=12),
        region=420.0,
        within_nn=1.2,
        within_nv=20.0,
    ),
}


def bench_scale() -> BenchScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default ``tiny``)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "tiny")
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}, got {name!r}")
    return SCALES[name]


@dataclass
class Workload:
    """Compressed datasets plus the raw meshes they came from.

    ``within_nn`` / ``within_nv`` are self-calibrated from the generated
    geometry (a quantile of per-target nearest MBB distances) so the
    within joins always produce a healthy mix of matches and misses,
    independent of scale and seed.
    """

    scale: BenchScale
    datasets: dict[str, Dataset]
    raw: dict[str, list]
    within_nn: float = 1.0
    within_nv: float = 10.0

    @property
    def summary(self) -> dict:
        return {
            "scale": self.scale.name,
            "nuclei": len(self.datasets["nuclei_a"]),
            "vessels": len(self.datasets["vessels"]),
            "nucleus_faces": self.raw["nuclei_a"][0].num_faces,
            "vessel_faces": self.raw["vessels"][0].num_faces if self.raw["vessels"] else 0,
        }


_CACHE: dict[str, Workload] = {}


def get_workload(seed: int = 11) -> Workload:
    """Build (or fetch the cached) workload for the current scale."""
    scale = bench_scale()
    key = f"{scale.name}:{seed}"
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    scene = make_tissue_scene(
        n_nuclei=scale.n_nuclei,
        n_vessels=scale.n_vessels,
        seed=seed,
        region=scale.region,
        nucleus_subdivisions=scale.nucleus_subdivisions,
        vessel_spec=scale.vessel_spec,
    )
    encoder = PPVPEncoder(max_lods=6, rounds_per_lod=2)
    datasets = {
        "nuclei_a": Dataset.from_polyhedra("nuclei_a", scene.nuclei_a, encoder),
        "nuclei_b": Dataset.from_polyhedra("nuclei_b", scene.nuclei_b, encoder),
        "vessels": Dataset.from_polyhedra("vessels", scene.vessels, encoder),
    }
    raw = {
        "nuclei_a": scene.nuclei_a,
        "nuclei_b": scene.nuclei_b,
        "vessels": scene.vessels,
    }
    workload = Workload(
        scale=scale,
        datasets=datasets,
        raw=raw,
        within_nn=_calibrate_threshold(datasets["nuclei_a"], datasets["nuclei_b"]),
        within_nv=_calibrate_threshold(datasets["nuclei_a"], datasets["vessels"]),
    )
    _CACHE[key] = workload
    return workload


def _calibrate_threshold(targets: Dataset, sources: Dataset, quantile: float = 0.7) -> float:
    """A within-distance that splits targets into matches and misses.

    Takes the ``quantile`` of each target's nearest source-MBB distance
    plus a generous margin: most matching pairs then clear the threshold
    even at coarse LODs (whose pruned geometry inflates distances), which
    is the regime where the paper's within tests profit from progressive
    early accepts, while the remaining targets still get refined and
    rejected.
    """
    source_boxes = sources.boxes
    if not source_boxes:
        return 1.0
    nearest = []
    for box in targets.boxes:
        nearest.append(min(box.mindist(other) for other in source_boxes))
    nearest.sort()
    index = min(len(nearest) - 1, int(quantile * len(nearest)))
    # Margin: a fifth of the typical source extent, so coarse-LOD
    # inflation does not defeat early acceptance.
    extent = max(max(box.extents) for box in source_boxes[: min(8, len(source_boxes))])
    return max(nearest[index], 1e-6) + 0.2 * extent
