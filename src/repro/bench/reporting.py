"""ASCII reporting for benchmark output.

The benchmark files print the same rows/series the paper reports; these
helpers keep the formatting consistent, and ``PAPER_TABLE1`` records the
published numbers so speedup *shapes* can be compared side by side in
EXPERIMENTS.md.
"""

from __future__ import annotations

__all__ = ["format_table", "format_breakdown", "PAPER_TABLE1", "speedup"]


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Fixed-width table with right-aligned numeric columns."""
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(
                cell.rjust(widths[i]) if _numericish(cell) else cell.ljust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell >= 1000:
            return f"{cell:.0f}"
        if cell >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def _numericish(cell: str) -> bool:
    return bool(cell) and (cell[0].isdigit() or cell[0] in "-+.")


def format_breakdown(stats) -> str:
    """One Fig. 10-style row: percentage split of query time."""
    total = max(stats.total_seconds, 1e-12)
    return (
        f"filter {100 * stats.filter_seconds / total:5.1f}%  "
        f"decode {100 * stats.decode_seconds / total:5.1f}%  "
        f"compute {100 * stats.compute_seconds / total:5.1f}%  "
        f"other {100 * stats.other_seconds / total:5.1f}%"
    )


def speedup(baseline: float, improved: float) -> float:
    """Baseline-over-improved ratio (>1 means improvement)."""
    return baseline / improved if improved > 0 else float("inf")


# Table 1 of the paper (seconds), for shape comparison in EXPERIMENTS.md.
# Keyed by (test_id, paradigm, accel-label); N/A cells omitted.
PAPER_TABLE1 = {
    ("INT-NN", "fr", "B"): 356.0,
    ("INT-NN", "fr", "P"): 335.7,
    ("INT-NN", "fr", "A"): 338.2,
    ("INT-NN", "fr", "G"): 340.4,
    ("INT-NN", "fpr", "B"): 84.8,
    ("INT-NN", "fpr", "P"): 86.4,
    ("INT-NN", "fpr", "A"): 82.7,
    ("INT-NN", "fpr", "G"): 80.7,
    ("WN-NN", "fr", "B"): 2253.7,
    ("WN-NN", "fr", "P"): 2249.0,
    ("WN-NN", "fr", "A"): 480.2,
    ("WN-NN", "fr", "G"): 250.8,
    ("WN-NN", "fpr", "B"): 108.2,
    ("WN-NN", "fpr", "P"): 108.5,
    ("WN-NN", "fpr", "A"): 74.7,
    ("WN-NN", "fpr", "G"): 60.5,
    ("WN-NV", "fr", "B"): 25056.8,
    ("WN-NV", "fr", "P"): 645.1,
    ("WN-NV", "fr", "A"): 11197.3,
    ("WN-NV", "fr", "G"): 9627.0,
    ("WN-NV", "fr", "P+G"): 196.3,
    ("WN-NV", "fpr", "B"): 8458.8,
    ("WN-NV", "fpr", "P"): 1116.1,
    ("WN-NV", "fpr", "A"): 19147.3,
    ("WN-NV", "fpr", "G"): 2990.1,
    ("WN-NV", "fpr", "P+G"): 95.1,
    ("NN-NN", "fr", "B"): 2264.0,
    ("NN-NN", "fr", "P"): 2268.9,
    ("NN-NN", "fr", "A"): 516.9,
    ("NN-NN", "fr", "G"): 267.9,
    ("NN-NN", "fpr", "B"): 893.8,
    ("NN-NN", "fpr", "P"): 893.1,
    ("NN-NN", "fpr", "A"): 306.6,
    ("NN-NN", "fpr", "G"): 164.1,
    ("NN-NV", "fr", "B"): 151630.0,
    ("NN-NV", "fr", "P"): 1649.8,
    ("NN-NV", "fr", "A"): 108799.9,
    ("NN-NV", "fr", "G"): 62506.1,
    ("NN-NV", "fr", "P+G"): 392.8,
    ("NN-NV", "fpr", "B"): 24968.1,
    ("NN-NV", "fpr", "P"): 422.2,
    ("NN-NV", "fpr", "A"): 21025.6,
    ("NN-NV", "fpr", "G"): 10202.0,
    ("NN-NV", "fpr", "P+G"): 172.3,
}
