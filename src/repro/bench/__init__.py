"""Benchmark harness shared by the ``benchmarks/`` suite.

* :mod:`repro.bench.workloads` — deterministic scene construction at the
  scale selected by ``REPRO_BENCH_SCALE``, cached per process;
* :mod:`repro.bench.runner` — the five paper tests (INT-NN, WN-NN,
  WN-NV, NN-NN, NN-NV) as named runnables over any engine configuration;
* :mod:`repro.bench.reporting` — ASCII tables and paper-number
  references for EXPERIMENTS.md.
"""

from repro.bench.runner import TESTS, make_engine, run_test
from repro.bench.workloads import bench_scale, get_workload
from repro.bench.reporting import format_table

__all__ = [
    "TESTS",
    "make_engine",
    "run_test",
    "bench_scale",
    "get_workload",
    "format_table",
]
