"""The five paper tests as named runnables (Table 1 rows).

Each test is ``X-YZ``: X the query (INT / WN / NN), Y and Z the target
and source dataset types (N nuclei, V vessels). ``run_test`` builds a
fresh engine for the requested paradigm + acceleration, executes the
join, and returns the result (whose stats carry the Table 1 latency and
the Fig. 10/12 breakdowns).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.workloads import Workload
from repro.core.config import Accel, EngineConfig
from repro.core.engine import JoinResult, ThreeDPro

__all__ = ["TestSpec", "TESTS", "make_engine", "run_test", "ACCEL_VARIANTS"]


@dataclass(frozen=True)
class TestSpec:
    """One Table 1 row: query type plus dataset combination."""

    __test__ = False  # not a pytest class, despite the name

    test_id: str
    query: str  # intersection | within | nn
    target: str
    source: str

    def distance_for(self, workload: Workload) -> float | None:
        if self.query != "within":
            return None
        return workload.within_nv if self.source == "vessels" else workload.within_nn


TESTS = {
    "INT-NN": TestSpec("INT-NN", "intersection", "nuclei_a", "nuclei_b"),
    "WN-NN": TestSpec("WN-NN", "within", "nuclei_a", "nuclei_b"),
    "WN-NV": TestSpec("WN-NV", "within", "nuclei_a", "vessels"),
    "NN-NN": TestSpec("NN-NN", "nn", "nuclei_a", "nuclei_b"),
    "NN-NV": TestSpec("NN-NV", "nn", "nuclei_a", "vessels"),
}

# The acceleration columns of Table 1 (labels match Fig. 10's B/P/A/G).
ACCEL_VARIANTS = {
    "B": Accel(),
    "P": Accel(partition=True),
    "A": Accel(aabbtree=True),
    "G": Accel(gpu=True),
    "P+G": Accel(partition=True, gpu=True),
}


def make_engine(
    paradigm: str,
    accel: Accel | str = "B",
    workload: Workload | None = None,
    datasets: dict | None = None,
    **overrides,
) -> ThreeDPro:
    """A fresh engine loaded with the workload's three datasets."""
    if isinstance(accel, str):
        accel = ACCEL_VARIANTS[accel]
    config = EngineConfig(paradigm=paradigm, accel=accel, **overrides)
    engine = ThreeDPro(config)
    datasets = datasets if datasets is not None else workload.datasets
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    return engine


_PROFILED_LODS: dict[tuple[int, str], tuple[int, ...]] = {}


def profiled_lod_list(test_id: str, workload: Workload, sample_size: int = 10) -> tuple[int, ...]:
    """The Section 6.5 LOD schedule for one test, cached per workload.

    The paper's system profiles each test on a sampled cuboid and only
    refines at LODs whose pruned fraction clears the 1/r² break-even
    rule; Table 1's FPR cells run with those schedules.
    """
    from repro.core.lod_select import choose_lod_list, profile_pruning

    key = (id(workload), test_id)
    cached = _PROFILED_LODS.get(key)
    if cached is not None:
        return cached
    spec = TESTS[test_id]
    engine = make_engine("fpr", "B", workload=workload)
    profile = profile_pruning(
        engine,
        spec.target,
        spec.source,
        spec.query if spec.query != "nn" else "nn",
        sample_size=sample_size,
        distance=spec.distance_for(workload),
    )
    lods = choose_lod_list(profile)
    _PROFILED_LODS[key] = lods
    return lods


def run_test(
    test_id: str,
    workload: Workload,
    paradigm: str,
    accel: Accel | str = "B",
    engine: ThreeDPro | None = None,
    profile_lods: bool = True,
    **overrides,
) -> JoinResult:
    """Execute one Table 1 cell and return its JoinResult.

    FPR cells default to the profiled LOD schedule (``profile_lods``),
    matching the paper's methodology; profiling cost is incurred once
    per (workload, test) and excluded from the measured cell.
    """
    spec = TESTS[test_id]
    if engine is None:
        if paradigm == "fpr" and profile_lods and "lod_list" not in overrides:
            overrides["lod_list"] = profiled_lod_list(test_id, workload)
        engine = make_engine(paradigm, accel, workload=workload, **overrides)
    if spec.query == "intersection":
        result = engine.intersection_join(spec.target, spec.source)
    elif spec.query == "within":
        result = engine.within_join(spec.target, spec.source, spec.distance_for(workload))
    else:
        result = engine.nn_join(spec.target, spec.source)
    result.stats.query = test_id
    return result
