"""Export benchmark results into EXPERIMENTS-ready tables.

``pytest benchmarks/ --benchmark-only --benchmark-json=out.json`` dumps
machine-readable results; this module turns that file into the Table 1
matrix (measured vs paper) and per-figure series, for pasting into
EXPERIMENTS.md or downstream analysis.

Every benchmark JSON also carries the process-wide metrics snapshot
(cache behaviour, decode latency, retries — :mod:`repro.obs.metrics`)
under a top-level ``repro_metrics`` key: ``embed_metrics`` adds it, and
the benchmark conftest calls it automatically at session end.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.reporting import PAPER_TABLE1, format_table
from repro.obs import metrics as obs_metrics

__all__ = [
    "load_benchmark_json",
    "table1_matrix",
    "render_table1",
    "metrics_snapshot",
    "embed_metrics",
]


def load_benchmark_json(path) -> list[dict]:
    """The ``benchmarks`` records of a pytest-benchmark JSON file."""
    payload = json.loads(Path(path).read_text())
    return payload.get("benchmarks", [])


def metrics_snapshot(registry: obs_metrics.MetricsRegistry | None = None) -> dict:
    """A JSON-ready snapshot of the metrics registry (default: process-wide)."""
    registry = registry if registry is not None else obs_metrics.REGISTRY
    return registry.to_dict()


def embed_metrics(path, registry: obs_metrics.MetricsRegistry | None = None) -> dict:
    """Attach the metrics snapshot to a benchmark JSON file, in place.

    The snapshot lands under a top-level ``repro_metrics`` key, so a
    benchmark result file is self-describing: it carries not just the
    timings but the cache/decode/retry counters that explain them.
    Returns the updated payload.
    """
    path = Path(path)
    payload = json.loads(path.read_text())
    payload["repro_metrics"] = metrics_snapshot(registry)
    path.write_text(json.dumps(payload, indent=2))
    return payload


def table1_matrix(records: list[dict]) -> dict[tuple[str, str, str], dict]:
    """Collect Table 1 cells: (test, paradigm, accel) -> measurements."""
    out: dict[tuple[str, str, str], dict] = {}
    for record in records:
        extra = record.get("extra_info", {})
        if {"test", "paradigm", "accel", "seconds"} <= set(extra):
            key = (extra["test"], extra["paradigm"], extra["accel"])
            out[key] = {
                "seconds": extra["seconds"],
                "face_pairs": extra.get("face_pairs"),
                "matches": extra.get("matches"),
                "paper_seconds": PAPER_TABLE1.get(key),
            }
    return out


def render_table1(matrix: dict[tuple[str, str, str], dict]) -> str:
    """An EXPERIMENTS-style text table of measured vs paper seconds."""
    rows = []
    for (test, paradigm, accel) in sorted(matrix):
        cell = matrix[(test, paradigm, accel)]
        paper = cell.get("paper_seconds")
        rows.append(
            [
                test,
                f"{paradigm.upper()}/{accel}",
                cell["seconds"],
                paper if paper is not None else "n/a",
                cell.get("face_pairs", ""),
            ]
        )
    return format_table(
        ["test", "config", "measured s", "paper s", "face pairs"],
        rows,
        title="Table 1 (measured vs paper)",
    )
