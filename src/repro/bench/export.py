"""Export benchmark results into EXPERIMENTS-ready tables.

``pytest benchmarks/ --benchmark-only --benchmark-json=out.json`` dumps
machine-readable results; this module turns that file into the Table 1
matrix (measured vs paper) and per-figure series, for pasting into
EXPERIMENTS.md or downstream analysis.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.reporting import PAPER_TABLE1, format_table

__all__ = ["load_benchmark_json", "table1_matrix", "render_table1"]


def load_benchmark_json(path) -> list[dict]:
    """The ``benchmarks`` records of a pytest-benchmark JSON file."""
    payload = json.loads(Path(path).read_text())
    return payload.get("benchmarks", [])


def table1_matrix(records: list[dict]) -> dict[tuple[str, str, str], dict]:
    """Collect Table 1 cells: (test, paradigm, accel) -> measurements."""
    out: dict[tuple[str, str, str], dict] = {}
    for record in records:
        extra = record.get("extra_info", {})
        if {"test", "paradigm", "accel", "seconds"} <= set(extra):
            key = (extra["test"], extra["paradigm"], extra["accel"])
            out[key] = {
                "seconds": extra["seconds"],
                "face_pairs": extra.get("face_pairs"),
                "matches": extra.get("matches"),
                "paper_seconds": PAPER_TABLE1.get(key),
            }
    return out


def render_table1(matrix: dict[tuple[str, str, str], dict]) -> str:
    """An EXPERIMENTS-style text table of measured vs paper seconds."""
    rows = []
    for (test, paradigm, accel) in sorted(matrix):
        cell = matrix[(test, paradigm, accel)]
        paper = cell.get("paper_seconds")
        rows.append(
            [
                test,
                f"{paradigm.upper()}/{accel}",
                cell["seconds"],
                paper if paper is not None else "n/a",
                cell.get("face_pairs", ""),
            ]
        )
    return format_table(
        ["test", "config", "measured s", "paper s", "face pairs"],
        rows,
        title="Table 1 (measured vs paper)",
    )
