"""Deterministic, seed-driven fault injection.

The chaos-testing substrate: one :class:`FaultInjector` can be handed to
the storage layer (bit-flips in blobs as they are written), the decode
provider (raised decoder errors), and the task scheduler (failed or
delayed tasks). Every decision is a pure function of ``(seed, kind,
key)`` — not of call order — so a test that replays the same workload
with the same seed injects exactly the same faults, and a fault observed
in a failure log can be reproduced in isolation.

Typical chaos-test wiring::

    from repro.faults import FaultInjector

    inj = FaultInjector(seed=7, decode_error_rate=0.3)
    engine = ThreeDPro(EngineConfig(fault_injector=inj))
    # ... degraded-but-correct-subset joins, inj.counts tells you what fired
"""

from __future__ import annotations

import hashlib
import logging
import os
import signal
import threading
import time
import zlib
from dataclasses import dataclass, field

from repro.obs import metrics as obs_metrics
from repro.obs.logs import get_logger, log_event

__all__ = ["InjectedFault", "FaultInjector"]

_LOG = get_logger("faults")


class InjectedFault(RuntimeError):
    """The synthetic failure raised by an injector hook."""


@dataclass
class FaultInjector:
    """Seeded fault source; all rates are probabilities in ``[0, 1]``.

    ``max_faults`` caps the total number of injected faults (useful for
    "exactly one failure, then clean" retry scenarios). ``counts`` tracks
    fired faults per kind for test assertions.
    """

    seed: int = 0
    blob_flip_rate: float = 0.0
    decode_error_rate: float = 0.0
    decode_delay_rate: float = 0.0
    decode_delay_seconds: float = 0.0
    task_error_rate: float = 0.0
    task_delay_rate: float = 0.0
    task_delay_seconds: float = 0.0
    task_hang_rate: float = 0.0
    task_hang_seconds: float = 30.0
    worker_kill_rate: float = 0.0
    max_faults: int | None = None
    counts: dict = field(default_factory=dict)
    # Guards the counts read-modify-write: hooks fire concurrently from
    # scheduler worker threads, and lost updates would break exact-count
    # test assertions (and the max_faults cap). Recreated on unpickle.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_lock", None)  # locks don't pickle; workers get a fresh one
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.__dict__["_lock"] = threading.Lock()

    def _roll(self, kind: str, key: str) -> float:
        """Deterministic uniform draw in [0, 1) from (seed, kind, key).

        blake2s, not crc32: CRC is linear, so keys differing only in a
        trailing counter (``chunk:0`` vs ``chunk:1``) produce tightly
        clustered draws — a rate of 0.4 then fires for *all* chunks
        under one seed and *none* under another. A cryptographic hash
        gives independent-looking draws per key at identical cost here.
        """
        digest = hashlib.blake2s(
            f"{self.seed}|{kind}|{key}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / 2**64

    def _fire(self, kind: str, rate: float, key: str) -> bool:
        if rate <= 0.0:
            return False
        if self._roll(kind, key) >= rate:
            return False
        with self._lock:
            # The cap is re-checked under the lock so concurrent hooks
            # can never overshoot max_faults between check and increment.
            if self.max_faults is not None and self.total_injected >= self.max_faults:
                return False
            self.counts[kind] = self.counts.get(kind, 0) + 1
        obs_metrics.REGISTRY.counter(
            "repro_faults_injected_total", "Faults fired by the chaos injector"
        ).inc(kind=kind)
        log_event(
            _LOG, "fault_injected", level=logging.WARNING,
            kind=kind, key=key, seed=self.seed,
        )
        return True

    # -- hooks ---------------------------------------------------------------

    def corrupt_blob(self, blob: bytes, key: str) -> bytes:
        """Maybe flip one bit of ``blob`` (storage write hook)."""
        if not blob or not self._fire("blob_flip", self.blob_flip_rate, key):
            return blob
        pos = zlib.crc32(f"{self.seed}|pos|{key}".encode()) % len(blob)
        bit = 1 << (zlib.crc32(f"{self.seed}|bit|{key}".encode()) % 8)
        out = bytearray(blob)
        out[pos] ^= bit
        return bytes(out)

    def before_decode(self, dataset: str, obj_id: int, lod: int) -> None:
        """Maybe raise in place of a decode (provider hook).

        Keyed by ``(dataset, object, lod)``: an object can deterministically
        fail at its top LOD yet still decode at lower ones — exactly the
        shape the degraded-refinement fallback ladder is built for.
        """
        if self.decode_delay_seconds > 0 and self._fire(
            "decode_delay", self.decode_delay_rate, f"{dataset}:{obj_id}:{lod}"
        ):
            time.sleep(self.decode_delay_seconds)
        if self._fire("decode", self.decode_error_rate, f"{dataset}:{obj_id}:{lod}"):
            raise InjectedFault(
                f"injected decode failure: {dataset}[{obj_id}] at LOD {lod}"
            )

    def before_task(self, index: int, attempt: int = 0) -> None:
        """Maybe fail or delay a scheduled task (scheduler hook).

        Keyed by ``(index, attempt)`` so retries of a failed task can
        deterministically succeed (or keep failing, at rate 1.0).
        """
        if self._fire("task", self.task_error_rate, f"{index}:{attempt}"):
            raise InjectedFault(f"injected task failure: task {index} attempt {attempt}")
        if self.task_delay_seconds > 0 and self._fire(
            "delay", self.task_delay_rate, f"{index}:{attempt}"
        ):
            time.sleep(self.task_delay_seconds)

    def before_chunk(self, key: str, attempt: int = 0) -> None:
        """Maybe SIGKILL or hang this worker process (procpool hook).

        Keyed by ``(chunk key, attempt)`` so a chunk whose worker was
        killed on attempt 0 can deterministically survive its retry.
        The kill is a real ``SIGKILL`` to our own pid — no Python
        cleanup runs, exactly like an OOM kill — so only use it in
        sacrificial worker processes, never in the test process itself.
        ``task_hang_rate``/``task_hang_seconds`` hang the chunk here,
        in the worker, *before* its first heartbeat — deliberately not
        in ``before_task``, where a hang would stall the unsupervised
        parent process itself.
        """
        full_key = f"{key}:{attempt}"
        if self._fire("worker_kill", self.worker_kill_rate, full_key):
            try:
                os.kill(os.getpid(), signal.SIGKILL)
            except (OSError, AttributeError):  # pragma: no cover - exotic platforms
                os._exit(1)
            time.sleep(60.0)  # pragma: no cover - await the signal's arrival
        if self.task_hang_seconds > 0 and self._fire(
            "chunk_hang", self.task_hang_rate, full_key
        ):
            time.sleep(self.task_hang_seconds)
