"""Procedural mesh primitives.

These are the building blocks of the synthetic datasets: icospheres for
nuclei-like regular shapes, capped tubes along polylines for vessel
branches, plus boxes and tetrahedra for tests. All primitives produce
closed, consistently outward-oriented triangle meshes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mesh.polyhedron import Polyhedron

__all__ = ["tetrahedron", "box_mesh", "icosahedron", "icosphere", "tube_along_path"]


def tetrahedron(scale: float = 1.0, center=(0.0, 0.0, 0.0)) -> Polyhedron:
    """A regular tetrahedron, the smallest closed polyhedron."""
    s = float(scale)
    vertices = np.asarray(
        [(1, 1, 1), (1, -1, -1), (-1, 1, -1), (-1, -1, 1)], dtype=np.float64
    ) * s + np.asarray(center, dtype=np.float64)
    faces = [(0, 1, 2), (0, 3, 1), (0, 2, 3), (1, 3, 2)]
    return Polyhedron(vertices, faces)


def box_mesh(low=(0.0, 0.0, 0.0), high=(1.0, 1.0, 1.0)) -> Polyhedron:
    """An axis-aligned box as 12 outward-oriented triangles."""
    lx, ly, lz = (float(v) for v in low)
    hx, hy, hz = (float(v) for v in high)
    if not (lx < hx and ly < hy and lz < hz):
        raise ValueError("box must have positive extent on every axis")
    vertices = np.asarray(
        [
            (lx, ly, lz), (hx, ly, lz), (hx, hy, lz), (lx, hy, lz),
            (lx, ly, hz), (hx, ly, hz), (hx, hy, hz), (lx, hy, hz),
        ],
        dtype=np.float64,
    )
    faces = [
        (0, 2, 1), (0, 3, 2),  # bottom (z = lz), outward -z
        (4, 5, 6), (4, 6, 7),  # top (z = hz), outward +z
        (0, 1, 5), (0, 5, 4),  # front (y = ly), outward -y
        (2, 3, 7), (2, 7, 6),  # back (y = hy), outward +y
        (0, 4, 7), (0, 7, 3),  # left (x = lx), outward -x
        (1, 2, 6), (1, 6, 5),  # right (x = hx), outward +x
    ]
    return Polyhedron(vertices, faces)


def icosahedron(radius: float = 1.0, center=(0.0, 0.0, 0.0)) -> Polyhedron:
    """The regular icosahedron inscribed in a sphere of ``radius``."""
    phi = (1.0 + math.sqrt(5.0)) / 2.0
    raw = np.asarray(
        [
            (-1, phi, 0), (1, phi, 0), (-1, -phi, 0), (1, -phi, 0),
            (0, -1, phi), (0, 1, phi), (0, -1, -phi), (0, 1, -phi),
            (phi, 0, -1), (phi, 0, 1), (-phi, 0, -1), (-phi, 0, 1),
        ],
        dtype=np.float64,
    )
    raw /= np.linalg.norm(raw[0])
    vertices = raw * float(radius) + np.asarray(center, dtype=np.float64)
    faces = [
        (0, 11, 5), (0, 5, 1), (0, 1, 7), (0, 7, 10), (0, 10, 11),
        (1, 5, 9), (5, 11, 4), (11, 10, 2), (10, 7, 6), (7, 1, 8),
        (3, 9, 4), (3, 4, 2), (3, 2, 6), (3, 6, 8), (3, 8, 9),
        (4, 9, 5), (2, 4, 11), (6, 2, 10), (8, 6, 7), (9, 8, 1),
    ]
    return Polyhedron(vertices, faces)


def icosphere(subdivisions: int = 2, radius: float = 1.0, center=(0.0, 0.0, 0.0)) -> Polyhedron:
    """A geodesic sphere: the icosahedron subdivided ``subdivisions`` times.

    Face counts grow as ``20 * 4**subdivisions`` (20, 80, 320, 1280, ...),
    which brackets the paper's ~300-face nuclei at 2 subdivisions.
    """
    if subdivisions < 0:
        raise ValueError("subdivisions must be >= 0")
    base = icosahedron()
    vertices = [tuple(v) for v in base.vertices.tolist()]
    faces = [tuple(f) for f in base.faces.tolist()]
    midpoint_cache: dict[tuple[int, int], int] = {}

    def midpoint(i: int, j: int) -> int:
        key = (i, j) if i < j else (j, i)
        cached = midpoint_cache.get(key)
        if cached is not None:
            return cached
        mid = np.asarray(vertices[i]) + np.asarray(vertices[j])
        mid /= np.linalg.norm(mid)
        vertices.append(tuple(mid.tolist()))
        midpoint_cache[key] = len(vertices) - 1
        return midpoint_cache[key]

    for _round in range(subdivisions):
        next_faces = []
        for a, b, c in faces:
            ab = midpoint(a, b)
            bc = midpoint(b, c)
            ca = midpoint(c, a)
            next_faces.extend([(a, ab, ca), (b, bc, ab), (c, ca, bc), (ab, bc, ca)])
        faces = next_faces
        midpoint_cache.clear()

    points = np.asarray(vertices, dtype=np.float64) * float(radius)
    points += np.asarray(center, dtype=np.float64)
    return Polyhedron(points, faces)


def _orthonormal_frame(tangent: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Any right-handed (u, v) pair perpendicular to ``tangent``."""
    tangent = tangent / np.linalg.norm(tangent)
    helper = np.asarray([0.0, 0.0, 1.0])
    if abs(float(tangent @ helper)) > 0.9:
        helper = np.asarray([1.0, 0.0, 0.0])
    u = np.cross(tangent, helper)
    u /= np.linalg.norm(u)
    v = np.cross(tangent, u)
    return u, v


def tube_along_path(path, radii, segments: int = 8) -> Polyhedron:
    """A closed tube that sweeps a circle of per-point radius along ``path``.

    ``path`` is a ``(k, 3)`` polyline with ``k >= 2``; ``radii`` is a
    scalar or a length-``k`` sequence. Cross-section frames are parallel
    transported along the path so the tube does not twist; both ends are
    capped with triangle fans. Used by the vessel generator, where a
    bifurcated vessel is a union of such branch tubes.
    """
    path = np.asarray(path, dtype=np.float64)
    if path.ndim != 2 or path.shape[1] != 3 or len(path) < 2:
        raise ValueError("path must be a (k >= 2, 3) polyline")
    if segments < 3:
        raise ValueError("segments must be >= 3")
    radii_arr = np.broadcast_to(np.asarray(radii, dtype=np.float64), (len(path),))
    if bool((radii_arr <= 0).any()):
        raise ValueError("radii must be positive")

    # Parallel-transport frames.
    tangents = np.empty_like(path)
    tangents[0] = path[1] - path[0]
    tangents[-1] = path[-1] - path[-2]
    if len(path) > 2:
        tangents[1:-1] = path[2:] - path[:-2]
    norms = np.linalg.norm(tangents, axis=1)
    if bool((norms < 1e-12).any()):
        raise ValueError("path has coincident consecutive points")
    tangents /= norms[:, None]

    u, v = _orthonormal_frame(tangents[0])
    frames = [(u, v)]
    for i in range(1, len(path)):
        t_prev, t_cur = tangents[i - 1], tangents[i]
        axis = np.cross(t_prev, t_cur)
        sin_a = float(np.linalg.norm(axis))
        cos_a = float(np.clip(t_prev @ t_cur, -1.0, 1.0))
        if sin_a < 1e-12:
            frames.append(frames[-1])
            continue
        axis /= sin_a
        angle = math.atan2(sin_a, cos_a)

        def rotate(vec: np.ndarray) -> np.ndarray:
            return (
                vec * math.cos(angle)
                + np.cross(axis, vec) * math.sin(angle)
                + axis * float(axis @ vec) * (1.0 - math.cos(angle))
            )

        frames.append((rotate(frames[-1][0]), rotate(frames[-1][1])))

    angles = np.linspace(0.0, 2.0 * math.pi, segments, endpoint=False)
    vertices: list[np.ndarray] = []
    for i, point in enumerate(path):
        fu, fv = frames[i]
        ring = point + radii_arr[i] * (
            np.cos(angles)[:, None] * fu + np.sin(angles)[:, None] * fv
        )
        vertices.extend(ring)
    start_cap = len(vertices)
    vertices.append(path[0])
    end_cap = len(vertices)
    vertices.append(path[-1])

    faces: list[tuple[int, int, int]] = []
    for i in range(len(path) - 1):
        base_lo = i * segments
        base_hi = (i + 1) * segments
        for j in range(segments):
            jn = (j + 1) % segments
            a, b = base_lo + j, base_lo + jn
            c, d = base_hi + jn, base_hi + j
            faces.append((a, b, c))
            faces.append((a, c, d))
    last = (len(path) - 1) * segments
    for j in range(segments):
        jn = (j + 1) % segments
        faces.append((start_cap, jn, j))          # start cap, outward -tangent
        faces.append((end_cap, last + j, last + jn))  # end cap, outward +tangent
    return Polyhedron(np.asarray(vertices, dtype=np.float64), faces)
