"""Polygonal mesh substrate: polyhedra, adjacency, editing, validation.

A 3D object is represented as a closed, orientable triangle mesh — the
paper's polyhedron. This package provides the immutable
:class:`~repro.mesh.polyhedron.Polyhedron` value type used across the
system, the editable half-structure used by the codec to remove and
reinsert vertices, connectivity/validation helpers, and procedural mesh
primitives used by the data generators.
"""

from repro.mesh.adjacency import MeshAdjacency
from repro.mesh.editable import EditableMesh, VertexPatch
from repro.mesh.measures import mesh_surface_area, mesh_volume
from repro.mesh.polyhedron import Polyhedron
from repro.mesh.primitives import box_mesh, icosphere, tetrahedron, tube_along_path
from repro.mesh.subdivide import subdivide_midpoint
from repro.mesh.validate import MeshValidationError, validate_polyhedron

__all__ = [
    "MeshAdjacency",
    "EditableMesh",
    "VertexPatch",
    "mesh_surface_area",
    "mesh_volume",
    "Polyhedron",
    "box_mesh",
    "icosphere",
    "tetrahedron",
    "tube_along_path",
    "subdivide_midpoint",
    "MeshValidationError",
    "validate_polyhedron",
]
