"""Editable mesh and the vertex-removal / reinsertion operations.

This is the mechanical core of the codec (Section 2.3 / Fig. 3 of the
paper): removing a vertex deletes its star of faces and re-triangulates
the one-ring hole with a fan; reinserting it swaps the fan back for the
original star. Both directions are exact inverses, which is what makes
the compression invertible.

Vertex ids are *stable*: the editable mesh references one shared,
immutable position table (the full-resolution vertex set), and removal
only ever deletes faces. That keeps every removal record meaningful at
every LOD and makes decoding a pure patch swap.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.geometry._fast import cross3

from repro.mesh.adjacency import edge_key, ordered_ring
from repro.mesh.polyhedron import Polyhedron

__all__ = ["VertexPatch", "EditableMesh"]

_AREA_EPS = 1e-12

FaceTriple = tuple[int, int, int]


@dataclass(frozen=True)
class VertexPatch:
    """Record of one vertex removal.

    ``star_faces`` are the original faces incident to ``vertex`` (deleted
    by the removal and restored on reinsertion); ``patch_faces`` are the
    fan triangles that re-close the hole. ``ring`` is the ordered one-ring
    boundary loop, kept for analysis and serialization.
    """

    vertex: int
    ring: tuple[int, ...]
    star_faces: tuple[FaceTriple, ...]
    patch_faces: tuple[FaceTriple, ...]


def _face_key(a: int, b: int, c: int) -> FaceTriple:
    return tuple(sorted((a, b, c)))  # type: ignore[return-value]


class EditableMesh:
    """A triangle mesh supporting O(1) face insertion/removal.

    Faces are held in a dict keyed by their sorted vertex triple (a
    closed, consistently-oriented mesh can never contain two faces over
    the same vertex set), with the oriented triple as value. Vertex and
    edge incidence maps are maintained incrementally.
    """

    def __init__(self, positions: np.ndarray, faces: Iterable[FaceTriple] = ()):
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError("positions must be (n, 3)")
        self.positions = positions
        self._faces: dict[FaceTriple, FaceTriple] = {}
        self._vertex_faces: dict[int, set[FaceTriple]] = defaultdict(set)
        self._edge_count: dict[tuple[int, int], int] = defaultdict(int)
        for face in faces:
            self.add_face(*face)

    @classmethod
    def from_polyhedron(cls, polyhedron: Polyhedron) -> "EditableMesh":
        return cls(polyhedron.vertices, map(tuple, polyhedron.faces.tolist()))

    # -- basic face surgery -------------------------------------------------

    @property
    def num_faces(self) -> int:
        return len(self._faces)

    @property
    def live_vertices(self) -> set[int]:
        """Vertices currently referenced by at least one face."""
        return {v for v, faces in self._vertex_faces.items() if faces}

    def has_face(self, a: int, b: int, c: int) -> bool:
        return _face_key(a, b, c) in self._faces

    def has_edge(self, a: int, b: int) -> bool:
        return self._edge_count.get(edge_key(a, b), 0) > 0

    def add_face(self, a: int, b: int, c: int) -> None:
        key = _face_key(a, b, c)
        if key in self._faces:
            raise ValueError(f"face over vertices {key} already present")
        self._faces[key] = (a, b, c)
        for v in key:
            self._vertex_faces[v].add(key)
        for edge in ((a, b), (b, c), (c, a)):
            self._edge_count[edge_key(*edge)] += 1

    def remove_face(self, a: int, b: int, c: int) -> None:
        key = _face_key(a, b, c)
        if key not in self._faces:
            raise KeyError(f"no face over vertices {key}")
        del self._faces[key]
        for v in key:
            self._vertex_faces[v].discard(key)
        for edge in ((a, b), (b, c), (c, a)):
            ekey = edge_key(*edge)
            self._edge_count[ekey] -= 1
            if self._edge_count[ekey] == 0:
                del self._edge_count[ekey]

    def star(self, vertex: int) -> list[FaceTriple]:
        """Oriented faces currently incident to ``vertex``."""
        return [self._faces[key] for key in self._vertex_faces.get(vertex, ())]

    def ring(self, vertex: int) -> list[int] | None:
        return ordered_ring(vertex, self.star(vertex))

    # -- vertex removal (encoding direction) --------------------------------

    def try_remove_vertex(
        self,
        vertex: int,
        accept: Callable[[int, tuple[FaceTriple, ...]], bool] | None = None,
    ) -> VertexPatch | None:
        """Remove ``vertex`` if a valid fan re-triangulation exists.

        Tries every ring rotation as the fan apex until one produces a
        patch that (a) keeps the mesh a closed 2-manifold, (b) has no
        degenerate triangles, and (c) satisfies the optional ``accept``
        predicate (the PPVP codec passes the protruding-vertex test
        here). Returns the applied :class:`VertexPatch`, or None when the
        vertex cannot be removed under those constraints.
        """
        ring = self.ring(vertex)
        if ring is None or len(ring) < 3:
            return None
        star = tuple(self.star(vertex))

        for apex_offset in range(len(ring)):
            loop = ring[apex_offset:] + ring[:apex_offset]
            patch = self._fan_patch(loop)
            if patch is None:
                continue
            if accept is not None and not accept(vertex, patch):
                continue
            for face in star:
                self.remove_face(*face)
            for face in patch:
                self.add_face(*face)
            return VertexPatch(vertex, tuple(ring), star, patch)
        return None

    def _fan_patch(self, loop: list[int]) -> tuple[FaceTriple, ...] | None:
        """Fan triangulation of ``loop`` from ``loop[0]``, or None if invalid."""
        apex = loop[0]
        k = len(loop)
        patch = tuple((apex, loop[j], loop[j + 1]) for j in range(1, k - 1))

        # Chords introduced by the fan must not already exist in the mesh
        # (each edge of a closed mesh borders exactly two faces; the ring
        # edges already border one outside face each).
        for j in range(2, k - 1):
            if self.has_edge(apex, loop[j]):
                return None
        # A patch face must not coincide with an existing face (e.g. the
        # far face of a tetrahedral bump when the ring has length 3).
        for face in patch:
            if _face_key(*face) in self._faces:
                return None
        # Reject degenerate triangles.
        tris = self.positions[np.asarray(patch, dtype=np.int64)]
        normals = cross3(tris[:, 1] - tris[:, 0], tris[:, 2] - tris[:, 0])
        areas = np.sqrt((normals * normals).sum(axis=1)) / 2.0
        if bool((areas < _AREA_EPS).any()):
            return None
        return patch

    # -- vertex reinsertion (decoding direction) ----------------------------

    def reinsert(self, patch: VertexPatch) -> None:
        """Undo a removal: swap the fan back for the original star."""
        for face in patch.patch_faces:
            self.remove_face(*face)
        for face in patch.star_faces:
            self.add_face(*face)

    def remove_recorded(self, patch: VertexPatch) -> None:
        """Re-apply a recorded removal (used when replaying an encode)."""
        for face in patch.star_faces:
            self.remove_face(*face)
        for face in patch.patch_faces:
            self.add_face(*face)

    # -- exports -------------------------------------------------------------

    def face_array(self) -> np.ndarray:
        """Snapshot the oriented faces as an ``(m, 3)`` int64 array."""
        if not self._faces:
            return np.zeros((0, 3), dtype=np.int64)
        return np.asarray(list(self._faces.values()), dtype=np.int64)

    def to_polyhedron(self, compact: bool = False) -> Polyhedron:
        poly = Polyhedron(self.positions, self.face_array(), copy=False)
        return poly.compacted() if compact else poly
