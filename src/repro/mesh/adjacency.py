"""Connectivity queries over a face list: edges, stars, one-ring loops.

The codec needs, for every vertex, the ordered loop of its one-ring
neighbours (the hole boundary left behind when the vertex and its star
are removed). On a closed manifold mesh the star of a vertex ``v`` is a
fan of triangles ``(v, u_i, u_{i+1})`` and the opposite edges chain into
a single directed cycle ``u_0 -> u_1 -> ... -> u_0``.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

__all__ = ["MeshAdjacency", "edge_key", "ordered_ring"]


def edge_key(a: int, b: int) -> tuple[int, int]:
    """Canonical undirected-edge key."""
    return (a, b) if a < b else (b, a)


class MeshAdjacency:
    """Vertex/edge incidence maps for a static face list."""

    def __init__(self, faces):
        faces = np.asarray(faces, dtype=np.int64)
        self.faces = faces
        self.vertex_faces: dict[int, list[int]] = defaultdict(list)
        self.edge_faces: dict[tuple[int, int], list[int]] = defaultdict(list)
        for fid, (a, b, c) in enumerate(faces.tolist()):
            self.vertex_faces[a].append(fid)
            self.vertex_faces[b].append(fid)
            self.vertex_faces[c].append(fid)
            self.edge_faces[edge_key(a, b)].append(fid)
            self.edge_faces[edge_key(b, c)].append(fid)
            self.edge_faces[edge_key(c, a)].append(fid)

    def degree(self, vertex: int) -> int:
        """Number of faces incident to ``vertex`` (== ring length)."""
        return len(self.vertex_faces.get(vertex, ()))

    def neighbors(self, vertex: int) -> set[int]:
        """Vertices sharing an edge with ``vertex``."""
        out: set[int] = set()
        for fid in self.vertex_faces.get(vertex, ()):
            out.update(self.faces[fid].tolist())
        out.discard(vertex)
        return out

    def ring(self, vertex: int) -> list[int] | None:
        """Ordered one-ring loop around ``vertex``; see :func:`ordered_ring`."""
        star = [tuple(self.faces[fid].tolist()) for fid in self.vertex_faces.get(vertex, ())]
        return ordered_ring(vertex, star)


def ordered_ring(vertex: int, star_faces) -> list[int] | None:
    """Chain the star of ``vertex`` into an ordered neighbour loop.

    ``star_faces`` is an iterable of oriented faces (index triples) all
    containing ``vertex``. Each face ``(v, a, b)`` (rotated so ``v`` is
    first) contributes the directed boundary edge ``a -> b``; on a closed
    manifold these edges form exactly one cycle, which is returned in
    face orientation order (CCW seen from outside). Returns None when the
    star is not a single closed fan — such vertices are not removable.
    """
    succ: dict[int, int] = {}
    for face in star_faces:
        a, b, c = face
        if a == vertex:
            edge = (b, c)
        elif b == vertex:
            edge = (c, a)
        elif c == vertex:
            edge = (a, b)
        else:
            return None
        if edge[0] in succ:  # repeated source vertex: non-manifold fan
            return None
        succ[edge[0]] = edge[1]

    if len(succ) < 3:
        return None
    start = next(iter(succ))
    loop = [start]
    current = succ[start]
    while current != start:
        loop.append(current)
        nxt = succ.get(current)
        if nxt is None or len(loop) > len(succ):
            return None
        current = nxt
    if len(loop) != len(succ):  # more than one cycle
        return None
    return loop
