"""Integral measures of closed triangle meshes."""

from __future__ import annotations

import numpy as np

__all__ = ["mesh_volume", "mesh_surface_area", "mesh_centroid"]


def _triangles(polyhedron) -> np.ndarray:
    return np.asarray(polyhedron.vertices, dtype=np.float64)[
        np.asarray(polyhedron.faces, dtype=np.int64)
    ]


def mesh_volume(polyhedron) -> float:
    """Signed enclosed volume via the divergence theorem.

    Positive for consistently outward-oriented closed meshes; summing the
    signed tetrahedron volumes ``dot(a, cross(b, c)) / 6`` over faces.
    """
    tris = _triangles(polyhedron)
    a, b, c = tris[:, 0], tris[:, 1], tris[:, 2]
    return float((a * np.cross(b, c)).sum() / 6.0)


def mesh_surface_area(polyhedron) -> float:
    tris = _triangles(polyhedron)
    normals = np.cross(tris[:, 1] - tris[:, 0], tris[:, 2] - tris[:, 0])
    return float(np.sqrt((normals * normals).sum(axis=1)).sum() / 2.0)


def mesh_centroid(polyhedron) -> np.ndarray:
    """Volume centroid of a closed mesh (area centroid if volume ~ 0)."""
    tris = _triangles(polyhedron)
    a, b, c = tris[:, 0], tris[:, 1], tris[:, 2]
    signed = (a * np.cross(b, c)).sum(axis=1) / 6.0
    volume = signed.sum()
    if abs(volume) < 1e-12:
        return tris.mean(axis=(0, 1))
    tet_centroids = (a + b + c) / 4.0  # fourth tetra vertex is the origin
    return (tet_centroids * signed[:, None]).sum(axis=0) / volume
