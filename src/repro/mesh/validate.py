"""Structural validation of polyhedra.

A valid 3DPro object is a *closed, consistently oriented, 2-manifold*
triangle mesh: every undirected edge borders exactly two faces, the two
faces traverse it in opposite directions, every vertex star is a single
closed fan, and no face is degenerate or duplicated.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.mesh.adjacency import MeshAdjacency

__all__ = ["MeshValidationError", "validate_polyhedron"]


class MeshValidationError(ValueError):
    """Raised when a mesh violates the closed-manifold requirements."""


def validate_polyhedron(polyhedron, check_degenerate: bool = True) -> None:
    """Raise :class:`MeshValidationError` on any structural defect.

    ``check_degenerate`` may be disabled for meshes that intentionally
    carry sliver faces (e.g. mid-stream codec states under test).
    """
    faces = np.asarray(polyhedron.faces, dtype=np.int64)
    if len(faces) < 4:
        raise MeshValidationError("a closed polyhedron needs at least 4 faces")

    seen: set[tuple[int, int, int]] = set()
    directed: dict[tuple[int, int], int] = defaultdict(int)
    for a, b, c in faces.tolist():
        if a == b or b == c or a == c:
            raise MeshValidationError(f"face ({a}, {b}, {c}) repeats a vertex")
        key = _canonical(a, b, c)
        if key in seen:
            raise MeshValidationError(f"duplicate face ({a}, {b}, {c})")
        seen.add(key)
        for edge in ((a, b), (b, c), (c, a)):
            directed[edge] += 1
            if directed[edge] > 1:
                raise MeshValidationError(
                    f"edge {edge} traversed twice in the same direction "
                    "(inconsistent orientation or non-manifold edge)"
                )

    for (a, b), _count in directed.items():
        if directed.get((b, a), 0) != 1:
            raise MeshValidationError(
                f"edge ({a}, {b}) is not matched by its opposite: mesh is not closed"
            )

    adjacency = MeshAdjacency(faces)
    for vertex in adjacency.vertex_faces:
        if adjacency.ring(vertex) is None:
            raise MeshValidationError(f"vertex {vertex} star is not a single closed fan")

    if check_degenerate:
        tris = np.asarray(polyhedron.vertices, dtype=np.float64)[faces]
        normals = np.cross(tris[:, 1] - tris[:, 0], tris[:, 2] - tris[:, 0])
        areas = np.sqrt((normals * normals).sum(axis=1)) / 2.0
        bad = np.nonzero(areas < 1e-14)[0]
        if bad.size:
            raise MeshValidationError(f"{bad.size} degenerate (zero-area) faces, e.g. face {bad[0]}")


def _canonical(a: int, b: int, c: int) -> tuple[int, int, int]:
    if a <= b and a <= c:
        return (a, b, c)
    if b <= a and b <= c:
        return (b, c, a)
    return (c, a, b)
