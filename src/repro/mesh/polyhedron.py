"""The immutable polyhedron value type.

A :class:`Polyhedron` is an indexed triangle mesh: an ``(n, 3)`` float64
vertex array and an ``(m, 3)`` int64 face array whose rows list vertex
indices in counter-clockwise order seen from outside (right-hand rule
gives the outward normal, Section 2.1 of the paper).

Instances are treated as immutable values; all mutating operations live
on :class:`repro.mesh.editable.EditableMesh`.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.geometry.aabb import AABB

__all__ = ["Polyhedron"]


class Polyhedron:
    """A closed orientable triangle mesh representing one 3D object."""

    __slots__ = ("_vertices", "_faces", "__dict__")

    def __init__(self, vertices, faces, copy: bool = True):
        vertices = np.array(vertices, dtype=np.float64, copy=copy)
        faces = np.array(faces, dtype=np.int64, copy=copy)
        if vertices.ndim != 2 or vertices.shape[1] != 3:
            raise ValueError(f"vertices must be (n, 3), got {vertices.shape}")
        if faces.ndim != 2 or faces.shape[1] != 3:
            raise ValueError(f"faces must be (m, 3), got {faces.shape}")
        if faces.size and (faces.min() < 0 or faces.max() >= len(vertices)):
            raise ValueError("face indices out of range")
        vertices.setflags(write=False)
        faces.setflags(write=False)
        self._vertices = vertices
        self._faces = faces

    @property
    def vertices(self) -> np.ndarray:
        """Read-only ``(n, 3)`` vertex positions."""
        return self._vertices

    @property
    def faces(self) -> np.ndarray:
        """Read-only ``(m, 3)`` vertex-index triples, CCW from outside."""
        return self._faces

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_faces(self) -> int:
        return len(self._faces)

    @cached_property
    def triangles(self) -> np.ndarray:
        """Face corner positions as an ``(m, 3, 3)`` array."""
        return self._vertices[self._faces]

    @cached_property
    def used_vertex_ids(self) -> np.ndarray:
        """Sorted ids of vertices referenced by at least one face."""
        return np.unique(self._faces)

    @cached_property
    def aabb(self) -> AABB:
        """Bounding box of the *referenced* vertices.

        Lower-LOD meshes share the full-resolution vertex table, so the
        box must be taken over face corners, not the whole table.
        """
        if self.num_faces == 0:
            if self.num_vertices == 0:
                return AABB.empty()
            return AABB.of_points(self._vertices)
        return AABB.of_points(self._vertices[self.used_vertex_ids])

    def compacted(self) -> "Polyhedron":
        """Drop unreferenced vertices and renumber faces."""
        used = self.used_vertex_ids
        remap = np.full(self.num_vertices, -1, dtype=np.int64)
        remap[used] = np.arange(len(used))
        return Polyhedron(self._vertices[used], remap[self._faces], copy=False)

    def translated(self, offset) -> "Polyhedron":
        offset = np.asarray(offset, dtype=np.float64)
        return Polyhedron(self._vertices + offset, self._faces, copy=False)

    def scaled(self, factor: float, center=None) -> "Polyhedron":
        """Uniform scale about ``center`` (the AABB center by default)."""
        if center is None:
            center = np.asarray(self.aabb.center, dtype=np.float64)
        else:
            center = np.asarray(center, dtype=np.float64)
        vertices = (self._vertices - center) * float(factor) + center
        return Polyhedron(vertices, self._faces, copy=False)

    def canonical_face_set(self) -> frozenset:
        """Orientation-preserving canonical form of the face list.

        Each face is rotated so its smallest vertex id comes first; two
        polyhedra over the same vertex table are the same surface iff
        their canonical face sets are equal. Used heavily by tests.
        """
        canon = []
        for a, b, c in self._faces.tolist():
            if a <= b and a <= c:
                canon.append((a, b, c))
            elif b <= a and b <= c:
                canon.append((b, c, a))
            else:
                canon.append((c, a, b))
        return frozenset(canon)

    def __repr__(self) -> str:
        return f"Polyhedron(num_vertices={self.num_vertices}, num_faces={self.num_faces})"
