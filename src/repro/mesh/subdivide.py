"""Midpoint (1-to-4) subdivision of closed triangle meshes.

Splits every face at its edge midpoints, exactly quadrupling the face
count while preserving the surface and its orientation. Used to scale
synthetic objects toward the paper's face counts (e.g. a ~2K-face vessel
subdivided twice reaches ~30K faces) and by tests that need controlled
high-resolution inputs.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.adjacency import edge_key
from repro.mesh.polyhedron import Polyhedron

__all__ = ["subdivide_midpoint"]


def subdivide_midpoint(polyhedron: Polyhedron, rounds: int = 1) -> Polyhedron:
    """Apply ``rounds`` of 1-to-4 midpoint subdivision."""
    if rounds < 0:
        raise ValueError("rounds must be >= 0")
    mesh = polyhedron
    for _ in range(rounds):
        mesh = _subdivide_once(mesh)
    return mesh


def _subdivide_once(mesh: Polyhedron) -> Polyhedron:
    vertices = [tuple(v) for v in mesh.vertices.tolist()]
    midpoint_of: dict[tuple[int, int], int] = {}

    def midpoint(a: int, b: int) -> int:
        key = edge_key(a, b)
        cached = midpoint_of.get(key)
        if cached is not None:
            return cached
        pa = mesh.vertices[a]
        pb = mesh.vertices[b]
        vertices.append(tuple(((pa + pb) / 2.0).tolist()))
        midpoint_of[key] = len(vertices) - 1
        return midpoint_of[key]

    faces: list[tuple[int, int, int]] = []
    for a, b, c in mesh.faces.tolist():
        ab = midpoint(a, b)
        bc = midpoint(b, c)
        ca = midpoint(c, a)
        faces.extend([(a, ab, ca), (b, bc, ab), (c, ca, bc), (ab, bc, ca)])
    return Polyhedron(
        np.asarray(vertices, dtype=np.float64),
        np.asarray(faces, dtype=np.int64),
        copy=False,
    )
