"""Observability: structured tracing, metrics, logging, and attribution.

The legs of the telemetry the paper's evaluation implies:

* :mod:`repro.obs.trace` — span tracing of the query pipeline
  (JSON span trees + Chrome ``trace_event`` export). Off by default;
  enable with ``EngineConfig(tracing=True)``.
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and fixed-bucket histograms (Prometheus + OpenMetrics text
  and JSON export). Always on; the instruments are cheap dict updates,
  with ``handle()`` fast paths for per-decode-call sites.
* :mod:`repro.obs.logs` — JSON-lines structured events for
  degraded-mode, salvage, retry, and fault-injection decisions. Silent
  unless a handler is configured.
* :mod:`repro.obs.funnel` — per-query, per-LOD refinement-funnel
  records (candidates → pruned → decoded → evaluated →
  confirmed/rejected/degraded), kept consistent with the pairs ledger
  by construction.
* :mod:`repro.obs.profile` — an opt-in sampling profiler
  (``EngineConfig(profiling=True)``) bucketing stacks by pipeline
  phase, with collapsed-stack flamegraph export.

See the "Observability" and "Performance attribution" sections of
README.md and DESIGN.md for how the spans and series map onto the
paper's Fig. 10 / Fig. 12 / Table 2.
"""

from repro.obs.funnel import FunnelStage, QueryFunnel
from repro.obs.logs import JsonFormatter, configure_json_logging, get_logger, log_event
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    CounterHandle,
    Gauge,
    Histogram,
    HistogramHandle,
    MetricsRegistry,
)
from repro.obs.profile import (
    ProfileReport,
    SamplingProfiler,
    current_phase,
    phase_scope,
)
from repro.obs.trace import (
    DISABLED_TRACER,
    NOOP_SPAN,
    Span,
    TimedPhase,
    Tracer,
    phase_totals,
    self_time_table,
)

__all__ = [
    "Tracer",
    "Span",
    "TimedPhase",
    "NOOP_SPAN",
    "DISABLED_TRACER",
    "phase_totals",
    "self_time_table",
    "MetricsRegistry",
    "Counter",
    "CounterHandle",
    "Gauge",
    "Histogram",
    "HistogramHandle",
    "REGISTRY",
    "FunnelStage",
    "QueryFunnel",
    "SamplingProfiler",
    "ProfileReport",
    "phase_scope",
    "current_phase",
    "JsonFormatter",
    "get_logger",
    "log_event",
    "configure_json_logging",
]
