"""Observability: structured tracing, metrics, and event logging.

The three legs of the telemetry the paper's evaluation implies:

* :mod:`repro.obs.trace` — span tracing of the query pipeline
  (JSON span trees + Chrome ``trace_event`` export). Off by default;
  enable with ``EngineConfig(tracing=True)``.
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and fixed-bucket histograms (Prometheus text + JSON export).
  Always on; the instruments are cheap dict updates.
* :mod:`repro.obs.logs` — JSON-lines structured events for
  degraded-mode, salvage, retry, and fault-injection decisions. Silent
  unless a handler is configured.

See the "Observability" sections of README.md and DESIGN.md for how the
spans and series map onto the paper's Fig. 10 / Fig. 12 / Table 2.
"""

from repro.obs.logs import JsonFormatter, configure_json_logging, get_logger, log_event
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    DISABLED_TRACER,
    NOOP_SPAN,
    Span,
    TimedPhase,
    Tracer,
    phase_totals,
)

__all__ = [
    "Tracer",
    "Span",
    "TimedPhase",
    "NOOP_SPAN",
    "DISABLED_TRACER",
    "phase_totals",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "REGISTRY",
    "JsonFormatter",
    "get_logger",
    "log_event",
    "configure_json_logging",
]
