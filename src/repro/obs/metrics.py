"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry mirrors the Prometheus data model at the scale this repo
needs: a flat namespace of named metrics, each holding one time series
per label set. Components register their instruments eagerly at
construction so every series the paper's evaluation cares about (cache
hits/misses/evictions for Table 2, decode latency for Fig. 10, retry and
fault counters for the robustness story) is present in an export even
when its value is still zero.

Exports:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` comments, cumulative ``_bucket``
  series with ``le`` labels for histograms);
* :meth:`MetricsRegistry.to_dict` — a JSON-ready snapshot, embedded in
  benchmark result files by :mod:`repro.bench.export`.

``REGISTRY`` is the process-wide default; tests that assert exact values
should construct a private :class:`MetricsRegistry` instead (the engine
accepts one via ``EngineConfig(metrics=...)``).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "CounterHandle",
    "Gauge",
    "Histogram",
    "HistogramHandle",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "diff_states",
]

# Latency-flavored default buckets (seconds), Prometheus' classic spread.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

_EMPTY = ()


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items())) if labels else _EMPTY


def _escape(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def _series_name(name: str, key: tuple, extra: dict | None = None) -> str:
    items = list(key)
    if extra:
        items += sorted(extra.items())
    if not items:
        return name
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return f"{name}{{{body}}}"


class _Metric:
    """Base: name, help text, and a lock-protected series map."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class CounterHandle:
    """A pre-resolved counter series for hot paths.

    ``counter.handle(**labels)`` resolves the label key once; ``inc`` on
    the handle skips the per-call kwargs dict and label-tuple build that
    :meth:`Counter.inc` pays. Used on the decode/cache hot paths, where
    the instrument fires per cache access.
    """

    __slots__ = ("_series", "_key", "_lock")

    def __init__(self, counter: "Counter", key: tuple):
        self._series = counter._series
        self._key = key
        self._lock = counter._lock
        with self._lock:
            self._series.setdefault(key, 0.0)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._series[self._key] += amount


class HistogramHandle:
    """A pre-resolved histogram series for hot paths (see CounterHandle)."""

    __slots__ = ("_series", "_buckets", "_n", "_lock")

    def __init__(self, histogram: "Histogram", key: tuple):
        with histogram._lock:
            series = histogram._series.get(key)
            if series is None:
                series = histogram._series[key] = _HistogramSeries(
                    len(histogram.buckets)
                )
        self._series = series
        self._buckets = histogram.buckets
        self._n = len(histogram.buckets)
        self._lock = histogram._lock

    def observe(self, value: float) -> None:
        with self._lock:
            i = bisect_left(self._buckets, value)
            if i < self._n:
                self._series.counts[i] += 1
            self._series.sum += value
            self._series.count += 1


class Counter(_Metric):
    """Monotonically increasing value, one series per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._series: dict[tuple, float] = {_EMPTY: 0.0}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def handle(self, **labels) -> CounterHandle:
        """A :class:`CounterHandle` bound to one label set."""
        return CounterHandle(self, _label_key(labels))

    def value(self, **labels) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> dict[tuple, float]:
        return dict(self._series)

    def _render(self, lines: list[str]) -> None:
        for key, value in sorted(self._series.items()):
            lines.append(f"{_series_name(self.name, key)} {_fmt(value)}")

    def _snapshot(self):
        if set(self._series) == {_EMPTY}:
            return self._series[_EMPTY]
        return {_series_name("", key) or "total": value
                for key, value in sorted(self._series.items())}


class Gauge(_Metric):
    """A value that can go up and down (resident bytes, entry counts)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._series: dict[tuple, float] = {_EMPTY: 0.0}

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def _render(self, lines: list[str]) -> None:
        for key, value in sorted(self._series.items()):
            lines.append(f"{_series_name(self.name, key)} {_fmt(value)}")

    def _snapshot(self):
        if set(self._series) == {_EMPTY}:
            return self._series[_EMPTY]
        return {_series_name("", key) or "total": value
                for key, value in sorted(self._series.items())}


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket histogram (cumulative buckets on export, like Prometheus)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS):
        super().__init__(name, help)
        ordered = tuple(sorted(float(b) for b in buckets))
        if not ordered:
            raise ValueError("histogram needs at least one bucket")
        if len(set(ordered)) != len(ordered):
            raise ValueError("histogram buckets must be distinct")
        self.buckets = ordered
        self._series: dict[tuple, _HistogramSeries] = {
            _EMPTY: _HistogramSeries(len(ordered))
        }

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            i = bisect_left(self.buckets, value)
            if i < len(self.buckets):
                series.counts[i] += 1
            series.sum += value
            series.count += 1

    def handle(self, **labels) -> HistogramHandle:
        """A :class:`HistogramHandle` bound to one label set."""
        return HistogramHandle(self, _label_key(labels))

    def count(self, **labels) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels) -> float:
        series = self._series.get(_label_key(labels))
        return series.sum if series else 0.0

    def bucket_counts(self, **labels) -> dict[float, int]:
        """Cumulative count per upper bound (the ``le`` view)."""
        series = self._series.get(_label_key(labels))
        if series is None:
            return {bound: 0 for bound in self.buckets}
        out, running = {}, 0
        for bound, count in zip(self.buckets, series.counts):
            running += count
            out[bound] = running
        return out

    def _render(self, lines: list[str]) -> None:
        for key, series in sorted(self._series.items()):
            running = 0
            for bound, count in zip(self.buckets, series.counts):
                running += count
                lines.append(
                    f"{_series_name(self.name + '_bucket', key, {'le': _fmt(bound)})}"
                    f" {running}"
                )
            lines.append(
                f"{_series_name(self.name + '_bucket', key, {'le': '+Inf'})}"
                f" {series.count}"
            )
            lines.append(f"{_series_name(self.name + '_sum', key)} {_fmt(series.sum)}")
            lines.append(f"{_series_name(self.name + '_count', key)} {series.count}")

    def _snapshot(self):
        out = {}
        for key, series in sorted(self._series.items()):
            out[_series_name("", key) or "total"] = {
                "count": series.count,
                "sum": series.sum,
                "buckets": {
                    _fmt(bound): cum
                    for bound, cum in self.bucket_counts(
                        **dict(key)
                    ).items()
                },
            }
        if set(self._series) == {_EMPTY}:
            return out["total"]
        return out


class MetricsRegistry:
    """Named metrics with get-or-create registration.

    Re-registering an existing name returns the same instrument (so
    every :class:`~repro.storage.cache.DecodeCache` or scheduler shares
    the process-wide series); asking for a different type under an
    existing name raises ``ValueError``.
    """

    def __init__(self):
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every metric (test isolation only)."""
        with self._lock:
            self._metrics.clear()

    # -- cross-process state transfer -----------------------------------------

    def export_state(self) -> dict:
        """A picklable snapshot of every counter/histogram series.

        Gauges are excluded: they describe *current* state of whoever
        owns them (cache residency, entry counts) and folding a worker
        process's gauge into the parent would be meaningless. The shape
        is ``name -> {kind, help, series}`` with label-key tuples as
        series keys; histograms carry ``(counts, sum, count)`` per
        series plus their bucket bounds.
        """
        out: dict = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Gauge):
                continue
            entry: dict = {"kind": metric.kind, "help": metric.help}
            with metric._lock:
                if isinstance(metric, Histogram):
                    entry["buckets"] = metric.buckets
                    entry["series"] = {
                        key: (list(s.counts), s.sum, s.count)
                        for key, s in metric._series.items()
                    }
                else:
                    entry["series"] = dict(metric._series)
            out[name] = entry
        return out

    def merge_state(self, state: dict) -> None:
        """Fold an :func:`diff_states` delta (or full export) into this registry.

        Counters add; histogram series add per-bucket counts, sum, and
        count. Instruments absent here are registered with the shipped
        help text. A histogram whose bucket bounds disagree with the
        local registration is skipped rather than corrupted.
        """
        for name, entry in state.items():
            if entry["kind"] == "counter":
                metric = self.counter(name, entry["help"])
                with metric._lock:
                    for key, value in entry["series"].items():
                        if value:
                            metric._series[key] = metric._series.get(key, 0.0) + value
            elif entry["kind"] == "histogram":
                buckets = tuple(entry["buckets"])
                metric = self.histogram(name, entry["help"], buckets=buckets)
                if metric.buckets != buckets:
                    continue
                with metric._lock:
                    for key, (counts, total, count) in entry["series"].items():
                        series = metric._series.get(key)
                        if series is None:
                            series = metric._series[key] = _HistogramSeries(
                                len(metric.buckets)
                            )
                        for i, c in enumerate(counts):
                            series.counts[i] += c
                        series.sum += total
                        series.count += count

    # -- export ---------------------------------------------------------------

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            metric._render(lines)
        return "\n".join(lines) + "\n"

    def to_openmetrics(self) -> str:
        """The OpenMetrics 1.0 text format.

        Differences from :meth:`to_prometheus` that scrapers validate:
        ``# TYPE`` precedes ``# HELP``; a counter's *family* name drops
        the ``_total`` suffix while its sample keeps it; the exposition
        ends with ``# EOF``.
        """
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                family = name[: -len("_total")] if name.endswith("_total") else name
                lines.append(f"# TYPE {family} counter")
                if metric.help:
                    lines.append(f"# HELP {family} {metric.help}")
                for key, value in sorted(metric._series.items()):
                    lines.append(
                        f"{_series_name(family + '_total', key)} {_fmt(value)}"
                    )
            else:
                lines.append(f"# TYPE {name} {metric.kind}")
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                metric._render(lines)
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """A JSON-ready snapshot: name -> {type, help, value(s)}."""
        return {
            name: {
                "type": metric.kind,
                "help": metric.help,
                "value": metric._snapshot(),
            }
            for name, metric in sorted(self._metrics.items())
        }


def diff_states(before: dict, after: dict, skip: tuple = ()) -> dict:
    """The monotonic delta between two :meth:`MetricsRegistry.export_state` calls.

    Returns only series that grew, in ``merge_state`` shape — the
    payload a worker process ships back so its decode/cache/kernel
    series land in the parent registry exactly once. ``skip`` names
    instruments to drop entirely (e.g. per-query counters the parent
    accounts itself).
    """
    delta: dict = {}
    for name, entry in after.items():
        if name in skip:
            continue
        prior = before.get(name, {}).get("series", {})
        if entry["kind"] == "counter":
            series = {
                key: value - prior.get(key, 0.0)
                for key, value in entry["series"].items()
                if value - prior.get(key, 0.0) > 0
            }
            if series:
                delta[name] = {"kind": "counter", "help": entry["help"], "series": series}
        elif entry["kind"] == "histogram":
            series = {}
            for key, (counts, total, count) in entry["series"].items():
                p_counts, p_sum, p_count = prior.get(
                    key, ([0] * len(counts), 0.0, 0)
                )
                if count - p_count > 0:
                    series[key] = (
                        [c - p for c, p in zip(counts, p_counts)],
                        total - p_sum,
                        count - p_count,
                    )
            if series:
                delta[name] = {
                    "kind": "histogram", "help": entry["help"],
                    "buckets": entry["buckets"], "series": series,
                }
    return delta


#: The process-wide default registry. Components fall back to it when no
#: explicit registry is passed (``EngineConfig(metrics=...)`` overrides).
REGISTRY = MetricsRegistry()
