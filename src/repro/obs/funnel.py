"""Refinement-funnel telemetry: where candidates, bytes, and time go.

3DPro's whole argument is a cost funnel (the paper's Fig. 10/12
breakdown): the filter prunes candidates, progressive decode spends
bytes, and refinement confirms or rejects pairs LOD by LOD. A
:class:`QueryFunnel` records that flow for one query:

* query-level counts — ``candidates`` entering refinement,
  ``mbb_pruned`` dropped by MBB distance ranges before any decode,
  ``filter_confirmed`` settled by the filter alone (within's definite
  matches), and ``confirmed_final`` confirmed at final selection without
  a per-LOD settle (NN's returned top-k);
* per-LOD :class:`FunnelStage` records — pairs ``evaluated`` /
  ``settled`` (split into ``confirmed`` / ``rejected`` / ``degraded``)
  plus the decode traffic behind them (cache hits/misses, decoded
  objects and bytes, decode failures).

The per-LOD pair counters are written through
:meth:`~repro.core.refine.RefineContext.ledger_evaluated` /
:meth:`~repro.core.refine.RefineContext.ledger_settled`, which update
``QueryStats.pairs_evaluated_by_lod`` / ``pairs_pruned_by_lod`` and the
funnel in one call — the funnel and the pairs ledger agree *by
construction*, which is what the ``check_observability`` [8/8] gate
asserts under every backend.

A funnel lives on its query's :class:`~repro.core.stats.QueryStats`
(``stats.funnel``), so it is picklable, ships across the process
backend inside each chunk's stats, and merges with them. The executor
emits the merged funnel exactly once per query as labeled counters
(``repro_funnel_*``) and attaches it to the root span.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FunnelStage", "QueryFunnel"]

#: Per-stage pair counters, in funnel order (for exports and the CLI).
PAIR_STAGES = ("evaluated", "settled", "confirmed", "rejected", "degraded")


@dataclass
class FunnelStage:
    """One LOD's slice of the refinement funnel.

    ``evaluated`` pairs were refined at this LOD; ``settled`` of them
    stopped here — ``confirmed`` as results, ``rejected`` as definite
    non-results, ``degraded`` dropped or settled via degraded geometry
    (decode failure, MBB-only fallback, inexact exclusion). The decode
    counters describe the cache traffic *requested at* this LOD:
    ``decoded_objects``/``decoded_bytes`` are cache-miss decodes that
    produced geometry, ``decode_failures`` are misses whose whole
    fallback ladder failed.
    """

    evaluated: int = 0
    settled: int = 0
    confirmed: int = 0
    rejected: int = 0
    degraded: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    decoded_objects: int = 0
    decoded_bytes: int = 0
    decode_failures: int = 0

    def merge(self, other: "FunnelStage") -> None:
        self.evaluated += other.evaluated
        self.settled += other.settled
        self.confirmed += other.confirmed
        self.rejected += other.rejected
        self.degraded += other.degraded
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.decoded_objects += other.decoded_objects
        self.decoded_bytes += other.decoded_bytes
        self.decode_failures += other.decode_failures

    def as_dict(self) -> dict:
        return {
            "evaluated": self.evaluated,
            "settled": self.settled,
            "confirmed": self.confirmed,
            "rejected": self.rejected,
            "degraded": self.degraded,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "decoded_objects": self.decoded_objects,
            "decoded_bytes": self.decoded_bytes,
            "decode_failures": self.decode_failures,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FunnelStage":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class QueryFunnel:
    """The full refinement funnel for one query (or one worker chunk)."""

    candidates: int = 0
    mbb_pruned: int = 0
    filter_confirmed: int = 0
    confirmed_final: int = 0
    stages: dict[int, FunnelStage] = field(default_factory=dict)

    def stage(self, lod: int) -> FunnelStage:
        """The (created-on-demand) stage record for ``lod``."""
        stage = self.stages.get(lod)
        if stage is None:
            stage = self.stages[lod] = FunnelStage()
        return stage

    @property
    def confirmed_total(self) -> int:
        """Results from every path: per-LOD, filter-only, and final-selection."""
        return (
            sum(stage.confirmed for stage in self.stages.values())
            + self.filter_confirmed
            + self.confirmed_final
        )

    @property
    def decoded_bytes_total(self) -> int:
        return sum(stage.decoded_bytes for stage in self.stages.values())

    def merge(self, other: "QueryFunnel") -> None:
        """Fold another funnel in (chunk merge across backends)."""
        self.candidates += other.candidates
        self.mbb_pruned += other.mbb_pruned
        self.filter_confirmed += other.filter_confirmed
        self.confirmed_final += other.confirmed_final
        for lod, stage in other.stages.items():
            self.stage(lod).merge(stage)

    def as_dict(self) -> dict:
        return {
            "candidates": self.candidates,
            "mbb_pruned": self.mbb_pruned,
            "filter_confirmed": self.filter_confirmed,
            "confirmed_final": self.confirmed_final,
            "confirmed_total": self.confirmed_total,
            "stages": {
                str(lod): stage.as_dict()
                for lod, stage in sorted(self.stages.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryFunnel":
        """Rebuild a funnel from :meth:`as_dict` output (wire round trip).

        Stage keys arrive as the decimal strings ``as_dict`` emits (or
        ints, pre-JSON); derived totals (``confirmed_total``) are
        recomputed so :meth:`violations` gives the same verdict on both
        sides of the wire.
        """
        funnel = cls(
            candidates=payload.get("candidates", 0),
            mbb_pruned=payload.get("mbb_pruned", 0),
            filter_confirmed=payload.get("filter_confirmed", 0),
            confirmed_final=payload.get("confirmed_final", 0),
        )
        for lod, stage in payload.get("stages", {}).items():
            funnel.stages[int(lod)] = FunnelStage.from_dict(stage)
        return funnel

    # -- consistency ----------------------------------------------------------

    def violations(self, stats=None, strict: bool = False) -> list[str]:
        """Funnel-consistency violations (empty = consistent).

        Always checked, per LOD: the stage counts are monotonically
        non-increasing (``evaluated >= settled``) and the settle split
        adds up (``confirmed + rejected + degraded == settled``).

        With ``stats`` (a :class:`~repro.core.stats.QueryStats`): the
        per-LOD pair counters must equal the pairs ledger exactly, and
        candidates must match. With ``strict`` (sound only for queries
        that ran to completion): every result is accounted to exactly
        one confirmation path (``confirmed_total == stats.results``).
        """
        problems: list[str] = []
        for lod, stage in sorted(self.stages.items()):
            if stage.settled > stage.evaluated:
                problems.append(
                    f"LOD {lod}: settled {stage.settled} > evaluated {stage.evaluated}"
                )
            split = stage.confirmed + stage.rejected + stage.degraded
            if split != stage.settled:
                problems.append(
                    f"LOD {lod}: confirmed {stage.confirmed} + rejected "
                    f"{stage.rejected} + degraded {stage.degraded} != "
                    f"settled {stage.settled}"
                )
        if self.candidates < self.mbb_pruned:
            problems.append(
                f"mbb_pruned {self.mbb_pruned} > candidates {self.candidates}"
            )
        # Candidates bound per-LOD entry: no LOD can refine more pairs
        # than entered refinement after the MBB prune.
        for lod, stage in sorted(self.stages.items()):
            if stage.evaluated > self.candidates - self.mbb_pruned:
                problems.append(
                    f"LOD {lod}: evaluated {stage.evaluated} > surviving "
                    f"candidates {self.candidates - self.mbb_pruned}"
                )
        if stats is not None:
            lods = (
                set(self.stages)
                | set(stats.pairs_evaluated_by_lod)
                | set(stats.pairs_pruned_by_lod)
            )
            for lod in sorted(lods):
                stage = self.stages.get(lod, FunnelStage())
                evaluated = stats.pairs_evaluated_by_lod.get(lod, 0)
                pruned = stats.pairs_pruned_by_lod.get(lod, 0)
                if stage.evaluated != evaluated:
                    problems.append(
                        f"LOD {lod}: funnel evaluated {stage.evaluated} != "
                        f"ledger evaluated {evaluated}"
                    )
                if stage.settled != pruned:
                    problems.append(
                        f"LOD {lod}: funnel settled {stage.settled} != "
                        f"ledger pruned {pruned}"
                    )
            if self.candidates != stats.candidates:
                problems.append(
                    f"funnel candidates {self.candidates} != "
                    f"stats candidates {stats.candidates}"
                )
            if strict and self.confirmed_total != stats.results:
                problems.append(
                    f"confirmed_total {self.confirmed_total} != "
                    f"stats results {stats.results}"
                )
        return problems

    def summary(self) -> str:
        """One-line digest: candidates -> evaluated -> confirmed."""
        evaluated = sum(s.evaluated for s in self.stages.values())
        return (
            f"candidates={self.candidates} mbb_pruned={self.mbb_pruned} "
            f"evaluated={evaluated} confirmed={self.confirmed_total} "
            f"(filter={self.filter_confirmed} final={self.confirmed_final}) "
            f"decoded_bytes={self.decoded_bytes_total}"
        )
