"""Opt-in sampling profiler with phase attribution and flamegraph export.

``EngineConfig(profiling=True)`` (or ``--profile`` on the CLI) attaches
a :class:`SamplingProfiler` to the engine: a daemon thread wakes every
``interval_seconds``, snapshots every thread's Python stack via
``sys._current_frames()``, and buckets each sample under the *phase*
the sampled thread is currently executing. Phases are maintained by a
per-thread stack that the pipeline pushes explicitly:

* :class:`~repro.obs.trace.TimedPhase` pushes ``filter`` / ``compute``
  around the executor's per-target phases;
* the decode provider pushes ``decode`` around the cache-miss ladder
  (decode work is *recorded* into the span tree after the fact, so the
  open-span stack alone can never see it — the phase stack can);
* the executor pushes ``other`` around the whole query, catching
  planning/merge bookkeeping.

Threads with an empty phase stack (anything outside a query) are
skipped, so the profiler only ever samples query work.

The result is a :class:`ProfileReport`: ``(phase, stack) -> samples``.
``to_collapsed()`` emits Brendan Gregg's collapsed-stack text (feed it
to ``flamegraph.pl`` or https://speedscope.app), ``top_self()`` is the
top-N self-time table, and ``phase_counts()`` gives per-phase sample
shares directly comparable to span ``phase_totals`` — the
``bench_regress`` harness asserts they agree within 15%.

Reports are picklable and mergeable: process-backend workers profile
their own chunks and ship the per-chunk report back inside
``ChunkOutcome.profile``; the parent folds them into its own report, so
one flamegraph covers every process that touched the query.

Overhead: with profiling off, the phase-stack push/pop is a
thread-local list append per phase (a handful per target, one per
cache-miss decode) — no sampling thread exists. With profiling on, the
sampler costs one stack walk per live thread per interval (default
2ms), typically <5% on the gate scene.
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager

__all__ = [
    "SamplingProfiler",
    "ProfileReport",
    "phase_scope",
    "push_phase",
    "pop_phase",
    "current_phase",
]

#: Default sampling interval: 2ms keeps per-phase shares accurate on
#: sub-second queries while staying far from profiler-dominated cost.
DEFAULT_INTERVAL_SECONDS = 0.002

#: Deepest stack preserved per sample; frames below are rolled up.
MAX_STACK_DEPTH = 48

# thread id -> that thread's phase stack (the list object is shared with
# the thread-local below, so readers never need the creating thread).
_STACKS: dict[int, list] = {}
_STACKS_LOCK = threading.Lock()


class _PhaseLocal(threading.local):
    """Per-thread phase stack, registered for cross-thread sampling."""

    def __init__(self):
        self.stack: list[str] = []
        with _STACKS_LOCK:
            # Overwrite any stale entry left by a finished thread whose
            # id the OS recycled — the old (empty) list must not absorb
            # this thread's pushes.
            _STACKS[threading.get_ident()] = self.stack


_LOCAL = _PhaseLocal()


def push_phase(name: str) -> None:
    """Mark this thread as executing ``name`` (until :func:`pop_phase`)."""
    _LOCAL.stack.append(name)


def pop_phase() -> None:
    stack = _LOCAL.stack
    if stack:
        stack.pop()


def current_phase() -> str | None:
    """This thread's innermost phase, if any."""
    stack = _LOCAL.stack
    return stack[-1] if stack else None


@contextmanager
def phase_scope(name: str):
    """Context manager form of :func:`push_phase` / :func:`pop_phase`."""
    _LOCAL.stack.append(name)
    try:
        yield
    finally:
        pop_phase()


# -- stack formatting -----------------------------------------------------------

# code object -> "module.qualname" (code objects are interned per
# function for the process lifetime, so the cache never goes stale).
_FRAME_NAMES: dict = {}


def _frame_label(code) -> str:
    label = _FRAME_NAMES.get(code)
    if label is None:
        module = os.path.basename(code.co_filename)
        if module.endswith(".py"):
            module = module[:-3]
        qualname = getattr(code, "co_qualname", code.co_name)
        label = _FRAME_NAMES[code] = f"{module}.{qualname}"
    return label


def _format_stack(frame) -> tuple:
    """Root-first tuple of frame labels, capped at MAX_STACK_DEPTH."""
    labels = []
    while frame is not None and len(labels) < MAX_STACK_DEPTH:
        labels.append(_frame_label(frame.f_code))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


# -- the report -----------------------------------------------------------------


class ProfileReport:
    """Aggregated samples: ``(phase, root-first stack tuple) -> count``.

    Picklable (plain dict of tuples) and mergeable, so per-chunk worker
    reports combine into one query-wide profile.
    """

    __slots__ = ("samples", "interval_seconds")

    def __init__(self, interval_seconds: float = DEFAULT_INTERVAL_SECONDS):
        self.samples: dict[tuple, int] = {}
        self.interval_seconds = interval_seconds

    def __getstate__(self):
        return {"samples": self.samples, "interval_seconds": self.interval_seconds}

    def __setstate__(self, state):
        self.samples = state["samples"]
        self.interval_seconds = state["interval_seconds"]

    @property
    def total_samples(self) -> int:
        return sum(self.samples.values())

    def add(self, phase: str, stack: tuple, count: int = 1) -> None:
        key = (phase, stack)
        self.samples[key] = self.samples.get(key, 0) + count

    def merge(self, other: "ProfileReport") -> None:
        for (phase, stack), count in other.samples.items():
            self.add(phase, stack, count)

    def phase_counts(self) -> dict[str, int]:
        """Samples per phase — comparable to span ``phase_totals`` shares."""
        out: dict[str, int] = {}
        for (phase, _stack), count in self.samples.items():
            out[phase] = out.get(phase, 0) + count
        return out

    def phase_shares(self) -> dict[str, float]:
        """Per-phase fraction of all samples (empty report -> empty dict)."""
        total = self.total_samples
        if not total:
            return {}
        return {
            phase: count / total for phase, count in self.phase_counts().items()
        }

    def to_collapsed(self) -> str:
        """Collapsed-stack text: ``phase;frame;frame count`` per line.

        The phase is the synthetic root frame, so a flamegraph renders
        one tower per pipeline phase. Lines are sorted for determinism.
        """
        lines = []
        for (phase, stack), count in self.samples.items():
            frames = ";".join((phase,) + stack)
            lines.append(f"{frames} {count}")
        lines.sort()
        return "\n".join(lines) + ("\n" if lines else "")

    def top_self(self, n: int = 10) -> list[tuple[str, str, int]]:
        """Top-``n`` ``(frame, phase, samples)`` by leaf (self) samples."""
        by_leaf: dict[tuple[str, str], int] = {}
        for (phase, stack), count in self.samples.items():
            leaf = stack[-1] if stack else phase
            key = (leaf, phase)
            by_leaf[key] = by_leaf.get(key, 0) + count
        ranked = sorted(by_leaf.items(), key=lambda item: (-item[1], item[0]))
        return [(leaf, phase, count) for (leaf, phase), count in ranked[:n]]

    def format_table(self, n: int = 10) -> str:
        """The top-N self-time table, rendered for terminals."""
        total = self.total_samples
        if not total:
            return "no samples collected"
        rows = [
            f"{'samples':>8}  {'share':>6}  {'phase':<8} frame",
            f"{'-' * 8}  {'-' * 6}  {'-' * 8} {'-' * 5}",
        ]
        for leaf, phase, count in self.top_self(n):
            rows.append(
                f"{count:>8}  {count / total:>6.1%}  {phase:<8} {leaf}"
            )
        return "\n".join(rows)


# -- the sampler ----------------------------------------------------------------


class SamplingProfiler:
    """A sampling-thread profiler bucketing by the active pipeline phase.

    Re-entrant: ``start``/``stop`` hold a nesting count so a probe query
    executing inside another query keeps one sampler running. ``take()``
    swaps the report out atomically — the process backend uses it to
    ship per-chunk deltas while the sampler keeps running.
    """

    def __init__(self, interval_seconds: float = DEFAULT_INTERVAL_SECONDS):
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be > 0")
        self.interval_seconds = interval_seconds
        self._lock = threading.Lock()
        self._report = ProfileReport(interval_seconds)
        self._depth = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._saved_switch_interval: float | None = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        with self._lock:
            self._depth += 1
            if self._thread is not None:
                return
            # The GIL switch interval (default 5ms) caps how often the
            # sampler thread can actually wake while query threads are
            # CPU-bound; drop it to the sampling interval so the
            # configured rate is real, and restore it on stop.
            self._saved_switch_interval = sys.getswitchinterval()
            sys.setswitchinterval(
                min(self._saved_switch_interval, self.interval_seconds)
            )
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        with self._lock:
            if self._depth > 0:
                self._depth -= 1
            if self._depth > 0:
                return
            thread = self._thread
            self._thread = None
            self._stop.set()
            saved = getattr(self, "_saved_switch_interval", None)
            if saved is not None:
                sys.setswitchinterval(saved)
                self._saved_switch_interval = None
        if thread is not None:
            thread.join(timeout=2.0)

    def take(self) -> ProfileReport:
        """Swap the accumulated report for a fresh one and return it."""
        with self._lock:
            report = self._report
            self._report = ProfileReport(self.interval_seconds)
        return report

    @property
    def report(self) -> ProfileReport:
        return self._report

    def absorb(self, report: ProfileReport | None) -> None:
        """Fold a shipped report (e.g. a worker chunk's) into this one."""
        if report is None:
            return
        with self._lock:
            self._report.merge(report)

    # -- sampler internals ----------------------------------------------------

    def _run(self) -> None:
        me = threading.get_ident()
        while not self._stop.wait(self.interval_seconds):
            self._sample(me)

    def _sample(self, me: int) -> None:
        frames = sys._current_frames()
        batch: list[tuple[str, tuple]] = []
        for tid, frame in frames.items():
            if tid == me:
                continue
            stack = _STACKS.get(tid)
            if not stack:
                continue
            try:
                phase = stack[-1]
            except IndexError:  # popped between the check and the read
                continue
            batch.append((phase, _format_stack(frame)))
        del frames
        if batch:
            with self._lock:
                for phase, stack in batch:
                    self._report.add(phase, stack)
