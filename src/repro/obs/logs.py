"""Structured (JSON-lines) event logging on top of stdlib ``logging``.

Degraded-mode decisions, salvage recoveries, task retries, and injected
faults are emitted as *events*: a short machine-readable event name plus
keyword fields, formatted as one JSON object per line by
:class:`JsonFormatter`. Everything rides the standard ``repro.*`` logger
hierarchy, so:

* with no configuration, events below WARNING are dropped at the usual
  stdlib cost of one level check — queries stay silent and fast;
* ``configure_json_logging()`` (or the ``repro obs`` CLI) attaches a
  JSON handler and the full event stream becomes greppable/parseable.

Usage::

    from repro.obs.logs import get_logger, log_event

    _LOG = get_logger("storage")
    log_event(_LOG, "salvage_load", dataset=name, lost=3, recovered=2)
"""

from __future__ import annotations

import json
import logging

__all__ = ["JsonFormatter", "get_logger", "log_event", "configure_json_logging"]

_ROOT = "repro"

# Library convention: a NullHandler keeps unconfigured WARNING+ events
# off stderr (stdlib lastResort) while still propagating to any handlers
# the application attaches (basicConfig, configure_json_logging, ...).
logging.getLogger(_ROOT).addHandler(logging.NullHandler())


class JsonFormatter(logging.Formatter):
    """Formats a record as one JSON object per line.

    The payload always carries ``ts`` (epoch seconds), ``level``,
    ``logger``, and ``event`` (the log message); keyword fields passed
    through :func:`log_event` are merged in at the top level.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": record.created,
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "event_fields", None)
        if fields:
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def get_logger(name: str) -> logging.Logger:
    """The ``repro.<name>`` logger (idempotent)."""
    if name == _ROOT or name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def log_event(logger: logging.Logger, event: str, *, level: int = logging.INFO, **fields) -> None:
    """Emit a structured event: ``event`` name plus keyword fields.

    Fields land as top-level keys in the JSON line (reserved keys ``ts``,
    ``level``, ``logger``, ``event`` win on collision). The enabled-level
    check happens first, so disabled events cost almost nothing.
    """
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"event_fields": fields})


def configure_json_logging(
    stream=None, level: int = logging.INFO
) -> logging.Handler:
    """Attach a JSON-lines handler to the ``repro`` logger tree.

    Returns the handler so callers (tests, the CLI) can detach it with
    ``logging.getLogger("repro").removeHandler(handler)``.
    """
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonFormatter())
    root = logging.getLogger(_ROOT)
    root.addHandler(handler)
    root.setLevel(level)
    return handler
