"""Low-overhead span tracing for the query pipeline.

A :class:`Tracer` produces a tree of :class:`Span` records — one per
``with tracer.span("refine", lod=2):`` block — carrying wall time, CPU
time, attributes, and children. The tree is the machine-readable form of
the paper's Fig. 10 time breakdown: the engine opens one root span per
query with ``filter`` / ``compute`` phase children, and the decode
provider attaches a ``decode`` span for every cache-miss decode.

Tracing is **off by default**. A disabled tracer hands out the shared
:data:`NOOP_SPAN` singleton — entering and exiting it does nothing, so
instrumented hot paths cost one attribute check and one method call when
tracing is off.

Exports:

* :meth:`Tracer.to_dict` / :meth:`Tracer.to_json` — the span tree;
* :meth:`Tracer.to_chrome_trace` — Chrome ``trace_event`` JSON that
  loads directly in ``chrome://tracing`` / Perfetto;
* :func:`phase_totals` — per-phase wall totals with the same accounting
  as :class:`~repro.core.stats.QueryStats` (decode time nested under
  ``compute`` is attributed to ``decode``), so trace and stats agree.

:class:`TimedPhase` is the bridge between the tracer and ``QueryStats``:
it times a block once and writes the *same* duration to both, which is
how the stats stay the stable user-facing summary while the trace holds
the detail.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager

from repro.obs.profile import pop_phase, push_phase

__all__ = [
    "Span",
    "Tracer",
    "TimedPhase",
    "NOOP_SPAN",
    "DISABLED_TRACER",
    "phase_totals",
    "self_time_table",
]


class _NoopSpan:
    """The do-nothing span a disabled tracer hands out (shared singleton)."""

    __slots__ = ()
    enabled = False
    wall_seconds = None
    cpu_seconds = None
    name = None
    children = ()
    attrs: dict = {}

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        return self


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed region of the pipeline, with attributes and children."""

    __slots__ = (
        "name", "attrs", "children", "wall_seconds", "cpu_seconds",
        "start_offset", "thread_id", "_tracer", "_start_wall", "_start_cpu",
    )

    enabled = True

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.wall_seconds: float | None = None
        self.cpu_seconds: float | None = None
        self.start_offset: float = 0.0
        self.thread_id: int = 0
        self._tracer = tracer

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.thread_id = threading.get_ident()
        self._tracer._push(self)
        self._start_cpu = time.process_time()
        self._start_wall = time.perf_counter()
        self.start_offset = self._start_wall - self._tracer.epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_seconds = time.perf_counter() - self._start_wall
        self.cpu_seconds = time.process_time() - self._start_cpu
        if exc_type is not None:
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._tracer._pop(self)
        return False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_offset": self.start_offset,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "thread_id": self.thread_id,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_payload(cls, data: dict, rebase: float = 0.0) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output.

        The inverse direction exists for the process query backend:
        workers ship their span trees as plain dicts (a ``Span`` holds a
        tracer backref and is not picklable) and the parent re-attaches
        the rebuilt trees under its own query root. ``rebase`` shifts
        every ``start_offset`` by a constant — worker offsets are
        relative to the *worker's* tracer epoch, so the parent rebases
        them onto its own timeline. Durations are preserved verbatim,
        which is what keeps trace/stats phase agreement exact across the
        process boundary.
        """
        span = cls.__new__(cls)
        span.name = data["name"]
        span.attrs = dict(data.get("attrs", {}))
        span.wall_seconds = data.get("wall_seconds")
        span.cpu_seconds = data.get("cpu_seconds")
        span.start_offset = data.get("start_offset", 0.0) + rebase
        span.thread_id = data.get("thread_id", 0)
        span._tracer = None
        span.children = [
            cls.from_payload(child, rebase) for child in data.get("children", ())
        ]
        return span

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        wall = f"{self.wall_seconds:.6f}s" if self.wall_seconds is not None else "open"
        return f"<Span {self.name} {wall} children={len(self.children)}>"


class Tracer:
    """Produces spans and owns the resulting trace tree.

    Span nesting follows the per-thread call stack: a span entered while
    another is open on the same thread becomes its child; otherwise it
    becomes a root. ``clear()`` drops collected roots (e.g. between
    queries when only the latest trace matters).
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.roots: list[Span] = []
        self.epoch = time.perf_counter()
        self.epoch_unix = time.time()
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- span lifecycle -------------------------------------------------------

    def span(self, name: str, **attrs):
        """A context-managed span; the shared no-op when disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs)

    def record(self, name: str, wall_seconds: float, cpu_seconds: float = 0.0, **attrs) -> None:
        """Attach an already-measured span (e.g. a decode timed at its source).

        The explicit duration is stored verbatim, so a caller that also
        accumulates the same measurement elsewhere (``QueryStats``,
        provider counters) can never disagree with the trace.
        """
        if not self.enabled:
            return
        span = Span(self, name, attrs)
        span.thread_id = threading.get_ident()
        now = time.perf_counter()
        span.start_offset = max(0.0, now - wall_seconds - self.epoch)
        span.wall_seconds = wall_seconds
        span.cpu_seconds = cpu_seconds
        self._attach(span)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    @contextmanager
    def adopt(self, span):
        """Make ``span`` this thread's innermost open span for a block.

        Span nesting is per-thread, so work fanned out to a pool would
        otherwise surface as orphan roots. A worker that adopts the
        query's root span attaches its own spans underneath it instead.
        Adoption only borrows the span: on exit it is popped without
        being re-attached (the owning thread closes it for real).
        """
        if not self.enabled or span is None or not getattr(span, "enabled", False):
            yield
            return
        self._push(span)
        try:
            yield
        finally:
            stack = getattr(self._tls, "stack", None)
            if stack and stack[-1] is span:
                stack.pop()

    def _push(self, span: Span) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # exception-torn stack: unwind to span
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        self._attach(span)

    def _attach(self, span: Span) -> None:
        parent = self.current()
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    def clear(self) -> None:
        with self._lock:
            self.roots = []

    # -- export ---------------------------------------------------------------

    def walk(self):
        for root in list(self.roots):
            yield from root.walk()

    def to_dict(self) -> dict:
        return {
            "epoch_unix": self.epoch_unix,
            "enabled": self.enabled,
            "spans": [root.to_dict() for root in self.roots],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def to_chrome_trace(self) -> dict:
        """Chrome ``trace_event`` JSON (complete ``"X"`` events).

        Load the dumped file in ``chrome://tracing`` or
        https://ui.perfetto.dev to see the query timeline.
        """
        pid = os.getpid()
        events = []
        for span in self.walk():
            if span.wall_seconds is None:
                continue
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": round(span.start_offset * 1e6, 3),
                    "dur": round(span.wall_seconds * 1e6, 3),
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": {k: _jsonable(v) for k, v in span.attrs.items()},
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"epoch_unix": self.epoch_unix},
        }


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


#: Shared disabled tracer for call sites that always want *a* tracer
#: (e.g. :class:`~repro.core.refine.RefineContext` outside the engine).
DISABLED_TRACER = Tracer(enabled=False)


class TimedPhase:
    """Times a block once into both a ``QueryStats`` phase and a span.

    ``with TimedPhase(tracer, stats, "filter"):`` accumulates into
    ``stats.filter_seconds`` exactly the duration the span records (when
    tracing is enabled), so the trace tree and the stats summary can
    never drift apart. With tracing disabled the phase times itself and
    the only tracer artifact touched is the no-op span singleton.
    """

    __slots__ = ("_span", "_stats", "_attr", "_name", "_start")

    def __init__(self, tracer: Tracer, stats, name: str, **attrs):
        attr = f"{name}_seconds"
        if not hasattr(stats, attr):
            raise AttributeError(f"unknown phase {name!r}")
        self._attr = attr
        self._name = name
        self._stats = stats
        self._span = tracer.span(name, **attrs)

    def __enter__(self):
        self._span.__enter__()
        push_phase(self._name)
        self._start = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        pop_phase()
        self._span.__exit__(exc_type, exc, tb)
        wall = self._span.wall_seconds
        if wall is None:  # disabled tracing: use our own measurement
            wall = elapsed
        setattr(self._stats, self._attr, getattr(self._stats, self._attr) + wall)
        return False


def phase_totals(spans) -> dict[str, float]:
    """Fig. 10 phase totals from a span tree, QueryStats-compatible.

    Sums wall time per phase name across ``spans`` (an iterable of root
    :class:`Span` objects, or a :class:`Tracer`). ``decode`` spans nested
    under a ``compute`` span are *subtracted* from the compute total —
    the same attribution :meth:`ThreeDPro._finish_stats` applies — so
    the returned ``filter`` / ``decode`` / ``compute`` values match the
    corresponding ``QueryStats`` fields.
    """
    if isinstance(spans, Tracer):
        spans = spans.roots
    totals = {"filter": 0.0, "decode": 0.0, "compute": 0.0}

    def visit(span: Span, in_compute: bool) -> None:
        wall = span.wall_seconds or 0.0
        if span.name in totals:
            totals[span.name] += wall
        if span.name == "decode" and in_compute:
            totals["compute"] -= wall
        nested = in_compute or span.name == "compute"
        for child in span.children:
            visit(child, nested)

    for root in spans:
        visit(root, False)
    return totals


def self_time_table(spans, n: int | None = None) -> list[dict]:
    """Per-span-name self time over a span tree, largest first.

    A span's *self* time is its wall time minus the wall time of its
    direct children (floored at zero — children recorded on other
    threads can overlap their parent). Accepts an iterable of root
    :class:`Span` objects or a :class:`Tracer`; returns up to ``n`` rows
    of ``{"name", "count", "self_seconds", "total_seconds"}``.
    """
    if isinstance(spans, Tracer):
        spans = spans.roots
    rows: dict[str, dict] = {}
    for root in spans:
        for span in root.walk():
            wall = span.wall_seconds or 0.0
            child_wall = sum(c.wall_seconds or 0.0 for c in span.children)
            row = rows.setdefault(
                span.name,
                {"name": span.name, "count": 0, "self_seconds": 0.0, "total_seconds": 0.0},
            )
            row["count"] += 1
            row["self_seconds"] += max(0.0, wall - child_wall)
            row["total_seconds"] += wall
    ranked = sorted(rows.values(), key=lambda r: (-r["self_seconds"], r["name"]))
    return ranked[:n] if n is not None else ranked
