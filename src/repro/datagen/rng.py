"""Deterministic randomness helpers for the data generators."""

from __future__ import annotations

import numpy as np

__all__ = ["random_unit_vectors", "random_rotation"]


def random_unit_vectors(rng: np.random.Generator, n: int) -> np.ndarray:
    """``n`` uniformly distributed unit vectors, shape (n, 3)."""
    v = rng.normal(size=(n, 3))
    norms = np.linalg.norm(v, axis=1, keepdims=True)
    # Degenerate draws are astronomically unlikely; guard anyway.
    norms[norms < 1e-12] = 1.0
    return v / norms


def random_rotation(rng: np.random.Generator) -> np.ndarray:
    """A uniformly random 3x3 rotation matrix (QR of a Gaussian)."""
    m = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 2] = -q[:, 2]
    return q
