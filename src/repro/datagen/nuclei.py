"""Nucleus generation: regular-shaped, near-convex small objects.

A nucleus is an icosphere whose vertices are pushed radially by a smooth
low-frequency bump field, then anisotropically scaled and rotated. The
perturbation is star-shaped (radius stays positive), so the mesh remains
closed and manifold; keeping the bump amplitude small keeps almost every
vertex protruding — matching the paper's ~99% protruding statistic for
nuclei.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.rng import random_rotation, random_unit_vectors
from repro.mesh.polyhedron import Polyhedron
from repro.mesh.primitives import icosphere

__all__ = ["make_nucleus", "nuclei_dataset", "paired_nuclei_datasets"]


def make_nucleus(
    rng: np.random.Generator,
    center=(0.0, 0.0, 0.0),
    radius: float = 1.0,
    subdivisions: int = 2,
    bumpiness: float = 0.08,
    elongation: float = 0.25,
    n_bumps: int = 6,
) -> Polyhedron:
    """One nucleus mesh (``20 * 4**subdivisions`` faces).

    ``bumpiness`` scales the radial noise; ``elongation`` the random
    anisotropic stretch. Defaults give gently irregular ellipsoids.
    """
    base = icosphere(subdivisions, radius=1.0)
    directions = base.vertices / np.linalg.norm(base.vertices, axis=1, keepdims=True)

    # Smooth bump field: a sum of squared-cosine lobes around random axes.
    lobes = random_unit_vectors(rng, n_bumps)
    weights = rng.uniform(-1.0, 1.0, size=n_bumps)
    field = (weights[None, :] * np.maximum(directions @ lobes.T, 0.0) ** 2).sum(axis=1)
    field /= max(1.0, np.abs(field).max())
    radial = 1.0 + bumpiness * field

    stretch = 1.0 + rng.uniform(-elongation, elongation, size=3)
    rotation = random_rotation(rng)
    vertices = directions * radial[:, None] * stretch[None, :]
    vertices = vertices @ rotation.T * radius + np.asarray(center, dtype=np.float64)
    return Polyhedron(vertices, base.faces)


def _grid_centers(rng, count, region_low, region_high, spacing, jitter, compact):
    """Jittered-lattice placement: non-intersecting by construction.

    With ``compact=True`` the cells are drawn from the smallest centered
    sub-lattice that holds ``count`` objects, packing them densely (like
    nuclei in tissue) instead of scattering them over the whole region.
    """
    low = np.asarray(region_low, dtype=np.float64)
    high = np.asarray(region_high, dtype=np.float64)
    counts = np.maximum(((high - low) / spacing).astype(int), 1)
    capacity = int(np.prod(counts))
    if capacity < count:
        raise ValueError(
            f"region fits only {capacity} objects at spacing {spacing}; "
            f"asked for {count}"
        )
    if compact:
        # Smallest centered subcube with ~30% slack over `count`.
        side = int(np.ceil((count * 1.3) ** (1.0 / 3.0)))
        sub = np.minimum(counts, side)
        while int(np.prod(sub)) < count:
            grow = int(np.argmax(counts - sub))
            if sub[grow] >= counts[grow]:
                grow = int(np.argmax(counts > sub))
            sub[grow] += 1
        offset = (counts - sub) // 2
        sub_capacity = int(np.prod(sub))
        cells = rng.choice(sub_capacity, size=count, replace=False)
        i = cells // (sub[1] * sub[2]) + offset[0]
        j = (cells // sub[2]) % sub[1] + offset[1]
        k = cells % sub[2] + offset[2]
    else:
        cells = rng.choice(capacity, size=count, replace=False)
        i = cells // (counts[1] * counts[2])
        j = (cells // counts[2]) % counts[1]
        k = cells % counts[2]
    centers = low + (np.stack([i, j, k], axis=1) + 0.5) * spacing
    centers += rng.uniform(-jitter, jitter, size=centers.shape)
    return centers


def nuclei_dataset(
    count: int,
    seed: int = 0,
    region_low=(0.0, 0.0, 0.0),
    region_high=(100.0, 100.0, 100.0),
    radius: float = 1.0,
    subdivisions: int = 2,
    compact: bool = True,
    **nucleus_kwargs,
) -> list[Polyhedron]:
    """``count`` nuclei on a jittered lattice; objects never intersect.

    Lattice spacing is 2.6x the nominal radius, leaving clearance beyond
    the worst-case bump+stretch envelope; ``compact`` packs the nuclei
    into a dense centered cluster (the tissue-like default).
    """
    rng = np.random.default_rng(seed)
    spacing = 2.6 * radius * (1.0 + nucleus_kwargs.get("elongation", 0.25))
    jitter = 0.05 * radius
    centers = _grid_centers(
        rng, count, region_low, region_high, spacing, jitter, compact
    )
    return [
        make_nucleus(
            rng, center=tuple(c), radius=radius, subdivisions=subdivisions, **nucleus_kwargs
        )
        for c in centers
    ]


def paired_nuclei_datasets(
    count: int,
    seed: int = 0,
    displacement: float = 1.0,
    **dataset_kwargs,
) -> tuple[list[Polyhedron], list[Polyhedron]]:
    """Two nuclei datasets mimicking alternative segmentation outputs.

    Dataset B contains, for every nucleus in A, a re-generated nucleus at
    a displaced center — the paper's INT-NN workload (compare an
    algorithm's segmentation against ground truth). The default spread
    mixes outcomes: many counterparts overlap, others drift apart, so
    intersection refinement exercises both early returns and full-LOD
    negatives.
    """
    dataset_a = nuclei_dataset(count, seed=seed, **dataset_kwargs)
    rng = np.random.default_rng(seed + 1)
    radius = dataset_kwargs.get("radius", 1.0)
    subdivisions = dataset_kwargs.get("subdivisions", 2)
    dataset_b = []
    for mesh in dataset_a:
        center = np.asarray(mesh.aabb.center)
        offset = rng.uniform(-displacement, displacement, size=3) * radius
        dataset_b.append(
            make_nucleus(
                rng,
                center=tuple(center + offset),
                radius=radius * rng.uniform(0.9, 1.1),
                subdivisions=subdivisions,
            )
        )
    return dataset_a, dataset_b
