"""Assembled tissue scenes: the dataset combinations of the paper's §6.3.

A :class:`TissueScene` bundles the three raw collections every benchmark
needs — two nuclei datasets (alternative segmentations of the same
tissue) and one vessel dataset sharing the same region — so the five
test types (INT-NN, WN-NN, WN-NV, NN-NN, NN-NV) all draw from one
deterministic generator call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datagen.nuclei import paired_nuclei_datasets
from repro.datagen.vessels import VesselSpec, vessel_dataset
from repro.mesh.polyhedron import Polyhedron

__all__ = ["TissueScene", "make_tissue_scene"]


@dataclass
class TissueScene:
    """Raw polyhedra for one synthetic tissue block."""

    nuclei_a: list[Polyhedron]
    nuclei_b: list[Polyhedron]
    vessels: list[Polyhedron]
    seed: int = 0
    params: dict = field(default_factory=dict)

    @property
    def summary(self) -> dict:
        return {
            "nuclei_a": len(self.nuclei_a),
            "nuclei_b": len(self.nuclei_b),
            "vessels": len(self.vessels),
            "nucleus_faces": self.nuclei_a[0].num_faces if self.nuclei_a else 0,
            "vessel_faces": self.vessels[0].num_faces if self.vessels else 0,
        }


def make_tissue_scene(
    n_nuclei: int = 200,
    n_vessels: int = 2,
    seed: int = 0,
    region: float = 60.0,
    nucleus_subdivisions: int = 2,
    nucleus_radius: float = 1.0,
    vessel_spec: VesselSpec | None = None,
) -> TissueScene:
    """Generate a complete scene.

    ``region`` is the edge length of the cubic tissue block. Nuclei A/B
    come from :func:`paired_nuclei_datasets` (INT workloads); vessels
    share the same region (the NV workloads measure nuclei against
    them). All randomness derives from ``seed``.
    """
    high = (region, region, region)
    nuclei_a, nuclei_b = paired_nuclei_datasets(
        n_nuclei,
        seed=seed,
        region_high=high,
        radius=nucleus_radius,
        subdivisions=nucleus_subdivisions,
    )
    vessels = (
        vessel_dataset(
            n_vessels, seed=seed + 17, region_high=high, spec=vessel_spec
        )
        if n_vessels
        else []
    )
    return TissueScene(
        nuclei_a,
        nuclei_b,
        vessels,
        seed=seed,
        params={
            "n_nuclei": n_nuclei,
            "n_vessels": n_vessels,
            "region": region,
            "nucleus_subdivisions": nucleus_subdivisions,
        },
    )
