"""Synthetic datasets standing in for the paper's brain-tissue data.

The paper evaluates on ~10M reconstructed nuclei (regular, near-convex,
~300 faces) and ~50K bifurcated vessels (~30K faces, ~5 bifurcations).
Those datasets are proprietary; this package procedurally generates the
same *shape classes* deterministically by seed:

* nuclei — radially perturbed, anisotropically scaled icospheres placed
  on a jittered grid so objects in one dataset never intersect;
* vessels — unions of capped tubes swept along the branches of a random
  bifurcating tree.

Scales are configurable so the benchmarks can run paper-shaped workloads
at pure-Python-friendly sizes.
"""

from repro.datagen.nuclei import make_nucleus, nuclei_dataset, paired_nuclei_datasets
from repro.datagen.scenes import TissueScene, make_tissue_scene
from repro.datagen.vessels import make_vessel, vessel_dataset

__all__ = [
    "make_nucleus",
    "nuclei_dataset",
    "paired_nuclei_datasets",
    "TissueScene",
    "make_tissue_scene",
    "make_vessel",
    "vessel_dataset",
]
