"""Vessel generation: large bifurcated tube structures.

A vessel is grown as a random binary tree of centerline branches; each
branch is swept into a capped tube and the tubes are concatenated into
one polyhedron (a closed mesh with multiple components that overlap at
the joints — the union covers a connected bifurcated volume). Joints and
tapering create plenty of recessing geometry, matching the paper's ~75%
protruding statistic for vessels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.rng import random_unit_vectors
from repro.mesh.polyhedron import Polyhedron
from repro.mesh.primitives import tube_along_path

__all__ = ["VesselSpec", "make_vessel", "vessel_dataset", "merge_polyhedra"]


@dataclass(frozen=True)
class VesselSpec:
    """Knobs controlling one vessel's size and complexity.

    Defaults produce ~5 bifurcations and a few thousand faces; raise
    ``points_per_branch`` / ``segments`` toward the paper's ~30K faces.
    """

    bifurcations: int = 5
    points_per_branch: int = 8
    segments: int = 10
    trunk_radius: float = 1.0
    radius_decay: float = 0.75
    branch_length: float = 8.0
    meander: float = 0.35
    spread: float = 0.8


def merge_polyhedra(parts: list[Polyhedron]) -> Polyhedron:
    """Concatenate closed meshes into one polyhedron (offsetting indices)."""
    if not parts:
        raise ValueError("nothing to merge")
    vertices = []
    faces = []
    offset = 0
    for part in parts:
        vertices.append(part.vertices)
        faces.append(part.faces + offset)
        offset += part.num_vertices
    return Polyhedron(np.vstack(vertices), np.vstack(faces), copy=False)


def _grow_branch(rng, start, direction, spec, radius, depth, tubes):
    """Recursively grow a branch and its children; appends tube meshes."""
    direction = direction / np.linalg.norm(direction)
    length = spec.branch_length * (spec.radius_decay**depth)
    step = length / spec.points_per_branch

    points = [np.asarray(start, dtype=np.float64)]
    heading = direction.copy()
    for _ in range(spec.points_per_branch):
        heading = heading + spec.meander * rng.normal(size=3)
        heading /= np.linalg.norm(heading)
        points.append(points[-1] + heading * step)
    path = np.asarray(points)

    end_radius = radius * spec.radius_decay
    radii = np.linspace(radius, end_radius, len(path))
    tubes.append(tube_along_path(path, radii, segments=spec.segments))

    if depth >= spec.bifurcations:
        return
    # Bifurcate: two children leaving the branch tip at spread angles.
    ortho = random_unit_vectors(rng, 1)[0]
    ortho -= heading * float(ortho @ heading)
    ortho /= np.linalg.norm(ortho)
    for sign in (1.0, -1.0):
        child_dir = heading + sign * spec.spread * ortho
        _grow_branch(
            rng,
            path[-1],
            child_dir,
            spec,
            end_radius,
            depth + 1,
            tubes,
        )


def make_vessel(
    rng: np.random.Generator,
    start=(0.0, 0.0, 0.0),
    direction=(0.0, 0.0, 1.0),
    spec: VesselSpec | None = None,
) -> Polyhedron:
    """One bifurcated vessel mesh.

    The returned polyhedron has ``2**(bifurcations+1) - 1`` branch tubes
    (a full binary tree when every level bifurcates once per side is
    pruned to one split per depth level here: each depth adds 2 children
    per branch, bounded by ``spec.bifurcations`` levels).
    """
    spec = spec or VesselSpec()
    tubes: list[Polyhedron] = []
    _grow_branch(
        rng,
        np.asarray(start, dtype=np.float64),
        np.asarray(direction, dtype=np.float64),
        spec,
        spec.trunk_radius,
        0,
        tubes,
    )
    return merge_polyhedra(tubes)


def vessel_dataset(
    count: int,
    seed: int = 0,
    region_low=(0.0, 0.0, 0.0),
    region_high=(100.0, 100.0, 100.0),
    spec: VesselSpec | None = None,
) -> list[Polyhedron]:
    """``count`` vessels spread over a region on a jittered lattice."""
    spec = spec or VesselSpec()
    rng = np.random.default_rng(seed)
    low = np.asarray(region_low, dtype=np.float64)
    high = np.asarray(region_high, dtype=np.float64)
    # Footprint of one vessel: total tree height plus lateral wander.
    # Cells are two reaches wide so neighbouring vessels cannot touch.
    reach = spec.branch_length * sum(
        spec.radius_decay**d for d in range(spec.bifurcations + 1)
    )
    n_axis = max(1, int(np.floor(min(high - low) / max(2.0 * reach, 1e-9))))
    if n_axis**3 < count:
        raise ValueError(
            f"region fits only {n_axis ** 3} vessels of reach {reach:.1f}; "
            f"asked for {count}"
        )
    cells = rng.choice(n_axis**3, size=count, replace=False)
    i = cells // (n_axis * n_axis)
    j = (cells // n_axis) % n_axis
    k = cells % n_axis
    spacing = (high - low) / n_axis
    centers = low + (np.stack([i, j, k], axis=1) + 0.5) * spacing

    vessels = []
    for center in centers:
        direction = random_unit_vectors(rng, 1)[0]
        vessels.append(
            make_vessel(rng, start=tuple(center), direction=tuple(direction), spec=spec)
        )
    return vessels
