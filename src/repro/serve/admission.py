"""Admission control: bounded in-flight work, bounded waiting, fast rejection.

The server admits at most ``max_inflight`` concurrently executing
queries; up to ``max_queue`` more may wait for a slot. Beyond that the
request is rejected *immediately* with 429 — an overloaded server must
shed load without letting the backlog grow unbounded — and a request
that waited its full ``queue_timeout_seconds`` without getting a slot
is rejected with 503. In-flight queries are never disturbed by either.

Queue depth and in-flight count are exported as gauges
(``repro_server_inflight`` / ``repro_server_queued``) and every
rejection increments ``repro_server_rejected_total{reason=...}``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.core.errors import EngineError
from repro.obs import metrics as obs_metrics

__all__ = ["AdmissionController", "OverloadedError"]


class OverloadedError(EngineError):
    """The server cannot admit this request right now.

    ``status`` is the HTTP status the server maps it to: 429 when the
    wait queue is full (retry later), 503 when the request waited its
    whole timeout without getting a slot.
    """

    def __init__(self, status: int, reason: str, detail: str):
        super().__init__(detail)
        self.status = status
        self.reason = reason


class AdmissionController:
    """A semaphore-bounded admission gate with a bounded wait queue."""

    def __init__(
        self,
        max_inflight: int,
        max_queue: int,
        queue_timeout_seconds: float = 30.0,
        metrics=None,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout_seconds = queue_timeout_seconds
        self._slots = threading.Semaphore(max_inflight)
        self._lock = threading.Lock()
        self._inflight = 0
        self._queued = 0
        registry = metrics if metrics is not None else obs_metrics.REGISTRY
        self._g_inflight = registry.gauge(
            "repro_server_inflight", "Queries currently executing."
        )
        self._g_queued = registry.gauge(
            "repro_server_queued", "Requests waiting for an execution slot."
        )
        self._m_rejected = registry.counter(
            "repro_server_rejected_total",
            "Requests rejected by admission control, by reason.",
        )
        self._g_inflight.set(0)
        self._g_queued.set(0)

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queued(self) -> int:
        return self._queued

    @contextmanager
    def slot(self):
        """Hold one execution slot; raises :class:`OverloadedError` instead
        of admitting past the configured bounds."""
        if not self._slots.acquire(blocking=False):
            with self._lock:
                if self._queued >= self.max_queue:
                    self._m_rejected.inc(reason="queue_full")
                    raise OverloadedError(
                        429,
                        "queue_full",
                        f"server at capacity: {self.max_inflight} in flight, "
                        f"{self._queued} queued (max {self.max_queue})",
                    )
                self._queued += 1
                self._g_queued.set(self._queued)
            try:
                admitted = self._slots.acquire(timeout=self.queue_timeout_seconds)
            finally:
                with self._lock:
                    self._queued -= 1
                    self._g_queued.set(self._queued)
            if not admitted:
                self._m_rejected.inc(reason="queue_timeout")
                raise OverloadedError(
                    503,
                    "queue_timeout",
                    f"no execution slot freed within "
                    f"{self.queue_timeout_seconds:.0f}s",
                )
        with self._lock:
            self._inflight += 1
            self._g_inflight.set(self._inflight)
        try:
            yield
        finally:
            with self._lock:
                self._inflight -= 1
                self._g_inflight.set(self._inflight)
            self._slots.release()
