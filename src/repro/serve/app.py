"""The query service and its stdlib HTTP front end.

:class:`QueryService` is the transport-independent core — it owns the
engine, the admission controller, and the single-flight map, and is
what the tests drive directly. :func:`make_server` wraps it in a
``ThreadingHTTPServer`` (one thread per connection, stdlib only).

Error mapping, uniform across routes::

    WireFormatError        -> 400 (malformed payload)
    DatasetNotLoadedError  -> 404 (unknown dataset name)
    OverloadedError        -> 429 queue full / 503 queue timeout
    other EngineError      -> 500

HTTP/1.0 responses with ``Connection: close``: buffered routes carry a
Content-Length; the streaming route writes NDJSON until EOF, which is
the framing (no chunked encoding needed).
"""

from __future__ import annotations

import json
import threading
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.config import resolve_setting
from repro.core.errors import (
    DatasetNotLoadedError,
    EngineError,
    WireFormatError,
)
from repro.core.plan import QuerySpec
from repro.obs.logs import get_logger, log_event
from repro.serve.admission import AdmissionController, OverloadedError
from repro.serve.coalesce import SingleFlight
from repro.serve.stream import FrameEmitter
from repro.serve.wire import spec_key

__all__ = ["QueryService", "make_server"]

_LOG = get_logger("serve")


class QueryService:
    """Datasets + admission + coalescing behind the wire schema."""

    def __init__(self, engine, max_inflight=None, max_queue=None,
                 queue_timeout_seconds: float = 30.0):
        self.engine = engine
        self.metrics = engine.metrics
        # The execution entry point, separable for tests (gate the
        # leader, count invocations) without monkeypatching the engine.
        self._execute = engine.execute
        self.admission = AdmissionController(
            resolve_setting("serve_max_inflight", override=max_inflight),
            resolve_setting("serve_max_queue", override=max_queue),
            queue_timeout_seconds=queue_timeout_seconds,
            metrics=self.metrics,
        )
        self.flights = SingleFlight(metrics=self.metrics)
        self._m_requests = self.metrics.counter(
            "repro_server_requests_total", "HTTP requests served, by route and code."
        )

    # -- routes ----------------------------------------------------------------

    def healthz(self) -> dict:
        return {"ok": True, "datasets": len(self.engine.dataset_names)}

    def datasets(self) -> dict:
        # ``storage`` reports where each dataset's objects live ("shard"
        # datasets are memory-mapped and lazily materialized; "legacy"
        # and "memory" are fully resident) so operators can see which
        # loaded datasets share pages across process workers.
        return {
            "datasets": self.engine.dataset_names,
            "storage": {
                name: self.engine.dataset(name).storage
                for name in self.engine.dataset_names
            },
        }

    def metrics_text(self) -> str:
        return self.metrics.to_prometheus()

    def parse_spec(self, payload) -> QuerySpec:
        """Wire payload -> normalized spec, dataset names verified.

        Name resolution happens *before* any admission or streaming
        headers so unknown datasets map to a clean 404.
        """
        spec = QuerySpec.from_wire(payload)
        for name in (spec.source, spec.target):
            if name is not None and name not in self.engine.dataset_names:
                raise DatasetNotLoadedError(name)
        return spec

    def query(self, payload) -> tuple[dict, bool]:
        """One buffered query; returns ``(result_wire, coalesced)``.

        Identical concurrent specs share one execution (and one decode
        fan-out); only the leader consumes an admission slot — followers
        cost the server nothing.
        """
        spec = self.parse_spec(payload)
        key = spec_key(spec)

        def run():
            with self.admission.slot():
                return self._execute(spec)

        result, leader = self.flights.run(key, run)
        log_event(
            _LOG, "serve_query", kind=spec.kind, coalesced=not leader,
            matches=result.total_matches, complete=result.complete,
        )
        return result.to_wire(), not leader

    def run_stream(self, spec: QuerySpec, emitter: FrameEmitter) -> None:
        """Drive one progressive query into ``emitter`` (headers already sent).

        Streaming requests never coalesce — frames are a per-connection
        side effect, not a shareable value — and attach the emitter as
        the spec's in-process progress hook.
        """
        emitter.emit_hello(spec)
        live = replace(spec, progress=emitter.pairs_hook)
        try:
            with self.admission.slot():
                result = self._execute(live)
        except OverloadedError as exc:
            emitter.emit_error(exc.status, str(exc))
            return
        except EngineError as exc:
            emitter.emit_error(500, str(exc))
            return
        # Catch-up: backends that strip the progress hook (process
        # workers) and paths without per-round settles still stream a
        # complete answer.
        emitter.flush_missing(result)
        emitter.emit_summary(result)
        log_event(
            _LOG, "serve_stream", kind=spec.kind,
            matches=result.total_matches, complete=result.complete,
        )


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP adapter over the :class:`QueryService` routes."""

    server_version = "repro-serve/1"

    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        _LOG.debug("http %s", format % args)

    def _send_json(self, status: int, payload: dict, route: str) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)
        self.service._m_requests.inc(route=route, code=str(status))

    def _send_error_json(self, status: int, message: str, route: str) -> None:
        if status == 429:
            # One well-behaved retry hint; the admission queue was full.
            self.send_response_only(status)
            self.send_header("Retry-After", "1")
            self.send_header("Content-Type", "application/json")
            body = json.dumps({"error": message}).encode("utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
            self.service._m_requests.inc(route=route, code=str(status))
            return
        self._send_json(status, {"error": message}, route)

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireFormatError(f"request body is not valid JSON: {exc}") from exc

    # -- verbs -----------------------------------------------------------------

    def do_GET(self):  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self._send_json(200, self.service.healthz(), "/healthz")
        elif self.path == "/metrics":
            body = self.service.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
            self.service._m_requests.inc(route="/metrics", code="200")
        elif self.path == "/v1/datasets":
            self._send_json(200, self.service.datasets(), "/v1/datasets")
        else:
            self._send_json(404, {"error": f"no route {self.path}"}, self.path)

    def do_POST(self):  # noqa: N802 - stdlib naming
        if self.path == "/v1/query":
            self._post_query()
        elif self.path == "/v1/query/stream":
            self._post_query_stream()
        else:
            self._send_json(404, {"error": f"no route {self.path}"}, self.path)

    def _post_query(self) -> None:
        route = "/v1/query"
        try:
            payload = self._read_json()
            result_wire, coalesced = self.service.query(payload)
        except WireFormatError as exc:
            self._send_error_json(400, str(exc), route)
        except DatasetNotLoadedError as exc:
            self._send_error_json(404, f"dataset not loaded: {exc}", route)
        except OverloadedError as exc:
            self._send_error_json(exc.status, str(exc), route)
        except EngineError as exc:
            self._send_error_json(500, str(exc), route)
        else:
            body = json.dumps(result_wire).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Connection", "close")
            if coalesced:
                self.send_header("X-Repro-Coalesced", "1")
            self.end_headers()
            self.wfile.write(body)
            self.service._m_requests.inc(route=route, code="200")

    def _post_query_stream(self) -> None:
        route = "/v1/query/stream"
        try:
            payload = self._read_json()
            spec = self.service.parse_spec(payload)
        except WireFormatError as exc:
            self._send_error_json(400, str(exc), route)
            return
        except DatasetNotLoadedError as exc:
            self._send_error_json(404, f"dataset not loaded: {exc}", route)
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        emitter = FrameEmitter(self.wfile.write)
        self.service.run_stream(spec, emitter)
        self.service._m_requests.inc(route=route, code="200")


def make_server(engine, host: str = "127.0.0.1", port=None,
                max_inflight=None, max_queue=None,
                queue_timeout_seconds: float = 30.0) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server around ``engine``.

    ``port``/``max_inflight``/``max_queue`` resolve through the shared
    precedence chain (call-site override > ``REPRO_SERVE_*`` env >
    default); port 0 asks the OS for a free port — read it back from
    ``server.server_address``.
    """
    service = QueryService(
        engine, max_inflight=max_inflight, max_queue=max_queue,
        queue_timeout_seconds=queue_timeout_seconds,
    )
    server = ThreadingHTTPServer(
        (host, resolve_setting("serve_port", override=port)), _Handler
    )
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    return server


def serve_forever(server: ThreadingHTTPServer) -> None:
    """Blocking serve loop with a clean KeyboardInterrupt shutdown."""
    host, port = server.server_address[:2]
    log_event(_LOG, "serve_start", host=host, port=port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        log_event(_LOG, "serve_stop", host=host, port=port)


def _spawn(server: ThreadingHTTPServer) -> threading.Thread:
    """Run the serve loop on a daemon thread (tests and smoke scripts)."""
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread
