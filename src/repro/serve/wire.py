"""Canonical spec serialization: the coalescing key.

Two requests coalesce exactly when their *normalized* specs serialize
to the same canonical JSON — ``QuerySpec.to_wire`` normalizes first
(``nn`` becomes ``knn(k=1)``, defaults are materialized), so surface
spelling differences ("nn" vs "knn k=1") cannot split a flight, and
any semantic difference (another ``k``, another ``deadline_ms``)
cannot join one.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical_spec_json", "spec_key"]


def canonical_spec_json(spec) -> str:
    """The spec's normalized wire dict as sorted, minimal JSON."""
    return json.dumps(spec.to_wire(), sort_keys=True, separators=(",", ":"))


def spec_key(spec) -> str:
    """The single-flight map key for ``spec`` (sha256 of canonical JSON)."""
    return hashlib.sha256(canonical_spec_json(spec).encode("utf-8")).hexdigest()
