"""repro.serve: a long-lived HTTP/JSON query service.

The service keeps loaded datasets, compiled plans, and the shared
decode cache hot across requests, speaking the versioned wire schema
(:mod:`repro.core.plan`'s ``to_wire``/``from_wire``) over plain
stdlib HTTP:

* ``GET /healthz`` — liveness probe;
* ``GET /metrics`` — the engine's metrics registry as Prometheus text;
* ``GET /v1/datasets`` — loaded dataset names;
* ``POST /v1/query`` — one buffered query (spec wire in, result wire out);
* ``POST /v1/query/stream`` — NDJSON progressive frames: confirmed
  pairs per LOD round as refinement settles them, terminated by a
  stats + completeness summary frame.

Overload is governed by :class:`~repro.serve.admission.AdmissionController`
(bounded in-flight + bounded wait queue -> 429/503) and identical
concurrent buffered queries coalesce into one execution
(:class:`~repro.serve.coalesce.SingleFlight`).
"""

from repro.serve.admission import AdmissionController, OverloadedError
from repro.serve.app import QueryService, make_server
from repro.serve.client import RemoteEngine, RemoteError
from repro.serve.coalesce import SingleFlight
from repro.serve.stream import FrameEmitter, assemble_frames
from repro.serve.wire import canonical_spec_json, spec_key

__all__ = [
    "AdmissionController",
    "FrameEmitter",
    "OverloadedError",
    "QueryService",
    "RemoteEngine",
    "RemoteError",
    "SingleFlight",
    "assemble_frames",
    "canonical_spec_json",
    "make_server",
    "spec_key",
]
