"""Cross-request coalescing: one execution per identical in-flight spec.

A classic single-flight map keyed on the canonical normalized-spec hash
(:func:`repro.serve.wire.spec_key`): the first request with a given key
becomes the *leader* and actually executes; requests arriving with the
same key while the leader is still running become *followers* and block
until the leader finishes, then share its result object (sharing is
safe — callers only serialize the result to the wire). Keys part ways
the moment the leader finishes: a later identical request starts a
fresh flight and sees fresh data.

Leader failure propagates: followers re-raise the leader's exception,
since their request would have failed identically.
"""

from __future__ import annotations

import threading

from repro.obs import metrics as obs_metrics

__all__ = ["SingleFlight"]


class _Flight:
    __slots__ = ("done", "result", "error")

    def __init__(self):
        self.done = threading.Event()
        self.result = None
        self.error = None


class SingleFlight:
    """Deduplicate concurrent identical work under a keyed flight map."""

    def __init__(self, metrics=None):
        self._lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}
        registry = metrics if metrics is not None else obs_metrics.REGISTRY
        self._m_coalesced = registry.counter(
            "repro_server_coalesced_total",
            "Requests served from another in-flight identical query.",
        )

    def run(self, key: str, fn):
        """Execute ``fn`` once per concurrent ``key``.

        Returns ``(value, leader)`` — ``leader`` is False when this call
        waited on another request's execution instead of running its own.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = self._flights[key] = _Flight()
                leader = True
            else:
                leader = False
        if not leader:
            self._m_coalesced.inc()
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.result, False
        try:
            flight.result = fn()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
        return flight.result, True
