"""Progressive NDJSON streaming: confirmed pairs as refinement settles them.

Under FPR a pair confirmed at any LOD is final (the paper's property 2),
so the server can push confirmations to the client while the query is
still running — the stream is a sound anytime answer at every prefix.
Frames, one JSON object per line:

* ``{"frame": "hello", "schema_version": 1, "spec": {...}}`` — opens
  the stream, echoing the normalized spec;
* ``{"frame": "pairs", "target": tid, "lod": lod, "matches": [...]}``
  — matches confirmed for ``target`` at ``lod`` (pseudo-LODs: -1 =
  filter-definite, -2 = final selection, ``null`` = catch-up flush);
* ``{"frame": "summary", ...result wire sans pairs...}`` — terminates
  the stream with stats, completeness, and degraded targets;
* ``{"frame": "error", "status": ..., "error": "..."}`` — terminates a
  stream whose query failed after headers were sent.

The per-LOD frames ride the executor's in-process ``QuerySpec.progress``
hook. The process backend cannot call back across its boundary, so
:meth:`FrameEmitter.flush_missing` diffs the final result against what
was already emitted and flushes the remainder — under *any* backend the
pairs frames concatenate to exactly the buffered result.
"""

from __future__ import annotations

import json
import threading

from repro.core.jsonsafe import json_safe
from repro.core.plan import WIRE_SCHEMA_VERSION, QueryResult

__all__ = ["FrameEmitter", "assemble_frames"]


def _match_token(match) -> str:
    """A hashable identity for one match (int id or kNN triple)."""
    return json.dumps(json_safe(match), sort_keys=True, separators=(",", ":"))


class FrameEmitter:
    """Serialize frames to a byte sink, tracking what was already sent.

    ``write`` receives one encoded NDJSON line per frame. The emitter is
    the thread-safety boundary: the thread backend confirms pairs from
    several worker threads at once, and the lock serializes whole lines
    so frames never interleave mid-line.
    """

    def __init__(self, write):
        self._write = write
        self._lock = threading.Lock()
        # target id -> tokens of matches already emitted (catch-up diff).
        self._emitted: dict[int, set] = {}

    def _emit(self, frame: dict) -> None:
        line = json.dumps(json_safe(frame), separators=(",", ":")) + "\n"
        with self._lock:
            self._write(line.encode("utf-8"))

    def emit_hello(self, spec) -> None:
        self._emit({
            "frame": "hello",
            "schema_version": WIRE_SCHEMA_VERSION,
            "spec": spec.to_wire(),
        })

    def pairs_hook(self, target_id, lod, matches) -> None:
        """The ``QuerySpec.progress`` callback: one confirmed-pairs frame."""
        self.emit_pairs(target_id, lod, matches)

    def emit_pairs(self, target_id, lod, matches) -> None:
        if not matches:
            return
        tokens = self._emitted.setdefault(int(target_id), set())
        fresh = []
        for match in matches:
            token = _match_token(match)
            if token not in tokens:
                tokens.add(token)
                fresh.append(match)
        if not fresh:
            return
        self._emit({
            "frame": "pairs",
            "target": target_id,
            "lod": lod,
            "matches": fresh,
        })

    def flush_missing(self, result: QueryResult) -> None:
        """Emit whatever the final result holds that no frame carried yet.

        Guarantees frame-concat == buffered-result under backends that
        strip the in-process progress hook (process workers) and for
        confirmation paths without a per-round settle.
        """
        for tid, matches in result.pairs.items():
            seen = self._emitted.get(int(tid), set())
            missing = [m for m in matches if _match_token(m) not in seen]
            self.emit_pairs(tid, None, missing)

    def emit_summary(self, result: QueryResult) -> None:
        wire = result.to_wire()
        wire.pop("pairs", None)
        self._emit({"frame": "summary", **wire})

    def emit_error(self, status: int, message: str) -> None:
        self._emit({"frame": "error", "status": status, "error": message})


def assemble_frames(frames) -> QueryResult:
    """Fold a finished stream back into the equivalent buffered result.

    Pairs frames accumulate per target; non-kNN match lists are sorted
    (the buffered contract is a sorted source-id list — stream order is
    confirmation order), kNN frames already arrive in final ranked
    order. The summary frame supplies spec, stats, completeness, and
    degraded targets; an error frame raises ``RuntimeError``.
    """
    pairs: dict[int, list] = {}
    summary = None
    for frame in frames:
        kind = frame.get("frame")
        if kind == "pairs":
            pairs.setdefault(int(frame["target"]), []).extend(frame["matches"])
        elif kind == "summary":
            summary = {k: v for k, v in frame.items() if k != "frame"}
        elif kind == "error":
            raise RuntimeError(
                f"stream failed with status {frame.get('status')}: "
                f"{frame.get('error')}"
            )
    if summary is None:
        raise RuntimeError("stream ended without a summary frame")
    spec = summary.get("spec") or {}
    knn = spec.get("kind") == "knn"
    summary["pairs"] = {
        str(tid): (matches if knn else sorted(matches))
        for tid, matches in pairs.items()
    }
    return QueryResult.from_wire(summary)
