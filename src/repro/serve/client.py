"""A stdlib HTTP client for the query service.

:class:`RemoteEngine` mirrors the in-process engine's ``execute``
surface over the wire: specs go out as versioned JSON, results come
back through ``QueryResult.from_wire`` — so CLI code and tests run the
same calls against a local engine or a remote server and compare the
answers pair for pair.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.core.plan import QueryResult, QuerySpec
from repro.serve.stream import assemble_frames

__all__ = ["RemoteEngine", "RemoteError"]


class RemoteError(Exception):
    """The server answered with an error status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"server returned {status}: {message}")
        self.status = status
        self.message = message


class RemoteEngine:
    """``engine.execute``-shaped access to a running query service."""

    def __init__(self, base_url: str, timeout: float = 120.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------------

    def _request(self, path: str, payload=None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers,
            method="POST" if payload is not None else "GET",
        )
        try:
            return urllib.request.urlopen(req, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            raise RemoteError(exc.code, _error_message(exc)) from exc

    def _json(self, path: str, payload=None) -> dict:
        with self._request(path, payload) as resp:
            return json.loads(resp.read().decode("utf-8"))

    # -- API -------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._json("/healthz")

    def datasets(self) -> list[str]:
        return self._json("/v1/datasets")["datasets"]

    def metrics_text(self) -> str:
        with self._request("/metrics") as resp:
            return resp.read().decode("utf-8")

    def execute(self, spec: QuerySpec) -> QueryResult:
        """One buffered remote query, reconstructed as a ``QueryResult``."""
        return QueryResult.from_wire(self._json("/v1/query", spec.to_wire()))

    def execute_raw(self, payload: dict) -> dict:
        """Ship an already-built wire payload; returns the result wire dict."""
        return self._json("/v1/query", payload)

    def stream(self, spec: QuerySpec):
        """Yield decoded NDJSON frames of a progressive query, in order."""
        with self._request("/v1/query/stream", spec.to_wire()) as resp:
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def execute_stream(self, spec: QuerySpec) -> QueryResult:
        """Run a streaming query and assemble the frames into a result."""
        return assemble_frames(self.stream(spec))


def _error_message(exc: urllib.error.HTTPError) -> str:
    try:
        return json.loads(exc.read().decode("utf-8")).get("error", str(exc))
    except Exception:
        return str(exc)
