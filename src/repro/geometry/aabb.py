"""Axis-aligned bounding boxes and the distance ranges used by 3DPro.

The paper's filter step estimates the distance between two objects with a
range ``[MINDIST, MAXDIST]`` computed from their minimum bounding boxes
(Section 4.2):

* ``MINDIST`` is the smallest possible distance between any two points of
  the boxes (0 if they overlap);
* ``MAXDIST`` is the length of the diagonal of the box that unions the two
  boxes — an upper bound on the distance between any pair of points drawn
  from the two boxes, hence an upper bound on the object distance.

Both are provided as scalar functions and as batched numpy kernels so the
R-tree traversals can score many nodes at once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "AABB",
    "aabb_of_points",
    "box_mindist",
    "box_maxdist",
    "box_union_diagonal",
    "boxes_intersect",
    "boxes_mindist_batch",
    "boxes_maxdist_batch",
    "boxes_intersect_batch",
]


@dataclass(frozen=True)
class AABB:
    """An axis-aligned 3D bounding box with inclusive bounds.

    ``low`` and ``high`` are length-3 tuples; an AABB is considered valid
    when ``low[i] <= high[i]`` on every axis. Degenerate boxes (zero
    extent on one or more axes) are valid and show up naturally as the
    bounds of single points or axis-aligned faces.
    """

    low: tuple[float, float, float]
    high: tuple[float, float, float]

    @staticmethod
    def of_points(points: np.ndarray) -> "AABB":
        """Build the tight bounding box of an ``(n, 3)`` point array."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3 or points.shape[0] == 0:
            raise ValueError("expected a non-empty (n, 3) point array")
        low = points.min(axis=0)
        high = points.max(axis=0)
        return AABB(tuple(low.tolist()), tuple(high.tolist()))

    @staticmethod
    def empty() -> "AABB":
        """A canonical 'nothing' box that unions as the identity."""
        inf = math.inf
        return AABB((inf, inf, inf), (-inf, -inf, -inf))

    @property
    def is_empty(self) -> bool:
        return any(lo > hi for lo, hi in zip(self.low, self.high))

    @property
    def center(self) -> tuple[float, float, float]:
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.low, self.high))

    @property
    def extents(self) -> tuple[float, float, float]:
        return tuple(hi - lo for lo, hi in zip(self.low, self.high))

    @property
    def diagonal(self) -> float:
        """Length of the main diagonal (0 for empty boxes)."""
        if self.is_empty:
            return 0.0
        return math.sqrt(sum((hi - lo) ** 2 for lo, hi in zip(self.low, self.high)))

    @property
    def volume(self) -> float:
        if self.is_empty:
            return 0.0
        ex, ey, ez = self.extents
        return ex * ey * ez

    def union(self, other: "AABB") -> "AABB":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        low = tuple(min(a, b) for a, b in zip(self.low, other.low))
        high = tuple(max(a, b) for a, b in zip(self.high, other.high))
        return AABB(low, high)

    def expanded(self, margin: float) -> "AABB":
        """Grow the box by ``margin`` on all sides (used by within-queries)."""
        low = tuple(v - margin for v in self.low)
        high = tuple(v + margin for v in self.high)
        return AABB(low, high)

    def intersects(self, other: "AABB") -> bool:
        """Closed-interval overlap test (touching boxes intersect)."""
        return all(
            self.low[i] <= other.high[i] and other.low[i] <= self.high[i]
            for i in range(3)
        )

    def contains_box(self, other: "AABB") -> bool:
        return all(
            self.low[i] <= other.low[i] and other.high[i] <= self.high[i]
            for i in range(3)
        )

    def contains_point(self, point) -> bool:
        return all(self.low[i] <= point[i] <= self.high[i] for i in range(3))

    def mindist(self, other: "AABB") -> float:
        """Smallest distance between any two points of the boxes."""
        return box_mindist(self, other)

    def maxdist(self, other: "AABB") -> float:
        """The paper's MAXDIST: diagonal of the union of the two boxes."""
        return box_maxdist(self, other)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return (
            np.asarray(self.low, dtype=np.float64),
            np.asarray(self.high, dtype=np.float64),
        )


def aabb_of_points(points: np.ndarray) -> AABB:
    """Module-level alias of :meth:`AABB.of_points`."""
    return AABB.of_points(points)


def box_mindist(a: AABB, b: AABB) -> float:
    """Minimum distance between two boxes (0 when they overlap/touch)."""
    total = 0.0
    for i in range(3):
        gap = max(a.low[i] - b.high[i], b.low[i] - a.high[i], 0.0)
        total += gap * gap
    return math.sqrt(total)


def box_maxdist(a: AABB, b: AABB) -> float:
    """The paper's MAXDIST: the diagonal of the union of the two MBBs.

    This is the supremum of distances between any pair of points covered
    by the two boxes, so the true object distance never exceeds it.
    """
    return a.union(b).diagonal


def box_union_diagonal(a: AABB, b: AABB) -> float:
    """Synonym for :func:`box_maxdist`, named after its construction."""
    return box_maxdist(a, b)


def boxes_intersect(a: AABB, b: AABB) -> bool:
    return a.intersects(b)


def _split(boxes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    boxes = np.asarray(boxes, dtype=np.float64)
    if boxes.ndim != 2 or boxes.shape[1] != 6:
        raise ValueError("expected an (n, 6) array of [low, high] boxes")
    return boxes[:, :3], boxes[:, 3:]


def boxes_mindist_batch(boxes: np.ndarray, query: AABB) -> np.ndarray:
    """MINDIST from one query box to ``n`` boxes packed as ``(n, 6)``."""
    low, high = _split(boxes)
    qlow, qhigh = query.as_arrays()
    gap = np.maximum(np.maximum(low - qhigh, qlow - high), 0.0)
    return np.sqrt((gap * gap).sum(axis=1))


def boxes_maxdist_batch(boxes: np.ndarray, query: AABB) -> np.ndarray:
    """Paper-style MAXDIST from one query box to ``n`` boxes."""
    low, high = _split(boxes)
    qlow, qhigh = query.as_arrays()
    ulow = np.minimum(low, qlow)
    uhigh = np.maximum(high, qhigh)
    diag = uhigh - ulow
    return np.sqrt((diag * diag).sum(axis=1))


def boxes_intersect_batch(boxes: np.ndarray, query: AABB) -> np.ndarray:
    """Boolean mask of boxes whose closed extents overlap ``query``."""
    low, high = _split(boxes)
    qlow, qhigh = query.as_arrays()
    return np.all((low <= qhigh) & (qlow <= high), axis=1)
