"""Low-overhead numpy helpers for hot kernels.

``np.cross`` pays heavy per-call Python overhead (axis normalization,
moveaxis) that dominates small-batch geometry kernels; ``cross3`` is the
same product hand-written for trailing-axis-3 arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cross3"]


def cross3(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Cross product over the trailing axis (length 3) of two arrays."""
    u0, u1, u2 = u[..., 0], u[..., 1], u[..., 2]
    v0, v1, v2 = v[..., 0], v[..., 1], v[..., 2]
    out = np.empty(np.broadcast_shapes(u.shape, v.shape), dtype=np.float64)
    out[..., 0] = u1 * v2 - u2 * v1
    out[..., 1] = u2 * v0 - u0 * v2
    out[..., 2] = u0 * v1 - u1 * v0
    return out
