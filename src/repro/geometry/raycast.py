"""Ray casting and point-in-polyhedron tests.

Used by the intersection query's containment stage (Algorithm 1, steps
8-12): after no intersecting face pair is found, an object may still be
fully contained in the other, which is decided by casting a ray from one
of its vertices and counting surface crossings.
"""

from __future__ import annotations

import numpy as np

from repro.geometry._fast import cross3

__all__ = ["ray_triangle_intersect", "ray_triangles_hits", "point_in_polyhedron"]

_EPS = 1e-12

# Deterministic, irrational-looking fallback directions: if a cast grazes
# an edge or vertex the parity count is unreliable, so we re-cast along
# the next direction instead of jittering randomly.
_RAY_DIRECTIONS = (
    (0.5366563145999495, 0.2683281572999747, 0.7999999999999999),
    (0.8017837257372732, 0.2672612419124244, 0.5345224838248488),
    (0.1690308509457033, 0.8451542547285166, 0.5070925528371099),
    (0.3015113445777636, 0.3015113445777636, 0.9045340337332909),
    (0.7427813527082074, 0.5570860145311556, 0.3713906763541037),
)


def ray_triangle_intersect(origin, direction, tri) -> float | None:
    """Möller-Trumbore ray/triangle test.

    Returns the ray parameter ``t >= 0`` of the hit, or None if the ray
    misses (or runs parallel to) the triangle.
    """
    origin = np.asarray(origin, dtype=np.float64)
    direction = np.asarray(direction, dtype=np.float64)
    tri = np.asarray(tri, dtype=np.float64)

    edge1 = tri[1] - tri[0]
    edge2 = tri[2] - tri[0]
    pvec = cross3(direction, edge2)
    det = float(edge1 @ pvec)
    if abs(det) < _EPS:
        return None
    inv_det = 1.0 / det
    tvec = origin - tri[0]
    u = float(tvec @ pvec) * inv_det
    if u < 0.0 or u > 1.0:
        return None
    qvec = cross3(tvec, edge1)
    v = float(direction @ qvec) * inv_det
    if v < 0.0 or u + v > 1.0:
        return None
    t = float(edge2 @ qvec) * inv_det
    if t < 0.0:
        return None
    return t


def ray_triangles_hits(
    origin: np.ndarray, direction: np.ndarray, tris: np.ndarray
) -> tuple[int, bool]:
    """Count forward crossings of a ray with a triangle soup.

    Returns ``(count, reliable)``. ``reliable`` is False when any hit is
    numerically close to a triangle edge/vertex or to the ray origin —
    those casts must be retried along a different direction because the
    parity may be wrong (a grazing ray can be counted twice or missed).
    """
    origin = np.asarray(origin, dtype=np.float64)
    direction = np.asarray(direction, dtype=np.float64)
    tris = np.asarray(tris, dtype=np.float64)
    if tris.ndim != 3 or tris.shape[1:] != (3, 3):
        raise ValueError("expected an (n, 3, 3) triangle array")

    edge1 = tris[:, 1] - tris[:, 0]
    edge2 = tris[:, 2] - tris[:, 0]
    pvec = cross3(direction[None, :], edge2)
    det = (edge1 * pvec).sum(axis=1)
    parallel = np.abs(det) < _EPS
    safe_det = np.where(parallel, 1.0, det)
    inv_det = 1.0 / safe_det

    tvec = origin[None, :] - tris[:, 0]
    u = (tvec * pvec).sum(axis=1) * inv_det
    qvec = cross3(tvec, edge1)
    v = (direction[None, :] * qvec).sum(axis=1) * inv_det
    t = (edge2 * qvec).sum(axis=1) * inv_det

    inside = (~parallel) & (u >= 0.0) & (v >= 0.0) & (u + v <= 1.0) & (t >= 0.0)
    count = int(inside.sum())

    margin = 1e-9
    grazing = inside & (
        (u < margin) | (v < margin) | (u + v > 1.0 - margin) | (t < margin)
    )
    # A parallel triangle whose plane contains the origin is also suspect.
    coplanar_parallel = parallel & (np.abs((tvec * cross3(edge1, edge2)).sum(axis=1)) < _EPS)
    reliable = not bool(grazing.any() or coplanar_parallel.any())
    return count, reliable


def point_in_polyhedron(point, tris: np.ndarray) -> bool:
    """Parity ray-cast containment test against a closed triangle mesh.

    ``tris`` is the ``(n, 3, 3)`` face array of a closed polyhedron. Casts
    along a fixed direction and retries with alternates when the cast is
    numerically unreliable; points on the surface may be classified either
    way, as usual for parity tests.
    """
    point = np.asarray(point, dtype=np.float64)
    count = 0
    for direction in _RAY_DIRECTIONS:
        count, reliable = ray_triangles_hits(point, np.asarray(direction), tris)
        if reliable:
            return count % 2 == 1
    # All directions grazed something; fall back to the last parity.
    return count % 2 == 1
