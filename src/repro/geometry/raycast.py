"""Ray casting and point-in-polyhedron tests.

Used by the intersection query's containment stage (Algorithm 1, steps
8-12): after no intersecting face pair is found, an object may still be
fully contained in the other, which is decided by casting a ray from one
of its vertices and counting surface crossings.
"""

from __future__ import annotations

import numpy as np

from repro.geometry._fast import cross3

__all__ = [
    "ray_triangle_intersect",
    "ray_triangles_hits",
    "point_in_polyhedron",
    "points_in_polyhedra",
]

_EPS = 1e-12

# Deterministic, irrational-looking fallback directions: if a cast grazes
# an edge or vertex the parity count is unreliable, so we re-cast along
# the next direction instead of jittering randomly.
_RAY_DIRECTIONS = (
    (0.5366563145999495, 0.2683281572999747, 0.7999999999999999),
    (0.8017837257372732, 0.2672612419124244, 0.5345224838248488),
    (0.1690308509457033, 0.8451542547285166, 0.5070925528371099),
    (0.3015113445777636, 0.3015113445777636, 0.9045340337332909),
    (0.7427813527082074, 0.5570860145311556, 0.3713906763541037),
)


def ray_triangle_intersect(origin, direction, tri) -> float | None:
    """Möller-Trumbore ray/triangle test.

    Returns the ray parameter ``t >= 0`` of the hit, or None if the ray
    misses (or runs parallel to) the triangle.
    """
    origin = np.asarray(origin, dtype=np.float64)
    direction = np.asarray(direction, dtype=np.float64)
    tri = np.asarray(tri, dtype=np.float64)

    edge1 = tri[1] - tri[0]
    edge2 = tri[2] - tri[0]
    pvec = cross3(direction, edge2)
    det = float(edge1 @ pvec)
    if abs(det) < _EPS:
        return None
    inv_det = 1.0 / det
    tvec = origin - tri[0]
    u = float(tvec @ pvec) * inv_det
    if u < 0.0 or u > 1.0:
        return None
    qvec = cross3(tvec, edge1)
    v = float(direction @ qvec) * inv_det
    if v < 0.0 or u + v > 1.0:
        return None
    t = float(edge2 @ qvec) * inv_det
    if t < 0.0:
        return None
    return t


def _hit_fields(
    origins: np.ndarray, direction: np.ndarray, tris: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-face Möller-Trumbore lane fields for one cast direction.

    ``origins`` is ``(n, 3)`` — one ray origin per face lane, which is
    what lets many probes against many soups run as one concatenated
    batch. Returns ``(inside, suspect)``: forward crossings, and lanes
    whose parity is numerically unreliable (grazing hits, or parallel
    triangles whose plane contains the origin).
    """
    edge1 = tris[:, 1] - tris[:, 0]
    edge2 = tris[:, 2] - tris[:, 0]
    pvec = cross3(direction[None, :], edge2)
    det = (edge1 * pvec).sum(axis=1)
    parallel = np.abs(det) < _EPS
    safe_det = np.where(parallel, 1.0, det)
    inv_det = 1.0 / safe_det

    tvec = origins - tris[:, 0]
    u = (tvec * pvec).sum(axis=1) * inv_det
    qvec = cross3(tvec, edge1)
    v = (direction[None, :] * qvec).sum(axis=1) * inv_det
    t = (edge2 * qvec).sum(axis=1) * inv_det

    inside = (~parallel) & (u >= 0.0) & (v >= 0.0) & (u + v <= 1.0) & (t >= 0.0)

    margin = 1e-9
    grazing = inside & (
        (u < margin) | (v < margin) | (u + v > 1.0 - margin) | (t < margin)
    )
    # A parallel triangle whose plane contains the origin is also suspect.
    coplanar_parallel = parallel & (
        np.abs((tvec * cross3(edge1, edge2)).sum(axis=1)) < _EPS
    )
    return inside, grazing | coplanar_parallel


def ray_triangles_hits(
    origin: np.ndarray, direction: np.ndarray, tris: np.ndarray
) -> tuple[int, bool]:
    """Count forward crossings of a ray with a triangle soup.

    Returns ``(count, reliable)``. ``reliable`` is False when any hit is
    numerically close to a triangle edge/vertex or to the ray origin —
    those casts must be retried along a different direction because the
    parity may be wrong (a grazing ray can be counted twice or missed).
    """
    origin = np.asarray(origin, dtype=np.float64)
    direction = np.asarray(direction, dtype=np.float64)
    tris = np.asarray(tris, dtype=np.float64)
    if tris.ndim != 3 or tris.shape[1:] != (3, 3):
        raise ValueError("expected an (n, 3, 3) triangle array")

    inside, suspect = _hit_fields(origin[None, :], direction, tris)
    return int(inside.sum()), not bool(suspect.any())


def point_in_polyhedron(point, tris: np.ndarray) -> bool:
    """Parity ray-cast containment test against a closed triangle mesh.

    ``tris`` is the ``(n, 3, 3)`` face array of a closed polyhedron. Casts
    along a fixed direction and retries with alternates when the cast is
    numerically unreliable; points on the surface may be classified either
    way, as usual for parity tests.
    """
    point = np.asarray(point, dtype=np.float64)
    count = 0
    for direction in _RAY_DIRECTIONS:
        count, reliable = ray_triangles_hits(point, np.asarray(direction), tris)
        if reliable:
            return count % 2 == 1
    # All directions grazed something; fall back to the last parity.
    return count % 2 == 1


def points_in_polyhedra(probes, checkpoint=None) -> list[bool]:
    """Batched :func:`point_in_polyhedron` over many (point, tris) probes.

    Each cast direction becomes one concatenated lane batch: every
    still-unreliable probe contributes all its faces (with the probe
    point repeated per lane), and per-probe parity/reliability fall out
    of ``reduceat`` segment reductions over the probe offsets. The lane
    math is :func:`_hit_fields` — the same used by the scalar path — so
    every decision is identical to calling ``point_in_polyhedron`` per
    probe, including the retry-then-last-parity fallback. A probe with
    an empty soup has zero crossings (reliably), i.e. ``False``.

    ``checkpoint`` (when given) runs after each direction's batch — the
    deadline granularity of the batched containment stage.
    """
    decided: list[bool | None] = [None] * len(probes)
    pending = []
    for i, (point, tris) in enumerate(probes):
        tris = np.asarray(tris, dtype=np.float64)
        if len(tris) == 0:
            decided[i] = False
            continue
        pending.append((i, np.asarray(point, dtype=np.float64), tris))

    for direction in _RAY_DIRECTIONS:
        if not pending:
            break
        direction = np.asarray(direction, dtype=np.float64)
        all_tris = np.concatenate([tris for _i, _p, tris in pending])
        all_origins = np.concatenate(
            [np.broadcast_to(point, (len(tris), 3)) for _i, point, tris in pending]
        )
        inside, suspect = _hit_fields(all_origins, direction, all_tris)
        lengths = [len(tris) for _i, _p, tris in pending]
        starts = np.zeros(len(lengths), dtype=np.intp)
        np.cumsum(lengths[:-1], out=starts[1:])
        counts = np.add.reduceat(inside, starts)
        unreliable = np.logical_or.reduceat(suspect, starts)
        if checkpoint is not None:
            checkpoint()
        still = []
        for (i, point, tris), count, shaky in zip(pending, counts, unreliable):
            # Record the parity either way: a reliable cast decides the
            # probe; an unreliable one keeps retrying, and if every
            # direction grazes, the scalar path's fallback is the *last*
            # cast's parity — which this running update preserves.
            decided[i] = int(count) % 2 == 1
            if shaky:
                still.append((i, point, tris))
        pending = still

    return [bool(v) for v in decided]

