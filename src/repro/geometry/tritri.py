"""Triangle-triangle intersection tests.

The batched kernel implements a separating-axis test over the complete
axis set for a pair of triangles in 3D:

* the two face normals,
* the nine pairwise edge cross products,
* the six in-plane edge normals (``n x e``), which settle coplanar pairs
  where the edge cross products degenerate.

Two triangles are reported as intersecting when no axis strictly
separates their projections, which treats touching triangles (shared
vertex, shared edge, grazing contact) as intersecting — the closed-set
semantics expected by spatial predicates.
"""

from __future__ import annotations

import numpy as np

from repro.geometry._fast import cross3

__all__ = ["tri_tri_intersect", "tri_tri_intersect_batch"]

_AXIS_EPS = 1e-12


def _projection_separates(axes, tri_a, tri_b) -> np.ndarray:
    """For each pair, True if any of the given axes separates it.

    ``axes`` has shape (n, k, 3); ``tri_a``/``tri_b`` have shape (n, 3, 3).
    """
    # Project the three vertices of each triangle on each axis:
    # (n, k, 3verts) = sum over xyz of axes (n,k,1,3) * verts (n,1,3,3)
    proj_a = np.einsum("nkc,nvc->nkv", axes, tri_a)
    proj_b = np.einsum("nkc,nvc->nkv", axes, tri_b)
    min_a = proj_a.min(axis=2)
    max_a = proj_a.max(axis=2)
    min_b = proj_b.min(axis=2)
    max_b = proj_b.max(axis=2)
    # Ignore numerically-zero axes: they can never witness separation.
    valid = (axes * axes).sum(axis=2) > _AXIS_EPS
    separated = (max_a < min_b) | (max_b < min_a)
    return np.any(separated & valid, axis=1)


def tri_tri_intersect_batch(tri_a: np.ndarray, tri_b: np.ndarray) -> np.ndarray:
    """Pairwise intersection test for two ``(n, 3, 3)`` triangle arrays.

    Returns a boolean array of length ``n``; element ``i`` is True when
    ``tri_a[i]`` intersects ``tri_b[i]``.
    """
    tri_a = np.asarray(tri_a, dtype=np.float64)
    tri_b = np.asarray(tri_b, dtype=np.float64)
    if tri_a.shape != tri_b.shape or tri_a.ndim != 3 or tri_a.shape[1:] != (3, 3):
        raise ValueError("expected matching (n, 3, 3) triangle arrays")
    n = tri_a.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)

    edges_a = np.stack(
        [tri_a[:, 1] - tri_a[:, 0], tri_a[:, 2] - tri_a[:, 1], tri_a[:, 0] - tri_a[:, 2]],
        axis=1,
    )  # (n, 3, 3)
    edges_b = np.stack(
        [tri_b[:, 1] - tri_b[:, 0], tri_b[:, 2] - tri_b[:, 1], tri_b[:, 0] - tri_b[:, 2]],
        axis=1,
    )
    normal_a = cross3(edges_a[:, 0], edges_a[:, 1])[:, None, :]  # (n, 1, 3)
    normal_b = cross3(edges_b[:, 0], edges_b[:, 1])[:, None, :]

    # 9 edge-edge cross products: (n, 3, 3, 3) -> (n, 9, 3)
    cross_ab = cross3(edges_a[:, :, None, :], edges_b[:, None, :, :])
    cross_ab = cross_ab.reshape(n, 9, 3)

    # In-plane edge normals for the coplanar case.
    inplane_a = cross3(np.broadcast_to(normal_a, edges_a.shape), edges_a)
    inplane_b = cross3(np.broadcast_to(normal_b, edges_b.shape), edges_b)

    axes = np.concatenate(
        [normal_a, normal_b, cross_ab, inplane_a, inplane_b], axis=1
    )  # (n, 17, 3)
    return ~_projection_separates(axes, tri_a, tri_b)


def tri_tri_intersect(tri_a, tri_b) -> bool:
    """Scalar convenience wrapper over :func:`tri_tri_intersect_batch`."""
    tri_a = np.asarray(tri_a, dtype=np.float64).reshape(1, 3, 3)
    tri_b = np.asarray(tri_b, dtype=np.float64).reshape(1, 3, 3)
    return bool(tri_tri_intersect_batch(tri_a, tri_b)[0])
