"""Scalar triangle utilities: normals, areas, centroids, degeneracy tests.

Faces throughout the code base follow the paper's convention: vertices in
counter-clockwise order when viewed from outside the polyhedron, so the
right-hand rule gives the outward normal.
"""

from __future__ import annotations

import numpy as np

from repro.geometry._fast import cross3

__all__ = [
    "triangle_normal",
    "triangle_unit_normal",
    "triangle_area",
    "triangle_centroid",
    "is_degenerate_triangle",
]

_DEGENERATE_AREA_EPS = 1e-14


def _as_triangle(tri) -> np.ndarray:
    tri = np.asarray(tri, dtype=np.float64)
    if tri.shape != (3, 3):
        raise ValueError(f"expected a (3, 3) triangle, got shape {tri.shape}")
    return tri


def triangle_normal(tri) -> np.ndarray:
    """Unnormalized outward normal ``(b - a) x (c - a)``.

    Its magnitude equals twice the triangle area, so callers that need
    both the direction and the area can take this once.
    """
    tri = _as_triangle(tri)
    return cross3(tri[1] - tri[0], tri[2] - tri[0])


def triangle_unit_normal(tri) -> np.ndarray:
    """Outward unit normal; raises for degenerate triangles."""
    normal = triangle_normal(tri)
    length = float(np.linalg.norm(normal))
    if length < _DEGENERATE_AREA_EPS:
        raise ValueError("degenerate triangle has no well-defined normal")
    return normal / length


def triangle_area(tri) -> float:
    return float(np.linalg.norm(triangle_normal(tri))) / 2.0


def triangle_centroid(tri) -> np.ndarray:
    return _as_triangle(tri).mean(axis=0)


def is_degenerate_triangle(tri, area_eps: float = _DEGENERATE_AREA_EPS) -> bool:
    """True when the triangle has (numerically) zero area."""
    return triangle_area(tri) < area_eps
