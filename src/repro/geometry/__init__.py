"""Geometric substrate for 3DPro.

This package provides the low-level computational geometry that the rest
of the system is built on: axis-aligned bounding boxes with the distance
ranges used by the paper's index traversals (MINDIST / MAXDIST /
MINMAXDIST), scalar and batched triangle-triangle intersection tests,
triangle-triangle distance computation, and ray casting for
point-in-polyhedron queries.

Everything is implemented from scratch on top of numpy; there is no
dependency on CGAL, trimesh, or any other geometry library.
"""

from repro.geometry.aabb import (
    AABB,
    box_maxdist,
    box_mindist,
    box_union_diagonal,
    boxes_intersect,
    boxes_mindist_batch,
)
from repro.geometry.distance import (
    point_triangle_distance,
    segment_segment_distance,
    tri_tri_distance,
    tri_tri_distance_batch,
)
from repro.geometry.raycast import point_in_polyhedron, ray_triangle_intersect
from repro.geometry.triangle import (
    triangle_area,
    triangle_centroid,
    triangle_normal,
)
from repro.geometry.tritri import tri_tri_intersect, tri_tri_intersect_batch

__all__ = [
    "AABB",
    "box_maxdist",
    "box_mindist",
    "box_union_diagonal",
    "boxes_intersect",
    "boxes_mindist_batch",
    "point_triangle_distance",
    "segment_segment_distance",
    "tri_tri_distance",
    "tri_tri_distance_batch",
    "point_in_polyhedron",
    "ray_triangle_intersect",
    "triangle_area",
    "triangle_centroid",
    "triangle_normal",
    "tri_tri_intersect",
    "tri_tri_intersect_batch",
]
