"""Distance computation between points, segments, and triangles.

The distance between two triangles — the workhorse of the within and
nearest-neighbor refinement steps — is the minimum over the fifteen
candidate feature pairs:

* each of the six vertices against the opposite triangle, and
* each of the nine edge pairs,

with intersecting pairs reporting distance zero. All kernels are batched
over ``n`` independent pairs so the geometry computer can evaluate face
pairs in large blocks (the paper's GPU-style execution, Section 5.1).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.tritri import tri_tri_intersect_batch

__all__ = [
    "closest_point_on_triangle_batch",
    "point_triangle_distance",
    "point_triangle_distance_batch",
    "segment_segment_distance",
    "segment_segment_distance_batch",
    "tri_tri_distance",
    "tri_tri_distance_batch",
]

_EPS = 1e-15


def _dot(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    # Manual expansion: ufunc-reduce over a length-3 trailing axis is far
    # slower than three fused multiplies on memory-bound batches.
    return u[..., 0] * v[..., 0] + u[..., 1] * v[..., 1] + u[..., 2] * v[..., 2]


def closest_point_on_triangle_batch(points: np.ndarray, tris: np.ndarray) -> np.ndarray:
    """Closest point on each triangle ``tris[i]`` to ``points[i]``.

    ``points`` has shape ``(n, 3)``, ``tris`` has shape ``(n, 3, 3)``;
    the result has shape ``(n, 3)``. Implements the barycentric-region
    classification of Ericson, *Real-Time Collision Detection* (5.1.5),
    vectorized with masks.
    """
    points = np.asarray(points, dtype=np.float64)
    tris = np.asarray(tris, dtype=np.float64)
    a, b, c = tris[:, 0], tris[:, 1], tris[:, 2]

    ab = b - a
    ac = c - a
    ap = points - a
    d1 = _dot(ab, ap)
    d2 = _dot(ac, ap)

    bp = points - b
    d3 = _dot(ab, bp)
    d4 = _dot(ac, bp)

    cp = points - c
    d5 = _dot(ab, cp)
    d6 = _dot(ac, cp)

    vc = d1 * d4 - d3 * d2
    vb = d5 * d2 - d1 * d6
    va = d3 * d6 - d5 * d4

    # Start from the interior solution and overwrite with the boundary
    # regions; the last write for each lane wins, so the order mirrors
    # the scalar algorithm's early returns in reverse priority.
    denom = va + vb + vc
    safe = np.where(np.abs(denom) < _EPS, 1.0, denom)
    v = vb / safe
    w = vc / safe
    closest = a + ab * v[:, None] + ac * w[:, None]

    # Edge BC region.
    edge_bc = (va <= 0.0) & ((d4 - d3) >= 0.0) & ((d5 - d6) >= 0.0)
    t_bc_den = (d4 - d3) + (d5 - d6)
    t_bc = (d4 - d3) / np.where(np.abs(t_bc_den) < _EPS, 1.0, t_bc_den)
    closest = np.where(edge_bc[:, None], b + (c - b) * t_bc[:, None], closest)

    # Edge AC region.
    edge_ac = (vb <= 0.0) & (d2 >= 0.0) & (d6 <= 0.0)
    t_ac_den = d2 - d6
    t_ac = d2 / np.where(np.abs(t_ac_den) < _EPS, 1.0, t_ac_den)
    closest = np.where(edge_ac[:, None], a + ac * t_ac[:, None], closest)

    # Edge AB region.
    edge_ab = (vc <= 0.0) & (d1 >= 0.0) & (d3 <= 0.0)
    t_ab_den = d1 - d3
    t_ab = d1 / np.where(np.abs(t_ab_den) < _EPS, 1.0, t_ab_den)
    closest = np.where(edge_ab[:, None], a + ab * t_ab[:, None], closest)

    # Vertex regions (highest priority, written last).
    at_c = (d6 >= 0.0) & (d5 <= d6)
    closest = np.where(at_c[:, None], c, closest)
    at_b = (d3 >= 0.0) & (d4 <= d3)
    closest = np.where(at_b[:, None], b, closest)
    at_a = (d1 <= 0.0) & (d2 <= 0.0)
    closest = np.where(at_a[:, None], a, closest)
    return closest


def point_triangle_distance_batch(points: np.ndarray, tris: np.ndarray) -> np.ndarray:
    """Distance from ``points[i]`` to triangle ``tris[i]``."""
    closest = closest_point_on_triangle_batch(points, tris)
    diff = np.asarray(points, dtype=np.float64) - closest
    return np.sqrt(_dot(diff, diff))


def point_triangle_distance(point, tri) -> float:
    point = np.asarray(point, dtype=np.float64).reshape(1, 3)
    tri = np.asarray(tri, dtype=np.float64).reshape(1, 3, 3)
    return float(point_triangle_distance_batch(point, tri)[0])


def segment_segment_distance_batch(
    p1: np.ndarray, q1: np.ndarray, p2: np.ndarray, q2: np.ndarray
) -> np.ndarray:
    """Distance between segments ``p1[i]q1[i]`` and ``p2[i]q2[i]``.

    Clamped closest-point computation (Ericson 5.1.9), vectorized and
    robust to degenerate (point-like) segments.
    """
    p1 = np.asarray(p1, dtype=np.float64)
    q1 = np.asarray(q1, dtype=np.float64)
    p2 = np.asarray(p2, dtype=np.float64)
    q2 = np.asarray(q2, dtype=np.float64)

    d1 = q1 - p1
    d2 = q2 - p2
    r = p1 - p2
    a = _dot(d1, d1)
    e = _dot(d2, d2)
    f = _dot(d2, r)
    c = _dot(d1, r)
    b = _dot(d1, d2)

    denom = a * e - b * b
    safe_denom = np.where(denom > _EPS, denom, 1.0)
    s = np.where(denom > _EPS, np.clip((b * f - c * e) / safe_denom, 0.0, 1.0), 0.0)

    safe_e = np.where(e > _EPS, e, 1.0)
    t = np.where(e > _EPS, (b * s + f) / safe_e, 0.0)

    safe_a = np.where(a > _EPS, a, 1.0)
    s = np.where(t < 0.0, np.clip(-c / safe_a, 0.0, 1.0), s)
    s = np.where(t > 1.0, np.clip((b - c) / safe_a, 0.0, 1.0), s)
    # Degenerate first segment: closest point is p1 regardless of s.
    s = np.where(a > _EPS, s, 0.0)
    t = np.clip(t, 0.0, 1.0)

    diff = (p1 + d1 * s[:, None]) - (p2 + d2 * t[:, None])
    return np.sqrt(_dot(diff, diff))


def segment_segment_distance(p1, q1, p2, q2) -> float:
    args = [np.asarray(v, dtype=np.float64).reshape(1, 3) for v in (p1, q1, p2, q2)]
    return float(segment_segment_distance_batch(*args)[0])


def _point_triangle_sqdist_batch(points: np.ndarray, tris: np.ndarray) -> np.ndarray:
    closest = closest_point_on_triangle_batch(points, tris)
    diff = points - closest
    return _dot(diff, diff)


def _segment_segment_sqdist_batch(p1, q1, p2, q2) -> np.ndarray:
    d1 = q1 - p1
    d2 = q2 - p2
    r = p1 - p2
    a = _dot(d1, d1)
    e = _dot(d2, d2)
    f = _dot(d2, r)
    c = _dot(d1, r)
    b = _dot(d1, d2)

    denom = a * e - b * b
    safe_denom = np.where(denom > _EPS, denom, 1.0)
    s = np.where(denom > _EPS, np.clip((b * f - c * e) / safe_denom, 0.0, 1.0), 0.0)
    safe_e = np.where(e > _EPS, e, 1.0)
    t = np.where(e > _EPS, (b * s + f) / safe_e, 0.0)
    safe_a = np.where(a > _EPS, a, 1.0)
    s = np.where(t < 0.0, np.clip(-c / safe_a, 0.0, 1.0), s)
    s = np.where(t > 1.0, np.clip((b - c) / safe_a, 0.0, 1.0), s)
    s = np.where(a > _EPS, s, 0.0)
    t = np.clip(t, 0.0, 1.0)
    diff = (p1 + d1 * s[:, None]) - (p2 + d2 * t[:, None])
    return _dot(diff, diff)


def tri_tri_distance_batch(
    tri_a: np.ndarray, tri_b: np.ndarray, check_intersection: bool = True
) -> np.ndarray:
    """Pairwise distance between ``(n, 3, 3)`` triangle arrays.

    The fifteen feature pairs are evaluated in two *tiled* kernel calls
    (one 6n-wide point/triangle pass, one 9n-wide segment/segment pass)
    so Python-level overhead stays constant regardless of feature count.

    When ``check_intersection`` is False the kernel skips the
    separating-axis test; callers may do so only when the triangles are
    known to be disjoint (e.g. distances between objects from
    non-overlapping datasets), where the feature-pair minimum is exact.
    """
    tri_a = np.asarray(tri_a, dtype=np.float64)
    tri_b = np.asarray(tri_b, dtype=np.float64)
    if tri_a.shape != tri_b.shape or tri_a.ndim != 3 or tri_a.shape[1:] != (3, 3):
        raise ValueError("expected matching (n, 3, 3) triangle arrays")
    n = tri_a.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.float64)

    # Six vertex-vs-triangle feature pairs, tiled into one call:
    # the 3 corners of A against B, then the 3 corners of B against A.
    points = np.concatenate(
        [tri_a.reshape(-1, 3), tri_b.reshape(-1, 3)]
    )  # (6n, 3), A corners grouped per pair then B corners
    opposite = np.concatenate(
        [np.repeat(tri_b, 3, axis=0), np.repeat(tri_a, 3, axis=0)]
    )  # (6n, 3, 3)
    pt_sq = _point_triangle_sqdist_batch(points, opposite).reshape(2, n, 3)
    best_sq = pt_sq.min(axis=(0, 2))

    # Nine edge-vs-edge feature pairs, tiled into one call.
    starts_a = tri_a  # (n, 3, 3): edge i starts at corner i
    ends_a = np.roll(tri_a, -1, axis=1)
    starts_b = tri_b
    ends_b = np.roll(tri_b, -1, axis=1)
    p1 = np.repeat(starts_a, 3, axis=1).reshape(-1, 3)  # (9n, 3)
    q1 = np.repeat(ends_a, 3, axis=1).reshape(-1, 3)
    p2 = np.tile(starts_b, (1, 3, 1)).reshape(-1, 3)
    q2 = np.tile(ends_b, (1, 3, 1)).reshape(-1, 3)
    seg_sq = _segment_segment_sqdist_batch(p1, q1, p2, q2).reshape(n, 9)
    best_sq = np.minimum(best_sq, seg_sq.min(axis=1))

    best = np.sqrt(best_sq)
    if check_intersection:
        best = np.where(tri_tri_intersect_batch(tri_a, tri_b), 0.0, best)
    return best


def tri_tri_distance(tri_a, tri_b, check_intersection: bool = True) -> float:
    tri_a = np.asarray(tri_a, dtype=np.float64).reshape(1, 3, 3)
    tri_b = np.asarray(tri_b, dtype=np.float64).reshape(1, 3, 3)
    return float(tri_tri_distance_batch(tri_a, tri_b, check_intersection)[0])
