"""OFF (Object File Format) reader/writer.

Supports the ASCII OFF dialect: optional comments, an ``OFF`` header,
counts line, vertex lines, and polygonal face lines. Non-triangular
faces are fan-triangulated on read (preserving orientation), so any
closed polygonal OFF loads as a valid 3DPro polyhedron.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.mesh.polyhedron import Polyhedron

__all__ = ["read_off", "write_off", "OFFFormatError"]


class OFFFormatError(ValueError):
    """Raised for malformed OFF content."""


def _meaningful_lines(text: str):
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            yield line


def read_off(path) -> Polyhedron:
    """Read an ASCII OFF file into a polyhedron."""
    lines = _meaningful_lines(Path(path).read_text())
    try:
        header = next(lines)
    except StopIteration:
        raise OFFFormatError(f"{path}: empty file") from None

    if header.upper().startswith("OFF"):
        rest = header[3:].strip()
        counts_line = rest if rest else next(lines, None)
    else:
        counts_line = header  # headerless dialect
    if counts_line is None:
        raise OFFFormatError(f"{path}: missing counts line")

    parts = counts_line.split()
    if len(parts) < 2:
        raise OFFFormatError(f"{path}: bad counts line {counts_line!r}")
    try:
        n_vertices, n_faces = int(parts[0]), int(parts[1])
    except ValueError as exc:
        raise OFFFormatError(f"{path}: bad counts line {counts_line!r}") from exc

    vertices = np.empty((n_vertices, 3), dtype=np.float64)
    for i in range(n_vertices):
        line = next(lines, None)
        if line is None:
            raise OFFFormatError(f"{path}: expected {n_vertices} vertices, got {i}")
        coords = line.split()
        if len(coords) < 3:
            raise OFFFormatError(f"{path}: bad vertex line {line!r}")
        vertices[i] = [float(c) for c in coords[:3]]

    faces: list[tuple[int, int, int]] = []
    for i in range(n_faces):
        line = next(lines, None)
        if line is None:
            raise OFFFormatError(f"{path}: expected {n_faces} faces, got {i}")
        fields = line.split()
        arity = int(fields[0])
        if arity < 3 or len(fields) < 1 + arity:
            raise OFFFormatError(f"{path}: bad face line {line!r}")
        loop = [int(v) for v in fields[1 : 1 + arity]]
        if any(v < 0 or v >= n_vertices for v in loop):
            raise OFFFormatError(f"{path}: face index out of range in {line!r}")
        # Fan-triangulate polygons, preserving winding order.
        for j in range(1, arity - 1):
            faces.append((loop[0], loop[j], loop[j + 1]))

    return Polyhedron(vertices, np.asarray(faces, dtype=np.int64), copy=False)


def write_off(path, polyhedron: Polyhedron, precision: int = 9) -> None:
    """Write a polyhedron as ASCII OFF (triangles only)."""
    out = ["OFF", f"{polyhedron.num_vertices} {polyhedron.num_faces} 0"]
    fmt = f"{{:.{precision}g}}"
    for x, y, z in polyhedron.vertices.tolist():
        out.append(f"{fmt.format(x)} {fmt.format(y)} {fmt.format(z)}")
    for a, b, c in polyhedron.faces.tolist():
        out.append(f"3 {a} {b} {c}")
    Path(path).write_text("\n".join(out) + "\n")
