"""Binary STL reader/writer.

STL stores an unindexed triangle soup; the reader welds identical
vertex coordinates back into an indexed polyhedron (exact-match welding
— STL files written by this module or other indexed exporters weld
losslessly). Orientation is taken from the triangle winding; the stored
normals are ignored on read, as is conventional.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.geometry._fast import cross3
from repro.mesh.polyhedron import Polyhedron

__all__ = ["read_stl", "write_stl", "STLFormatError"]

_HEADER = 80


class STLFormatError(ValueError):
    """Raised for malformed binary STL content."""


def read_stl(path) -> Polyhedron:
    """Read a binary STL file into an indexed polyhedron."""
    data = Path(path).read_bytes()
    if len(data) < _HEADER + 4:
        raise STLFormatError(f"{path}: too short for binary STL")
    (count,) = struct.unpack_from("<I", data, _HEADER)
    expected = _HEADER + 4 + count * 50
    if len(data) < expected:
        raise STLFormatError(
            f"{path}: header promises {count} triangles "
            f"({expected} bytes) but file has {len(data)}"
        )

    raw = np.frombuffer(data, dtype=np.uint8, count=count * 50, offset=_HEADER + 4)
    records = raw.reshape(count, 50)
    # Each record: normal (3 f32), 3 vertices (9 f32), attribute (u16).
    floats = records[:, :48].copy().view(np.float32).reshape(count, 12)
    corners = floats[:, 3:12].astype(np.float64).reshape(count, 3, 3)

    flat = corners.reshape(-1, 3)
    vertices, inverse = np.unique(flat, axis=0, return_inverse=True)
    faces = inverse.reshape(count, 3).astype(np.int64)
    return Polyhedron(vertices, faces, copy=False)


def write_stl(path, polyhedron: Polyhedron, header: bytes = b"") -> None:
    """Write a polyhedron as binary STL with computed facet normals."""
    tris = polyhedron.triangles.astype(np.float32)
    normals = cross3(
        tris[:, 1].astype(np.float64) - tris[:, 0].astype(np.float64),
        tris[:, 2].astype(np.float64) - tris[:, 0].astype(np.float64),
    )
    lengths = np.sqrt((normals * normals).sum(axis=1, keepdims=True))
    normals = (normals / np.where(lengths > 0, lengths, 1.0)).astype(np.float32)

    count = len(tris)
    buf = bytearray()
    buf += header.ljust(_HEADER, b"\0")[:_HEADER]
    buf += struct.pack("<I", count)
    records = np.zeros((count, 50), dtype=np.uint8)
    floats = np.concatenate([normals, tris.reshape(count, 9)], axis=1).astype(np.float32)
    records[:, :48] = floats.view(np.uint8).reshape(count, 48)
    buf += records.tobytes()
    Path(path).write_bytes(bytes(buf))
