"""Mesh file I/O.

Readers and writers for the two interchange formats most 3D pipelines
speak — OFF (the format CGAL-era tools, and hence the paper's data
pipeline, commonly exchange) and binary STL — so real reconstructed
objects can be ingested into 3DPro datasets and decoded LODs exported
for rendering.
"""

from repro.io.off import read_off, write_off
from repro.io.stl import read_stl, write_stl

__all__ = ["read_off", "write_off", "read_stl", "write_stl"]
