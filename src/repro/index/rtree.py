"""An R-tree over object bounding boxes (the paper's global index).

The tree is bulk-loaded with the Sort-Tile-Recursive (STR) packing
algorithm and supports the three traversals the query engine needs:

* ``query_intersecting`` — MBB overlap filtering (intersection joins);
* ``query_within`` — the Section 4.2 traversal with distance ranges:
  subtrees farther than the threshold (MINDIST > D) are skipped,
  subtrees entirely within it (MAXDIST <= D) are reported wholesale
  without refinement, and only the ambiguous leaf entries become
  candidates;
* ``query_nn_candidates`` — the Section 4.3 traversal: best-first
  descent by MINDIST with MINMAXDIST pruning, returning every object
  whose distance range overlaps the best candidate's range.

MAXDIST follows the paper's definition: the diagonal of the union of
the two MBBs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB, boxes_maxdist_batch, boxes_mindist_batch

__all__ = ["RTree", "RTreeEntry", "WithinResult"]


@dataclass(frozen=True)
class RTreeEntry:
    """A leaf entry: one object's MBB plus an opaque payload (object id)."""

    aabb: AABB
    payload: object


@dataclass
class WithinResult:
    """Outcome of a within traversal.

    ``definite`` payloads are guaranteed within the threshold (their
    MAXDIST was already small enough); ``candidates`` need refinement.
    """

    definite: list
    candidates: list


class _Node:
    __slots__ = ("boxes", "children", "is_leaf")

    def __init__(self, boxes: np.ndarray, children: list, is_leaf: bool):
        self.boxes = boxes  # (k, 6): child AABBs as [low, high]
        self.children = children  # _Node list or RTreeEntry list
        self.is_leaf = is_leaf

    @property
    def aabb(self) -> AABB:
        low = self.boxes[:, :3].min(axis=0)
        high = self.boxes[:, 3:].max(axis=0)
        return AABB(tuple(low.tolist()), tuple(high.tolist()))


def _pack(aabbs: list[AABB]) -> np.ndarray:
    return np.asarray([list(b.low) + list(b.high) for b in aabbs], dtype=np.float64)


class RTree:
    """STR bulk-loaded R-tree with least-enlargement dynamic insertion."""

    def __init__(self, entries: list[RTreeEntry], leaf_capacity: int = 16):
        if leaf_capacity < 2:
            raise ValueError("leaf_capacity must be >= 2")
        self.leaf_capacity = leaf_capacity
        self._size = len(entries)
        self._root = self._bulk_load(list(entries)) if entries else None

    # -- dynamic insertion -----------------------------------------------------

    def insert(self, entry: RTreeEntry) -> None:
        """Insert one entry (Guttman-style: least enlargement + split).

        Bulk loading remains the preferred construction path; insertion
        exists for incremental ingest (e.g. streaming new objects into a
        loaded dataset's index).
        """
        self._size += 1
        if self._root is None:
            self._root = _Node(_pack([entry.aabb]), [entry], is_leaf=True)
            return
        split = self._insert_into(self._root, entry)
        if split is not None:
            old_root = self._root
            self._root = _Node(
                _pack([old_root.aabb, split.aabb]), [old_root, split], is_leaf=False
            )

    def _insert_into(self, node: _Node, entry: RTreeEntry) -> "_Node | None":
        """Insert recursively; returns a new sibling when ``node`` splits."""
        if node.is_leaf:
            node.children.append(entry)
            node.boxes = np.vstack([node.boxes, _pack([entry.aabb])])
        else:
            index = self._least_enlargement(node, entry.aabb)
            child = node.children[index]
            split = self._insert_into(child, entry)
            node.boxes[index] = _pack([child.aabb])[0]
            if split is not None:
                node.children.append(split)
                node.boxes = np.vstack([node.boxes, _pack([split.aabb])])
        if len(node.children) > self.leaf_capacity:
            return self._split(node)
        return None

    @staticmethod
    def _least_enlargement(node: _Node, box: AABB) -> int:
        qlow, qhigh = box.as_arrays()
        low = np.minimum(node.boxes[:, :3], qlow)
        high = np.maximum(node.boxes[:, 3:], qhigh)
        grown = np.prod(high - low, axis=1)
        current = np.prod(node.boxes[:, 3:] - node.boxes[:, :3], axis=1)
        enlargement = grown - current
        # Tie-break on smaller current volume (Guttman).
        return int(np.lexsort((current, enlargement))[0])

    def _split(self, node: _Node) -> _Node:
        """Linear split: separate along the axis with the widest spread."""
        centers = (node.boxes[:, :3] + node.boxes[:, 3:]) / 2.0
        axis = int(np.argmax(centers.max(axis=0) - centers.min(axis=0)))
        order = np.argsort(centers[:, axis], kind="stable")
        half = len(order) // 2
        keep_ids, move_ids = order[:half], order[half:]

        moved = _Node(
            node.boxes[move_ids].copy(),
            [node.children[i] for i in move_ids],
            node.is_leaf,
        )
        node.children = [node.children[i] for i in keep_ids]
        node.boxes = node.boxes[keep_ids].copy()
        return moved

    @classmethod
    def from_boxes(cls, boxes: list[AABB], leaf_capacity: int = 16) -> "RTree":
        """Build with payloads 0..n-1 (the common object-id indexing)."""
        return cls(
            [RTreeEntry(box, i) for i, box in enumerate(boxes)],
            leaf_capacity=leaf_capacity,
        )

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        node, height = self._root, 0
        while node is not None:
            height += 1
            node = None if node.is_leaf else node.children[0]
        return height

    # -- construction --------------------------------------------------------

    def _bulk_load(self, entries: list[RTreeEntry]) -> _Node:
        centers = np.asarray(
            [e.aabb.center for e in entries], dtype=np.float64
        )
        order = self._str_order(centers, len(entries))
        leaves: list[_Node] = []
        for start in range(0, len(entries), self.leaf_capacity):
            chunk = [entries[i] for i in order[start : start + self.leaf_capacity]]
            leaves.append(_Node(_pack([e.aabb for e in chunk]), chunk, is_leaf=True))

        level = leaves
        while len(level) > 1:
            centers = np.asarray([n.aabb.center for n in level], dtype=np.float64)
            order = self._str_order(centers, len(level))
            parents: list[_Node] = []
            for start in range(0, len(level), self.leaf_capacity):
                chunk = [level[i] for i in order[start : start + self.leaf_capacity]]
                parents.append(
                    _Node(_pack([n.aabb for n in chunk]), chunk, is_leaf=False)
                )
            level = parents
        return level[0]

    def _str_order(self, centers: np.ndarray, count: int) -> list[int]:
        """Sort-Tile-Recursive ordering of ``count`` boxes by center."""
        capacity = self.leaf_capacity
        n_nodes = max(1, -(-count // capacity))
        n_slabs = max(1, round(n_nodes ** (1.0 / 3.0)))
        slab_size = -(-count // n_slabs) * capacity if n_slabs > 1 else count

        by_x = np.argsort(centers[:, 0], kind="stable")
        order: list[int] = []
        for sx in range(0, count, max(slab_size, capacity)):
            slab = by_x[sx : sx + max(slab_size, capacity)]
            by_y = slab[np.argsort(centers[slab, 1], kind="stable")]
            column_size = max(
                capacity, -(-len(slab) // max(1, round((len(slab) / capacity) ** 0.5)))
            )
            for sy in range(0, len(by_y), column_size):
                column = by_y[sy : sy + column_size]
                by_z = column[np.argsort(centers[column, 2], kind="stable")]
                order.extend(by_z.tolist())
        return order

    # -- traversals ----------------------------------------------------------

    def query_intersecting(self, query: AABB) -> list:
        """Payloads of all entries whose MBB intersects ``query``."""
        if self._root is None:
            return []
        out: list = []
        stack = [self._root]
        qlow, qhigh = query.as_arrays()
        while stack:
            node = stack.pop()
            hits = np.nonzero(
                np.all(
                    (node.boxes[:, :3] <= qhigh) & (qlow <= node.boxes[:, 3:]), axis=1
                )
            )[0]
            if node.is_leaf:
                out.extend(node.children[i].payload for i in hits)
            else:
                stack.extend(node.children[i] for i in hits)
        return out

    def query_within(self, query: AABB, distance: float) -> WithinResult:
        """Section 4.2 within traversal with [MINDIST, MAXDIST] pruning."""
        result = WithinResult(definite=[], candidates=[])
        if self._root is None:
            return result
        stack = [self._root]
        while stack:
            node = stack.pop()
            mind = boxes_mindist_batch(node.boxes, query)
            maxd = boxes_maxdist_batch(node.boxes, query)
            for i in range(len(node.children)):
                if mind[i] > distance:
                    continue  # entire subtree too far
                if maxd[i] <= distance:
                    self._collect_all(node.children[i], node.is_leaf, result.definite)
                    continue
                if node.is_leaf:
                    result.candidates.append(node.children[i].payload)
                else:
                    stack.append(node.children[i])
        return result

    def _collect_all(self, child, from_leaf: bool, out: list) -> None:
        if from_leaf:
            out.append(child.payload)
            return
        stack = [child]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.extend(entry.payload for entry in node.children)
            else:
                stack.extend(node.children)

    def query_nn_candidates(self, query: AABB, k: int = 1) -> list[tuple[object, float, float]]:
        """Section 4.3 NN traversal, generalized to k neighbors.

        Returns ``(payload, mindist, maxdist)`` for every object whose
        distance range to ``query`` can still contain one of the ``k``
        nearest neighbors: an object survives when its MINDIST does not
        exceed the k-th smallest leaf MAXDIST seen (MINMAXDIST pruning).
        The true k nearest neighbors are always among the candidates.
        """
        if self._root is None:
            return []
        if k < 1:
            raise ValueError("k must be >= 1")
        # Max-heap (negated) of the k smallest leaf MAXDIST values.
        worst_k: list[float] = []

        def minmax_k() -> float:
            return -worst_k[0] if len(worst_k) >= k else np.inf

        candidates: list[tuple[object, float, float]] = []
        counter = 0  # heap tiebreak
        heap: list[tuple[float, int, _Node]] = [(0.0, counter, self._root)]
        while heap:
            mind_node, _tie, node = heapq.heappop(heap)
            if mind_node > minmax_k():
                continue
            mind = boxes_mindist_batch(node.boxes, query)
            maxd = boxes_maxdist_batch(node.boxes, query)
            for i in range(len(node.children)):
                if mind[i] > minmax_k():
                    continue
                if node.is_leaf:
                    if len(worst_k) < k:
                        heapq.heappush(worst_k, -float(maxd[i]))
                    elif float(maxd[i]) < -worst_k[0]:
                        heapq.heapreplace(worst_k, -float(maxd[i]))
                    candidates.append(
                        (node.children[i].payload, float(mind[i]), float(maxd[i]))
                    )
                else:
                    counter += 1
                    heapq.heappush(heap, (float(mind[i]), counter, node.children[i]))
        # Final prune with the tightest k-th MINMAXDIST.
        bound = minmax_k()
        return [c for c in candidates if c[1] <= bound]
