"""Spatial indexes.

Two index families from the paper:

* a **global R-tree** over object MBBs (filter step, Section 4) with the
  distance-range traversals for within and nearest-neighbor queries, and
* a per-object **AABB-tree** over decoded mesh faces (Section 5.1) that
  accelerates intra-geometry intersection tests and distance computation
  between two decoded polyhedra.
"""

from repro.index.aabbtree import TriangleAABBTree
from repro.index.rtree import RTree, RTreeEntry, WithinResult

__all__ = ["TriangleAABBTree", "RTree", "RTreeEntry", "WithinResult"]
