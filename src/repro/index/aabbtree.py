"""AABB-tree over the faces of a decoded polyhedron (Section 5.1).

Indexing the primitives of two polyhedra turns the all-pairs face
evaluation (``O(N * N')``) into pruned dual-tree traversals
(``O(N log N')`` in practice): only leaf pairs whose bounding boxes can
still matter reach the triangle kernels.

Both traversals optionally accumulate the number of face pairs actually
evaluated into a stats dict — the engine's Table 1 / Fig 12 accounting.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.geometry.distance import tri_tri_distance_batch
from repro.geometry.tritri import tri_tri_intersect_batch

__all__ = ["TriangleAABBTree"]


class TriangleAABBTree:
    """A static bounding-volume hierarchy over an ``(m, 3, 3)`` triangle array."""

    def __init__(self, triangles: np.ndarray, leaf_size: int = 8):
        triangles = np.asarray(triangles, dtype=np.float64)
        if triangles.ndim != 3 or triangles.shape[1:] != (3, 3):
            raise ValueError("expected an (m, 3, 3) triangle array")
        if len(triangles) == 0:
            raise ValueError("cannot index an empty triangle set")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.triangles = triangles
        self.leaf_size = leaf_size

        tri_low = triangles.min(axis=1)  # (m, 3)
        tri_high = triangles.max(axis=1)
        centers = (tri_low + tri_high) / 2.0

        # Flat node arrays, built iteratively; children of node i are
        # stored explicitly. Leaves own a contiguous range of the
        # permutation array `order`.
        self._node_low: list[np.ndarray] = []
        self._node_high: list[np.ndarray] = []
        self._node_left: list[int] = []
        self._node_right: list[int] = []
        self._node_start: list[int] = []
        self._node_end: list[int] = []
        self.order = np.arange(len(triangles))

        # Iterative median-split build over (start, end) ranges.
        stack = [(0, len(triangles), self._new_node())]
        while stack:
            start, end, node_id = stack.pop()
            idx = self.order[start:end]
            low = tri_low[idx].min(axis=0)
            high = tri_high[idx].max(axis=0)
            self._node_low[node_id] = low
            self._node_high[node_id] = high
            self._node_start[node_id] = start
            self._node_end[node_id] = end
            if end - start <= leaf_size:
                continue
            axis = int(np.argmax(high - low))
            local = np.argsort(centers[idx, axis], kind="stable")
            self.order[start:end] = idx[local]
            mid = start + (end - start) // 2
            left = self._new_node()
            right = self._new_node()
            self._node_left[node_id] = left
            self._node_right[node_id] = right
            stack.append((start, mid, left))
            stack.append((mid, end, right))

        self.node_low = np.asarray(self._node_low)
        self.node_high = np.asarray(self._node_high)
        self.node_left = np.asarray(self._node_left, dtype=np.int64)
        self.node_right = np.asarray(self._node_right, dtype=np.int64)
        self.node_start = np.asarray(self._node_start, dtype=np.int64)
        self.node_end = np.asarray(self._node_end, dtype=np.int64)

    def _new_node(self) -> int:
        self._node_low.append(np.zeros(3))
        self._node_high.append(np.zeros(3))
        self._node_left.append(-1)
        self._node_right.append(-1)
        self._node_start.append(0)
        self._node_end.append(0)
        return len(self._node_left) - 1

    @property
    def num_nodes(self) -> int:
        return len(self.node_left)

    def _is_leaf(self, node: int) -> bool:
        return self.node_left[node] < 0

    def _leaf_triangles(self, node: int) -> np.ndarray:
        idx = self.order[self.node_start[node] : self.node_end[node]]
        return self.triangles[idx]

    # -- dual-tree traversals -------------------------------------------------

    def intersects(self, other: "TriangleAABBTree", stats: dict | None = None) -> bool:
        """True when any face of ``self`` intersects any face of ``other``."""
        stack = [(0, 0)]
        while stack:
            a, b = stack.pop()
            if not _boxes_overlap(
                self.node_low[a], self.node_high[a], other.node_low[b], other.node_high[b]
            ):
                continue
            a_leaf, b_leaf = self._is_leaf(a), other._is_leaf(b)
            if a_leaf and b_leaf:
                tris_a = self._leaf_triangles(a)
                tris_b = other._leaf_triangles(b)
                ii, jj = np.meshgrid(
                    np.arange(len(tris_a)), np.arange(len(tris_b)), indexing="ij"
                )
                pairs = len(tris_a) * len(tris_b)
                if stats is not None:
                    stats["pairs"] = stats.get("pairs", 0) + pairs
                if bool(
                    tri_tri_intersect_batch(tris_a[ii.ravel()], tris_b[jj.ravel()]).any()
                ):
                    return True
            elif b_leaf or (not a_leaf and _volume(self, a) >= _volume(other, b)):
                stack.append((int(self.node_left[a]), b))
                stack.append((int(self.node_right[a]), b))
            else:
                stack.append((a, int(other.node_left[b])))
                stack.append((a, int(other.node_right[b])))
        return False

    def min_distance(
        self,
        other: "TriangleAABBTree",
        stop_below: float = 0.0,
        upper_bound: float = math.inf,
        stats: dict | None = None,
    ) -> float:
        """Branch-and-bound minimum face-pair distance between two trees.

        ``stop_below``: return as soon as the best distance found is <=
        this value (the within query only needs to know the distance
        clears a threshold). ``upper_bound``: prune subtree pairs that
        cannot beat it (seeded by callers that already hold a bound).
        Returns the exact minimum when it is below ``upper_bound``;
        otherwise returns a value >= the true minimum.
        """
        best = upper_bound
        heap = [(self._pair_mindist(other, 0, 0), 0, 0)]
        while heap:
            lower, a, b = heapq.heappop(heap)
            if lower >= best or best <= stop_below:
                break
            a_leaf, b_leaf = self._is_leaf(a), other._is_leaf(b)
            if a_leaf and b_leaf:
                tris_a = self._leaf_triangles(a)
                tris_b = other._leaf_triangles(b)
                ii, jj = np.meshgrid(
                    np.arange(len(tris_a)), np.arange(len(tris_b)), indexing="ij"
                )
                if stats is not None:
                    stats["pairs"] = stats.get("pairs", 0) + len(tris_a) * len(tris_b)
                dist = tri_tri_distance_batch(
                    tris_a[ii.ravel()], tris_b[jj.ravel()], check_intersection=False
                ).min()
                best = min(best, float(dist))
            elif b_leaf or (not a_leaf and _volume(self, a) >= _volume(other, b)):
                for child in (int(self.node_left[a]), int(self.node_right[a])):
                    lower_c = self._pair_mindist(other, child, b)
                    if lower_c < best:
                        heapq.heappush(heap, (lower_c, child, b))
            else:
                for child in (int(other.node_left[b]), int(other.node_right[b])):
                    lower_c = self._pair_mindist(other, a, child)
                    if lower_c < best:
                        heapq.heappush(heap, (lower_c, a, child))
        return best

    def _pair_mindist(self, other: "TriangleAABBTree", a: int, b: int) -> float:
        gap = np.maximum(
            np.maximum(
                self.node_low[a] - other.node_high[b],
                other.node_low[b] - self.node_high[a],
            ),
            0.0,
        )
        return float(math.sqrt(float((gap * gap).sum())))


def _boxes_overlap(low_a, high_a, low_b, high_b) -> bool:
    return bool(np.all((low_a <= high_b) & (low_b <= high_a)))


def _volume(tree: TriangleAABBTree, node: int) -> float:
    extent = tree.node_high[node] - tree.node_low[node]
    return float(extent[0] * extent[1] * extent[2])
