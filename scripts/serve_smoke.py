#!/usr/bin/env python
"""End-to-end smoke test for the ``repro serve`` query service (CI gate).

Exercises the full out-of-process path — real subprocesses, real HTTP —
that the in-process tests in ``tests/test_serve.py`` cannot cover:

1. ``repro generate`` synthesizes a small tissue scene into dataset
   directories;
2. ``repro serve`` boots on an OS-assigned port (``--port 0``) and the
   announced URL is parsed from its stdout;
3. a buffered remote query (``repro query --remote``) and a streaming
   remote query (``--remote --stream``) both succeed, print the shared
   result rendering, and agree with a local in-process run of the same
   spec pair-for-pair;
4. ``GET /metrics`` exposes ``repro_query_latency_seconds`` (the query
   actually flowed through the instrumented engine) plus the server
   gauges;
5. SIGINT produces a clean shutdown: the server exits promptly with a
   zero-ish status and leaves no orphan processes in its process group.

Usage: ``PYTHONPATH=src python scripts/serve_smoke.py``
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}
BOOT_TIMEOUT = 60.0


def run_cli(*args: str) -> subprocess.CompletedProcess:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=REPO, env=ENV, capture_output=True, text=True, timeout=300,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"FAIL: `repro {' '.join(args)}` exited {proc.returncode}\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
        )
    return proc


def check(ok: bool, label: str) -> None:
    if not ok:
        raise SystemExit(f"FAIL: {label}")
    print(f"ok: {label}")


def boot_server(*args: str) -> tuple[subprocess.Popen, str]:
    """Start ``repro serve`` and wait for its announced URL."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *args, "--port", "0"],
        cwd=REPO, env=ENV, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, start_new_session=True,
    )
    deadline = time.monotonic() + BOOT_TIMEOUT
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = re.search(r"serving on (http://\S+)", line)
        if match:
            return proc, match.group(1)
    proc.kill()
    raise SystemExit(
        "FAIL: server never announced its URL\n" + "".join(lines)
    )


def fetch(url: str) -> str:
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.read().decode("utf-8")


def pairs_from_output(stdout: str) -> dict[str, str]:
    """Parse the `target <id>: [...]` rows printed by _print_result."""
    return dict(re.findall(r"^  target (\d+): (.+)$", stdout, re.MULTILINE))


def group_is_gone(pgid: int) -> bool:
    try:
        os.killpg(pgid, 0)
    except ProcessLookupError:
        return True
    return False


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="repro_serve_smoke_"))

    # 1. Synthesize a small scene.
    run_cli("generate", str(tmp), "--nuclei", "24", "--vessels", "1",
            "--seed", "7")
    check((tmp / "nuclei_a").is_dir() and (tmp / "nuclei_b").is_dir(),
          "generate produced dataset directories")

    # Local ground truth for the exact spec the remote queries will run.
    local = run_cli("query", str(tmp / "nuclei_a"), str(tmp / "nuclei_b"),
                    "--query", "within", "--distance", "3.0",
                    "--limit", "1000")
    local_pairs = pairs_from_output(local.stdout)

    # 2. Boot the service.
    proc, url = boot_server(str(tmp / "nuclei_a"), str(tmp / "nuclei_b"),
                            str(tmp / "vessels"))
    pgid = os.getpgid(proc.pid)
    print(f"ok: server up at {url}")
    try:
        health = json.loads(fetch(f"{url}/healthz"))
        check(health.get("ok") is True, "healthz reports ok")
        datasets = json.loads(fetch(f"{url}/v1/datasets"))
        check(set(datasets["datasets"]) >= {"nuclei_a", "nuclei_b"},
              "served datasets listed")

        # 3. Buffered and streaming remote queries via the CLI.
        buffered = run_cli("query", "nuclei_a", "nuclei_b",
                           "--query", "within", "--distance", "3.0",
                           "--remote", url, "--limit", "1000")
        check(pairs_from_output(buffered.stdout) == local_pairs,
              "buffered remote pairs == local pairs")

        streamed = run_cli("query", "nuclei_a", "nuclei_b",
                           "--query", "within", "--distance", "3.0",
                           "--remote", url, "--stream", "--limit", "1000")
        check(pairs_from_output(streamed.stdout) == local_pairs,
              "streamed remote pairs == local pairs")
        check("confirmed" in streamed.stdout or not local_pairs,
              "streaming printed per-frame progress")

        # 4. The instrumented engine showed up in /metrics.
        metrics = fetch(f"{url}/metrics")
        for name in ("repro_query_latency_seconds",
                     "repro_server_inflight",
                     "repro_server_requests_total"):
            check(name in metrics, f"/metrics exposes {name}")

        # 5. Clean shutdown, no orphans.
        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=30)
        check(proc.returncode in (0, -signal.SIGINT),
              f"server exited cleanly (rc={proc.returncode})")
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline and not group_is_gone(pgid):
            time.sleep(0.2)
        check(group_is_gone(pgid), "no orphan processes in the server group")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
