#!/usr/bin/env python3
"""Render bench_output.txt's [table1] rows as the EXPERIMENTS.md table.

Keeps the LAST occurrence of each (test, paradigm, accel) cell so reruns
appended to the file supersede stale sections.
"""

import re
import sys
from pathlib import Path

ROW = re.compile(
    r"\[table1\] (\S+)\s+(FR|FPR)\s*/(\S+)\s+time=\s*([0-9.]+)s"
    r" face_pairs=\s*(\d+) matches=\s*(\d+) paper=(\S+)"
)


def main(path="bench_output.txt"):
    cells = {}
    for line in Path(path).read_text().splitlines():
        match = ROW.search(line)
        if match:
            test, paradigm, accel, seconds, pairs, matches, paper = match.groups()
            cells[(test, paradigm, accel)] = (float(seconds), int(pairs), paper)

    tests = ["INT-NN", "WN-NN", "WN-NV", "NN-NN", "NN-NV"]
    accels = ["B", "P", "A", "G", "P+G"]
    print("| Test | Accel | FR s (ours) | FPR s (ours) | FR s (paper) | FPR s (paper) | FPR speedup (ours / paper) |")
    print("|---|---|---|---|---|---|---|")
    for test in tests:
        for accel in accels:
            fr = cells.get((test, "FR", accel))
            fpr = cells.get((test, "FPR", accel))
            if not fr or not fpr:
                continue
            ours = fr[0] / fpr[0] if fpr[0] else float("inf")
            paper_fr, paper_fpr = fr[2], fpr[2]
            try:
                paper_ratio = f"{float(paper_fr) / float(paper_fpr):.1f}×"
            except ValueError:
                paper_ratio = "n/a"
            print(
                f"| {test} | {accel} | {fr[0]:.2f} | {fpr[0]:.2f} | "
                f"{paper_fr} | {paper_fpr} | {ours:.1f}× / {paper_ratio} |"
            )


if __name__ == "__main__":
    main(*sys.argv[1:])
