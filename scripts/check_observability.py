#!/usr/bin/env python
"""End-to-end observability check (CI gate).

Runs a small traced join and validates the exported telemetry against
the checked-in golden set:

1. every metric series in ``tests/golden/metrics_series.txt`` appears in
   the Prometheus dump;
2. the Chrome trace export matches ``tests/golden/chrome_trace_schema.json``
   (event keys, types, ``"X"`` phase, required span names) and survives a
   JSON round-trip;
3. the trace's filter/decode/compute totals match ``QueryStats`` within
   rounding;
4. with tracing disabled the engine hands out only the shared no-op span
   and a join is not substantially slower than the traced run (overhead
   smoke check — generous bound, this is not a benchmark);
5. a fault-injected join keeps the pairs ledger consistent: per LOD,
   pairs pruned never exceed pairs evaluated, and every confirmed result
   was evaluated somewhere — including MBB-fallback confirmations;
6. the columnar slice decoder agrees with the reference replay decoder
   byte-for-byte at every LOD of every object in the gate scene, and the
   O(1) ``face_count_at_lod`` matches the materialized face counts;
7. a deadline-bounded join reports a ``completeness`` record whose
   arithmetic adds up, whose pairs are a sound subset of the undeadlined
   answer, and whose partiality agrees with the root span attributes and
   the ``repro_deadline_exceeded_total`` counter;
8. the refinement funnel reconciles with the pairs ledger and the query
   stats on every query kind — stages are monotonic (settled never
   exceeds evaluated, the confirmed/rejected/degraded split sums to
   settled), per-LOD evaluated/settled equal the ledger exactly, and the
   funnel's total confirmations equal ``stats.results`` — including on a
   fault-injected run and under the active query backend;
9. the batched gather/segment refinement (``core/batch.py``, the
   default) and the per-pair dispatch path it replaced
   (``batched_refine=False``) agree exactly — same result pairs, same
   per-LOD pairs ledger, same funnel stage counts — on the intersection
   and within joins under the active query backend;
10. the v3 shard store (``REPRO_STORAGE_BACKEND=shard``: mmap-backed
   lazy datasets, manifest-handle worker transport) answers byte-for-
   byte identically to the legacy container store — same pairs, pairs
   ledger, and funnel — on the intersection and within joins under the
   active query backend.

The join respects ``REPRO_QUERY_WORKERS`` / ``REPRO_QUERY_BACKEND``, so
CI also runs this gate under the process query backend.

Usage: ``PYTHONPATH=src python scripts/check_observability.py``
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
GOLDEN = ROOT / "tests" / "golden"

from repro.compression import PPVPEncoder  # noqa: E402
from repro.core import EngineConfig, ThreeDPro  # noqa: E402
from repro.datagen import make_tissue_scene  # noqa: E402
from repro.datagen.vessels import VesselSpec  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.obs.trace import NOOP_SPAN, phase_totals  # noqa: E402
from repro.storage import Dataset  # noqa: E402

_FAILURES: list[str] = []

_TYPE_CHECKS = {
    "str": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "dict": lambda v: isinstance(v, dict),
}


def check(ok: bool, what: str) -> None:
    print(f"  {'ok' if ok else 'FAIL'}: {what}")
    if not ok:
        _FAILURES.append(what)


def build_datasets() -> dict[str, Dataset]:
    scene = make_tissue_scene(
        n_nuclei=24,
        n_vessels=1,
        seed=11,
        region=80.0,
        nucleus_subdivisions=1,
        vessel_spec=VesselSpec(bifurcations=2, points_per_branch=4, segments=6),
    )
    encoder = PPVPEncoder(max_lods=6, rounds_per_lod=2)
    return {
        "nuclei_a": Dataset.from_polyhedra("nuclei_a", scene.nuclei_a, encoder),
        "vessels": Dataset.from_polyhedra("vessels", scene.vessels, encoder),
    }


def run_join(datasets, tracing: bool):
    engine = ThreeDPro(EngineConfig(tracing=tracing, metrics=MetricsRegistry()))
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    start = time.perf_counter()
    result = engine.nn_join("nuclei_a", "vessels")
    elapsed = time.perf_counter() - start
    return engine, result, elapsed


def check_prometheus(engine) -> None:
    print("[2/8] Prometheus export vs golden series list")
    text = engine.metrics.to_prometheus()
    present = {
        line.split("{")[0].split(" ")[0]
        for line in text.splitlines()
        if line and not line.startswith("#")
    }
    wanted = [
        line.strip()
        for line in (GOLDEN / "metrics_series.txt").read_text().splitlines()
        if line.strip() and not line.startswith("#")
    ]
    for name in wanted:
        # histograms expose name_bucket/_sum/_count series
        hit = name in present or f"{name}_count" in present
        check(hit, f"series {name} present")


def check_chrome_trace(engine) -> None:
    print("[3/8] Chrome trace vs golden schema")
    schema = json.loads((GOLDEN / "chrome_trace_schema.json").read_text())
    doc = json.loads(json.dumps(engine.tracer.to_chrome_trace()))
    for key in schema["required_top_level"]:
        check(key in doc, f"top-level key {key}")
    check(doc.get("displayTimeUnit") == schema["display_time_unit"], "displayTimeUnit")
    events = doc.get("traceEvents", [])
    check(bool(events), "traceEvents non-empty")
    event_schema = schema["event"]
    bad = 0
    for event in events:
        for key in event_schema["required_keys"]:
            if key not in event or not _TYPE_CHECKS[event_schema["types"][key]](event[key]):
                bad += 1
        if event.get("ph") != event_schema["ph"] or event.get("cat") != event_schema["cat"]:
            bad += 1
        if event.get("ts", -1) < 0 or event.get("dur", -1) < 0:
            bad += 1
    check(bad == 0, f"all {len(events)} events match the event schema")
    names = {event["name"] for event in events}
    for name in schema["required_span_names"]:
        check(name in names, f"span name {name!r} present")


def check_phase_agreement(engine, stats) -> None:
    print("[1/8] trace phase totals vs QueryStats")
    totals = phase_totals(engine.tracer)
    for phase, value in (
        ("filter", stats.filter_seconds),
        ("decode", stats.decode_seconds),
        ("compute", stats.compute_seconds),
    ):
        check(
            abs(totals[phase] - value) < 1e-6,
            f"{phase}: trace {totals[phase]:.6f}s == stats {value:.6f}s",
        )
    root = engine.tracer.roots[0]
    check(
        abs(root.wall_seconds - stats.total_seconds) < 1e-6,
        "root span wall == stats.total_seconds",
    )


def check_disabled_overhead(datasets, traced_seconds: float) -> None:
    print("[4/8] disabled-tracing fast path")
    engine, result, elapsed = run_join(datasets, tracing=False)
    check(engine.tracer.span("anything") is NOOP_SPAN, "disabled tracer hands out NOOP_SPAN")
    check(engine.tracer.roots == [], "disabled tracer collected no spans")
    check(result.stats.total_seconds > 0.0, "stats still populated when disabled")
    # Generous bound: the untraced run must not be grossly slower than the
    # traced one (catches accidental always-on instrumentation).
    bound = max(2.0 * traced_seconds, traced_seconds + 0.5)
    check(
        elapsed <= bound,
        f"untraced join {elapsed:.3f}s within bound {bound:.3f}s "
        f"(traced {traced_seconds:.3f}s)",
    )


def check_pairs_ledger(datasets) -> None:
    print("[5/8] degraded-run pairs ledger")
    from repro.faults import FaultInjector

    engine = ThreeDPro(
        EngineConfig(
            metrics=MetricsRegistry(),
            fault_injector=FaultInjector(seed=11, decode_error_rate=0.9),
        )
    )
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    # Distance 40 (seed 11, rate 0.9): the filter passes 21 candidates,
    # every target decode fails, and the MBB fallback still confirms a
    # few pairs — the exact mix the ledger used to drop.
    stats = engine.within_join("nuclei_a", "vessels", 40.0).stats
    check(stats.degraded_objects > 0, "faulted join actually degraded")
    evaluated = stats.pairs_evaluated_by_lod
    for lod, pruned in sorted(stats.pairs_pruned_by_lod.items()):
        check(
            pruned <= evaluated.get(lod, 0),
            f"LOD {lod}: pruned {pruned} <= evaluated {evaluated.get(lod, 0)}",
        )
    # Every confirmed pair settled somewhere on the ledger — the MBB
    # fallback confirmations included (they used to bypass it entirely).
    check(
        stats.results <= sum(stats.pairs_pruned_by_lod.values()),
        f"results {stats.results} <= settled pairs "
        f"{sum(stats.pairs_pruned_by_lod.values())}",
    )


def check_decode_equivalence(datasets) -> None:
    print("[6/8] columnar slice decode vs reference replay")
    import numpy as np

    from repro.compression import ReplayDecoder

    objects = [obj for ds in datasets.values() for obj in ds.objects]
    mismatched = count_mismatches = 0
    lods_checked = 0
    for obj in objects:
        ref, cur = ReplayDecoder(obj), obj.decoder()
        for lod in obj.lods:
            ref.advance_to(lod)
            cur.advance_to(lod)
            lods_checked += 1
            if not (
                np.array_equal(ref.face_array(), cur.face_array())
                and ref.vertices_reinserted == cur.vertices_reinserted
            ):
                mismatched += 1
            if obj.face_count_at_lod(lod) != len(cur.face_array()):
                count_mismatches += 1
    check(
        mismatched == 0,
        f"slice == replay on all {lods_checked} (object, LOD) pairs",
    )
    check(
        count_mismatches == 0,
        f"face_count_at_lod matches materialized counts on {lods_checked} pairs",
    )


def check_partial_completeness(datasets, reference) -> None:
    print("[7/8] deadline-bounded partial result consistency")
    registry = MetricsRegistry()
    engine = ThreeDPro(
        EngineConfig(tracing=True, metrics=registry, deadline_ms=1)
    )
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    result = engine.nn_join("nuclei_a", "vessels")
    comp = result.completeness
    check(comp is not None, "partial run carries a completeness record")
    check(
        comp.targets_total
        == comp.targets_finished + comp.targets_inflight + comp.targets_unstarted,
        f"completeness arithmetic: {comp.targets_total} == "
        f"{comp.targets_finished} + {comp.targets_inflight} + {comp.targets_unstarted}",
    )
    check(result.complete == comp.complete, "result.complete mirrors completeness")
    subset = set(result.pairs) <= set(reference.pairs) and all(
        result.pairs[tid] == reference.pairs[tid] for tid in result.pairs
    )
    check(
        subset,
        f"{len(result.pairs)} confirmed pairs are a sound subset of the "
        f"undeadlined {len(reference.pairs)}",
    )
    # The partiality counter, the root span's attributes, and the result
    # must tell the same story — one increment per partial query, zero
    # when a 1ms budget somehow suffices.
    exceeded = sum(
        float(line.rsplit(" ", 1)[1])
        for line in registry.to_prometheus().splitlines()
        if line.startswith("repro_deadline_exceeded_total")
    )
    expected = 0.0 if result.complete else 1.0
    check(
        exceeded == expected,
        f"repro_deadline_exceeded_total == {expected:g} (got {exceeded:g})",
    )
    root = engine.tracer.roots[0]
    check(
        bool(root.attrs.get("partial")) == (not result.complete),
        "root span partial attribute agrees with the result",
    )
    if not result.complete:
        check(
            root.attrs.get("targets_finished") == comp.targets_finished
            and root.attrs.get("targets_unstarted") == comp.targets_unstarted,
            "root span target counts match the completeness record",
        )


def check_funnel(datasets) -> None:
    print("[8/8] refinement funnel vs pairs ledger / query stats")
    from repro.core.plan import QuerySpec
    from repro.faults import FaultInjector

    engine = ThreeDPro(EngineConfig(metrics=MetricsRegistry()))
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    specs = [
        QuerySpec(kind="intersection", source="vessels", target="nuclei_a"),
        QuerySpec(kind="within", source="vessels", target="nuclei_a", distance=40.0),
        QuerySpec(kind="nn", source="vessels", target="nuclei_a"),
        QuerySpec(kind="knn", source="vessels", target="nuclei_a", k=2),
        QuerySpec(kind="containment", source="nuclei_a", point=(0.0, 0.0, 0.0)),
    ]
    for spec in specs:
        result = engine.execute(spec)
        funnel = result.funnel
        violations = funnel.violations(result.stats, strict=True)
        check(
            not violations,
            f"{spec.kind}: funnel reconciles "
            f"({funnel.summary()})"
            + ("" if not violations else f" -- {violations}"),
        )
    # The reconciliation must hold when decodes fail and refinement
    # degrades to MBB fallbacks — the historical ledger-drop scenario.
    faulted = ThreeDPro(
        EngineConfig(
            metrics=MetricsRegistry(),
            fault_injector=FaultInjector(seed=11, decode_error_rate=0.9),
        )
    )
    for dataset in datasets.values():
        faulted.load_dataset(dataset)
    result = faulted.within_join("nuclei_a", "vessels", 40.0)
    check(result.stats.degraded_objects > 0, "faulted join actually degraded")
    violations = result.funnel.violations(result.stats, strict=True)
    check(
        not violations,
        "faulted within: funnel reconciles"
        + ("" if not violations else f" -- {violations}"),
    )
    degraded = sum(s.degraded for s in result.funnel.stages.values())
    check(degraded > 0, f"faulted join books degraded settlements ({degraded})")


def check_batched_parity(datasets) -> None:
    print("[9/10] batched vs per-pair refinement parity")
    from repro.core.plan import QuerySpec

    specs = [
        QuerySpec(kind="intersection", source="vessels", target="nuclei_a"),
        QuerySpec(kind="within", source="vessels", target="nuclei_a", distance=40.0),
    ]
    results = {}
    for batched in (False, True):
        engine = ThreeDPro(
            EngineConfig(metrics=MetricsRegistry(), batched_refine=batched)
        )
        for dataset in datasets.values():
            engine.load_dataset(dataset)
        results[batched] = [engine.execute(spec) for spec in specs]
    # Under the process/thread backends (this gate runs under whatever
    # REPRO_QUERY_* selects), decode-cache counters depend on scheduling;
    # results and the pairs ledger never may.
    for spec, per_pair, batched in zip(specs, results[False], results[True]):
        check(
            list(batched.pairs.items()) == list(per_pair.pairs.items()),
            f"{spec.kind}: batched pairs identical to per-pair",
        )
        check(
            dict(batched.stats.pairs_evaluated_by_lod)
            == dict(per_pair.stats.pairs_evaluated_by_lod)
            and dict(batched.stats.pairs_pruned_by_lod)
            == dict(per_pair.stats.pairs_pruned_by_lod),
            f"{spec.kind}: batched pairs ledger identical to per-pair",
        )
        per_stage = {
            lod: (s.evaluated, s.settled, s.confirmed, s.rejected, s.degraded)
            for lod, s in per_pair.funnel.stages.items()
        }
        batched_stage = {
            lod: (s.evaluated, s.settled, s.confirmed, s.rejected, s.degraded)
            for lod, s in batched.funnel.stages.items()
        }
        check(
            batched_stage == per_stage
            and batched.funnel.candidates == per_pair.funnel.candidates,
            f"{spec.kind}: batched funnel stages identical to per-pair",
        )


def check_shard_parity(datasets) -> None:
    print("[10/10] shard vs legacy storage parity")
    import tempfile

    from repro.core.plan import QuerySpec
    from repro.storage.store import load_dataset, save_dataset

    specs = [
        QuerySpec(kind="intersection", source="vessels", target="nuclei_a"),
        QuerySpec(kind="within", source="vessels", target="nuclei_a", distance=40.0),
    ]
    results = {}
    with tempfile.TemporaryDirectory(prefix="shard-gate-") as tmp:
        for layout in ("legacy", "shard"):
            engine = ThreeDPro(
                EngineConfig(metrics=MetricsRegistry(), storage_backend=layout)
            )
            for name, dataset in datasets.items():
                directory = Path(tmp) / layout / name
                save_dataset(dataset, directory, layout=layout)
                engine.load_dataset(load_dataset(directory))
            results[layout] = [engine.execute(spec) for spec in specs]
        # Both engines answer from disk-backed stores holding identical
        # blobs, so every observable must match exactly — the shard
        # path's lazy mmap materialization may not change one bit.
        for spec, legacy, shard in zip(specs, results["legacy"], results["shard"]):
            check(
                list(shard.pairs.items()) == list(legacy.pairs.items()),
                f"{spec.kind}: shard pairs identical to legacy store",
            )
            check(
                dict(shard.stats.pairs_evaluated_by_lod)
                == dict(legacy.stats.pairs_evaluated_by_lod)
                and dict(shard.stats.pairs_pruned_by_lod)
                == dict(legacy.stats.pairs_pruned_by_lod),
                f"{spec.kind}: shard pairs ledger identical to legacy store",
            )
            legacy_stage = {
                lod: (s.evaluated, s.settled, s.confirmed, s.rejected, s.degraded)
                for lod, s in legacy.funnel.stages.items()
            }
            shard_stage = {
                lod: (s.evaluated, s.settled, s.confirmed, s.rejected, s.degraded)
                for lod, s in shard.funnel.stages.items()
            }
            check(
                shard_stage == legacy_stage
                and shard.funnel.candidates == legacy.funnel.candidates,
                f"{spec.kind}: shard funnel stages identical to legacy store",
            )


def main() -> int:
    print("building datasets...")
    datasets = build_datasets()
    engine, result, traced_seconds = run_join(datasets, tracing=True)
    check_phase_agreement(engine, result.stats)
    check_prometheus(engine)
    check_chrome_trace(engine)
    check_disabled_overhead(datasets, traced_seconds)
    check_pairs_ledger(datasets)
    check_decode_equivalence(datasets)
    check_partial_completeness(datasets, result)
    check_funnel(datasets)
    check_batched_parity(datasets)
    check_shard_parity(datasets)
    if _FAILURES:
        print(f"\n{len(_FAILURES)} check(s) FAILED:")
        for failure in _FAILURES:
            print(f"  - {failure}")
        return 1
    print("\nall observability checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
