#!/usr/bin/env bash
# Regenerate every paper artifact. Chunked so partial results survive
# interruption; output accumulates in bench_output.txt.
set -u
cd "$(dirname "$0")/.."
: > bench_output.txt
for target in \
    benchmarks/bench_fig9_lod_sizes.py \
    benchmarks/bench_fig11_decimation.py \
    benchmarks/bench_stats_compression.py \
    benchmarks/bench_ablation_quantization.py \
    benchmarks/bench_table2_cache.py \
    benchmarks/bench_fig12_pruning.py \
    benchmarks/bench_fig10_breakdown.py \
    benchmarks/bench_fig13_postgis.py \
    benchmarks/bench_ablation_lod_choice.py \
    benchmarks/bench_ablation_cache_size.py \
    benchmarks/bench_ablation_codec.py \
    benchmarks/bench_ablation_distortion.py \
    benchmarks/bench_ablation_knn.py \
    benchmarks/bench_table1.py; do
  echo "=== $target ===" | tee -a bench_output.txt
  python3 -m pytest "$target" --benchmark-only -q -s 2>&1 | tee -a bench_output.txt
done
