#!/usr/bin/env python
"""Perf-regression harness: per-phase medians + funnel counts vs baseline.

Runs the gate scene (the same datasets as ``check_observability.py``)
through a fixed workload of queries, repeats each query several times,
and records:

* per-phase **median** wall times (filter / decode / compute / total) —
  medians because CI machines hiccup and a single slow repeat must not
  fail the world;
* the refinement **funnel counts** (candidates, evaluated, settled,
  decoded objects/bytes) — these are deterministic, so they are compared
  exactly: a funnel drift is an algorithmic change, not noise;
* an **instrument-overhead micro-benchmark**: the measured per-call cost
  of the metric handles and funnel updates, scaled by the number of
  such updates the workload actually performed, as a fraction of the
  median query time (must stay under 1%).

Modes::

    bench_regress.py                       # run, write BENCH_7.json
    bench_regress.py --check               # also compare vs the baseline
    bench_regress.py --update-baseline     # refresh results/ baseline
    bench_regress.py --selftest            # prove a 2x compute slowdown
                                           # is detected (temp baseline)

``--check`` exit codes: 0 = within thresholds, 1 = threshold breach
(CI treats this as a warning — timing baselines are machine-relative),
2 = harness error (always fails CI). Timing comparisons are
noise-tolerant: a phase regresses only if it is both ``--threshold``
times slower (default 1.5x) *and* at least ``--min-delta`` seconds
slower (default 10ms). Funnel counts must match exactly.

``REPRO_BENCH_SCALE`` scales the repeat count (CI uses 1; bump it
locally for tighter medians).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(Path(__file__).resolve().parent))

from check_observability import build_datasets  # noqa: E402

from repro.core import EngineConfig, ThreeDPro  # noqa: E402
from repro.core.plan import QuerySpec  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402

SCHEMA = "bench_regress/v1"
PHASES = ("filter", "decode", "compute", "total")

#: The fixed workload: name -> QuerySpec over the gate scene.
WORKLOADS = {
    "nn_join": QuerySpec(kind="nn", source="vessels", target="nuclei_a"),
    "within_join": QuerySpec(
        kind="within", source="vessels", target="nuclei_a", distance=40.0
    ),
    "knn_join": QuerySpec(kind="knn", source="vessels", target="nuclei_a", k=2),
}


def _repeats() -> int:
    scale = int(os.environ.get("REPRO_BENCH_SCALE", "1") or "1")
    return max(3, 5 * scale)


def _build_engine(datasets) -> ThreeDPro:
    engine = ThreeDPro(EngineConfig(metrics=MetricsRegistry()))
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    return engine


def _funnel_counts(funnel) -> dict:
    stages = {
        str(lod): stage.as_dict() for lod, stage in sorted(funnel.stages.items())
    }
    return {
        "candidates": funnel.candidates,
        "mbb_pruned": funnel.mbb_pruned,
        "filter_confirmed": funnel.filter_confirmed,
        "confirmed_final": funnel.confirmed_final,
        "confirmed_total": funnel.confirmed_total,
        "decoded_bytes_total": funnel.decoded_bytes_total,
        "stages": stages,
    }


def run_workloads(datasets, repeats: int) -> dict:
    """One record per workload: per-phase medians + one run's funnel."""
    out = {}
    for name, spec in WORKLOADS.items():
        # A fresh engine per workload: the decode cache state (and so
        # the funnel's hit/miss split) must not depend on dict order of
        # earlier workloads. The first repeat is the cold-cache run and
        # is excluded from timing medians.
        engine = _build_engine(datasets)
        samples: dict[str, list[float]] = {phase: [] for phase in PHASES}
        funnel = None
        for i in range(repeats + 1):
            result = engine.execute(spec)
            if i == 0:
                funnel = _funnel_counts(result.stats.funnel)
                continue
            stats = result.stats
            samples["filter"].append(stats.filter_seconds)
            samples["decode"].append(stats.decode_seconds)
            samples["compute"].append(stats.compute_seconds)
            samples["total"].append(stats.total_seconds)
        out[name] = {
            "median_seconds": {
                phase: statistics.median(values)
                for phase, values in samples.items()
            },
            "results": result.stats.results,
            "funnel": funnel,
        }
    return out


def measure_instrument_overhead(workloads: dict) -> dict:
    """Micro-benchmark the telemetry hot paths against real query time.

    Times the three per-pair instrument operations (funnel stage
    update, counter-handle inc, histogram-handle observe), scales each
    by how often the heaviest workload actually performs it, and
    reports the summed cost as a fraction of that workload's median
    total time.
    """
    from repro.obs.funnel import QueryFunnel
    from repro.obs.profile import pop_phase, push_phase

    registry = MetricsRegistry()
    counter = registry.counter("bench_overhead_total", "overhead probe").handle()
    histogram = registry.histogram("bench_overhead_seconds", "overhead probe").handle()
    funnel = QueryFunnel()
    n = 50_000

    start = time.perf_counter()
    for _ in range(n):
        counter.inc()
    counter_ns = (time.perf_counter() - start) / n

    start = time.perf_counter()
    for _ in range(n):
        histogram.observe(0.5)
    histogram_ns = (time.perf_counter() - start) / n

    stage = funnel.stage(0)
    start = time.perf_counter()
    for _ in range(n):
        stage.evaluated += 1
        stage.settled += 1
    funnel_ns = (time.perf_counter() - start) / n

    start = time.perf_counter()
    for _ in range(n):
        push_phase("bench")
        pop_phase()
    phase_ns = (time.perf_counter() - start) / n

    # The dominant workload's real op counts: every evaluated pair costs
    # one funnel update; each query emits a bounded set of counter incs
    # and histogram observes (stages x labels, < 64); each target pushes
    # two phases and each decode one.
    name, record = max(
        workloads.items(), key=lambda item: item[1]["median_seconds"]["total"]
    )
    evaluated = sum(
        stage["evaluated"] for stage in record["funnel"]["stages"].values()
    )
    decoded = sum(
        stage["decoded_objects"] for stage in record["funnel"]["stages"].values()
    )
    emissions = 64
    per_query = (
        evaluated * 2 * funnel_ns
        + emissions * (counter_ns + histogram_ns)
        + (2 * record["results"] + decoded + 2) * phase_ns
    )
    total = record["median_seconds"]["total"]
    return {
        "counter_inc_seconds": counter_ns,
        "histogram_observe_seconds": histogram_ns,
        "funnel_update_seconds": funnel_ns,
        "phase_push_pop_seconds": phase_ns,
        "reference_workload": name,
        "estimated_per_query_seconds": per_query,
        "overhead_ratio": per_query / total if total else 0.0,
    }


def run_report(datasets, repeats: int) -> dict:
    workloads = run_workloads(datasets, repeats)
    overhead = measure_instrument_overhead(workloads)
    return {
        "schema": SCHEMA,
        "repeats": repeats,
        "workloads": workloads,
        "instrument_overhead": overhead,
    }


# -- baseline comparison --------------------------------------------------------


def compare(baseline: dict, current: dict, threshold: float, min_delta: float):
    """(breaches, errors): timing breaches are warnings, errors are bugs."""
    breaches: list[str] = []
    errors: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        errors.append(
            f"schema mismatch: baseline {baseline.get('schema')!r} "
            f"vs current {current.get('schema')!r} (refresh the baseline)"
        )
        return breaches, errors
    for name, record in current["workloads"].items():
        base = baseline["workloads"].get(name)
        if base is None:
            errors.append(f"{name}: not in baseline (refresh the baseline)")
            continue
        for phase in PHASES:
            cur = record["median_seconds"][phase]
            ref = base["median_seconds"][phase]
            delta = cur - ref
            if ref > 0 and cur / ref > threshold and delta > min_delta:
                breaches.append(
                    f"{name}/{phase}: {cur:.4f}s vs baseline {ref:.4f}s "
                    f"({cur / ref:.2f}x, +{delta * 1000:.1f}ms)"
                )
        if record["results"] != base["results"]:
            errors.append(
                f"{name}: results {record['results']} != "
                f"baseline {base['results']}"
            )
        if record["funnel"] != base["funnel"]:
            errors.append(
                f"{name}: funnel counts drifted from baseline "
                f"(deterministic counts — this is an algorithmic change, "
                f"not noise; refresh the baseline if intended)"
            )
    ratio = current["instrument_overhead"]["overhead_ratio"]
    if ratio >= 0.01:
        errors.append(
            f"instrument overhead {ratio:.2%} of query time (budget: <1%)"
        )
    return breaches, errors


# -- self-test: injected slowdown must be detected ------------------------------


def _inject_compute_slowdown(factor: float) -> None:
    """Busy-pad the geometry kernels so compute runs ~factor x slower."""
    from repro.core import batch
    from repro.parallel.executor import GeometryComputer

    def slowed(method):
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            result = method(*args, **kwargs)
            pad_until = start + (time.perf_counter() - start) * factor
            while time.perf_counter() < pad_until:
                pass
            return result

        return wrapper

    for name in ("intersects", "min_distance", "pairwise_min_distances"):
        setattr(GeometryComputer, name, slowed(getattr(GeometryComputer, name)))
    # The batched refinement path bypasses the per-pair GeometryComputer
    # methods; pad its module-level entry points too (refine calls them
    # through the module namespace, so setattr is enough).
    for name in ("batched_any_intersect", "batched_min_distances"):
        setattr(batch, name, slowed(getattr(batch, name)))


def selftest(datasets, repeats: int, threshold: float, min_delta: float) -> int:
    print("selftest: building clean baseline...")
    baseline = run_report(datasets, repeats)
    clean = run_report(datasets, repeats)
    breaches, errors = compare(baseline, clean, threshold, min_delta)
    if errors:
        print("selftest FAILED: clean re-run reported errors:")
        for line in errors:
            print(f"  - {line}")
        return 1
    if breaches:
        print("selftest WARNING: clean re-run breached timing thresholds "
              "(noisy machine):")
        for line in breaches:
            print(f"  - {line}")
    print("selftest: injecting 2x compute slowdown...")
    _inject_compute_slowdown(2.0)
    slowed = run_report(datasets, repeats)
    breaches, errors = compare(baseline, slowed, threshold, min_delta)
    compute_breaches = [b for b in breaches if "/compute" in b or "/total" in b]
    if not compute_breaches:
        print("selftest FAILED: 2x compute slowdown went undetected")
        for line in breaches + errors:
            print(f"  - {line}")
        return 1
    print("selftest: slowdown detected:")
    for line in compute_breaches:
        print(f"  - {line}")
    print("selftest passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=ROOT / "BENCH_7.json")
    parser.add_argument(
        "--baseline", type=Path,
        default=ROOT / "results" / "bench_regress_baseline.json",
    )
    parser.add_argument("--check", action="store_true",
                        help="compare against the baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the current report as the new baseline")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="breach when a phase is this many times slower")
    parser.add_argument("--min-delta", type=float, default=0.010,
                        help="and at least this many seconds slower")
    parser.add_argument("--selftest", action="store_true",
                        help="verify an injected 2x compute slowdown is caught")
    args = parser.parse_args(argv)

    repeats = _repeats()
    print(f"building gate scene... ({repeats} timed repeats per workload)")
    datasets = build_datasets()

    if args.selftest:
        return selftest(datasets, repeats, args.threshold, args.min_delta)

    report = run_report(datasets, repeats)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report -> {args.out}")
    for name, record in report["workloads"].items():
        medians = record["median_seconds"]
        print(f"  {name}: " + " ".join(
            f"{phase}={medians[phase] * 1000:.1f}ms" for phase in PHASES
        ) + f" results={record['results']}")
    overhead = report["instrument_overhead"]
    print(f"  instrument overhead: {overhead['overhead_ratio']:.3%} "
          f"of {overhead['reference_workload']} median (budget <1%)")

    if args.update_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(report, indent=2) + "\n")
        print(f"baseline -> {args.baseline}")
        return 0

    if args.check:
        if not args.baseline.exists():
            print(f"error: no baseline at {args.baseline} "
                  f"(run with --update-baseline first)")
            return 2
        baseline = json.loads(args.baseline.read_text())
        breaches, errors = compare(baseline, report, args.threshold, args.min_delta)
        for line in errors:
            print(f"ERROR: {line}")
        for line in breaches:
            print(f"BREACH: {line}")
        if errors:
            return 2
        if breaches:
            print("timing threshold breached (machine-relative; treat as a "
                  "warning unless reproducible)")
            return 1
        print("within thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
