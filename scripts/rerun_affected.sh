#!/usr/bin/env bash
# Re-append the chunks affected by the NN-pruning-attribution fix and
# the PostGIS row-materialization fix.
set -u
cd "$(dirname "$0")/.."
for target in \
    benchmarks/bench_fig12_pruning.py \
    benchmarks/bench_fig13_postgis.py \
    benchmarks/bench_ablation_lod_choice.py \
    benchmarks/bench_ablation_knn.py \
    benchmarks/bench_table1.py; do
  echo "=== $target ===" | tee -a bench_output.txt
  python3 -m pytest "$target" --benchmark-only -q -s 2>&1 | tee -a bench_output.txt
done
