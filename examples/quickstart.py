"""Quickstart: compress a scene, run the three joins, compare FR vs FPR.

Run with:  python examples/quickstart.py
"""

from repro import EngineConfig, ThreeDPro
from repro.datagen import make_tissue_scene
from repro.datagen.vessels import VesselSpec


def build_engine(paradigm, scene):
    """A fresh engine (so caches don't leak between paradigms)."""
    engine = ThreeDPro(EngineConfig(paradigm=paradigm))
    engine.load_polyhedra("nuclei_a", scene.nuclei_a)
    engine.load_polyhedra("nuclei_b", scene.nuclei_b)
    engine.load_polyhedra("vessels", scene.vessels)
    return engine


def main():
    print("Generating a small synthetic tissue block...")
    scene = make_tissue_scene(
        n_nuclei=24,
        n_vessels=2,
        seed=42,
        region=100.0,
        nucleus_subdivisions=1,
        vessel_spec=VesselSpec(bifurcations=2, points_per_branch=4, segments=6),
    )
    print(f"  {scene.summary}")

    for paradigm in ("fr", "fpr"):
        print(f"\n=== paradigm: {paradigm.upper()} ===")
        engine = build_engine(paradigm, scene)

        result = engine.intersection_join("nuclei_a", "nuclei_b")
        print(f"  intersection join: {result.total_matches} matches")
        print(f"    {result.stats.summary()}")

        result = engine.within_join("nuclei_a", "nuclei_b", distance=2.5)
        print(f"  within(2.5) join:  {result.total_matches} matches")
        print(f"    {result.stats.summary()}")

        result = engine.nn_join("nuclei_a", "vessels")
        sample = next(iter(result.pairs.items()))
        print(f"  NN join:           {result.total_matches} neighbors "
              f"(e.g. nucleus {sample[0]} -> vessel {sample[1][0][0]})")
        print(f"    {result.stats.summary()}")


if __name__ == "__main__":
    main()
