"""LOD schedule tuning by profiling (paper Sections 4.4 and 6.5).

Refining at a LOD only pays off when it settles more than ``1/r^2`` of
the surviving candidate pairs (r = face growth between LODs). This
example profiles a nearest-neighbor workload, applies the rule, and
compares three schedules end to end.

Run with:  python examples/lod_profiling.py
"""

import time

from repro import EngineConfig, ThreeDPro
from repro.core import choose_lod_list, profile_pruning
from repro.datagen import make_tissue_scene
from repro.datagen.vessels import VesselSpec
from repro.storage import Dataset
from repro.compression import PPVPEncoder


def timed_join(config, datasets):
    engine = ThreeDPro(config)
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    start = time.perf_counter()
    result = engine.nn_join("nuclei", "vessels")
    return time.perf_counter() - start, result


def main():
    scene = make_tissue_scene(
        n_nuclei=32,
        n_vessels=2,
        seed=5,
        region=100.0,
        nucleus_subdivisions=1,
        vessel_spec=VesselSpec(bifurcations=2, points_per_branch=5, segments=8),
    )
    encoder = PPVPEncoder(max_lods=6)
    datasets = {
        "nuclei": Dataset.from_polyhedra("nuclei", scene.nuclei_a, encoder),
        "vessels": Dataset.from_polyhedra("vessels", scene.vessels, encoder),
    }

    print("Profiling NN pruning per LOD on a target sample...")
    profiler = ThreeDPro(EngineConfig(paradigm="fpr"))
    for dataset in datasets.values():
        profiler.load_dataset(dataset)
    profile = profile_pruning(profiler, "nuclei", "vessels", "nn", sample_size=16)

    print(f"  face growth r = {profile.face_growth:.2f} "
          f"-> break-even pruned fraction = {100 * profile.break_even:.1f}%")
    for lod in profile.lods:
        print(f"  LOD {lod}: evaluated {profile.evaluated.get(lod, 0):4d}, "
              f"pruned {profile.pruned.get(lod, 0):4d} "
              f"({100 * profile.pruned_fraction(lod):5.1f}%)")

    chosen = choose_lod_list(profile)
    print(f"  chosen LOD schedule: {chosen}")

    print("\nEnd-to-end comparison on the full join:")
    schedules = {
        "all LODs": EngineConfig(paradigm="fpr"),
        "profiled": EngineConfig(paradigm="fpr", lod_list=chosen),
        "top only (FR)": EngineConfig(paradigm="fr"),
    }
    answers = {}
    for label, config in schedules.items():
        seconds, result = timed_join(config, datasets)
        answers[label] = {tid: m[0][0] for tid, m in result.pairs.items()}
        print(f"  {label:14s} {seconds:7.3f}s "
              f"face_pairs={result.stats.face_pairs_total}")
    assert answers["all LODs"] == answers["profiled"] == answers["top only (FR)"]
    print("  (all three schedules returned identical neighbors)")


if __name__ == "__main__":
    main()
