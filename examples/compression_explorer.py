"""Explore PPVP compression: LODs, guarantees, sizes, persistence.

Walks through what the codec actually produces for one nucleus and one
vessel: face counts per LOD, the progressive-approximation guarantee
(volume never shrinks as LOD rises... it *grows*), protruding-vertex
statistics, serialized segment sizes (the paper's Fig. 9), and the
cuboid-file save/load round trip.

Run with:  python examples/compression_explorer.py
"""

import tempfile

import numpy as np

from repro import Dataset, PPVPEncoder
from repro.compression import (
    protruding_fraction,
    serialize_object,
    serialized_segment_sizes,
)
from repro.datagen import make_nucleus, make_vessel
from repro.datagen.vessels import VesselSpec
from repro.mesh import mesh_volume
from repro.storage import load_dataset, save_dataset


def explore(name, mesh):
    print(f"\n=== {name}: {mesh.num_faces} faces, "
          f"{100 * protruding_fraction(mesh):.1f}% protruding vertices ===")
    encoder = PPVPEncoder(max_lods=6, rounds_per_lod=2)
    obj = encoder.encode(mesh)

    print(f"  encoded: {obj.num_rounds} decimation rounds, LODs 0..{obj.max_lod}")
    print("  LOD  faces  volume (subset guarantee: monotone)")
    for lod in obj.lods:
        decoded = obj.decode(lod)
        print(f"  {lod:3d}  {decoded.num_faces:5d}  {mesh_volume(decoded):10.4f}")

    blob = serialize_object(obj, quant_bits=16)
    sizes = serialized_segment_sizes(blob)
    flat = mesh.num_vertices * 24 + mesh.num_faces * 12
    print(f"  serialized: {len(blob)} bytes vs {flat} flat "
          f"({flat / len(blob):.2f}x), base segment {sizes['base']}B, "
          f"{len(sizes['rounds'])} round segments")
    return obj


def main():
    rng = np.random.default_rng(3)
    nucleus = make_nucleus(rng, subdivisions=2)
    vessel = make_vessel(
        rng, spec=VesselSpec(bifurcations=3, points_per_branch=5, segments=8)
    )

    explore("nucleus", nucleus)
    explore("vessel", vessel)

    print("\n=== persistence: cuboid files ===")
    dataset = Dataset.from_polyhedra("demo", [nucleus, vessel], PPVPEncoder())
    with tempfile.TemporaryDirectory() as tmp:
        summary = save_dataset(dataset, tmp)
        print(f"  saved {len(dataset)} objects into "
              f"{len(summary['files'])} cuboid files, {summary['total_bytes']} bytes")
        loaded = load_dataset(tmp)
        restored = loaded.objects[0].decode(loaded.objects[0].max_lod)
        print(f"  reloaded '{loaded.name}': object 0 decodes to "
              f"{restored.num_faces} faces (quantized grid, structure exact)")


if __name__ == "__main__":
    main()
