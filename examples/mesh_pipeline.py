"""End-to-end pipeline on mesh files: ingest -> compress -> query -> export.

Shows the workflow a user with real reconstructed meshes follows:
write/collect OFF or STL files, compress them into a persisted dataset,
query it, and export decoded LODs for rendering. (Here the "real" files
are generated first so the example is self-contained.)

Run with:  python examples/mesh_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import EngineConfig, ThreeDPro
from repro.compression import PPVPEncoder
from repro.datagen import make_nucleus, make_vessel
from repro.datagen.vessels import VesselSpec
from repro.io import read_off, write_off, write_stl
from repro.storage import Dataset, load_dataset, save_dataset

import numpy as np


def main():
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        rng = np.random.default_rng(12)

        print("1. 'Reconstruction' produces mesh files (OFF + STL)...")
        mesh_files = []
        for i in range(6):
            path = root / f"nucleus_{i}.off"
            write_off(path, make_nucleus(rng, center=(i * 4.0, 0, 0), subdivisions=1))
            mesh_files.append(path)
        vessel_path = root / "vessel.stl"
        write_stl(
            vessel_path,
            make_vessel(
                rng,
                start=(10, 8, 0),
                spec=VesselSpec(bifurcations=2, points_per_branch=4, segments=6),
            ),
        )
        print(f"   wrote {len(mesh_files)} OFF files + 1 STL")

        print("2. Ingest and compress into persisted datasets...")
        encoder = PPVPEncoder(max_lods=5)
        nuclei = Dataset.from_polyhedra(
            "nuclei", [read_off(p) for p in mesh_files], encoder
        )
        from repro.io import read_stl

        vessels = Dataset.from_polyhedra("vessels", [read_stl(vessel_path)], encoder)
        for dataset in (nuclei, vessels):
            summary = save_dataset(dataset, root / dataset.name)
            print(f"   {dataset.name}: {summary['total_bytes']} bytes on disk")

        print("3. Reload and query...")
        engine = ThreeDPro(EngineConfig(paradigm="fpr"))
        engine.load_dataset(load_dataset(root / "nuclei"))
        engine.load_dataset(load_dataset(root / "vessels"))
        result = engine.nn_join("nuclei", "vessels")
        print(f"   {result.stats.summary()}")
        for nucleus_id, [(vessel_id, dist, exact)] in sorted(result.pairs.items()):
            marker = "=" if exact else "<="
            print(f"   nucleus {nucleus_id} -> vessel {vessel_id} (distance {marker} {dist:.2f})")

        print("4. Export a decoded LOD for rendering...")
        obj = engine._get("vessels").dataset.objects[0]
        coarse = obj.decode(0).compacted()
        out = root / "vessel_lod0.off"
        write_off(out, coarse)
        print(f"   vessel at LOD0: {coarse.num_faces} faces "
              f"(full: {obj.face_count_at_lod(obj.max_lod)}) -> {out.name}")


if __name__ == "__main__":
    main()
