"""Digital-pathology scenario: which vessels are near which nuclei?

The paper's motivating workload (Section 2.4): for every nucleus in a
tissue block, find the nearest blood vessel and all vessels within a
radius — with vessels partitioned into sub-objects (skeleton-based,
Section 5.1) so the engine refines only the branch segments that can
matter.

Run with:  python examples/pathology_join.py
"""

import statistics

from repro import Accel, EngineConfig, ThreeDPro
from repro.datagen import make_tissue_scene
from repro.datagen.vessels import VesselSpec


def main():
    print("Reconstructing a synthetic tissue block (nuclei + vessels)...")
    scene = make_tissue_scene(
        n_nuclei=60,
        n_vessels=2,
        seed=7,
        region=100.0,
        nucleus_subdivisions=1,
        vessel_spec=VesselSpec(bifurcations=3, points_per_branch=5, segments=8),
    )
    print(f"  {scene.summary}")

    config = EngineConfig(
        paradigm="fpr",
        accel=Accel(partition=True, gpu=True),  # the paper's best NV cell
        partition_parts=10,
        partition_min_faces=400,
    )
    engine = ThreeDPro(config)
    engine.load_polyhedra("nuclei", scene.nuclei_a)
    engine.load_polyhedra("vessels", scene.vessels)

    print(f"\nAll-nearest-neighbor join (config {config.label})...")
    nn = engine.nn_join("nuclei", "vessels")
    distances = [matches[0][1] for matches in nn.pairs.values()]
    print(f"  {nn.stats.summary()}")
    print(
        f"  nucleus-to-vessel distance: min={min(distances):.2f} "
        f"median={statistics.median(distances):.2f} max={max(distances):.2f}"
    )

    radius = statistics.median(distances)
    print(f"\nWithin-join: vessels within {radius:.2f} of each nucleus...")
    within = engine.within_join("nuclei", "vessels", radius)
    near = sum(1 for matches in within.pairs.values() if matches)
    print(f"  {within.stats.summary()}")
    print(f"  {near}/{len(scene.nuclei_a)} nuclei have a vessel within {radius:.2f}")

    print("\nPer-LOD pair flow (progressive refinement at work):")
    for lod in sorted(within.stats.pairs_evaluated_by_lod):
        evaluated = within.stats.pairs_evaluated_by_lod[lod]
        pruned = within.stats.pairs_pruned_by_lod.get(lod, 0)
        print(f"  LOD {lod}: evaluated {evaluated:4d} pairs, settled {pruned:4d}")


if __name__ == "__main__":
    main()
