"""Tests for the v3 sharded store: format, lifetime, migration, transport.

Covers the shard file format round-trip and its corruption taxonomy,
mmap lifetime safety (no segfaults, clean errors), lazy shard-backed
datasets, v1/v2/v3 cross-version loading, ``migrate_dataset`` identity,
salvage-report parity with v2 containers, cuboid-aligned chunking, and
the stale-spill sweep in the process pool.
"""

import os
import pickle
import subprocess
import sys
import time

import pytest

from repro.compression import PPVPEncoder
from repro.core.errors import (
    BlobChecksumError,
    DatasetFormatError,
    ShardFormatError,
    ShardLifetimeError,
)
from repro.mesh import icosphere
from repro.storage import (
    Dataset,
    ShardBackedObject,
    ShardReader,
    load_dataset,
    migrate_dataset,
    read_cuboid_file,
    salvage_shard_file,
    save_dataset,
    spill_dataset,
    write_cuboid_file,
    write_shard_file,
)

ENCODER = PPVPEncoder(max_lods=4)


def make_dataset(n=6, name="spheres"):
    meshes = [icosphere(1, center=(i * 4.0, 0, 0)) for i in range(n)]
    return Dataset.from_polyhedra(name, meshes, ENCODER)


def _meta(obj):
    box = obj.aabb
    return (
        tuple(float(c) for c in box.low),
        tuple(float(c) for c in box.high),
        obj.max_lod,
        tuple(obj.face_count_at_lod(lod) for lod in obj.lods),
    )


@pytest.fixture()
def shard_path(tmp_path):
    """One shard with three real compressed objects."""
    dataset = make_dataset(3)
    from repro.compression.serialize import serialize_object

    blobs = [serialize_object(obj) for obj in dataset.objects]
    path = tmp_path / "one.3dps"
    write_shard_file(path, blobs, [0, 1, 2], [_meta(o) for o in dataset.objects])
    return path, blobs


class TestShardFile:
    def test_roundtrip(self, shard_path):
        path, blobs = shard_path
        with ShardReader(path) as reader:
            assert reader.object_ids() == [0, 1, 2]
            assert reader.codec == "3dpr"
            for obj_id, blob in enumerate(blobs):
                view = reader.blob(obj_id)
                assert bytes(view) == blob
                view.release()

    def test_zero_copy_view(self, shard_path):
        path, blobs = shard_path
        with ShardReader(path) as reader:
            view = reader.blob(1)
            assert isinstance(view, memoryview)
            assert view.readonly
            assert view.nbytes == len(blobs[1])
            view.release()

    def test_index_carries_planning_metadata(self, shard_path):
        path, _ = shard_path
        with ShardReader(path) as reader:
            entry = reader.entries[0]
            assert entry.aabb_low < entry.aabb_high
            assert entry.max_lod == ENCODER.max_lods - 1
            assert len(entry.face_counts) == entry.max_lod + 1

    def test_blob_crc_flip_raises(self, shard_path):
        path, _ = shard_path
        with ShardReader(path) as probe:
            entry = probe.entries[1]
        data = bytearray(path.read_bytes())
        data[entry.offset + entry.length // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with ShardReader(path) as reader:
            with pytest.raises(BlobChecksumError):
                reader.blob(1)
            # Unaffected blobs still verify; verify_all isolates the fault.
            reader.blob(0).release()
            faults = reader.verify_all()
            assert [f.object_id for f in faults] == [1]
            assert faults[0].blob is not None

    def test_index_corruption_raises_on_open(self, shard_path):
        path, _ = shard_path
        data = bytearray(path.read_bytes())
        data[-6] ^= 0xFF  # inside the index CRC trailer
        path.write_bytes(bytes(data))
        with pytest.raises(ShardFormatError):
            ShardReader(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.3dps"
        path.write_bytes(b"XXXX" + b"\x00" * 32)
        with pytest.raises(ShardFormatError):
            ShardReader(path)

    def test_truncated_file(self, shard_path):
        path, _ = shard_path
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(ShardFormatError):
            ShardReader(path)

    def test_mismatched_args(self, tmp_path):
        with pytest.raises(ValueError):
            write_shard_file(tmp_path / "x.3dps", [b"a"], [1, 2], [])

    def test_salvage_clean_file(self, shard_path):
        path, blobs = shard_path
        pairs, faults, container_ok = salvage_shard_file(path)
        assert pairs == list(enumerate(blobs))
        assert faults == []
        assert container_ok

    def test_salvage_isolates_corrupt_blob(self, shard_path):
        path, blobs = shard_path
        with ShardReader(path) as probe:
            entry = probe.entries[0]
        data = bytearray(path.read_bytes())
        data[entry.offset] ^= 0xFF
        path.write_bytes(bytes(data))
        pairs, faults, container_ok = salvage_shard_file(path)
        assert [obj_id for obj_id, _ in pairs] == [1, 2]
        assert [f.object_id for f in faults] == [0]
        assert container_ok  # the index itself is intact


class TestMmapLifetime:
    def test_close_with_live_view_raises_cleanly(self, shard_path):
        path, blobs = shard_path
        reader = ShardReader(path)
        view = reader.blob(0)
        with pytest.raises(ShardLifetimeError):
            reader.close()
        # The reader survives the refused close and still serves reads.
        assert not reader.closed
        assert bytes(view) == blobs[0]
        view.release()
        reader.close()
        assert reader.closed

    def test_blob_after_close_raises(self, shard_path):
        path, _ = shard_path
        reader = ShardReader(path)
        reader.close()
        with pytest.raises(ValueError):
            reader.blob(0)


class TestCrossVersionLoading:
    """v1 (no checksums), v2 (containers), and v3 (shards) all load."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return make_dataset(8)

    def _store(self, dataset, tmp_path, version):
        directory = tmp_path / f"v{version}"
        if version == 3:
            save_dataset(dataset, directory, layout="shard")
            return directory
        save_dataset(dataset, directory, layout="legacy")
        if version == 1:
            import json

            manifest = json.loads((directory / "manifest.json").read_text())
            for filename in manifest["files"]:
                pairs = read_cuboid_file(directory / filename)
                write_cuboid_file(
                    directory / filename,
                    [blob for _, blob in pairs],
                    [obj_id for obj_id, _ in pairs],
                    version=1,
                )
        return directory

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_loads_equal(self, dataset, tmp_path, version):
        reference = load_dataset(self._store(dataset, tmp_path, 2))
        loaded = load_dataset(self._store(dataset, tmp_path, version))
        assert loaded.name == dataset.name
        assert len(loaded) == len(reference)
        assert loaded.boxes == reference.boxes
        assert [o.max_lod for o in loaded.objects] == [
            o.max_lod for o in reference.objects
        ]
        assert loaded.cuboid_batches() == reference.cuboid_batches()
        top = reference.objects[0].max_lod
        assert (
            loaded.objects[0].decode(top).canonical_face_set()
            == reference.objects[0].decode(top).canonical_face_set()
        )


class TestLazyShardDataset:
    def test_load_is_lazy(self, tmp_path):
        save_dataset(make_dataset(6), tmp_path / "s", layout="shard")
        loaded = load_dataset(tmp_path / "s")
        assert loaded.storage == "shard"
        assert loaded.materialized_count() == 0
        # Planning attributes come from the index, not the blobs.
        obj = loaded.objects[0]
        assert isinstance(obj, ShardBackedObject)
        _ = obj.aabb, obj.max_lod, obj.face_count_at_lod(obj.max_lod)
        assert loaded.materialized_count() == 0
        obj.decode(obj.max_lod)
        assert loaded.materialized_count() == 1

    def test_lazy_verify_defers_crc(self, tmp_path):
        directory = tmp_path / "s"
        meshes = [icosphere(1, center=(i * 3.0, 0, 0)) for i in range(3)]
        one_cuboid = Dataset.from_polyhedra("three", meshes, ENCODER, grid_shape=(1, 1, 1))
        save_dataset(one_cuboid, directory, layout="shard")
        shard = next(directory.glob("*.3dps"))
        with ShardReader(shard) as probe:
            entry = probe.entries[1]
        data = bytearray(shard.read_bytes())
        data[entry.offset] ^= 0xFF
        shard.write_bytes(bytes(data))
        with pytest.raises(BlobChecksumError):
            load_dataset(directory)  # eager verify catches it at load
        lazy = load_dataset(directory, verify="lazy")
        lazy.objects[0].decode(0)  # clean blob fine
        with pytest.raises(BlobChecksumError):
            lazy.objects[1].decode(0)  # corrupt blob caught at access

    def test_proxy_pickles_as_real_object(self, tmp_path):
        save_dataset(make_dataset(3, name="three"), tmp_path / "s", layout="shard")
        loaded = load_dataset(tmp_path / "s")
        clone = pickle.loads(pickle.dumps(loaded.objects[2]))
        assert not isinstance(clone, ShardBackedObject)
        assert clone.aabb == loaded.objects[2].aabb

    def test_strict_count_mismatch(self, tmp_path):
        import json

        directory = tmp_path / "s"
        save_dataset(make_dataset(3, name="three"), directory, layout="shard")
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["num_objects"] += 1
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(DatasetFormatError):
            load_dataset(directory)


class TestMigrate:
    def test_legacy_to_shard_identity(self, tmp_path):
        dataset = make_dataset(8)
        directory = tmp_path / "store"
        save_dataset(dataset, directory, layout="legacy")
        before = {}
        for path in directory.glob("*.3dpc"):
            before.update(dict(read_cuboid_file(path)))
        grid_before = load_dataset(directory).cuboid_batches()

        summary = migrate_dataset(directory, to="shard")
        assert summary["migrated"]
        assert not list(directory.glob("*.3dpc"))
        after = {}
        for path in directory.glob("*.3dps"):
            with ShardReader(path) as reader:
                for obj_id in reader.object_ids():
                    view = reader.blob(obj_id)
                    after[obj_id] = bytes(view)
                    view.release()
        assert after == before  # same blobs, same ids
        assert load_dataset(directory).cuboid_batches() == grid_before

    def test_round_trip_back_to_legacy(self, tmp_path):
        dataset = make_dataset(8)
        directory = tmp_path / "store"
        save_dataset(dataset, directory, layout="legacy")
        original = {}
        for path in directory.glob("*.3dpc"):
            original[path.name] = dict(read_cuboid_file(path))
        migrate_dataset(directory, to="shard")
        migrate_dataset(directory, to="legacy")
        restored = {}
        for path in directory.glob("*.3dpc"):
            restored[path.name] = dict(read_cuboid_file(path))
        assert restored == original
        assert load_dataset(directory).storage == "legacy"

    def test_migrate_is_idempotent(self, tmp_path):
        directory = tmp_path / "store"
        save_dataset(make_dataset(3, name="three"), directory, layout="shard")
        summary = migrate_dataset(directory, to="shard")
        assert not summary["migrated"]

    def test_pickle_codec_refuses_legacy(self, tmp_path):
        directory = tmp_path / "spill"
        spill_dataset(make_dataset(3, name="three"), directory)
        with pytest.raises(DatasetFormatError):
            migrate_dataset(directory, to="legacy")


class TestSpillStore:
    def test_round_trip_exact(self, tmp_path):
        dataset = make_dataset(5)
        object.__setattr__(dataset, "degraded_ids", frozenset({2}))
        spill_dataset(dataset, tmp_path / "spill")
        loaded = load_dataset(tmp_path / "spill", verify="lazy")
        assert loaded.storage == "shard"
        assert loaded.degraded_ids == frozenset({2})
        import numpy as np

        for ours, theirs in zip(loaded.objects, dataset.objects):
            real = ours._materialize()
            # Pickle transport is exact — no requantization on the way.
            assert np.array_equal(real.positions, theirs.positions)
            assert real.num_rounds == theirs.num_rounds
            assert real.aabb == theirs.aabb


class TestSalvageParity:
    """Shard salvage mirrors v2 container salvage report-for-report."""

    def _corrupt_one_blob(self, directory):
        """Flip a byte inside object 1's blob, whatever the layout."""
        shard = next(iter(sorted(directory.glob("*.3dps"))), None)
        if shard is not None:
            with ShardReader(shard) as probe:
                entry = probe.entries[1]
            data = bytearray(shard.read_bytes())
            data[entry.offset + 2] ^= 0xFF
            shard.write_bytes(bytes(data))
            return
        container = sorted(directory.glob("*.3dpc"))[0]
        blob = dict(read_cuboid_file(container))[1]
        data = container.read_bytes()
        offset = data.find(blob)
        assert offset > 0
        data = bytearray(data)
        data[offset + 2] ^= 0xFF
        container.write_bytes(bytes(data))

    def test_reports_match_across_layouts(self, tmp_path):
        # One cuboid so object ids match filenames one-to-one.
        meshes = [icosphere(1, center=(i * 3.0, 0, 0)) for i in range(4)]
        dataset = Dataset.from_polyhedra("cells", meshes, ENCODER, grid_shape=(1, 1, 1))
        reports = {}
        for layout in ("legacy", "shard"):
            directory = tmp_path / layout
            save_dataset(dataset, directory, layout=layout)
            self._corrupt_one_blob(directory)
            with pytest.raises(Exception):
                load_dataset(directory)  # strict refuses either layout
            loaded = load_dataset(directory, mode="salvage")
            reports[layout] = (loaded, loaded.load_report)
        legacy, legacy_report = reports["legacy"]
        shard, shard_report = reports["shard"]
        assert len(shard) == len(legacy)
        assert shard_report.mode == legacy_report.mode == "salvage"
        assert shard_report.objects_expected == legacy_report.objects_expected
        assert shard_report.objects_loaded == legacy_report.objects_loaded
        # Per-blob granularity: same object ids lost/degraded for the
        # same reasons (filenames differ by layout, compare id+reason).
        strip = lambda triples: [(i, reason) for i, _, reason in triples]  # noqa: E731
        assert strip(shard_report.skipped_blobs) == strip(legacy_report.skipped_blobs)
        assert strip(shard_report.degraded_objects) == strip(
            legacy_report.degraded_objects
        )
        assert shard_report.id_map == legacy_report.id_map
        assert shard.degraded_ids == legacy.degraded_ids


class TestCuboidAlignedChunks:
    def _chunks(self, directory, chunk_size):
        from repro.core.plan import STRATEGIES

        class _Plan:
            pass

        class _Loaded:
            pass

        plan = _Plan()
        loaded = _Loaded()
        loaded.dataset = load_dataset(directory)
        plan.target = loaded
        tids = list(range(len(loaded.dataset)))
        return (
            STRATEGIES["within"].target_chunks(plan, tids, chunk_size),
            loaded.dataset,
        )

    def test_shard_chunks_respect_cuboid_boundaries(self, tmp_path):
        save_dataset(make_dataset(24), tmp_path / "s", layout="shard")
        chunks, dataset = self._chunks(tmp_path / "s", chunk_size=7)
        owner = {
            tid: index
            for index, batch in enumerate(dataset.cuboid_batches())
            for tid in batch
        }
        assert sorted(t for c in chunks for t in c) == list(range(24))
        assert all(len(chunk) <= 7 for chunk in chunks)
        for chunk in chunks:
            cuboids = [owner[t] for t in chunk]
            # A chunk never straddles a cuboid boundary mid-cuboid:
            # each cuboid appears in one contiguous stretch.
            assert cuboids == sorted(cuboids)

    def test_legacy_chunks_keep_equal_slices(self, tmp_path):
        save_dataset(make_dataset(10), tmp_path / "l", layout="legacy")
        chunks, _ = self._chunks(tmp_path / "l", chunk_size=4)
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert chunks[0] == [0, 1, 2, 3]


class TestStaleSpillSweep:
    def _make_spill(self, root, name, pid=None, age=None):
        directory = root / name
        directory.mkdir(parents=True)
        if pid is not None:
            (directory / "owner.pid").write_text(str(pid))
        if age is not None:
            stamp = time.time() - age
            os.utime(directory, (stamp, stamp))
        return directory

    def test_sweep(self, tmp_path):
        from repro.parallel.procpool import _SPILL_PREFIX, _sweep_stale_spills

        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait()
        gone = self._make_spill(tmp_path, f"{_SPILL_PREFIX}dead", pid=dead.pid)
        live = self._make_spill(tmp_path, f"{_SPILL_PREFIX}live", pid=os.getpid())
        own = self._make_spill(tmp_path, f"{_SPILL_PREFIX}own", pid=dead.pid)
        fresh = self._make_spill(tmp_path, f"{_SPILL_PREFIX}fresh")
        old = self._make_spill(tmp_path, f"{_SPILL_PREFIX}old", age=7200)
        other = self._make_spill(tmp_path, "unrelated", pid=dead.pid)

        removed = _sweep_stale_spills(str(tmp_path), own=str(own))
        assert removed == 2
        assert not gone.exists()  # dead owner reaped
        assert not old.exists()  # pidless and past the orphan age
        assert live.exists()  # owner still running
        assert own.exists()  # never sweep our own directory
        assert fresh.exists()  # pidless but too young to judge
        assert other.exists()  # non-prefixed dirs are not ours
