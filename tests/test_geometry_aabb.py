"""Tests for AABB construction, set operations, and distance ranges."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import AABB, box_maxdist, box_mindist
from repro.geometry.aabb import (
    boxes_intersect_batch,
    boxes_maxdist_batch,
    boxes_mindist_batch,
)

UNIT = AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))


def box(lo, hi):
    return AABB(tuple(float(v) for v in lo), tuple(float(v) for v in hi))


class TestConstruction:
    def test_of_points_is_tight(self):
        pts = np.array([[0, 0, 0], [2, -1, 3], [1, 5, -2]], dtype=float)
        b = AABB.of_points(pts)
        assert b.low == (0.0, -1.0, -2.0)
        assert b.high == (2.0, 5.0, 3.0)

    def test_of_points_rejects_empty(self):
        with pytest.raises(ValueError):
            AABB.of_points(np.zeros((0, 3)))

    def test_single_point_box_is_degenerate_but_valid(self):
        b = AABB.of_points(np.array([[1.0, 2.0, 3.0]]))
        assert not b.is_empty
        assert b.volume == 0.0
        assert b.diagonal == 0.0

    def test_empty_box(self):
        e = AABB.empty()
        assert e.is_empty
        assert e.volume == 0.0
        assert e.diagonal == 0.0


class TestSetOperations:
    def test_union_covers_both(self):
        a = box((0, 0, 0), (1, 1, 1))
        b = box((2, -1, 0.5), (3, 0.5, 4))
        u = a.union(b)
        assert u.contains_box(a) and u.contains_box(b)
        assert u.low == (0.0, -1.0, 0.0)
        assert u.high == (3.0, 1.0, 4.0)

    def test_union_with_empty_is_identity(self):
        assert UNIT.union(AABB.empty()) == UNIT
        assert AABB.empty().union(UNIT) == UNIT

    def test_touching_boxes_intersect(self):
        a = box((0, 0, 0), (1, 1, 1))
        b = box((1, 0, 0), (2, 1, 1))
        assert a.intersects(b)

    def test_separated_boxes_do_not_intersect(self):
        a = box((0, 0, 0), (1, 1, 1))
        b = box((1.001, 0, 0), (2, 1, 1))
        assert not a.intersects(b)

    def test_contains_point_boundary_inclusive(self):
        assert UNIT.contains_point((1.0, 0.0, 0.5))
        assert not UNIT.contains_point((1.0001, 0.0, 0.5))

    def test_expanded(self):
        g = UNIT.expanded(0.5)
        assert g.low == (-0.5, -0.5, -0.5)
        assert g.high == (1.5, 1.5, 1.5)


class TestDistanceRanges:
    def test_mindist_overlapping_is_zero(self):
        assert box_mindist(UNIT, box((0.5, 0.5, 0.5), (2, 2, 2))) == 0.0

    def test_mindist_axis_gap(self):
        b = box((3, 0, 0), (4, 1, 1))
        assert box_mindist(UNIT, b) == pytest.approx(2.0)

    def test_mindist_diagonal_gap(self):
        b = box((2, 2, 2), (3, 3, 3))
        assert box_mindist(UNIT, b) == pytest.approx(math.sqrt(3.0))

    def test_maxdist_is_union_diagonal(self):
        b = box((2, 0, 0), (3, 1, 1))
        # union is [0,3]x[0,1]x[0,1]
        assert box_maxdist(UNIT, b) == pytest.approx(math.sqrt(9 + 1 + 1))

    def test_maxdist_bounds_point_pair_distances(self):
        rng = np.random.default_rng(7)
        a = box((0, 0, 0), (1, 2, 1))
        b = box((4, -1, 3), (5, 0, 6))
        md = box_maxdist(a, b)
        pa = rng.uniform(a.low, a.high, size=(200, 3))
        pb = rng.uniform(b.low, b.high, size=(200, 3))
        assert (np.linalg.norm(pa - pb, axis=1) <= md + 1e-9).all()

    @given(
        st.lists(st.floats(-50, 50), min_size=12, max_size=12),
    )
    def test_mindist_le_maxdist_property(self, values):
        lo1 = [min(values[i], values[i + 3]) for i in range(3)]
        hi1 = [max(values[i], values[i + 3]) for i in range(3)]
        lo2 = [min(values[i + 6], values[i + 9]) for i in range(3)]
        hi2 = [max(values[i + 6], values[i + 9]) for i in range(3)]
        a, b = box(lo1, hi1), box(lo2, hi2)
        assert box_mindist(a, b) <= box_maxdist(a, b) + 1e-9

    def test_mindist_symmetric(self):
        a = box((0, 0, 0), (1, 2, 3))
        b = box((5, -2, 1), (6, 0, 2))
        assert box_mindist(a, b) == pytest.approx(box_mindist(b, a))


class TestBatchKernels:
    def _pack(self, boxes):
        return np.array([list(b.low) + list(b.high) for b in boxes])

    def test_batch_matches_scalar(self):
        others = [
            box((2, 0, 0), (3, 1, 1)),
            box((0.5, 0.5, 0.5), (0.6, 0.6, 0.6)),
            box((-5, -5, -5), (-4, -4, -4)),
        ]
        packed = self._pack(others)
        mind = boxes_mindist_batch(packed, UNIT)
        maxd = boxes_maxdist_batch(packed, UNIT)
        hits = boxes_intersect_batch(packed, UNIT)
        for i, b in enumerate(others):
            assert mind[i] == pytest.approx(box_mindist(UNIT, b))
            assert maxd[i] == pytest.approx(box_maxdist(UNIT, b))
            assert hits[i] == UNIT.intersects(b)

    def test_batch_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            boxes_mindist_batch(np.zeros((3, 5)), UNIT)
