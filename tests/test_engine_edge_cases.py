"""Edge cases and failure injection for the engine and storage layers."""

import numpy as np
import pytest

from repro.compression import PPVPEncoder
from repro.core import EngineConfig, ThreeDPro
from repro.mesh import box_mesh, icosphere, tetrahedron
from repro.storage import Dataset


@pytest.fixture()
def engine():
    return ThreeDPro(EngineConfig(paradigm="fpr"))


def single(name, mesh):
    return Dataset(name, [PPVPEncoder().encode(mesh)])


class TestEmptyAndSingleton:
    def test_empty_source(self, engine):
        engine.load_dataset(single("a", icosphere(1)))
        engine.load_dataset(Dataset("empty", []))
        assert engine.intersection_join("a", "empty").pairs == {}
        assert engine.within_join("a", "empty", 10.0).pairs == {}
        assert engine.nn_join("a", "empty").pairs == {}

    def test_empty_target(self, engine):
        engine.load_dataset(Dataset("empty", []))
        engine.load_dataset(single("b", icosphere(1)))
        result = engine.intersection_join("empty", "b")
        assert result.pairs == {}
        assert result.stats.targets == 0

    def test_single_object_self_join(self, engine):
        engine.load_dataset(single("a", icosphere(1)))
        engine.load_dataset(single("b", icosphere(1)))  # identical copy
        assert engine.intersection_join("a", "b").pairs == {0: [0]}

    def test_tetrahedron_incompressible_but_queryable(self, engine):
        # A tetrahedron has no removable vertex: 0 rounds, single LOD.
        obj = PPVPEncoder().encode(tetrahedron())
        assert obj.num_rounds == 0
        assert obj.max_lod == 0
        engine.load_dataset(Dataset("t", [obj]))
        engine.load_dataset(single("probe", tetrahedron(scale=0.5)))
        assert engine.intersection_join("probe", "t").pairs == {0: [0]}


class TestMixedComplexity:
    def test_mixed_lod_datasets_join_correctly(self, engine):
        # One dataset mixes a deep-LOD sphere with a zero-round tetra;
        # the schedule must clamp per object without errors.
        rich = PPVPEncoder(max_lods=6).encode(icosphere(2, center=(0, 0, 0)))
        poor = PPVPEncoder().encode(tetrahedron(center=(6, 0, 0)))
        engine.load_dataset(Dataset("mixed", [rich, poor]))
        engine.load_dataset(single("probe", icosphere(1, center=(0, 0, 0))))
        result = engine.nn_join("probe", "mixed")
        assert result.pairs[0][0][0] == 0  # the co-located sphere wins

    def test_far_probe_still_finds_nn(self, engine):
        engine.load_dataset(single("a", icosphere(1, center=(1000, 1000, 1000))))
        engine.load_dataset(single("b", box_mesh((0, 0, 0), (1, 1, 1))))
        result = engine.nn_join("b", "a")
        assert result.pairs[0][0][0] == 0

    def test_zero_distance_within(self, engine):
        # Touching boxes: distance 0 qualifies for a within(0) join.
        engine.load_dataset(single("a", box_mesh((0, 0, 0), (1, 1, 1))))
        engine.load_dataset(single("b", box_mesh((1, 0, 0), (2, 1, 1))))
        assert engine.within_join("a", "b", 0.0).pairs == {0: [0]}


class TestDatasetValidation:
    def test_empty_dataset_has_no_grid(self):
        with pytest.raises(ValueError):
            Dataset("empty", []).grid

    def test_empty_dataset_batches(self):
        assert Dataset("empty", []).cuboid_batches() == []

    def test_save_load_empty_roundtrip(self, tmp_path):
        from repro.storage import load_dataset, save_dataset

        summary = save_dataset(Dataset("empty", []), tmp_path / "e")
        assert summary["total_bytes"] == 0
        loaded = load_dataset(tmp_path / "e")
        assert len(loaded) == 0


class TestDeterminism:
    def test_same_config_same_results_and_counts(self):
        meshes = [icosphere(1, center=(i * 3.0, 0, 0)) for i in range(5)]
        probes = [icosphere(1, center=(i * 3.0 + 1.1, 0, 0)) for i in range(5)]

        def run():
            engine = ThreeDPro(EngineConfig(paradigm="fpr"))
            engine.load_dataset(Dataset("s", [PPVPEncoder().encode(m) for m in meshes]))
            engine.load_dataset(Dataset("p", [PPVPEncoder().encode(m) for m in probes]))
            result = engine.intersection_join("p", "s")
            return result.pairs, result.stats.face_pairs_total

        first_pairs, first_count = run()
        second_pairs, second_count = run()
        assert first_pairs == second_pairs
        assert first_count == second_count

    def test_encoding_is_deterministic(self):
        mesh = icosphere(2)
        a = PPVPEncoder().encode(mesh)
        b = PPVPEncoder().encode(mesh)
        assert a.rounds == b.rounds
        assert np.array_equal(a.base_faces, b.base_faces)


class TestExactNNDistances:
    def test_forced_exact_distances_match_naive(self, small_scene, datasets):
        from repro.baselines import NaiveEngine
        from repro.core import EngineConfig, ThreeDPro

        truth = NaiveEngine(
            small_scene.nuclei_a, small_scene.vessels, prefilter=True
        ).nn_join().pairs
        engine = ThreeDPro(EngineConfig(paradigm="fpr", exact_nn_distances=True))
        for dataset in datasets.values():
            engine.load_dataset(dataset)
        result = engine.nn_join("nuclei_a", "vessels")
        for tid, (true_sid, true_dist) in truth.items():
            [(sid, dist, exact)] = result.pairs[tid]
            assert exact
            assert sid == true_sid
            assert dist == pytest.approx(true_dist, abs=1e-9)

    def test_default_mode_may_return_bounds(self, datasets):
        from repro.core import EngineConfig, ThreeDPro

        engine = ThreeDPro(EngineConfig(paradigm="fpr"))
        for dataset in datasets.values():
            engine.load_dataset(dataset)
        result = engine.nn_join("nuclei_a", "vessels")
        # With few vessels, at least some targets settle early (inexact).
        flags = [exact for matches in result.pairs.values() for _s, _d, exact in matches]
        assert not all(flags)


class TestNNRangeCollapseRegression:
    def test_ulp_noise_cannot_prune_the_true_neighbor(self):
        """Regression for a floating-point bug: a low-LOD MAXDIST can sit
        one ulp below the exact top-LOD distance (kernel summation order
        differs between LODs); keeping the stale bound made
        ``mindist > maxdist`` and pruned every candidate. Seed 4 of the
        equivalence property reproduced it."""
        from repro.datagen import make_nucleus

        seed = 4
        rng = np.random.default_rng(seed)
        offsets = rng.uniform(0, 2.5, size=(8, 3))
        targets = [
            make_nucleus(np.random.default_rng(seed * 31 + i), center=(i * 3.0, 0, 0), subdivisions=1)
            for i in range(8)
        ]
        sources = [
            make_nucleus(
                np.random.default_rng(seed * 57 + i),
                center=tuple(np.array([i * 3.0, 0, 0]) + offsets[i]),
                subdivisions=1,
            )
            for i in range(8)
        ]
        encoder = PPVPEncoder(max_lods=4)
        t_set = Dataset("t", [encoder.encode(m) for m in targets])
        s_set = Dataset("s", [encoder.encode(m) for m in sources])

        answers = {}
        for paradigm in ("fr", "fpr"):
            engine = ThreeDPro(EngineConfig(paradigm=paradigm))
            engine.load_dataset(t_set)
            engine.load_dataset(s_set)
            result = engine.nn_join("t", "s")
            answers[paradigm] = {tid: m[0][0] for tid, m in result.pairs.items()}
            assert sorted(result.pairs) == list(range(8))  # no target lost
        assert answers["fr"] == answers["fpr"]
