"""Tests for OFF and binary STL readers/writers."""

import numpy as np
import pytest

from repro.io import read_off, read_stl, write_off, write_stl
from repro.io.off import OFFFormatError
from repro.io.stl import STLFormatError
from repro.mesh import box_mesh, icosphere, mesh_volume, tetrahedron, validate_polyhedron


class TestOFF:
    def test_roundtrip_preserves_geometry(self, tmp_path):
        mesh = icosphere(2, radius=1.5, center=(1, 2, 3))
        path = tmp_path / "sphere.off"
        write_off(path, mesh)
        loaded = read_off(path)
        assert loaded.num_vertices == mesh.num_vertices
        assert loaded.canonical_face_set() == mesh.canonical_face_set()
        assert np.allclose(loaded.vertices, mesh.vertices)
        validate_polyhedron(loaded)

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "commented.off"
        path.write_text(
            "# a comment\nOFF\n\n4 4 6  # counts\n"
            "1 1 1\n1 -1 -1\n-1 1 -1\n-1 -1 1\n"
            "3 0 1 2\n3 0 3 1\n3 0 2 3\n3 1 3 2\n"
        )
        mesh = read_off(path)
        assert mesh.num_faces == 4
        validate_polyhedron(mesh)

    def test_counts_on_header_line(self, tmp_path):
        path = tmp_path / "inline.off"
        path.write_text(
            "OFF 4 4 6\n1 1 1\n1 -1 -1\n-1 1 -1\n-1 -1 1\n"
            "3 0 1 2\n3 0 3 1\n3 0 2 3\n3 1 3 2\n"
        )
        assert read_off(path).num_faces == 4

    def test_quad_faces_are_triangulated(self, tmp_path):
        # A cube written with quad faces loads as 12 triangles.
        box = box_mesh((0, 0, 0), (1, 1, 1))
        path = tmp_path / "cube.off"
        quads = [
            (0, 3, 2, 1), (4, 5, 6, 7), (0, 1, 5, 4),
            (2, 3, 7, 6), (0, 4, 7, 3), (1, 2, 6, 5),
        ]
        lines = ["OFF", "8 6 0"]
        lines += [" ".join(map(str, v)) for v in box.vertices.tolist()]
        lines += ["4 " + " ".join(map(str, q)) for q in quads]
        path.write_text("\n".join(lines))
        mesh = read_off(path)
        assert mesh.num_faces == 12
        validate_polyhedron(mesh)
        assert mesh_volume(mesh) == pytest.approx(1.0)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.off"
        path.write_text("# nothing\n")
        with pytest.raises(OFFFormatError):
            read_off(path)

    def test_truncated_vertices_rejected(self, tmp_path):
        path = tmp_path / "trunc.off"
        path.write_text("OFF\n4 4 0\n0 0 0\n1 0 0\n")
        with pytest.raises(OFFFormatError):
            read_off(path)

    def test_out_of_range_face_rejected(self, tmp_path):
        path = tmp_path / "bad.off"
        path.write_text("OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 1 7\n")
        with pytest.raises(OFFFormatError):
            read_off(path)


class TestSTL:
    def test_roundtrip_geometry(self, tmp_path):
        mesh = icosphere(1, radius=2.0)
        path = tmp_path / "sphere.stl"
        write_stl(path, mesh)
        loaded = read_stl(path)
        assert loaded.num_faces == mesh.num_faces
        validate_polyhedron(loaded)
        # float32 storage: volume matches to single precision.
        assert mesh_volume(loaded) == pytest.approx(mesh_volume(mesh), rel=1e-5)

    def test_welding_restores_shared_vertices(self, tmp_path):
        mesh = tetrahedron()
        path = tmp_path / "tet.stl"
        write_stl(path, mesh)
        loaded = read_stl(path)
        assert loaded.num_vertices == 4  # soup welded back to 4 vertices

    def test_orientation_preserved(self, tmp_path):
        mesh = box_mesh((0, 0, 0), (2, 2, 2))
        path = tmp_path / "box.stl"
        write_stl(path, mesh)
        assert mesh_volume(read_stl(path)) == pytest.approx(8.0, rel=1e-6)

    def test_custom_header_kept_to_80_bytes(self, tmp_path):
        path = tmp_path / "h.stl"
        write_stl(path, tetrahedron(), header=b"x" * 200)
        data = path.read_bytes()
        assert data[:80] == b"x" * 80
        read_stl(path)  # still parseable

    def test_too_short_rejected(self, tmp_path):
        path = tmp_path / "short.stl"
        path.write_bytes(b"tiny")
        with pytest.raises(STLFormatError):
            read_stl(path)

    def test_truncated_body_rejected(self, tmp_path):
        path = tmp_path / "trunc.stl"
        write_stl(path, tetrahedron())
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(STLFormatError):
            read_stl(path)

    def test_stl_feeds_the_codec(self, tmp_path):
        from repro.compression import PPVPEncoder

        path = tmp_path / "n.stl"
        write_stl(path, icosphere(1))
        loaded = read_stl(path)
        obj = PPVPEncoder(max_lods=3).encode(loaded)
        assert obj.max_lod >= 1
