"""Failure injection: corrupted inputs must fail loudly, never hang.

Serialized blobs, cuboid files, and OFF/STL content are parsed from
untrusted bytes; random corruption should either round-trip to a valid
structure (if the mutation hit a don't-care byte) or raise a clean
exception — never crash the interpreter or loop forever.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compression import PPVPEncoder, deserialize_object, serialize_object
from repro.mesh import icosphere
from repro.storage.fileformat import read_cuboid_file, write_cuboid_file

ACCEPTABLE = (Exception,)  # any *raised* failure is fine; hangs/crashes are not


@pytest.fixture(scope="module")
def blob():
    return serialize_object(PPVPEncoder(max_lods=3).encode(icosphere(1)))


class TestBlobCorruption:
    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_single_byte_flip_never_hangs(self, blob, data):
        index = data.draw(st.integers(0, len(blob) - 1))
        new_byte = data.draw(st.integers(0, 255))
        corrupted = bytearray(blob)
        corrupted[index] = new_byte
        try:
            restored = deserialize_object(bytes(corrupted))
        except ACCEPTABLE:
            return
        # Parsed despite the flip: the result must still be structurally
        # consumable (decoding may legitimately fail on bad connectivity).
        try:
            restored.decode(restored.max_lod)
        except ACCEPTABLE:
            pass

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_truncation_raises(self, blob, seed):
        rng = np.random.default_rng(seed)
        cut = int(rng.integers(1, len(blob)))
        try:
            restored = deserialize_object(blob[:cut])
            restored.decode(restored.max_lod)
        except ACCEPTABLE:
            return

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=200))
    def test_garbage_rejected(self, junk):
        with pytest.raises(Exception):
            deserialize_object(junk)


class TestCuboidFileCorruption:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_random_mutation_never_hangs(self, tmp_path_factory, seed):
        rng = np.random.default_rng(seed)
        path = tmp_path_factory.mktemp("fuzz") / "c.3dpc"
        write_cuboid_file(path, [b"payload-one", b"payload-two" * 10], [1, 2])
        data = bytearray(path.read_bytes())
        data[int(rng.integers(0, len(data)))] = int(rng.integers(0, 256))
        path.write_bytes(bytes(data))
        try:
            read_cuboid_file(path)
        except ACCEPTABLE:
            pass


class TestOFFFuzz:
    @settings(max_examples=40, deadline=None)
    @given(st.text(max_size=300))
    def test_arbitrary_text_never_hangs(self, tmp_path_factory, text):
        from repro.io.off import read_off

        path = tmp_path_factory.mktemp("off") / "f.off"
        path.write_text(text)
        try:
            read_off(path)
        except ACCEPTABLE:
            pass


class TestSTLFuzz:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=300))
    def test_arbitrary_bytes_never_hang(self, tmp_path_factory, data):
        from repro.io.stl import read_stl

        path = tmp_path_factory.mktemp("stl") / "f.stl"
        path.write_bytes(data)
        try:
            read_stl(path)
        except ACCEPTABLE:
            pass

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_mutated_valid_stl_never_hangs(self, tmp_path_factory, seed):
        from repro.io.stl import read_stl, write_stl
        from repro.mesh import icosphere

        rng = np.random.default_rng(seed)
        path = tmp_path_factory.mktemp("stl") / "m.stl"
        write_stl(path, icosphere(0))
        data = bytearray(path.read_bytes())
        data[int(rng.integers(0, len(data)))] = int(rng.integers(0, 256))
        path.write_bytes(bytes(data))
        try:
            read_stl(path)
        except ACCEPTABLE:
            pass
