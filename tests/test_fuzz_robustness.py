"""Failure injection: corrupted inputs must fail loudly, never hang.

Serialized blobs, cuboid files, and OFF/STL content are parsed from
untrusted bytes. With format v2 (per-segment/per-blob CRC32s plus a
whole-file checksum trailer), every single-byte corruption of a blob or
container must be *detected* — either the mutation is a no-op (same byte
written back) or loading raises a clean integrity error. Unversioned
junk and OFF/STL text keep the weaker guarantee: raise or parse, never
crash or loop forever.
"""

import zlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compression import PPVPEncoder, deserialize_object, serialize_object
from repro.compression.serialize import SerializationError
from repro.core import EngineConfig, ThreeDPro
from repro.core.errors import BlobChecksumError, CuboidFormatError
from repro.faults import FaultInjector
from repro.mesh import icosphere
from repro.storage.fileformat import read_cuboid_file, write_cuboid_file

ACCEPTABLE = (Exception,)  # any *raised* failure is fine; hangs/crashes are not

# What a detected v2 integrity violation is allowed to look like.
BLOB_INTEGRITY = (SerializationError, BlobChecksumError)
CONTAINER_INTEGRITY = (CuboidFormatError, BlobChecksumError)


@pytest.fixture(scope="module")
def blob():
    return serialize_object(PPVPEncoder(max_lods=3).encode(icosphere(1)))


class TestBlobCorruption:
    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_single_byte_flip_is_detected(self, blob, data):
        index = data.draw(st.integers(0, len(blob) - 1))
        new_byte = data.draw(st.integers(0, 255))
        corrupted = bytearray(blob)
        corrupted[index] = new_byte
        if bytes(corrupted) == blob:
            deserialize_object(bytes(corrupted))  # no-op draw must still load
            return
        # v2 integrity guarantee: any actual flip raises a clean
        # integrity error — garbage is never parsed into geometry.
        with pytest.raises(BLOB_INTEGRITY):
            deserialize_object(bytes(corrupted))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_truncation_raises(self, blob, seed):
        rng = np.random.default_rng(seed)
        cut = int(rng.integers(1, len(blob)))
        with pytest.raises(BLOB_INTEGRITY):
            deserialize_object(blob[:cut])

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=200))
    def test_garbage_rejected(self, junk):
        with pytest.raises(BLOB_INTEGRITY):
            deserialize_object(junk)


class TestSalvagedBlobDecodeEquivalence:
    """Salvaged objects decode identically through table and replay.

    Byte-flip a stored blob, salvage whatever round suffix survives,
    and the columnar decoder must match the reference replay at every
    LOD the salvaged object still offers — including degenerate
    salvages that kept zero rounds.
    """

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_salvaged_objects_slice_equals_replay(self, blob, data):
        from repro.compression import ReplayDecoder
        from repro.compression.serialize import salvage_object_blob

        index = data.draw(st.integers(0, len(blob) - 1))
        new_byte = data.draw(st.integers(0, 255))
        corrupted = bytearray(blob)
        corrupted[index] = new_byte
        try:
            salvaged, dropped = salvage_object_blob(bytes(corrupted))
        except ACCEPTABLE:
            return  # nothing salvageable; detection behavior tested above
        assert dropped >= 0
        ref, cur = ReplayDecoder(salvaged), salvaged.decoder()
        for lod in salvaged.lods:
            ref.advance_to(lod)
            cur.advance_to(lod)
            assert np.array_equal(ref.face_array(), cur.face_array()), lod
            assert ref.vertices_reinserted == cur.vertices_reinserted


class TestCuboidFileCorruption:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_random_mutation_is_detected(self, tmp_path_factory, seed):
        rng = np.random.default_rng(seed)
        path = tmp_path_factory.mktemp("fuzz") / "c.3dpc"
        blobs, ids = [b"payload-one", b"payload-two" * 10], [1, 2]
        write_cuboid_file(path, blobs, ids)
        original = path.read_bytes()
        data = bytearray(original)
        data[int(rng.integers(0, len(data)))] = int(rng.integers(0, 256))
        path.write_bytes(bytes(data))
        if bytes(data) == original:
            assert read_cuboid_file(path) == list(zip(ids, blobs))
            return
        # v2 container guarantee: any single-byte mutation fails the
        # container (or per-blob) checksum.
        with pytest.raises(CONTAINER_INTEGRITY):
            read_cuboid_file(path)


class TestChaosJoins:
    """Joins under injected decode failures: degraded but never wrong.

    A failed decode falls back to a lower LOD (still a valid spatial
    subset of the object) or to MBB-only evaluation, so intersection
    answers can only *lose* pairs — never gain a wrong one — and NN
    distances can only move up from the true nearest distance.
    """

    def _engine(self, datasets, config=None):
        engine = ThreeDPro(config or EngineConfig())
        engine.load_dataset(datasets["nuclei_a"])
        engine.load_dataset(datasets["nuclei_b"])
        return engine

    def test_intersection_join_degrades_to_correct_subset(self, datasets):
        ref = self._engine(datasets).intersection_join("nuclei_a", "nuclei_b")

        inj = FaultInjector(seed=11, decode_error_rate=0.3)
        chaotic = self._engine(datasets, EngineConfig(fault_injector=inj))
        res = chaotic.intersection_join("nuclei_a", "nuclei_b")

        assert inj.counts.get("decode", 0) > 0, "no faults fired; change the seed"
        assert res.stats.degraded_objects > 0
        assert res.degraded_targets
        for tid, sids in res.pairs.items():
            assert set(sids) <= set(ref.pairs.get(tid, ()))

    def test_chaos_runs_replay_exactly(self, datasets):
        """Same seed, same workload -> bit-identical degraded answer."""
        runs = []
        for _ in range(2):
            inj = FaultInjector(seed=11, decode_error_rate=0.3)
            engine = self._engine(datasets, EngineConfig(fault_injector=inj))
            res = engine.intersection_join("nuclei_a", "nuclei_b")
            runs.append((res.pairs, sorted(res.degraded_targets), dict(inj.counts)))
        assert runs[0] == runs[1]

    def test_knn_join_degrades_to_upper_bounds(self, datasets, small_scene):
        from repro.baselines import NaiveEngine

        # True solid nearest distances (0.0 for intersecting pairs) —
        # surface distances at *any* LOD are valid upper bounds of these.
        truth = NaiveEngine(
            small_scene.nuclei_a, small_scene.nuclei_b, prefilter=True
        ).nn_join().pairs

        inj = FaultInjector(seed=11, decode_error_rate=0.3)
        chaotic = self._engine(datasets, EngineConfig(fault_injector=inj))
        res = chaotic.knn_join("nuclei_a", "nuclei_b", k=2)

        assert inj.counts.get("decode", 0) > 0, "no faults fired; change the seed"
        assert res.stats.degraded_objects > 0
        for tid, cands in res.pairs.items():
            assert len(cands) <= 2
            for _sid, dist, _exact in cands:
                # every reported distance upper-bounds the true nearest
                assert dist + 1e-6 >= truth[tid][1]


class TestOFFFuzz:
    @settings(max_examples=40, deadline=None)
    @given(st.text(max_size=300))
    def test_arbitrary_text_never_hangs(self, tmp_path_factory, text):
        from repro.io.off import read_off

        path = tmp_path_factory.mktemp("off") / "f.off"
        path.write_text(text)
        try:
            read_off(path)
        except ACCEPTABLE:
            pass


class TestSTLFuzz:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=300))
    def test_arbitrary_bytes_never_hang(self, tmp_path_factory, data):
        from repro.io.stl import read_stl

        path = tmp_path_factory.mktemp("stl") / "f.stl"
        path.write_bytes(data)
        try:
            read_stl(path)
        except ACCEPTABLE:
            pass

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_mutated_valid_stl_never_hangs(self, tmp_path_factory, seed):
        from repro.io.stl import read_stl, write_stl
        from repro.mesh import icosphere

        rng = np.random.default_rng(seed)
        path = tmp_path_factory.mktemp("stl") / "m.stl"
        write_stl(path, icosphere(0))
        data = bytearray(path.read_bytes())
        data[int(rng.integers(0, len(data)))] = int(rng.integers(0, 256))
        path.write_bytes(bytes(data))
        try:
            read_stl(path)
        except ACCEPTABLE:
            pass
