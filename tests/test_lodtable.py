"""The columnar LOD table: slice decoding must be replay, byte for byte.

The tentpole invariant: for every object and every LOD, the table-backed
:class:`ProgressiveDecoder` produces the *same face array* — rows,
orientation, and order — as the reference :class:`ReplayDecoder` that
replays removal records through an ``EditableMesh``. Order matters:
refinement probes ``triangles[0, 0]`` and the pair kernels early-exit in
array order, so anything weaker than byte-identity would change query
results.
"""

import dataclasses
import pickle
import threading

import numpy as np
import pytest

from repro.compression import (
    LODTable,
    PPVPEncoder,
    ReplayDecoder,
    compile_lod_table,
)
from repro.compression.lodtable import ALIVE, _compile_sequential, _compile_vectorized
from repro.compression.ppvp import RemovalRecord
from repro.mesh import icosphere
from tests.test_compression_classify import dented_icosphere


@pytest.fixture(scope="module")
def sphere_obj():
    return PPVPEncoder(max_lods=6, rounds_per_lod=2).encode(icosphere(3))


@pytest.fixture(scope="module")
def dented_obj():
    mesh, _dents = dented_icosphere(subdivisions=2, seed=7)
    return PPVPEncoder(max_lods=4, rounds_per_lod=2).encode(mesh)


def assert_tables_equal(a: LODTable, b: LODTable):
    assert np.array_equal(a.faces, b.faces)
    assert np.array_equal(a.birth, b.birth)
    assert np.array_equal(a.death, b.death)
    assert np.array_equal(a.face_counts, b.face_counts)
    assert np.array_equal(a.cum_records, b.cum_records)
    assert a.failed_step == b.failed_step


class TestCompilation:
    def test_vectorized_path_taken_on_clean_data(self, sphere_obj):
        decode_rounds = tuple(sphere_obj.rounds)[::-1]
        assert _compile_vectorized(np.asarray(sphere_obj.base_faces), decode_rounds) is not None

    def test_vectorized_equals_sequential(self, sphere_obj, dented_obj):
        for obj in (sphere_obj, dented_obj):
            decode_rounds = tuple(obj.rounds)[::-1]
            fast = _compile_vectorized(np.asarray(obj.base_faces), decode_rounds)
            slow = _compile_sequential(np.asarray(obj.base_faces), decode_rounds)
            assert_tables_equal(fast, slow)

    def test_invariants(self, sphere_obj):
        table = sphere_obj.lod_table
        # birth is non-decreasing: "birth <= s" is a true prefix.
        assert bool((np.diff(table.birth) >= 0).all())
        # every death strictly follows its birth
        finite = table.death != ALIVE
        assert bool((table.death[finite] > table.birth[finite]).all())
        assert table.num_steps == sphere_obj.num_rounds
        assert table.failed_step is None
        # arrays are locked: shared across decoders, caches, and workers
        for arr in (table.faces, table.birth, table.death):
            assert not arr.flags.writeable

    def test_zero_rounds_object(self):
        obj = PPVPEncoder().encode(icosphere(0))
        base_only = dataclasses.replace(obj, rounds=())
        table = base_only.lod_table
        assert table.num_steps == 0
        assert np.array_equal(table.faces_at_step(0), base_only.base_faces)

    def test_duplicate_base_face_raises_like_editable_mesh(self, sphere_obj):
        stacked = np.vstack([sphere_obj.base_faces, sphere_obj.base_faces[:1]])
        with pytest.raises(ValueError, match="already present"):
            compile_lod_table(stacked, sphere_obj.rounds)


class TestSliceEqualsReplay:
    @pytest.mark.parametrize("fixture", ["sphere_obj", "dented_obj"])
    def test_identical_at_every_lod(self, fixture, request):
        obj = request.getfixturevalue(fixture)
        ref, cur = ReplayDecoder(obj), obj.decoder()
        for lod in obj.lods:
            ref.advance_to(lod)
            cur.advance_to(lod)
            assert np.array_equal(ref.face_array(), cur.face_array()), f"LOD {lod}"
            assert ref.face_array().dtype == cur.face_array().dtype == np.int64
            assert ref.vertices_reinserted == cur.vertices_reinserted
            assert ref.current_lod == cur.current_lod

    def test_one_shot_equals_progressive(self, sphere_obj):
        for lod in sphere_obj.lods:
            one_shot = sphere_obj.decode(lod)
            ref = ReplayDecoder(sphere_obj)
            ref.advance_to(lod)
            assert np.array_equal(one_shot.faces, ref.face_array())
            assert one_shot.vertices is sphere_obj.positions

    def test_monotonicity_enforced(self, sphere_obj):
        decoder = sphere_obj.decoder()
        decoder.advance_to(2)
        with pytest.raises(ValueError, match="cannot go back"):
            decoder.advance_to(1)
        with pytest.raises(ValueError, match="lod must be in"):
            decoder.advance_to(sphere_obj.max_lod + 1)


class TestFaceCounts:
    def test_pinned_against_brute_force_decode(self, sphere_obj, dented_obj):
        """face_count_at_lod is O(1) now; pin it to the real face count."""
        for obj in (sphere_obj, dented_obj):
            ref = ReplayDecoder(obj)
            for lod in obj.lods:
                ref.advance_to(lod)
                brute = len(ref.face_array())
                assert obj.face_count_at_lod(lod) == brute
                assert obj.lod_table.face_count_at_step(
                    obj.rounds_reinserted_at(lod)
                ) == brute

    def test_no_table_build_needed(self, sphere_obj):
        # The load path asks for face counts before anything decodes;
        # counts must come from round sizes alone, not a table compile.
        fresh = dataclasses.replace(sphere_obj)
        fresh.face_count_at_lod(fresh.max_lod)
        assert "lod_table" not in fresh.__dict__


class TestSalvagedPrefixes:
    def test_truncated_rounds_compile_to_truncated_table(self, sphere_obj):
        """A checksum-valid round suffix (salvage) decodes identically."""
        obj = sphere_obj
        for dropped in range(1, obj.num_rounds):
            part = dataclasses.replace(obj, rounds=obj.rounds[dropped:])
            ref, cur = ReplayDecoder(part), part.decoder()
            for lod in part.lods:
                ref.advance_to(lod)
                cur.advance_to(lod)
                assert np.array_equal(ref.face_array(), cur.face_array())

    def test_extension_reconstructs_full_table(self, sphere_obj):
        obj = sphere_obj
        for dropped in (1, obj.num_rounds // 2, obj.num_rounds - 1):
            partial = dataclasses.replace(obj, rounds=obj.rounds[dropped:]).lod_table
            extended = partial.extended(obj.rounds[:dropped])
            assert_tables_equal(extended, obj.lod_table)

    def test_extension_with_nothing_is_identity(self, sphere_obj):
        table = sphere_obj.lod_table
        assert table.extended(()) is table


def _corrupted(obj, encode_round: int):
    bogus = RemovalRecord(vertex=0, ring=(999_999, 999_998, 999_997), apex_offset=0)
    rounds = list(obj.rounds)
    rounds[encode_round] = tuple(rounds[encode_round]) + (bogus,)
    return dataclasses.replace(obj, rounds=tuple(rounds))


class TestCorruptRounds:
    def test_failure_matches_replay_step_and_error(self, sphere_obj):
        corrupt = _corrupted(sphere_obj, encode_round=1)
        table = corrupt.lod_table
        assert table.failed_step == corrupt.num_rounds - 1
        for lod in corrupt.lods:
            ref, cur = ReplayDecoder(corrupt), corrupt.decoder()
            ref_err = cur_err = None
            try:
                ref.advance_to(lod)
            except Exception as exc:  # noqa: BLE001 - parity check
                ref_err = exc
            try:
                cur.advance_to(lod)
            except Exception as exc:  # noqa: BLE001 - parity check
                cur_err = exc
            if ref_err is None:
                assert cur_err is None
                assert np.array_equal(ref.face_array(), cur.face_array())
            else:
                assert type(cur_err) is type(ref_err)
                assert str(cur_err) == str(ref_err)

    def test_valid_prefix_still_decodes_after_failed_advance(self, sphere_obj):
        corrupt = _corrupted(sphere_obj, encode_round=1)
        decoder = corrupt.decoder()
        with pytest.raises(KeyError):
            decoder.advance_to(corrupt.max_lod)
        fresh = corrupt.decoder()
        fresh.advance_to(1)
        ref = ReplayDecoder(corrupt)
        ref.advance_to(1)
        assert np.array_equal(fresh.face_array(), ref.face_array())

    def test_failed_table_refuses_extension(self, sphere_obj):
        corrupt = _corrupted(sphere_obj, encode_round=1)
        with pytest.raises(ValueError, match="cannot extend"):
            corrupt.lod_table.extended(sphere_obj.rounds[:1])


class TestPickle:
    def test_table_round_trips(self, sphere_obj):
        table = sphere_obj.lod_table
        clone = pickle.loads(pickle.dumps(table))
        assert_tables_equal(clone, table)
        assert not clone.faces.flags.writeable

    def test_object_ships_compiled_table(self, sphere_obj):
        # The process backend's spill transport pickles whole datasets;
        # a compiled table must ride along, not recompile worker-side.
        obj = dataclasses.replace(sphere_obj)
        obj.lod_table  # noqa: B018 - compile before pickling
        clone = pickle.loads(pickle.dumps(obj))
        assert "lod_table" in clone.__dict__
        assert_tables_equal(clone.lod_table, obj.lod_table)

    def test_failed_table_round_trips(self, sphere_obj):
        table = _corrupted(sphere_obj, encode_round=1).lod_table
        clone = pickle.loads(pickle.dumps(table))
        assert clone.failed_step == table.failed_step
        assert type(clone.failure) is type(table.failure)
        with pytest.raises(KeyError):
            clone.faces_at_step(clone.num_steps)


class TestDecodedLODRace:
    def test_tree_builds_once_under_four_workers(self, sphere_obj, monkeypatch):
        """Regression: the lazy tree build used to run unlocked, so
        ``query_workers=4`` thread-backend workers sharing one cache
        entry could each build the AABB-tree."""
        import time as _time

        import repro.storage.cache as cache_mod

        real_tree = cache_mod.TriangleAABBTree
        builds = []

        def counting_tree(triangles, leaf_size=8):
            builds.append(threading.get_ident())
            _time.sleep(0.02)  # widen the race window
            return real_tree(triangles, leaf_size=leaf_size)

        monkeypatch.setattr(cache_mod, "TriangleAABBTree", counting_tree)
        decoded = cache_mod.DecodedLOD(
            sphere_obj.positions, sphere_obj.lod_table.faces_at_step(0)
        )
        barrier = threading.Barrier(4)
        trees = []

        def worker():
            barrier.wait()
            trees.append(decoded.tree)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(builds) == 1
        assert all(tree is trees[0] for tree in trees)

    def test_triangles_and_groups_build_once(self, sphere_obj):
        import repro.storage.cache as cache_mod

        decoded = cache_mod.DecodedLOD(
            sphere_obj.positions, sphere_obj.lod_table.faces_at_step(0)
        )
        results = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            results.append(decoded.triangles)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(arr is results[0] for arr in results)


class TestDatasetPrecompile:
    def test_precompile_builds_each_table_once(self, sphere_obj):
        from repro.storage import Dataset

        dataset = Dataset("pre", [dataclasses.replace(sphere_obj) for _ in range(3)])
        assert dataset.precompile_lod_tables() == 3
        assert dataset.precompile_lod_tables() == 0
        assert all("lod_table" in obj.__dict__ for obj in dataset.objects)
