"""Cross-layer property tests: the paper's guarantees, end to end.

These hypothesis suites generate randomized objects/scenes and verify
the properties everything else rests on:

* PPVP LODs are subsets (volume-monotone, distance upper-bounding);
* serialization round-trips structure exactly at every LOD;
* the engine returns identical answers across paradigms and devices.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compression import PPVPEncoder, deserialize_object, serialize_object
from repro.core import Accel, EngineConfig, ThreeDPro
from repro.datagen import make_nucleus
from repro.geometry import tri_tri_distance_batch
from repro.mesh import mesh_volume, validate_polyhedron
from repro.storage import Dataset

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_nucleus(seed, center=(0, 0, 0), bumpiness=None):
    rng = np.random.default_rng(seed)
    kwargs = {}
    if bumpiness is not None:
        kwargs["bumpiness"] = bumpiness
    return make_nucleus(rng, center=center, subdivisions=1, **kwargs)


class TestCodecProperties:
    @SLOW
    @given(st.integers(0, 2**32 - 1), st.floats(0.0, 0.35))
    def test_lod_chain_volume_monotone(self, seed, bumpiness):
        mesh = random_nucleus(seed, bumpiness=bumpiness)
        obj = PPVPEncoder(max_lods=5).encode(mesh)
        volumes = [mesh_volume(obj.decode(lod)) for lod in obj.lods]
        for low, high in zip(volumes, volumes[1:]):
            assert low <= high + 1e-12

    @SLOW
    @given(st.integers(0, 2**32 - 1))
    def test_lod_chain_structurally_valid(self, seed):
        mesh = random_nucleus(seed, bumpiness=0.3)
        obj = PPVPEncoder(max_lods=5).encode(mesh)
        for lod in obj.lods:
            validate_polyhedron(obj.decode(lod).compacted())

    @SLOW
    @given(st.integers(0, 2**32 - 1))
    def test_serialize_roundtrip_all_lods(self, seed):
        mesh = random_nucleus(seed, bumpiness=0.25)
        obj = PPVPEncoder(max_lods=4).encode(mesh)
        restored = deserialize_object(serialize_object(obj))
        assert restored.num_rounds == obj.num_rounds
        for lod in obj.lods:
            assert (
                restored.decode(lod).canonical_face_set()
                == obj.decode(lod).canonical_face_set()
            )

    @SLOW
    @given(st.integers(0, 2**32 - 1), st.floats(2.5, 8.0))
    def test_pairwise_distance_upper_bounds(self, seed, gap):
        """d(LOD_i) >= d(LOD_top) for every LOD pair of two objects."""
        a = random_nucleus(seed, center=(0, 0, 0))
        b = random_nucleus(seed + 1, center=(gap, 0.3, -0.2))
        enc = PPVPEncoder(max_lods=4)
        ca, cb = enc.encode(a), enc.encode(b)

        def dist(ta, tb):
            ii, jj = np.meshgrid(np.arange(len(ta)), np.arange(len(tb)), indexing="ij")
            return float(
                tri_tri_distance_batch(
                    ta[ii.ravel()], tb[jj.ravel()], check_intersection=False
                ).min()
            )

        top = dist(
            ca.decode(ca.max_lod).triangles, cb.decode(cb.max_lod).triangles
        )
        for lod in range(min(ca.max_lod, cb.max_lod)):
            low = dist(ca.decode(lod).triangles, cb.decode(lod).triangles)
            assert low >= top - 1e-9


class TestEngineEquivalence:
    def _scene(self, seed, n=8):
        rng = np.random.default_rng(seed)
        offsets = rng.uniform(0, 2.5, size=(n, 3))
        targets = [
            random_nucleus(seed * 31 + i, center=(i * 3.0, 0, 0)) for i in range(n)
        ]
        sources = [
            random_nucleus(
                seed * 57 + i, center=tuple(np.array([i * 3.0, 0, 0]) + offsets[i])
            )
            for i in range(n)
        ]
        return targets, sources

    @settings(max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**32 - 1))
    def test_all_configs_agree(self, seed):
        targets, sources = self._scene(seed, n=6)
        encoder = PPVPEncoder(max_lods=4)
        t_set = Dataset("t", [encoder.encode(m) for m in targets])
        s_set = Dataset("s", [encoder.encode(m) for m in sources])

        answers = []
        for config in (
            EngineConfig(paradigm="fr"),
            EngineConfig(paradigm="fpr"),
            EngineConfig(paradigm="fpr", accel=Accel(gpu=True)),
            EngineConfig(paradigm="fpr", accel=Accel(aabbtree=True)),
        ):
            engine = ThreeDPro(config)
            engine.load_dataset(t_set)
            engine.load_dataset(s_set)
            answers.append(
                (
                    engine.intersection_join("t", "s").pairs,
                    engine.within_join("t", "s", 1.0).pairs,
                    {
                        tid: matches[0][0]
                        for tid, matches in engine.nn_join("t", "s").pairs.items()
                    },
                )
            )
        for other in answers[1:]:
            assert other == answers[0]
