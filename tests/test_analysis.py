"""Tests for mesh quality and LOD distortion analysis."""

import numpy as np
import pytest

from repro.analysis import (
    lod_distortion_profile,
    mesh_quality,
    sampled_surface_deviation,
)
from repro.analysis.distortion import sample_surface_points
from repro.compression import PPVPEncoder
from repro.mesh import Polyhedron, box_mesh, icosphere, tetrahedron


class TestQuality:
    def test_equilateral_faces_are_well_shaped(self):
        report = mesh_quality(icosphere(1))
        assert report.num_faces == 80
        assert report.min_angle_deg > 30.0
        assert report.worst_aspect_ratio < 2.0

    def test_sliver_detected(self):
        vertices = np.array(
            [(0, 0, 0), (10, 0, 0), (5, 0.01, 0), (5, 1, 3)], dtype=float
        )
        faces = [(0, 1, 2), (0, 3, 1), (0, 2, 3), (1, 3, 2)]
        report = mesh_quality(Polyhedron(vertices, faces))
        assert report.worst_aspect_ratio > 50.0
        assert report.min_angle_deg < 1.0

    def test_edge_statistics(self):
        report = mesh_quality(box_mesh((0, 0, 0), (1, 1, 1)))
        assert report.min_edge_length == pytest.approx(1.0)
        assert report.max_edge_length == pytest.approx(np.sqrt(2))

    def test_empty_mesh_rejected(self):
        with pytest.raises(ValueError):
            mesh_quality(Polyhedron(np.zeros((3, 3)), np.zeros((0, 3), dtype=int)))

    def test_as_dict(self):
        payload = mesh_quality(tetrahedron()).as_dict()
        assert payload["num_faces"] == 4


class TestSurfaceSampling:
    def test_samples_on_surface(self):
        mesh = icosphere(1, radius=2.0)
        points = sample_surface_points(mesh, samples_per_face=2, seed=1)
        assert len(points) == mesh.num_faces * 2
        radii = np.linalg.norm(points, axis=1)
        # Points lie on chords of the sphere: radius in [inradius, 2].
        assert (radii <= 2.0 + 1e-9).all()
        assert (radii >= 1.5).all()

    def test_deterministic(self):
        mesh = icosphere(1)
        a = sample_surface_points(mesh, seed=7)
        b = sample_surface_points(mesh, seed=7)
        assert np.array_equal(a, b)


class TestDeviation:
    def test_identical_meshes_zero(self):
        mesh = icosphere(1)
        report = sampled_surface_deviation(mesh, mesh)
        assert report["max"] < 1e-9

    def test_shrunk_sphere_deviation_matches_radius_gap(self):
        original = icosphere(2, radius=1.0)
        shrunk = icosphere(2, radius=0.9)
        report = sampled_surface_deviation(shrunk, original)
        # Deviation should be around 0.1 (all stats positive, bounded).
        assert 0.03 < report["mean"] < 0.12
        assert report["max"] <= 0.12

    def test_mean_le_max(self):
        original = icosphere(2)
        coarse = icosphere(1)
        report = sampled_surface_deviation(coarse, original)
        assert report["mean"] <= report["rms"] <= report["max"] + 1e-12


class TestLodDistortion:
    @pytest.fixture(scope="class")
    def profile(self):
        mesh = icosphere(2)
        compressed = PPVPEncoder(max_lods=4).encode(mesh)
        return lod_distortion_profile(compressed, samples_per_face=2)

    def test_volume_ratio_monotone_and_bounded(self, profile):
        ratios = [rec["volume_ratio"] for rec in profile]
        assert all(r <= 1.0 + 1e-9 for r in ratios)
        assert ratios == sorted(ratios)

    def test_deviation_shrinks_with_lod(self, profile):
        deviations = [rec["deviation"]["mean"] for rec in profile]
        assert deviations[-1] == 0.0
        assert deviations[0] >= deviations[-2] - 1e-9

    def test_faces_increase(self, profile):
        faces = [rec["faces"] for rec in profile]
        assert faces == sorted(faces)
