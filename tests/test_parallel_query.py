"""Inter-target parallel execution is an invisible optimization.

The property: for every query kind, running with ``query_workers=4``
produces byte-identical pairs (including dict insertion order),
identical degraded-target sets, and identical merged per-LOD counters
to the serial run — with and without injected decode faults.
"""

import pytest

from repro.core import EngineConfig, QuerySpec, ThreeDPro
from repro.faults import FaultInjector

SPECS = [
    QuerySpec(kind="intersection", source="nuclei_b", target="nuclei_a"),
    QuerySpec(kind="within", source="nuclei_b", target="nuclei_a", distance=1.0),
    QuerySpec(kind="nn", source="vessels", target="nuclei_a"),
    QuerySpec(kind="knn", source="vessels", target="nuclei_a", k=2),
]

SPEC_IDS = [spec.normalized().label for spec in SPECS]

# Faulted variants join the 40-object nuclei datasets: the injector is
# key-based (seed|dataset:obj:lod), and seed 11 at rate 0.3 provably
# fires there (the fuzz suite relies on the same pair); the two-object
# vessels dataset offers too few keys to guarantee a hit.
FAULT_SPECS = [
    QuerySpec(kind="intersection", source="nuclei_b", target="nuclei_a"),
    QuerySpec(kind="within", source="nuclei_b", target="nuclei_a", distance=1.0),
    QuerySpec(kind="nn", source="nuclei_b", target="nuclei_a"),
    QuerySpec(kind="knn", source="nuclei_b", target="nuclei_a", k=2),
]

FAULT_SPEC_IDS = [spec.normalized().label for spec in FAULT_SPECS]


def _build(datasets, **config_kwargs):
    engine = ThreeDPro(EngineConfig(paradigm="fpr", **config_kwargs))
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    return engine


def _run(datasets, spec, workers, injector_seed=None):
    kwargs = {"query_workers": workers}
    injector = None
    if injector_seed is not None:
        injector = FaultInjector(seed=injector_seed, decode_error_rate=0.3)
        kwargs["fault_injector"] = injector
    engine = _build(datasets, **kwargs)
    result = engine.execute(spec)
    return result, injector


def _comparable_counters(stats):
    """The merged counters that must not depend on execution order."""
    return {
        "targets": stats.targets,
        "candidates": stats.candidates,
        "results": stats.results,
        "degraded_objects": stats.degraded_objects,
        "pairs_evaluated_by_lod": dict(stats.pairs_evaluated_by_lod),
        "pairs_pruned_by_lod": dict(stats.pairs_pruned_by_lod),
        "face_pairs_by_lod": dict(stats.face_pairs_by_lod),
    }


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("spec", SPECS, ids=SPEC_IDS)
    def test_clean_run_identical(self, datasets, spec):
        serial, _ = _run(datasets, spec, workers=1)
        parallel, _ = _run(datasets, spec, workers=4)
        assert list(parallel.pairs.items()) == list(serial.pairs.items())
        assert parallel.degraded_targets == serial.degraded_targets
        assert _comparable_counters(parallel.stats) == _comparable_counters(
            serial.stats
        )

    @pytest.mark.parametrize("spec", FAULT_SPECS, ids=FAULT_SPEC_IDS)
    def test_faulted_run_identical(self, datasets, spec):
        serial, serial_inj = _run(datasets, spec, workers=1, injector_seed=11)
        parallel, parallel_inj = _run(datasets, spec, workers=4, injector_seed=11)
        assert serial_inj.counts.get("decode", 0) > 0, "no faults fired"
        assert list(parallel.pairs.items()) == list(serial.pairs.items())
        assert parallel.degraded_targets == serial.degraded_targets
        assert _comparable_counters(parallel.stats) == _comparable_counters(
            serial.stats
        )

    def test_containment_identical(self, datasets, small_scene):
        point = tuple(small_scene.nuclei_a[0].vertices.mean(axis=0))
        spec = QuerySpec(kind="containment", source="nuclei_a", point=point)
        serial, _ = _run(datasets, spec, workers=1)
        parallel, _ = _run(datasets, spec, workers=4)
        assert parallel.pairs == serial.pairs
        assert parallel.matches == serial.matches

    def test_more_workers_than_targets(self, datasets):
        spec = QuerySpec(kind="intersection", source="nuclei_b", target="nuclei_a")
        serial, _ = _run(datasets, spec, workers=1)
        wide, _ = _run(datasets, spec, workers=64)
        assert list(wide.pairs.items()) == list(serial.pairs.items())


class TestParallelObservability:
    def test_worker_spans_nest_under_query_root(self, datasets):
        engine = _build(datasets, query_workers=4, tracing=True)
        result = engine.intersection_join("nuclei_a", "nuclei_b")
        [root] = engine.tracer.roots
        assert root.name == "query"
        workers = [child for child in root.children if child.name == "worker"]
        assert workers, "no worker spans attached to the query root"
        # every target was fanned out exactly once
        fanned = sum(span.attrs["targets"] for span in workers)
        assert fanned == result.stats.targets

    def test_parallel_query_event_logged(self, datasets, caplog):
        import logging

        engine = _build(datasets, query_workers=4)
        with caplog.at_level(logging.INFO, logger="repro"):
            engine.intersection_join("nuclei_a", "nuclei_b")
        assert any(
            record.getMessage() == "parallel_query" for record in caplog.records
        )

    def test_serial_run_has_no_worker_spans(self, datasets):
        engine = _build(datasets, query_workers=1, tracing=True)
        engine.intersection_join("nuclei_a", "nuclei_b")
        [root] = engine.tracer.roots
        assert all(child.name != "worker" for child in root.children)
