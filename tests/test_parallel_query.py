"""Inter-target parallel execution is an invisible optimization.

The property: for every query kind, running with ``query_workers=4``
produces byte-identical pairs (including dict insertion order),
identical degraded-target sets, and identical merged per-LOD counters
to the serial run — with and without injected decode faults. The chaos
suite at the bottom extends the property to supervised process workers:
SIGKILLed and hung workers are detected, the pool is respawned, and the
query still answers correctly (fully, or as a sound partial with a
``completeness`` record) — never by silently falling back to threads.
"""

import multiprocessing
import os

import pytest

from repro.core import EngineConfig, QuerySpec, ThreeDPro
from repro.faults import FaultInjector

#: CI varies this (chaos matrix axis); the default seed provably fires
#: at least one worker kill for the nn join below at rate 0.4.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "2"))

SPECS = [
    QuerySpec(kind="intersection", source="nuclei_b", target="nuclei_a"),
    QuerySpec(kind="within", source="nuclei_b", target="nuclei_a", distance=1.0),
    QuerySpec(kind="nn", source="vessels", target="nuclei_a"),
    QuerySpec(kind="knn", source="vessels", target="nuclei_a", k=2),
]

SPEC_IDS = [spec.normalized().label for spec in SPECS]

# Faulted variants join the 40-object nuclei datasets: the injector is
# key-based (seed|dataset:obj:lod), and seed 11 at rate 0.3 provably
# fires there (the fuzz suite relies on the same pair); the two-object
# vessels dataset offers too few keys to guarantee a hit.
FAULT_SPECS = [
    QuerySpec(kind="intersection", source="nuclei_b", target="nuclei_a"),
    QuerySpec(kind="within", source="nuclei_b", target="nuclei_a", distance=1.0),
    QuerySpec(kind="nn", source="nuclei_b", target="nuclei_a"),
    QuerySpec(kind="knn", source="nuclei_b", target="nuclei_a", k=2),
]

FAULT_SPEC_IDS = [spec.normalized().label for spec in FAULT_SPECS]


def _build(datasets, **config_kwargs):
    engine = ThreeDPro(EngineConfig(paradigm="fpr", **config_kwargs))
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    return engine


def _run(datasets, spec, workers, injector_seed=None, backend=None):
    kwargs = {"query_workers": workers}
    if backend is not None:
        kwargs["query_backend"] = backend
    injector = None
    if injector_seed is not None:
        injector = FaultInjector(seed=injector_seed, decode_error_rate=0.3)
        kwargs["fault_injector"] = injector
    engine = _build(datasets, **kwargs)
    result = engine.execute(spec)
    return result, injector


def _comparable_counters(stats):
    """The merged counters that must not depend on execution order."""
    return {
        "targets": stats.targets,
        "candidates": stats.candidates,
        "results": stats.results,
        "degraded_objects": stats.degraded_objects,
        "pairs_evaluated_by_lod": dict(stats.pairs_evaluated_by_lod),
        "pairs_pruned_by_lod": dict(stats.pairs_pruned_by_lod),
        "face_pairs_by_lod": dict(stats.face_pairs_by_lod),
    }


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("spec", SPECS, ids=SPEC_IDS)
    def test_clean_run_identical(self, datasets, spec):
        serial, _ = _run(datasets, spec, workers=1)
        parallel, _ = _run(datasets, spec, workers=4)
        assert list(parallel.pairs.items()) == list(serial.pairs.items())
        assert parallel.degraded_targets == serial.degraded_targets
        assert _comparable_counters(parallel.stats) == _comparable_counters(
            serial.stats
        )

    @pytest.mark.parametrize("spec", FAULT_SPECS, ids=FAULT_SPEC_IDS)
    def test_faulted_run_identical(self, datasets, spec):
        serial, serial_inj = _run(datasets, spec, workers=1, injector_seed=11)
        parallel, parallel_inj = _run(datasets, spec, workers=4, injector_seed=11)
        assert serial_inj.counts.get("decode", 0) > 0, "no faults fired"
        assert list(parallel.pairs.items()) == list(serial.pairs.items())
        assert parallel.degraded_targets == serial.degraded_targets
        assert _comparable_counters(parallel.stats) == _comparable_counters(
            serial.stats
        )

    def test_containment_identical(self, datasets, small_scene):
        point = tuple(small_scene.nuclei_a[0].vertices.mean(axis=0))
        spec = QuerySpec(kind="containment", source="nuclei_a", point=point)
        serial, _ = _run(datasets, spec, workers=1)
        parallel, _ = _run(datasets, spec, workers=4)
        assert parallel.pairs == serial.pairs
        assert parallel.matches == serial.matches

    def test_more_workers_than_targets(self, datasets):
        spec = QuerySpec(kind="intersection", source="nuclei_b", target="nuclei_a")
        serial, _ = _run(datasets, spec, workers=1)
        wide, _ = _run(datasets, spec, workers=64)
        assert list(wide.pairs.items()) == list(serial.pairs.items())


class TestParallelObservability:
    def test_worker_spans_nest_under_query_root(self, datasets):
        engine = _build(datasets, query_workers=4, tracing=True)
        result = engine.intersection_join("nuclei_a", "nuclei_b")
        [root] = engine.tracer.roots
        assert root.name == "query"
        workers = [child for child in root.children if child.name == "worker"]
        assert workers, "no worker spans attached to the query root"
        # every target was fanned out exactly once
        fanned = sum(span.attrs["targets"] for span in workers)
        assert fanned == result.stats.targets

    def test_parallel_query_event_logged(self, datasets, caplog):
        import logging

        engine = _build(datasets, query_workers=4)
        with caplog.at_level(logging.INFO, logger="repro"):
            engine.intersection_join("nuclei_a", "nuclei_b")
        assert any(
            record.getMessage() == "parallel_query" for record in caplog.records
        )

    def test_serial_run_has_no_worker_spans(self, datasets):
        engine = _build(datasets, query_workers=1, tracing=True)
        engine.intersection_join("nuclei_a", "nuclei_b")
        [root] = engine.tracer.roots
        assert all(child.name != "worker" for child in root.children)


class TestProcessBackendMatchesSerial:
    """serial == thread == process, for every kind, clean and faulted.

    Worker processes re-derive decode faults from the injector key
    (``seed|dataset:obj:lod``), so fault injection is preserved across
    the process boundary — but the *parent's* injector counts stay 0 in
    process mode (faults fire in the workers), so only the serial run's
    counts are asserted.
    """

    @pytest.mark.parametrize("spec", SPECS, ids=SPEC_IDS)
    def test_clean_run_identical(self, datasets, spec):
        serial, _ = _run(datasets, spec, workers=1)
        threads, _ = _run(datasets, spec, workers=4, backend="thread")
        procs, _ = _run(datasets, spec, workers=4, backend="process")
        for parallel in (threads, procs):
            assert list(parallel.pairs.items()) == list(serial.pairs.items())
            assert parallel.degraded_targets == serial.degraded_targets
            assert parallel.degraded_keys == serial.degraded_keys
            assert _comparable_counters(parallel.stats) == _comparable_counters(
                serial.stats
            )

    @pytest.mark.parametrize("spec", FAULT_SPECS, ids=FAULT_SPEC_IDS)
    def test_faulted_run_identical(self, datasets, spec):
        serial, serial_inj = _run(datasets, spec, workers=1, injector_seed=11)
        procs, _ = _run(
            datasets, spec, workers=4, injector_seed=11, backend="process"
        )
        assert serial_inj.counts.get("decode", 0) > 0, "no faults fired"
        assert list(procs.pairs.items()) == list(serial.pairs.items())
        assert procs.degraded_targets == serial.degraded_targets
        assert procs.degraded_keys == serial.degraded_keys
        assert _comparable_counters(procs.stats) == _comparable_counters(
            serial.stats
        )

    def test_error_budget_aborts_process_run(self, datasets):
        # The budget error is raised inside a worker process and must
        # survive pickling back to the parent (custom __reduce__).
        from repro.core.errors import ErrorBudgetExceededError

        engine = _build(
            datasets,
            query_workers=4,
            query_backend="process",
            fault_injector=FaultInjector(seed=11, decode_error_rate=0.3),
            max_decode_failures=0,
        )
        with pytest.raises(ErrorBudgetExceededError):
            engine.execute(FAULT_SPECS[0])

    def test_containment_runs_on_thread_backend(self, datasets, small_scene):
        # No target dataset to chunk by id: containment silently uses
        # the thread path even when the process backend is configured.
        point = tuple(small_scene.nuclei_a[0].vertices.mean(axis=0))
        spec = QuerySpec(kind="containment", source="nuclei_a", point=point)
        serial, _ = _run(datasets, spec, workers=1)
        procs, _ = _run(datasets, spec, workers=4, backend="process")
        assert procs.pairs == serial.pairs
        assert procs.matches == serial.matches

    def test_probe_query_identical(self, datasets, small_scene):
        probe = small_scene.nuclei_a[0]
        spec = QuerySpec(kind="within", source="nuclei_b", probe=probe, distance=2.0)
        serial, _ = _run(datasets, spec, workers=1)
        procs, _ = _run(datasets, spec, workers=4, backend="process")
        assert procs.matches == serial.matches


class TestProcessBackendObservability:
    def test_worker_spans_rebased_under_query_root(self, datasets):
        engine = _build(
            datasets, query_workers=4, query_backend="process", tracing=True
        )
        result = engine.intersection_join("nuclei_a", "nuclei_b")
        [root] = engine.tracer.roots
        workers = [child for child in root.children if child.name == "worker"]
        assert workers, "no worker spans shipped back from the processes"
        assert all(span.attrs.get("backend") == "process" for span in workers)
        assert sum(span.attrs["targets"] for span in workers) == result.stats.targets
        # durations survive the pickle round-trip; offsets are rebased
        # onto the parent's timeline (non-negative relative to the root)
        for span in workers:
            assert span.wall_seconds is not None
            assert span.start_offset >= root.start_offset

    def test_worker_metrics_merged_into_parent_registry(self, datasets):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        engine = _build(
            datasets, query_workers=4, query_backend="process", metrics=registry
        )
        engine.intersection_join("nuclei_a", "nuclei_b")
        text = registry.to_prometheus()
        lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_face_pairs_total") and not line.startswith("#")
        ]
        assert lines, "worker face-pair counters did not merge into the parent"
        assert sum(float(line.rsplit(" ", 1)[1]) for line in lines) > 0

    def test_stats_carry_worker_decode_costs(self, datasets):
        engine = _build(datasets, query_workers=4, query_backend="process")
        result = engine.intersection_join("nuclei_a", "nuclei_b")
        assert result.stats.decode_seconds > 0
        assert result.stats.decoded_vertices > 0


class TestBackendResolution:
    def test_default_is_thread(self, monkeypatch):
        from repro.core import EngineConfig

        monkeypatch.delenv("REPRO_QUERY_BACKEND", raising=False)
        assert EngineConfig().resolve_query_backend() == "thread"

    def test_env_fallback(self, monkeypatch):
        from repro.core import EngineConfig

        monkeypatch.setenv("REPRO_QUERY_BACKEND", "process")
        assert EngineConfig().resolve_query_backend() == "process"
        # explicit config wins over the environment
        assert EngineConfig(query_backend="thread").resolve_query_backend() == "thread"

    def test_env_validation(self, monkeypatch):
        from repro.core import EngineConfig
        from repro.core.errors import EngineConfigError

        monkeypatch.setenv("REPRO_QUERY_BACKEND", "fork")
        with pytest.raises(EngineConfigError):
            EngineConfig().resolve_query_backend()

    def test_config_validation(self):
        from repro.core import EngineConfig
        from repro.core.errors import EngineConfigError

        with pytest.raises(EngineConfigError):
            EngineConfig(query_backend="fork")


def _chunk_count(n_targets, workers):
    """Mirror QueryExecutor._chunk_targets for parent-side roll checks."""
    chunk_size = -(-n_targets // (workers * 4))
    return -(-n_targets // chunk_size)


def _expected_first_attempt_kills(injector, label, n_chunks):
    """Which chunks the seed kills on attempt 0 (pure roll, no firing)."""
    return [
        i
        for i in range(n_chunks)
        if injector._roll("worker_kill", f"{label}:{i}:0")
        < injector.worker_kill_rate
    ]


def _counter_value(registry, name):
    entry = registry.to_dict().get(name) or {}
    if "value" in entry:
        return entry["value"]
    return sum(series.get("value", 0.0) for series in entry.get("series", []))


def _assert_no_orphans():
    from repro.parallel import procpool

    procpool.shutdown()
    for proc in multiprocessing.active_children():
        proc.join(timeout=10)
    assert multiprocessing.active_children() == []


class TestChaosSupervision:
    """Killed and hung workers must not corrupt, hang, or degrade queries."""

    SPEC = QuerySpec(kind="nn", source="vessels", target="nuclei_a")

    def _run_chaos(self, datasets, injector, caplog=None, **config_kwargs):
        import logging

        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        engine = _build(
            datasets,
            query_workers=2,
            query_backend="process",
            fault_injector=injector,
            metrics=registry,
            **config_kwargs,
        )
        if caplog is not None:
            with caplog.at_level(logging.WARNING, logger="repro"):
                result = engine.execute(self.SPEC)
        else:
            result = engine.execute(self.SPEC)
        return result, registry

    def test_sigkilled_worker_recovers(self, datasets, caplog):
        serial, _ = _run(datasets, self.SPEC, workers=1)
        injector = FaultInjector(seed=CHAOS_SEED, worker_kill_rate=0.4)
        n_chunks = _chunk_count(serial.stats.targets, workers=2)
        kills = _expected_first_attempt_kills(
            injector, self.SPEC.normalized().label, n_chunks
        )
        result, registry = self._run_chaos(datasets, injector, caplog=caplog)
        # The answer is correct and complete — retries and quarantine
        # absorbed the crashes without a whole-query thread fallback.
        assert list(result.pairs.items()) == list(serial.pairs.items())
        assert result.complete
        assert not any(
            record.getMessage() == "process_backend_fallback"
            for record in caplog.records
        ), "supervision must not fall back to the thread backend"
        if kills:
            assert _counter_value(registry, "repro_worker_restarts_total") >= 1
            assert any(
                record.getMessage() == "worker_pool_restart"
                for record in caplog.records
            )
        _assert_no_orphans()

    def test_always_killed_chunks_are_quarantined(self, datasets, caplog):
        # rate 1.0: every attempt of every chunk dies, so the supervisor
        # must burn chunk_max_attempts (2) rounds — one restart each —
        # and then answer entirely from quarantined serial execution.
        serial, _ = _run(datasets, self.SPEC, workers=1)
        injector = FaultInjector(seed=CHAOS_SEED, worker_kill_rate=1.0)
        result, registry = self._run_chaos(datasets, injector, caplog=caplog)
        assert list(result.pairs.items()) == list(serial.pairs.items())
        assert result.complete
        n_chunks = _chunk_count(serial.stats.targets, workers=2)
        assert _counter_value(registry, "repro_chunks_quarantined_total") == n_chunks
        assert _counter_value(registry, "repro_worker_restarts_total") == 2
        assert any(
            record.getMessage() == "chunk_quarantined" for record in caplog.records
        )
        _assert_no_orphans()

    def test_hung_worker_detected_and_recovered(self, datasets, caplog):
        serial, _ = _run(datasets, self.SPEC, workers=1)
        injector = FaultInjector(
            seed=1, task_hang_rate=0.3, task_hang_seconds=30.0
        )
        result, registry = self._run_chaos(
            datasets, injector, caplog=caplog, worker_hang_timeout_seconds=2.0
        )
        assert list(result.pairs.items()) == list(serial.pairs.items())
        assert result.complete
        assert _counter_value(registry, "repro_worker_restarts_total") >= 1
        assert any(
            record.getMessage() == "worker_pool_restart"
            for record in caplog.records
        )
        _assert_no_orphans()

    def test_kill_chaos_with_deadline_stays_sound(self, datasets):
        from dataclasses import replace as dc_replace

        serial, _ = _run(datasets, self.SPEC, workers=1)
        injector = FaultInjector(seed=CHAOS_SEED, worker_kill_rate=0.4)
        from repro.obs.metrics import MetricsRegistry

        engine = _build(
            datasets,
            query_workers=2,
            query_backend="process",
            fault_injector=injector,
            metrics=MetricsRegistry(),
        )
        result = engine.execute(dc_replace(self.SPEC, deadline_ms=60_000))
        # Under a generous deadline the chaos run still finishes; under
        # any deadline the pairs must be a subset of the clean answer.
        assert set(result.pairs) <= set(serial.pairs)
        for tid, value in result.pairs.items():
            assert value == serial.pairs[tid]
        comp = result.completeness
        assert comp.targets_total == (
            comp.targets_finished + comp.targets_inflight + comp.targets_unstarted
        )
        _assert_no_orphans()

    def test_supervision_spans_recorded(self, datasets):
        injector = FaultInjector(seed=CHAOS_SEED, worker_kill_rate=1.0)
        engine = _build(
            datasets,
            query_workers=2,
            query_backend="process",
            fault_injector=injector,
            tracing=True,
        )
        engine.execute(self.SPEC)
        [root] = engine.tracer.roots
        events = [
            span.attrs.get("event")
            for span in root.children
            if span.name == "supervision"
        ]
        assert "pool_restart" in events
        assert "chunk_quarantined" in events
        _assert_no_orphans()
