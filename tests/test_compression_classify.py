"""Tests for protruding/recessing vertex classification."""

import numpy as np

from repro.compression import classify_vertices, patch_is_protruding, protruding_fraction
from repro.compression.classify import PROTRUDING, RECESSING, UNREMOVABLE, classify_vertex
from repro.mesh import Polyhedron, icosphere
from repro.mesh.adjacency import MeshAdjacency


def dented_icosphere(subdivisions=2, dent_fraction=0.25, dent_scale=0.55, seed=0):
    """An icosphere with a subset of vertices pushed inward.

    The pushed vertices become recessing (their removal would fill the
    pit they create); most others stay protruding.
    """
    mesh = icosphere(subdivisions)
    rng = np.random.default_rng(seed)
    vertices = mesh.vertices.copy()
    n_dents = max(1, int(len(vertices) * dent_fraction))
    dented = rng.choice(len(vertices), size=n_dents, replace=False)
    vertices[dented] *= dent_scale
    return Polyhedron(vertices, mesh.faces), set(dented.tolist())


class TestPatchPredicate:
    def test_apex_of_pyramid_is_protruding(self):
        # Square pyramid apex over a quad patch split into two triangles.
        positions = np.array(
            [(0, 0, 1.0), (1, 1, 0), (-1, 1, 0), (-1, -1, 0), (1, -1, 0)]
        )
        # Patch faces oriented CCW seen from +z (outward, toward apex 0).
        patch = [(1, 2, 3), (1, 3, 4)]
        assert patch_is_protruding(positions, 0, patch)

    def test_pit_vertex_is_recessing(self):
        positions = np.array(
            [(0, 0, -1.0), (1, 1, 0), (-1, 1, 0), (-1, -1, 0), (1, -1, 0)]
        )
        patch = [(1, 2, 3), (1, 3, 4)]
        assert not patch_is_protruding(positions, 0, patch)

    def test_coplanar_vertex_counts_as_protruding(self):
        # Vertex exactly in the patch plane: invalid tetrahedra, no impact.
        positions = np.array(
            [(0, 0, 0.0), (1, 1, 0), (-1, 1, 0), (-1, -1, 0), (1, -1, 0)]
        )
        patch = [(1, 2, 3), (1, 3, 4)]
        assert patch_is_protruding(positions, 0, patch)

    def test_empty_patch_is_trivially_protruding(self):
        assert patch_is_protruding(np.zeros((1, 3)), 0, [])


class TestMeshClassification:
    def test_convex_mesh_is_all_protruding(self):
        mesh = icosphere(2)
        assert protruding_fraction(mesh) == 1.0

    def test_dented_mesh_has_recessing_vertices(self):
        mesh, dented = dented_icosphere()
        counts = classify_vertices(mesh)
        assert counts[RECESSING] > 0
        assert counts[PROTRUDING] > counts[RECESSING]
        fraction = protruding_fraction(mesh)
        assert 0.5 < fraction < 1.0

    def test_dented_vertices_classified_recessing(self):
        mesh, dented = dented_icosphere(dent_fraction=0.05, dent_scale=0.5)
        adjacency = MeshAdjacency(mesh.faces)
        positions = mesh.vertices
        hits = sum(
            classify_vertex(positions, adjacency, v) == RECESSING for v in dented
        )
        # Deep isolated dents must be recognized as recessing.
        assert hits >= len(dented) * 0.8

    def test_counts_cover_all_vertices(self):
        mesh, _ = dented_icosphere()
        counts = classify_vertices(mesh)
        assert (
            counts[PROTRUDING] + counts[RECESSING] + counts[UNREMOVABLE]
            == mesh.num_vertices
        )
